//! Offline shim for `criterion`: enough surface to compile and run the
//! workspace's `cargo bench` targets without crates.io access.
//!
//! Timing is honest but simple: each benchmark runs a warm-up pass and
//! `sample_size` timed samples, and the per-iteration mean and min are
//! printed as plain text. There are no statistics, plots or baselines.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (shim: ignored beyond
/// batch-size selection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many iterations per setup.
    SmallInput,
    /// Large inputs: one iteration per setup.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Passed to each benchmark closure to drive timed iterations.
pub struct Bencher {
    samples: usize,
    /// Per-sample durations of the most recent `iter` call.
    last: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, one invocation per sample after warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        self.last.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.last.push(t0.elapsed());
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        self.last.clear();
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.last.push(t0.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.last.is_empty() {
            return;
        }
        let total: Duration = self.last.iter().sum();
        let mean = total / self.last.len() as u32;
        let min = self.last.iter().min().copied().unwrap_or_default();
        println!(
            "{label:<40} mean {mean:>12.2?}   min {min:>12.2?}   ({} samples)",
            self.last.len()
        );
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        let mut b = Bencher {
            samples: self.samples,
            last: Vec::new(),
        };
        f(&mut b);
        b.report(&label);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (no-op in the shim; accepts
    /// and ignores harness arguments such as `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group(id.clone()).bench_function("", f);
        self
    }

    /// Final summary hook (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_function("iter", |b| {
                b.iter(|| {
                    ran += 1;
                    black_box(2u64.pow(10))
                })
            });
            g.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(ran, 4);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        c.benchmark_group("shim")
            .sample_size(2)
            .bench_function("batched", |b| {
                b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
            });
    }
}
