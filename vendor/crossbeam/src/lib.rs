//! Offline shim for the `crossbeam` crate: the `channel` module only.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `crossbeam` it uses: MPMC bounded/unbounded
//! channels with disconnect semantics, built on `Mutex` + `Condvar`.
//! Semantics match `crossbeam-channel` for the operations exposed
//! (blocking `send`/`recv`, cloneable senders *and* receivers,
//! disconnection when either side is fully dropped); throughput is
//! lower than the real lock-free implementation, which is irrelevant
//! for this workspace — channel traffic is a few segments per second
//! of capture, each carrying tens of kilobytes of I/Q.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// Deepest the queue has ever been (for backpressure metrics).
        high_water: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned when sending on a channel with no receivers.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned when receiving on an empty, disconnected channel.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but still connected.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout elapsed.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Creates a channel holding at most `cap` in-flight messages;
    /// `send` blocks while it is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap))
    }

    /// Creates a channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                high_water: 0,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        /// Fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.inner.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.inner.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            st.high_water = st.high_water.max(st.queue.len());
            drop(st);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives one message, blocking until one is available.
        /// Fails when the channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.not_empty.wait(st).unwrap();
            }
        }

        /// Receives one message, blocking at most `timeout`. Matches
        /// `crossbeam-channel`: returns [`RecvTimeoutError::Timeout`]
        /// when the deadline passes with the channel still connected,
        /// [`RecvTimeoutError::Disconnected`] when it is empty and
        /// every sender is gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .inner
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Drains currently-available messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Deepest the queue has ever been (extension beyond the real
        /// crossbeam API, used for backpressure metrics).
        pub fn high_water_mark(&self) -> usize {
            self.inner.state.lock().unwrap().high_water
        }
    }

    /// Iterator over immediately-available messages.
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    /// Blocking iterator over messages until disconnection.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.inner.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn roundtrip_in_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.len(), 10);
            assert_eq!(
                rx.try_iter().collect::<Vec<i32>>(),
                (0..10).collect::<Vec<_>>()
            );
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let sender = thread::spawn(move || {
                tx.send(3).unwrap(); // blocks until a recv frees a slot
                "sent"
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(sender.join().unwrap(), "sent");
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn mpmc_distributes_all_messages_once() {
            let (tx, rx) = bounded::<usize>(4);
            let mut workers = Vec::new();
            for _ in 0..3 {
                let rx = rx.clone();
                workers.push(thread::spawn(move || rx.iter().count()));
            }
            drop(rx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
            assert_eq!(total, 100);
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            use std::time::Duration;
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn recv_timeout_wakes_on_send_from_other_thread() {
            use std::time::Duration;
            let (tx, rx) = bounded::<u8>(1);
            let sender = thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                tx.send(5).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(5));
            sender.join().unwrap();
        }

        #[test]
        fn high_water_mark_tracks_depth() {
            let (tx, rx) = unbounded::<u8>();
            for _ in 0..5 {
                tx.send(0).unwrap();
            }
            rx.try_iter().count();
            tx.send(0).unwrap();
            assert_eq!(rx.high_water_mark(), 5);
        }
    }
}
