//! Offline shim for `parking_lot`: `Mutex`/`RwLock` with the
//! non-poisoning API, implemented over `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice it uses. Like the real `parking_lot`, `lock()`
//! never returns a `Result`: a lock poisoned by a panicking thread is
//! recovered and handed out anyway (the data may be mid-update, which
//! is exactly `parking_lot`'s contract too — it has no poisoning).

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(7u8));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock still works.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(3u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 6);
        drop((a, b));
        *l.write() = 4;
        assert_eq!(*l.read(), 4);
    }
}
