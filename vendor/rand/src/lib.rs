//! Offline shim for the `rand` crate (0.8-style API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of `rand` it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`Rng`] extension
//! trait with `gen`, `gen_range` and `gen_bool`, and [`SeedableRng`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not the
//! ChaCha12 stream of upstream `StdRng`, so seeded sequences differ
//! from upstream. Nothing in this workspace pins upstream streams;
//! seeds only need to be deterministic and statistically sound.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u32`/`u64` values.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be created from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a full-range ("standard") value of a type.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be uniformly drawn from.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_float {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty float range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // Floating rounding can land exactly on `end`; pull it in.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty float range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    };
}
impl_range_float!(f32);
impl_range_float!(f64);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, bound)` via 64-bit widening multiply (bias is
/// negligible for the bounds this workspace uses).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u64 {
    debug_assert!(bound > 0 && bound <= u64::MAX as u128 + 1);
    if bound > u64::MAX as u128 {
        return rng.next_u64();
    }
    ((rng.next_u64() as u128 * bound) >> 64) as u64
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a full-range value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the state, as the
            // xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let g = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn integer_ranges_cover_small_spans() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0u8..4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
