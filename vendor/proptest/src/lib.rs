//! Offline shim for `proptest`: the macro-and-strategy subset this
//! workspace uses, without shrinking.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a miniature property tester with the same surface syntax:
//!
//! ```ignore
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!     #[test]
//!     fn roundtrips(data in proptest::collection::vec(any::<u8>(), 0..64)) {
//!         prop_assert_eq!(decode(&encode(&data)), data);
//!     }
//! }
//! ```
//!
//! Each case draws from a deterministic per-case RNG (seeded by test
//! body-independent case index), so failures are reproducible run to
//! run. There is no shrinking: the panic message reports the case
//! index and the asserted values instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG driving case generation.
pub type TestRng = StdRng;

/// Creates the deterministic RNG for one case of one test.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index, so every
    // test walks a different — but stable — sequence of cases.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value generated.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Full-range values of `T` (`any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the full-range strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen()
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

macro_rules! impl_any_float {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Finite, sign-symmetric, wide dynamic range.
                use rand::Rng;
                let mag: $t = rng.gen::<$t>() * 2.0 - 1.0;
                let exp: i32 = rng.gen_range(-20i32..=20);
                mag * (2.0 as $t).powi(exp)
            }
        }
    )*};
}
impl_any_float!(f32, f64);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A constant strategy (always yields a clone of its value).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Vectors of values drawn from `element`, with length in `size`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Items `use proptest::prelude::*` must bring into scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(N))] // optional
///     #[test]
///     fn name(arg in strategy, arg2 in strategy2) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let run = move || { $body };
                    run();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(v in 3u8..10, w in -1.5f64..=1.5) {
            prop_assert!((3..10).contains(&v));
            prop_assert!((-1.5..=1.5).contains(&w));
        }

        #[test]
        fn vectors_respect_size(data in collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&data.len()));
        }

        #[test]
        fn exact_size_vectors(data in collection::vec(0.0f32..1.0, 17usize)) {
            prop_assert_eq!(data.len(), 17);
            prop_assert!(data.iter().all(|v| (0.0..1.0).contains(v)));
        }

        #[test]
        fn just_yields_its_value(v in Just(41)) {
            prop_assert_eq!(v + 1, 42);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let strat = crate::collection::vec(crate::any::<u64>(), 0..32);
        let a: Vec<Vec<u64>> = (0..8)
            .map(|c| strat.generate(&mut crate::case_rng("t", c)))
            .collect();
        let b: Vec<Vec<u64>> = (0..8)
            .map(|c| strat.generate(&mut crate::case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
        // Different tests see different sequences.
        let c = strat.generate(&mut crate::case_rng("other", 0));
        assert!(a[0] != c || a[1..].iter().any(|v| !v.is_empty()));
    }
}
