//! Cross-technology collision decoding — the paper's headline.
//!
//! A LoRa frame and an XBee frame collide with full time-frequency
//! overlap at comparable power. Strict SIC (the strawman) stalls:
//! the stronger XBee frame cannot be decoded under the LoRa chirps, so
//! nothing can be subtracted. GalioT's Algorithm 1 applies KILL-CSS to
//! remove the LoRa signal *without decoding it*, recovers XBee, cancels
//! XBee's reconstructed waveform, and then decodes LoRa cleanly.
//!
//! ```sh
//! cargo run --release --example collision_decoding
//! ```

use galiot::cloud::{sic_decode, SicParams};
use galiot::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FS: f64 = 1_000_000.0;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let registry = Registry::prototype();
    let lora = registry.get(TechId::LoRa).unwrap().clone();
    let xbee = registry.get(TechId::XBee).unwrap().clone();

    let lora_payload = b"lora under collision".to_vec();
    let xbee_payload = b"xbee under collision".to_vec();

    // Full overlap: XBee starts 30 ms into the ~54 ms LoRa frame and is
    // 1 dB stronger — comparable power, the regime where SIC fails.
    let events = vec![
        TxEvent::new(lora, lora_payload.clone(), 0),
        TxEvent::new(xbee, xbee_payload.clone(), 30_000).with_power_db(1.0),
    ];
    let noise = snr_to_noise_power(25.0, 0.0);
    let capture = compose(&events, 400_000, FS, noise, &mut rng);
    assert!(capture.has_collision());

    println!("collision: LoRa (CSS) x XBee (GFSK), full overlap, ~equal power\n");

    // Strawman: strict SIC.
    let sic = sic_decode(&capture.samples, FS, &registry, &SicParams::default());
    println!("strict SIC recovered {} frame(s):", sic.frames.len());
    for f in &sic.frames {
        println!("  {}: {:?}", f.tech, String::from_utf8_lossy(&f.payload));
    }

    // GalioT: Algorithm 1 with kill filters.
    let decoder = CloudDecoder::new(registry);
    let result = decoder.decode(&capture.samples, FS);
    println!(
        "\nGalioT CloudDecode recovered {} frame(s) ({} kill-filter application(s)):",
        result.frames.len(),
        result.kills,
    );
    for (f, how) in &result.frames {
        let how = match how {
            Recovery::Direct => "direct".to_string(),
            Recovery::AfterKill { victim } => format!("after KILL of {victim}"),
        };
        println!(
            "  {}: {:?}  [{how}]",
            f.tech,
            String::from_utf8_lossy(&f.payload)
        );
    }

    let got: Vec<&Vec<u8>> = result.frames.iter().map(|(f, _)| &f.payload).collect();
    assert!(got.contains(&&lora_payload) && got.contains(&&xbee_payload));
    assert!(result.frames.len() > sic.frames.len());
    println!("\nGalioT decoded the full collision where SIC stalled — demo OK");
}
