//! Detection below the noise floor — why the gateway correlates
//! instead of thresholding energy (paper, Sec. 4).
//!
//! Sweeps one LoRa packet from +10 dB down to -25 dB SNR and shows
//! where the energy detector loses it while the universal preamble
//! keeps finding it.
//!
//! ```sh
//! cargo run --release --example low_snr_detection
//! ```

use galiot::gateway::{score_detections, EnergyDetector};
use galiot::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FS: f64 = 1_000_000.0;

fn main() {
    let registry = Registry::prototype();
    let lora = registry.get(TechId::LoRa).unwrap().clone();
    let universal = UniversalDetector::auto(&registry, FS);
    let energy = EnergyDetector::default();

    println!("snr_db   energy   universal_preamble");
    for &snr in &[10.0f32, 5.0, 0.0, -5.0, -10.0, -15.0, -20.0, -25.0] {
        let mut e_hits = 0;
        let mut u_hits = 0;
        let trials = 10;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(1000 + t);
            let ev = TxEvent::new(lora.clone(), vec![0xA5; 8], 60_000);
            let noise = snr_to_noise_power(snr, 0.0);
            let cap = compose(&[ev], 400_000, FS, noise, &mut rng);
            let truth: Vec<(usize, usize)> = cap.truth.iter().map(|t| (t.start, t.len)).collect();
            if score_detections(&energy.detect(&cap.samples, FS), &truth, 2_048)[0] {
                e_hits += 1;
            }
            if score_detections(&universal.detect(&cap.samples, FS), &truth, 2_048)[0] {
                u_hits += 1;
            }
        }
        println!(
            "{snr:>6.1}   {:>2}/{trials}     {:>2}/{trials}",
            e_hits, u_hits
        );
    }
    println!("\nenergy detection collapses below ~0 dB; the universal preamble's");
    println!("correlation gain keeps detecting packets buried well under the noise.");
}
