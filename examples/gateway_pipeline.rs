//! The live streaming pipeline: Poisson IoT traffic arriving in
//! RTL-SDR-sized chunks, gateway and cloud running on their own
//! threads connected by bounded channels — the deployment shape of the
//! paper's Figure 2.
//!
//! ```sh
//! cargo run --release --example gateway_pipeline
//! ```

use galiot::channel::{compose, generate, snr_to_noise_power, TrafficParams};
use galiot::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FS: f64 = 1_000_000.0;
const CHUNK: usize = 65_536; // one RTL-SDR URB-ish chunk

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    let registry = Registry::prototype();

    // Two seconds of "wake up and transmit" Poisson traffic from the
    // three technologies.
    let params = TrafficParams {
        rate_hz: 2.5,
        ..Default::default()
    };
    let events = generate(&registry, &params, 2.0, FS, &mut rng);
    let noise = snr_to_noise_power(15.0, 0.0);
    let capture = compose(&events, 2_000_000, FS, noise, &mut rng);
    println!(
        "air: {} transmissions over 2 s, collisions present: {}",
        capture.truth.len(),
        capture.has_collision(),
    );

    // Start the pipeline and feed it chunk by chunk, as an SDR driver
    // would.
    let system = StreamingGaliot::start(GaliotConfig::prototype(), registry);
    for chunk in capture.samples.chunks(CHUNK) {
        system.push_chunk(chunk.to_vec());
    }
    let metrics = system.metrics().clone();
    let frames = system.finish();

    println!("\nstreaming pipeline recovered {} frame(s):", frames.len());
    for f in &frames {
        println!(
            "  {:>7} @ {:>8}: {} bytes{}",
            f.frame.tech.to_string(),
            f.frame.start,
            f.frame.payload.len(),
            if f.via_kill {
                "  (via kill filter)"
            } else {
                ""
            },
        );
    }

    // Score against ground truth.
    let correct = frames
        .iter()
        .filter(|f| {
            capture
                .truth
                .iter()
                .any(|t| t.tech == f.frame.tech && t.payload == f.frame.payload)
        })
        .count();
    let snap = metrics.snapshot();
    println!(
        "\n{} / {} transmitted frames recovered correctly; {} detections, {} segments shipped",
        correct,
        capture.truth.len(),
        snap.detections,
        snap.shipped_segments,
    );
    assert!(correct > 0, "pipeline should recover at least one frame");
}
