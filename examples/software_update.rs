//! Extensibility by software update — the argument of the paper's
//! introduction: a commercial multi-technology gateway adds a radio by
//! adding a *chip*; GalioT adds one by registering a PHY.
//!
//! This example starts from the three-technology prototype, fails to
//! see an O-QPSK/DSSS transmission, "installs the update" by pushing
//! the DSSS PHY into the registry, rebuilds the universal preamble,
//! and decodes the same capture.
//!
//! ```sh
//! cargo run --release --example software_update
//! ```

use galiot::phy::dsss::{DsssParams, DsssPhy};
use galiot::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const FS: f64 = 1_000_000.0;

fn main() {
    let mut rng = StdRng::seed_from_u64(31);

    // A device of a technology the gateway does not (yet) support.
    let dsss: Arc<DsssPhy> = Arc::new(DsssPhy::new(DsssParams::default()));
    let payload = b"new tech frame".to_vec();
    let ev = TxEvent::new(dsss.clone(), payload.clone(), 80_000);
    let noise = snr_to_noise_power(12.0, 0.0);
    let capture = compose(&[ev], 600_000, FS, noise, &mut rng);

    // Before the update: prototype registry (LoRa, XBee, Z-Wave).
    let before = Galiot::new(GaliotConfig::prototype(), Registry::prototype());
    let report = before.process_capture(&capture.samples);
    println!(
        "before update: {} frame(s) decoded (universal preamble knows {} technologies)",
        report.frames.len(),
        before.registry().len(),
    );
    assert!(
        report.frames.is_empty(),
        "unknown technology must not decode"
    );

    // "Software update": push the new PHY. Rebuilding `Galiot`
    // reconstructs the universal preamble — no gateway hardware change.
    let mut updated = Registry::prototype();
    updated.push(dsss);
    let after = Galiot::new(GaliotConfig::prototype(), updated);
    let report = after.process_capture(&capture.samples);
    println!(
        "after update:  {} frame(s) decoded (universal preamble knows {} technologies)",
        report.frames.len(),
        after.registry().len(),
    );
    for f in &report.frames {
        println!(
            "  {}: {:?}",
            f.frame.tech,
            String::from_utf8_lossy(&f.frame.payload)
        );
    }
    assert_eq!(report.frames.len(), 1);
    assert_eq!(report.frames[0].frame.payload, payload);

    // The update did not make detection more expensive: that is the
    // universal preamble's scaling property.
    println!("\nsoftware update complete — no new radio chip required");
}
