//! Quickstart: transmit one frame of each prototype technology over a
//! simulated noisy channel and decode them with the full GalioT
//! pipeline (RTL-SDR front end → universal-preamble detection → edge /
//! cloud decoding).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use galiot::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FS: f64 = 1_000_000.0; // the prototype's 1 MHz capture rate

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // The paper's prototype set: LoRa, XBee and Z-Wave sharing one
    // 868 MHz capture band.
    let registry = Registry::prototype();

    // Three devices "wake up and transmit", well separated in time.
    let mut events = Vec::new();
    let payload = |tag: u8| vec![tag, 0xC0, 0xFF, 0xEE];
    for (i, tech) in registry.techs().iter().enumerate() {
        events.push(TxEvent::new(
            tech.clone(),
            payload(i as u8),
            100_000 + i * 250_000,
        ));
    }

    // Compose the air: unit-power signals under AWGN at 12 dB SNR.
    let noise = snr_to_noise_power(12.0, 0.0);
    let capture = compose(&events, 1_000_000, FS, noise, &mut rng);
    println!(
        "capture: {} samples ({:.0} ms), {} transmissions, collision: {}",
        capture.samples.len(),
        1e3 * capture.samples.len() as f64 / FS,
        capture.truth.len(),
        capture.has_collision(),
    );

    // Run GalioT end to end.
    let system = Galiot::new(GaliotConfig::prototype(), registry);
    let report = system.process_capture(&capture.samples);

    println!("\ndecoded {} frame(s):", report.frames.len());
    for f in &report.frames {
        println!(
            "  {:>7} @ sample {:>7}: {:02x?}  ({})",
            f.frame.tech.to_string(),
            f.frame.start,
            f.frame.payload,
            if f.at_edge { "edge" } else { "cloud" },
        );
    }

    let m = &report.metrics;
    println!(
        "\ngateway: {} detections, {} segments, shipped {} bytes ({} of the capture)",
        m.detections,
        m.segments,
        m.shipped_bytes,
        format_args!("{:.2}%", 100.0 * m.shipped_fraction(8)),
    );
    assert_eq!(report.frames.len(), 3, "expected all three frames");
    println!("all three technologies decoded — quickstart OK");
}
