//! Multi-technology wireless sensing — the paper's Sec. 6 sketch,
//! working end to end.
//!
//! Three IoT devices transmit periodically. For the first half of the
//! run the environment is static; then "someone walks through the
//! room": every subsequent frame arrives through a perturbed channel
//! (fluctuating gain and phase). The cloud never looks at payloads for
//! this — the channel estimates that fall out of cancellation feed a
//! [`galiot::core::sensing::SensingMonitor`], whose motion score jumps
//! when the environment starts moving.
//!
//! ```sh
//! cargo run --release --example wireless_sensing
//! ```

use galiot::channel::{compose, snr_to_noise_power, Impairments, TxEvent};
use galiot::cloud::cancel_frame;
use galiot::core::sensing::{ChannelObservation, SensingMonitor};
use galiot::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FS: f64 = 1_000_000.0;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let registry = Registry::prototype();
    let xbee = registry.get(TechId::XBee).unwrap().clone();
    let zwave = registry.get(TechId::ZWave).unwrap().clone();

    let mut monitor = SensingMonitor::new(6);
    println!("epoch   environment   frames   motion_score");

    for epoch in 0..10 {
        let moving = epoch >= 5;
        // Two devices transmit once per epoch. In the static phase the
        // channel is fixed per device; in the moving phase gain and
        // phase wobble frame to frame.
        let mut events = Vec::new();
        for (i, tech) in [xbee.clone(), zwave.clone()].into_iter().enumerate() {
            let imp = if moving {
                Impairments {
                    attenuation_db: rng.gen_range(0.0..6.0),
                    phase: rng.gen_range(0.0..std::f32::consts::TAU),
                    ..Impairments::clean()
                }
            } else {
                Impairments {
                    attenuation_db: 2.0 + i as f32,
                    phase: 0.7 * (i as f32 + 1.0),
                    ..Impairments::clean()
                }
            };
            events.push(
                TxEvent::new(tech, vec![epoch as u8, i as u8, 0x5E], 30_000 + i * 150_000)
                    .with_impairments(imp),
            );
        }
        let np = snr_to_noise_power(18.0, -6.0);
        let cap = compose(&events, 400_000, FS, np, &mut rng);

        // Decode and harvest channel estimates via cancellation.
        let mut frames = 0usize;
        let mut residual = cap.samples.clone();
        for tech in [&xbee, &zwave] {
            if let Ok(frame) = tech.demodulate(&residual, FS) {
                if let Some(rep) = cancel_frame(&mut residual, tech.as_ref(), &frame, FS, 64) {
                    frames += 1;
                    monitor.observe(ChannelObservation {
                        tech: frame.tech,
                        t_s: epoch as f64,
                        gain: rep.mean_gain,
                    });
                }
            }
        }
        println!(
            "{epoch:>5}   {:>11}   {frames:>6}   {:>8.4}",
            if moving { "moving" } else { "static" },
            monitor.motion_score(),
        );
    }
    println!("\nthe score stays near zero while the channel is static and rises");
    println!("once frames start arriving through a changing environment —");
    println!("collision-decoding infrastructure doubling as a sensor (Sec. 6).");
}
