//! Transport conformance: streaming over an impaired backhaul must be
//! indistinguishable from the lossless batch pipeline whenever the ARQ
//! can repair the link — same frame set, same capture-order delivery,
//! at every worker count — and when it *cannot* repair the link (ARQ
//! disabled or retries exhausted), the segments declared lost must be
//! exactly the ones that never arrived: no silent gaps, no phantom
//! losses.
//!
//! The fault matrix is seeded (override with `GALIOT_FAULT_SEED`; CI
//! pins it) so every cell is reproducible; scenario captures route
//! through `GALIOT_TEST_SEED` (see EXPERIMENTS.md).

use galiot::channel::scenario_seed;
use galiot::core::Metrics;
use galiot::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FS: f64 = 1_000_000.0;
const WORKER_COUNTS: [usize; 2] = [1, 4];
const LOSS_RATES: [f64; 3] = [0.0, 0.01, 0.05];

/// Fixed default fault seed; a set `GALIOT_FAULT_SEED` is XOR-combined
/// with it (the same sweep rule as `scenario_seed`) so CI can pin or
/// sweep the impairment pattern explicitly.
fn fault_seed() -> u64 {
    galiot::channel::fault_seed(0xFA57)
}

/// A frame reduced to its conformance identity.
type FrameId = (TechId, Vec<u8>, usize);

fn frame_ids(frames: &[galiot::core::PipelineFrame]) -> Vec<FrameId> {
    frames
        .iter()
        .map(|f| (f.frame.tech, f.frame.payload.clone(), f.frame.start))
        .collect()
}

/// See `streaming_conformance.rs`: streaming digitizes per flush
/// window, so sync estimates can move a few samples without changing
/// what was decoded.
const START_TOLERANCE: usize = 16;

fn assert_same_frames(streamed: &[FrameId], batch: &[FrameId], ctx: &str) {
    assert_eq!(
        streamed.len(),
        batch.len(),
        "{ctx}: frame count diverged\n streaming: {streamed:?}\n batch: {batch:?}"
    );
    let mut unmatched: Vec<&FrameId> = batch.iter().collect();
    for f in streamed {
        let pos = unmatched
            .iter()
            .position(|b| b.0 == f.0 && b.1 == f.1 && b.2.abs_diff(f.2) <= START_TOLERANCE);
        match pos {
            Some(i) => {
                unmatched.remove(i);
            }
            None => panic!("{ctx}: streamed frame {f:?} has no batch counterpart in {unmatched:?}"),
        }
    }
}

/// The transport accounting contract: every segment the gateway
/// offered is either decoded by exactly one worker, shed by the send
/// queue, or declared lost by the ARQ.
fn assert_accounting(m: &Metrics, ctx: &str) {
    let pool: usize = m.per_worker_segments.values().sum();
    assert_eq!(
        m.shipped_segments,
        pool + m.segments_shed + m.arq_lost,
        "{ctx}: shipped ≠ pool + shed + lost: {m:?}"
    );
}

/// A conformance-grade transport: full impairment mix at the given
/// loss rate, ARQ generous enough to always win, degradation disabled
/// (the ladder changes wire fidelity, which is a different contract —
/// see `degradation_counters_stay_consistent`).
fn repairable_transport(loss: f64, seed: u64) -> TransportConfig {
    let faults = LinkFaults {
        loss,
        corrupt: 0.02,
        duplicate: 0.05,
        reorder: 0.05,
        jitter_depth: 3,
        seed,
    };
    let mut t = TransportConfig::over_faulty_link(faults);
    t.arq.max_retries = 12;
    t.arq.base_timeout_s = 0.001;
    t.send_queue_cap = 1024;
    t.degrade_hwm = 1 << 20;
    t
}

/// Runs one capture through the full loss × workers matrix and checks
/// streaming-over-faults ≡ lossless batch. `edge` controls edge
/// decoding on BOTH sides: off forces every segment across the
/// impaired wire; on keeps the paper's split (collision clusters still
/// ship — the edge only handles clean single packets).
fn assert_transport_conformance(samples: &[Cf32], registry: &Registry, edge: bool, label: &str) {
    let mut base = GaliotConfig::prototype();
    base.edge_decoding = edge;

    let batch = frame_ids(
        &Galiot::new(base.clone(), registry.clone())
            .process_capture(samples)
            .frames,
    );
    assert!(
        !batch.is_empty(),
        "{label}: batch recovered nothing — scenario is vacuous"
    );

    for loss in LOSS_RATES {
        for workers in WORKER_COUNTS {
            let ctx = format!("{label}: loss={loss} workers={workers}");
            let seed = fault_seed() ^ (loss * 1000.0) as u64 ^ ((workers as u64) << 32);
            let config = base
                .clone()
                .with_cloud_workers(workers)
                .with_transport(repairable_transport(loss, seed));
            let sys = StreamingGaliot::start(config, registry.clone());
            let metrics = sys.metrics().clone();
            for c in samples.chunks(65_536) {
                sys.push_chunk(c.to_vec());
            }
            let streamed = frame_ids(&sys.finish());

            let starts: Vec<usize> = streamed.iter().map(|(_, _, s)| *s).collect();
            let mut sorted = starts.clone();
            sorted.sort_unstable();
            assert_eq!(starts, sorted, "{ctx}: frames out of capture order");
            assert_same_frames(&streamed, &batch, &ctx);

            let m = metrics.snapshot();
            assert!(
                m.shipped_segments > 0,
                "{ctx}: nothing crossed the wire — scenario does not exercise the transport"
            );
            assert_eq!(m.arq_lost, 0, "{ctx}: ARQ gave a segment up: {m:?}");
            assert_eq!(m.segments_shed, 0, "{ctx}: unexpected shedding: {m:?}");
            assert_eq!(m.segments_downgraded, 0, "{ctx}: unexpected downgrade");
            assert_accounting(&m, &ctx);
            assert_eq!(
                m.arq_acked, m.shipped_segments,
                "{ctx}: every shipped segment must end acked: {m:?}"
            );
            if m.wire_dropped > 0 {
                assert!(
                    m.arq_retransmits > 0,
                    "{ctx}: the wire dropped datagrams but nothing was retransmitted: {m:?}"
                );
            }
            if loss > 0.0 {
                assert!(
                    m.wire_datagrams_sent > m.shipped_segments as u64,
                    "{ctx}: a lossy run should need more datagrams than segments: {m:?}"
                );
            }
        }
    }
}

/// Scenario 1: well-separated multi-technology traffic — several
/// independent segments in flight, exercising windowed ARQ and
/// receiver-side reordering across workers.
#[test]
fn conformance_on_separated_multi_tech_traffic() {
    let mut rng = StdRng::seed_from_u64(scenario_seed(50));
    let registry = Registry::prototype();
    let zwave = registry.get(TechId::ZWave).unwrap().clone();
    let xbee = registry.get(TechId::XBee).unwrap().clone();
    let events: Vec<TxEvent> = (0..3)
        .flat_map(|i| {
            [
                TxEvent::new(
                    zwave.clone(),
                    vec![0x30 + i; 6],
                    100_000 + i as usize * 600_000,
                ),
                TxEvent::new(
                    xbee.clone(),
                    vec![0x40 + i; 6],
                    400_000 + i as usize * 600_000,
                ),
            ]
        })
        .collect();
    let np = snr_to_noise_power(20.0, 0.0);
    let cap = compose(&events, 2_000_000, FS, np, &mut rng);
    assert_transport_conformance(&cap.samples, &registry, false, "separated multi-tech");
}

/// Scenario 2: a cross-technology collision cluster — the large
/// SIC-bound segments the paper ships to the cloud, now over an
/// impaired wire. Edge decoding stays on (the paper's configuration —
/// it cannot handle a collision, so the cluster ships regardless);
/// the capture matches PR 1's streaming-conformance scenario.
#[test]
fn conformance_on_collision_cluster_over_faults() {
    let mut rng = StdRng::seed_from_u64(scenario_seed(40));
    let registry = Registry::prototype();
    let events = forced_collision(&registry, 10, &[0.0, 1.0], 20_000, 50_000, &mut rng);
    let np = snr_to_noise_power(25.0, 0.0);
    let cap = compose(&events, 700_000, FS, np, &mut rng);
    assert!(cap.has_collision());
    assert_transport_conformance(&cap.samples, &registry, true, "collision cluster");
}

/// With retries disabled over a heavily lossy one-way link, the
/// segments declared lost are exactly the ones missing from the
/// output: the transport never loses silently and never cries wolf.
#[test]
fn declared_lost_segments_are_exactly_the_missing_ones() {
    let mut rng = StdRng::seed_from_u64(scenario_seed(52));
    let registry = Registry::prototype();
    let zwave = registry.get(TechId::ZWave).unwrap().clone();
    let events: Vec<TxEvent> = (0..6)
        .map(|i| {
            TxEvent::new(
                zwave.clone(),
                vec![0x60 + i; 6],
                120_000 + i as usize * 600_000,
            )
        })
        .collect();
    let np = snr_to_noise_power(20.0, 0.0);
    let cap = compose(&events, 3_800_000, FS, np, &mut rng);

    let mut base = GaliotConfig::prototype();
    base.edge_decoding = false;
    let batch = frame_ids(
        &Galiot::new(base.clone(), registry.clone())
            .process_capture(&cap.samples)
            .frames,
    );
    assert_eq!(batch.len(), 6, "each packet should decode alone: {batch:?}");

    // Loss only (no reorder/dup), acks perfect, zero retries, and a
    // timeout far above the ack round trip: exactly the datagrams the
    // seeded link drops become lost segments — deterministically.
    let mut t = TransportConfig::over_faulty_link(LinkFaults::lossy(0.35, fault_seed()));
    t.ack_faults = LinkFaults::none();
    t.arq.max_retries = 0;
    t.arq.base_timeout_s = 0.050;
    let config = base.with_cloud_workers(1).with_transport(t);

    let sys = StreamingGaliot::start(config, registry);
    let metrics = sys.metrics().clone();
    for c in cap.samples.chunks(65_536) {
        sys.push_chunk(c.to_vec());
    }
    let streamed = frame_ids(&sys.finish());
    let m = metrics.snapshot();

    // Every surviving frame matches a batch frame 1:1…
    let mut unmatched: Vec<&FrameId> = batch.iter().collect();
    for f in &streamed {
        let pos = unmatched
            .iter()
            .position(|b| b.0 == f.0 && b.1 == f.1 && b.2.abs_diff(f.2) <= START_TOLERANCE);
        match pos {
            Some(i) => {
                unmatched.remove(i);
            }
            None => panic!("streamed frame {f:?} is not in the batch set"),
        }
    }
    // …and the count of missing frames is exactly the declared losses.
    assert_eq!(
        batch.len() - streamed.len(),
        m.arq_lost,
        "missing frames ≠ declared-lost segments: {m:?}"
    );
    assert!(
        m.arq_lost > 0,
        "a 35% one-way link with zero retries should lose something: {m:?}"
    );
    assert_eq!(m.wire_dropped as usize, m.arq_lost, "{m:?}");
    assert_accounting(&m, "declared-lost");
}

/// Graceful degradation under a slow uplink: a congested send queue
/// first steps compression down, then sheds — and the counters stay
/// consistent with what was offered, decoded, and dropped.
#[test]
fn degradation_counters_stay_consistent() {
    let mut rng = StdRng::seed_from_u64(scenario_seed(53));
    let registry = Registry::prototype();
    let zwave = registry.get(TechId::ZWave).unwrap().clone();
    let xbee = registry.get(TechId::XBee).unwrap().clone();
    let events: Vec<TxEvent> = (0..5)
        .flat_map(|i| {
            [
                TxEvent::new(
                    zwave.clone(),
                    vec![0x70 + i; 6],
                    60_000 + i as usize * 180_000,
                ),
                TxEvent::new(
                    xbee.clone(),
                    vec![0x80 + i; 6],
                    150_000 + i as usize * 180_000,
                ),
            ]
        })
        .collect();
    let np = snr_to_noise_power(20.0, 0.0);
    let cap = compose(&events, 1_100_000, FS, np, &mut rng);

    // A 1 Mbit/s emulated uplink against back-to-back segments, with a
    // two-slot send queue: the ladder and the shedder must both fire.
    let mut config = GaliotConfig::prototype().with_cloud_workers(1);
    config.edge_decoding = false;
    config.emulate_backhaul = true;
    config.backhaul_bps = 1e6;
    config.backhaul_latency_s = 0.0;
    let mut t = TransportConfig::reliable();
    t.send_queue_cap = 2;
    t.degrade_hwm = 1;
    t.min_bits = 4;
    config = config.with_transport(t);

    let sys = StreamingGaliot::start(config, registry);
    let metrics = sys.metrics().clone();
    for c in cap.samples.chunks(65_536) {
        sys.push_chunk(c.to_vec());
    }
    let frames = sys.finish();
    let m = metrics.snapshot();

    assert!(
        m.segments_downgraded > 0,
        "the compression ladder never stepped down: {m:?}"
    );
    assert!(
        m.segments_shed > 0,
        "the queue never shed under a saturated uplink: {m:?}"
    );
    assert!(m.send_queue_hwm >= 2, "{m:?}");
    // Per-bits counts must cover every shipped segment.
    assert_eq!(
        m.shipped_by_bits.values().sum::<u64>(),
        m.shipped_segments as u64,
        "{m:?}"
    );
    assert!(
        m.shipped_by_bits.keys().any(|&b| b < 8),
        "no segment actually used a degraded level: {m:?}"
    );
    assert_accounting(&m, "degradation");
    // Surviving frames still arrive in capture order.
    let starts: Vec<usize> = frames.iter().map(|f| f.frame.start).collect();
    let mut sorted = starts.clone();
    sorted.sort_unstable();
    assert_eq!(starts, sorted, "frames out of capture order");
}
