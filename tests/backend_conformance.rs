//! Force-scalar conformance: the scalar reference backend and the best
//! CPU-supported SIMD backend must produce *byte-identical* results
//! everywhere the golden contracts look.
//!
//! Two layers are pinned:
//!
//! * **Waveform synthesis** — every extended-registry PHY's modulated
//!   golden waveform must fingerprint identically under both backends
//!   (the element-wise and FIR kernels are bit-exact by design; this
//!   test is the end-to-end witness).
//! * **The decode pipeline** — a collision capture decoded by the batch
//!   pipeline must yield the exact same frame set (technology, payload,
//!   start offset, delivery order) under both backends.
//!
//! The suite drives the in-process `set_backend` knob. CI additionally
//! runs the *entire* test suite under `GALIOT_DSP_BACKEND=scalar`,
//! which exercises the env-var plumbing and re-validates every golden
//! and conformance suite on the scalar reference.
//!
//! Everything lives in one `#[test]` because the backend override is
//! process-wide: phases run sequentially and the previous backend is
//! restored at the end.

use galiot::channel::{compose, forced_collision, scenario_seed, snr_to_noise_power};
use galiot::dsp::kernels::{self, Backend};
use galiot::prelude::*;

const FS: f64 = 1_000_000.0;
/// Same golden payload as `tests/golden_vectors.rs`.
const PAYLOAD: [u8; 12] = *b"GalioT\x00\x01\x7f\x80\xfe\xff";

/// FNV-1a (64-bit) over the quantized I/Q stream — the exact
/// fingerprint `tests/golden_vectors.rs` pins.
fn waveform_fingerprint(samples: &[Cf32]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: i32| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for z in samples {
        eat((z.re as f64 * 1e4).round() as i32);
        eat((z.im as f64 * 1e4).round() as i32);
    }
    h
}

/// Modulates every extended-registry PHY and fingerprints the result.
fn synthesis_fingerprints() -> Vec<(String, usize, u64)> {
    Registry::extended()
        .techs()
        .iter()
        .map(|tech| {
            let n = PAYLOAD.len().min(tech.max_payload_len());
            let wf = tech.modulate(&PAYLOAD[..n], FS);
            (tech.id().to_string(), wf.len(), waveform_fingerprint(&wf))
        })
        .collect()
}

/// Raw-sample fingerprint (full f32 bits, not quantized) — stricter
/// than the golden grid: synthesis must be *bit*-identical, not just
/// identical after quantization.
fn synthesis_bits_fingerprint() -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for tech in Registry::extended().techs() {
        let n = PAYLOAD.len().min(tech.max_payload_len());
        for z in tech.modulate(&PAYLOAD[..n], FS) {
            for b in
                z.re.to_bits()
                    .to_le_bytes()
                    .into_iter()
                    .chain(z.im.to_bits().to_le_bytes())
            {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        }
    }
    h
}

/// A frame reduced to its conformance identity (exact, no tolerance:
/// both runs are the same batch pipeline, only the backend differs).
type FrameId = (TechId, Vec<u8>, usize);

fn run_batch(samples: &[Cf32], registry: &Registry) -> (Vec<FrameId>, String) {
    let report = Galiot::new(GaliotConfig::prototype(), registry.clone()).process_capture(samples);
    let ids = report
        .frames
        .iter()
        .map(|f| (f.frame.tech, f.frame.payload.clone(), f.frame.start))
        .collect();
    (ids, report.metrics.dsp_backend.clone())
}

#[test]
fn scalar_and_best_backends_agree_end_to_end() {
    let best = Backend::detect();
    let prev = kernels::set_backend(Backend::Scalar);

    // Phase 1: synthesis fingerprints, golden-grid and bit-exact.
    let scalar_goldens = synthesis_fingerprints();
    let scalar_bits = synthesis_bits_fingerprint();
    kernels::set_backend(best);
    let best_goldens = synthesis_fingerprints();
    let best_bits = synthesis_bits_fingerprint();
    for (s, b) in scalar_goldens.iter().zip(&best_goldens) {
        assert_eq!(
            s,
            b,
            "golden fingerprint diverged between scalar and {} backends",
            best.name()
        );
    }
    assert_eq!(
        scalar_bits,
        best_bits,
        "modulated waveforms are not bit-identical between scalar and {} backends",
        best.name()
    );

    // Phase 2: batch decode of a power-separated collision capture —
    // the same scenario family the streaming conformance suite pins.
    let registry = Registry::prototype();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(scenario_seed(40));
    let events = forced_collision(&registry, 10, &[0.0, 1.0], 20_000, 50_000, &mut rng);
    let np = snr_to_noise_power(25.0, 0.0);
    let cap = compose(&events, 700_000, FS, np, &mut rng);
    assert!(cap.has_collision(), "scenario must actually collide");

    kernels::set_backend(Backend::Scalar);
    let (scalar_frames, scalar_tag) = run_batch(&cap.samples, &registry);
    kernels::set_backend(best);
    let (best_frames, best_tag) = run_batch(&cap.samples, &registry);

    assert!(
        !scalar_frames.is_empty(),
        "collision scenario decoded nothing — conformance would be vacuous"
    );
    assert_eq!(
        scalar_frames,
        best_frames,
        "decoded frame set diverged between scalar and {} backends",
        best.name()
    );

    // Phase 3: the metrics tag records which backend actually ran.
    assert_eq!(scalar_tag, "scalar", "metrics dsp_backend tag (scalar run)");
    assert_eq!(
        best_tag,
        best.name(),
        "metrics dsp_backend tag (auto-dispatch run)"
    );

    kernels::set_backend(prev);
}
