//! Fleet conformance: N gateways hearing the same air must be
//! indistinguishable — to the frame consumer — from one gateway over a
//! lossless wire. The keystone invariant:
//!
//! > For every gateway count, worker count, shard count, and per-link
//! > fault seed, the fleet delivers exactly the single-gateway
//! > lossless batch frame set, each frame exactly once, in capture
//! > order.
//!
//! Alongside it, the fleet accounting contract: every frame decoded
//! anywhere in the fleet is either delivered or suppressed as a
//! cross-gateway duplicate
//! (`Σ per_gateway_decoded == fleet_delivered + dedup_suppressed`),
//! and the gateway-tagged trace reconciles with the metrics per
//! session (`shipped == decoded + shed + lost`, for every gateway).
//!
//! Fault patterns are seeded (override with `GALIOT_FAULT_SEED`; CI
//! pins and sweeps it) and scenario captures route through
//! `GALIOT_TEST_SEED` — see EXPERIMENTS.md.

use galiot::channel::scenario_seed;
use galiot::core::metrics::Metrics;
use galiot::core::PipelineFrame;
use galiot::prelude::*;
use galiot::trace::verify::{check_gateway_terminals, check_nesting, check_no_drops};
use galiot::trace::{Trace, TraceSession};
use rand::rngs::StdRng;
use rand::SeedableRng;

const FS: f64 = 1_000_000.0;
const GATEWAY_COUNTS: [usize; 3] = [1, 2, 4];
const WORKER_COUNTS: [usize; 2] = [1, 4];
const LOSS_RATES: [f64; 3] = [0.0, 0.01, 0.05];

/// Fixed default fault seed; a set `GALIOT_FAULT_SEED` is XOR-combined
/// with it (the same sweep rule as `scenario_seed`). The fleet
/// decorrelates it further per session, so one knob sweeps every link
/// in the fleet at once.
fn fault_seed() -> u64 {
    galiot::channel::fault_seed(0xF1EE7)
}

/// A frame reduced to its conformance identity.
type FrameId = (TechId, Vec<u8>, usize);

fn frame_ids(frames: &[PipelineFrame]) -> Vec<FrameId> {
    frames
        .iter()
        .map(|f| (f.frame.tech, f.frame.payload.clone(), f.frame.start))
        .collect()
}

/// Streaming digitizes per flush window, so sync estimates can move a
/// few samples; the dedup winner can additionally come from any
/// session, so the fleet gets double the single-pipeline slack.
const START_TOLERANCE: usize = 32;

fn assert_same_frames(fleet: &[FrameId], batch: &[FrameId], ctx: &str) {
    assert_eq!(
        fleet.len(),
        batch.len(),
        "{ctx}: frame count diverged\n fleet: {fleet:?}\n batch: {batch:?}"
    );
    let mut unmatched: Vec<&FrameId> = batch.iter().collect();
    for f in fleet {
        let pos = unmatched
            .iter()
            .position(|b| b.0 == f.0 && b.1 == f.1 && b.2.abs_diff(f.2) <= START_TOLERANCE);
        match pos {
            Some(i) => {
                unmatched.remove(i);
            }
            None => panic!("{ctx}: fleet frame {f:?} has no batch counterpart in {unmatched:?}"),
        }
    }
}

/// Conformance-grade transport (cf. `transport_conformance.rs`): the
/// full impairment mix at the given loss rate, ARQ generous enough to
/// always win, degradation ladder disabled.
fn repairable_transport(loss: f64, seed: u64) -> TransportConfig {
    let faults = LinkFaults {
        loss,
        corrupt: 0.02,
        duplicate: 0.05,
        reorder: 0.05,
        jitter_depth: 3,
        seed,
    };
    let mut t = TransportConfig::over_faulty_link(faults);
    t.arq.max_retries = 12;
    t.arq.base_timeout_s = 0.001;
    t.send_queue_cap = 1024;
    t.degrade_hwm = 1 << 20;
    t
}

/// The capture every scenario in this file runs: four well-separated
/// packets of two technologies — each decodes alone, so the lossless
/// batch set is unambiguous.
fn fleet_capture() -> Vec<Cf32> {
    let mut rng = StdRng::seed_from_u64(scenario_seed(60));
    let registry = Registry::prototype();
    let zwave = registry.get(TechId::ZWave).unwrap().clone();
    let xbee = registry.get(TechId::XBee).unwrap().clone();
    let events: Vec<TxEvent> = (0..2)
        .flat_map(|i| {
            [
                TxEvent::new(
                    zwave.clone(),
                    vec![0x91 + i; 6],
                    120_000 + i as usize * 700_000,
                ),
                TxEvent::new(
                    xbee.clone(),
                    vec![0xA1 + i; 6],
                    450_000 + i as usize * 700_000,
                ),
            ]
        })
        .collect();
    let np = snr_to_noise_power(20.0, 0.0);
    compose(&events, 1_600_000, FS, np, &mut rng).samples
}

/// The single-gateway lossless reference: the batch pipeline on the
/// same capture.
fn batch_reference(samples: &[Cf32], registry: &Registry) -> Vec<FrameId> {
    let mut base = GaliotConfig::prototype();
    base.edge_decoding = false;
    let batch = frame_ids(
        &Galiot::new(base, registry.clone())
            .process_capture(samples)
            .frames,
    );
    assert!(
        !batch.is_empty(),
        "batch recovered nothing — scenario is vacuous"
    );
    batch
}

/// Runs one traced fleet pass and returns (frames, trace, metrics).
fn traced_fleet_run(
    config: GaliotConfig,
    samples: &[Cf32],
) -> (Vec<PipelineFrame>, Trace, Metrics) {
    let session = TraceSession::start();
    let fleet = FleetGaliot::start(config, Registry::prototype());
    let metrics = fleet.metrics().clone();
    for c in samples.chunks(65_536) {
        fleet.push_chunk(c.to_vec());
    }
    let frames = fleet.finish();
    let trace = session.finish();
    (frames, trace, metrics.snapshot())
}

/// The full fleet contract for one run: exactly-once delivery of the
/// batch set in capture order, closed dedup accounting, and a
/// gateway-tagged trace that reconciles with the metrics per session.
fn assert_fleet_conformance(
    frames: &[PipelineFrame],
    trace: &Trace,
    m: &Metrics,
    batch: &[FrameId],
    n_gateways: usize,
    ctx: &str,
) {
    // Keystone: the fleet delivers the single-gateway lossless set.
    let delivered = frame_ids(frames);
    assert_same_frames(&delivered, batch, ctx);
    let starts: Vec<usize> = delivered.iter().map(|(_, _, s)| *s).collect();
    assert!(
        starts.windows(2).all(|w| w[1] + START_TOLERANCE >= w[0]),
        "{ctx}: frames out of capture order: {starts:?}"
    );

    // Dedup accounting closes: every frame decoded anywhere in the
    // fleet was delivered once, suppressed as a duplicate, or (when
    // failover is in play — see failover_conformance.rs) charged to a
    // crash.
    let offered: usize = m.per_gateway_decoded.values().sum();
    assert_eq!(
        offered,
        m.fleet_delivered + m.dedup_suppressed + m.crash_lost_frames,
        "{ctx}: fleet decode accounting leaks: {m:?}"
    );
    assert_eq!(
        m.fleet_delivered,
        frames.len(),
        "{ctx}: fleet_delivered vs delivered frames: {m:?}"
    );
    assert_eq!(m.fleet_gateways, n_gateways, "{ctx}");
    // Every session actually fed the ingest, and each delivered frame
    // had one copy per session to choose from.
    assert_eq!(
        m.per_gateway_segments.len(),
        n_gateways,
        "{ctx}: sessions missing from ingest accounting: {m:?}"
    );
    if n_gateways > 1 {
        assert!(
            m.dedup_suppressed >= (n_gateways - 1) * batch.len(),
            "{ctx}: fewer duplicates than redundant sessions imply: {m:?}"
        );
    }

    // The gateway-tagged trace is the independent witness: per
    // session, every shipped segment reached exactly one terminal.
    check_no_drops(trace).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    check_nesting(trace).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    let by_gw = check_gateway_terminals(trace).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    assert_eq!(by_gw.len(), n_gateways, "{ctx}: trace sessions: {by_gw:?}");
    let pool: usize = m.per_worker_segments.values().sum();
    let shipped: u64 = by_gw.values().map(|a| a.shipped).sum();
    let decoded: u64 = by_gw.values().map(|a| a.decoded).sum();
    let shed: u64 = by_gw.values().map(|a| a.shed).sum();
    let lost: u64 = by_gw.values().map(|a| a.lost).sum();
    assert_eq!(
        shipped, m.shipped_segments as u64,
        "{ctx}: trace vs shipped: {m:?}"
    );
    assert_eq!(decoded, pool as u64, "{ctx}: trace vs pool decodes: {m:?}");
    assert_eq!(shed, m.segments_shed as u64, "{ctx}: trace vs shed: {m:?}");
    assert_eq!(lost, m.arq_lost as u64, "{ctx}: trace vs lost: {m:?}");
    // And per session: the mux admitted exactly the segments whose
    // decode terminals the trace carries for that gateway.
    for (gw, acc) in &by_gw {
        assert_eq!(
            acc.decoded,
            *m.per_gateway_segments.get(gw).unwrap_or(&0) as u64,
            "{ctx}: gw{gw} trace decodes vs mux admissions: {by_gw:?} {m:?}"
        );
    }
}

/// The keystone matrix: gateways × workers × loss. Every cell must
/// deliver the batch set exactly once, with reconciled accounting.
#[test]
fn fleet_matches_single_gateway_batch_across_the_matrix() {
    let samples = fleet_capture();
    let registry = Registry::prototype();
    let batch = batch_reference(&samples, &registry);

    for n_gateways in GATEWAY_COUNTS {
        for workers in WORKER_COUNTS {
            for loss in LOSS_RATES {
                let ctx = format!("gateways={n_gateways} workers={workers} loss={loss}");
                let mut config = GaliotConfig::prototype()
                    .with_gateways(n_gateways)
                    .with_cloud_workers(workers);
                config.edge_decoding = false;
                if loss > 0.0 {
                    let seed = fault_seed() ^ (loss * 1000.0) as u64 ^ ((workers as u64) << 32);
                    config = config.with_transport(repairable_transport(loss, seed));
                }
                let (frames, trace, m) = traced_fleet_run(config, &samples);
                assert_fleet_conformance(&frames, &trace, &m, &batch, n_gateways, &ctx);
                if loss > 0.0 {
                    assert_eq!(m.arq_lost, 0, "{ctx}: ARQ gave a segment up: {m:?}");
                    assert!(
                        m.wire_datagrams_sent > m.shipped_segments as u64,
                        "{ctx}: a lossy fleet run should retransmit: {m:?}"
                    );
                }
            }
        }
    }
}

/// A gateway that is silent from the very first sample (crashed before
/// emitting anything — a radio that never came up) must not wedge the
/// fleet: the liveness reaper finalizes its merge watermark and the
/// survivors deliver the full batch set. The deeper failover matrix
/// lives in failover_conformance.rs; this pins the degenerate corner
/// where the dead session never produces a single clock event of its
/// own.
#[test]
fn fleet_survives_a_gateway_silent_from_the_start() {
    let samples = fleet_capture();
    let registry = Registry::prototype();
    let batch = batch_reference(&samples, &registry);

    let mut config = GaliotConfig::prototype()
        .with_gateways(4)
        .with_cloud_workers(4)
        .with_crash(0, 0, false)
        .with_liveness_horizon(12);
    config.edge_decoding = false;
    let (frames, trace, m) = traced_fleet_run(config, &samples);

    let ctx = "silent-from-start";
    let delivered = frame_ids(&frames);
    assert_same_frames(&delivered, &batch, ctx);
    let starts: Vec<usize> = delivered.iter().map(|(_, _, s)| *s).collect();
    assert!(
        starts.windows(2).all(|w| w[1] + START_TOLERANCE >= w[0]),
        "{ctx}: frames out of capture order: {starts:?}"
    );

    assert_eq!(m.sessions_crashed, 1, "{ctx}: {m:?}");
    assert_eq!(m.sessions_restarted, 0, "{ctx}: {m:?}");
    // The dead session never emitted, so it appears nowhere in the
    // ingest accounting or the trace — only the three survivors do.
    assert_eq!(
        m.per_gateway_segments.len(),
        3,
        "{ctx}: a silent session fed the ingest: {m:?}"
    );
    let offered: usize = m.per_gateway_decoded.values().sum();
    assert_eq!(
        offered,
        m.fleet_delivered + m.dedup_suppressed + m.crash_lost_frames,
        "{ctx}: fleet decode accounting leaks: {m:?}"
    );
    assert!(
        m.dedup_suppressed >= 2 * batch.len(),
        "{ctx}: each packet should have had three copies offered: {m:?}"
    );
    check_no_drops(&trace).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    check_nesting(&trace).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    let by_gw = check_gateway_terminals(&trace).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    assert_eq!(by_gw.len(), 3, "{ctx}: trace sessions: {by_gw:?}");
}

/// Shard routing is an implementation detail: any shard count delivers
/// the identical frame stream.
#[test]
fn shard_count_is_invisible_in_the_delivered_stream() {
    let samples = fleet_capture();
    let registry = Registry::prototype();
    let batch = batch_reference(&samples, &registry);

    let mut reference: Option<Vec<FrameId>> = None;
    for shards in [1usize, 2, 7] {
        let ctx = format!("shards={shards}");
        let mut config = GaliotConfig::prototype()
            .with_gateways(2)
            .with_cloud_workers(4)
            .with_ingest_shards(shards);
        config.edge_decoding = false;
        let (frames, trace, m) = traced_fleet_run(config, &samples);
        assert_fleet_conformance(&frames, &trace, &m, &batch, 2, &ctx);
        assert_eq!(m.ingest_shards, shards, "{ctx}");
        let ids = frame_ids(&frames);
        match &reference {
            None => reference = Some(ids),
            Some(r) => assert_eq!(&ids, r, "{ctx}: delivery changed with shard count"),
        }
    }
}

/// Edge-first decoding composes with the fleet: frames decoded at N
/// gateway edges are deduplicated exactly like cloud frames, and the
/// delivered set equals the edge-on batch reference.
#[test]
fn fleet_dedups_edge_decoded_frames_too() {
    let samples = fleet_capture();
    let registry = Registry::prototype();
    let batch = frame_ids(
        &Galiot::new(GaliotConfig::prototype(), registry.clone())
            .process_capture(&samples)
            .frames,
    );
    assert!(!batch.is_empty());

    let config = GaliotConfig::prototype()
        .with_gateways(2)
        .with_cloud_workers(2);
    let fleet = FleetGaliot::start(config, registry);
    let metrics = fleet.metrics().clone();
    for c in samples.chunks(65_536) {
        fleet.push_chunk(c.to_vec());
    }
    let frames = fleet.finish();
    let m = metrics.snapshot();

    assert_same_frames(&frame_ids(&frames), &batch, "edge-on fleet");
    assert!(
        frames.iter().any(|f| f.at_edge),
        "scenario exercised no edge decodes"
    );
    let offered: usize = m.per_gateway_decoded.values().sum();
    assert_eq!(
        offered,
        m.fleet_delivered + m.dedup_suppressed + m.crash_lost_frames,
        "{m:?}"
    );
    assert!(
        m.dedup_suppressed >= batch.len(),
        "second session's copies must be suppressed: {m:?}"
    );
}
