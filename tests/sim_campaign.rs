//! Tier-1 anchor for the randomized campaign harness (`galiot-sim`):
//! a pinned-seed smoke campaign must be all-green against the full
//! trusted oracle registry, and the failure path — detect, shrink,
//! replay — must work end to end, exercised via the deliberately
//! broken dev oracle.
//!
//! The seeds here are *pinned on purpose* (they go through the
//! `GALIOT_TEST_SEED` sweep like every scenario seed, so CI can still
//! sweep them): tier 1 wants a stable, fast sample of the space. The
//! wide random sweeps run in the nightly `sim_campaign` CI job.

use galiot_sim::campaign::{run_campaign, CampaignOptions, Status};
use galiot_sim::oracle;
use galiot_sim::spec::CampaignSpec;

/// The PR-gating smoke campaign: four scenarios from the smoke spec,
/// every trusted oracle, shrinking on (a failure here should arrive
/// minimized). All green, with every oracle actually exercised at
/// least once across the four.
#[test]
fn pinned_seed_smoke_campaign_is_all_green() {
    let opts = CampaignOptions {
        seed: 0xC0FFEE,
        count: 4,
        spec: CampaignSpec::smoke(),
        quiet: true,
        ..Default::default()
    };
    let report = run_campaign(&opts);

    if let Some(failure) = report.failures.first() {
        panic!("{}", report.render_repro(failure));
    }
    let (pass, fail, skip) = report.tally();
    assert_eq!(fail, 0);
    assert!(
        pass >= report.scenarios.len() * 3,
        "too little coverage: {pass} pass / {skip} skip"
    );
    // Every always-on oracle ran on every scenario.
    for name in ["no_panic_deadline", "streaming_batch", "trace_metrics"] {
        let runs = report
            .scenarios
            .iter()
            .flat_map(|s| &s.outcomes)
            .filter(|o| o.oracle == name && o.status == Status::Pass)
            .count();
        assert_eq!(
            runs,
            report.scenarios.len(),
            "{name} did not run everywhere"
        );
    }
}

/// The acceptance path for the harness itself: an intentionally broken
/// oracle yields a minimized repro whose printed scenario seed — alone
/// — replays to the same failure.
#[test]
fn broken_oracle_yields_a_minimized_replayable_repro() {
    // A spec that always produces multi-tx scenarios, so the dev
    // oracle (fails iff >= 2 transmissions) fails immediately.
    let spec = CampaignSpec {
        max_txs: 3,
        fault_prob: 0.0,
        crash_prob: 0.0,
        collision_prob: 0.0,
        ..CampaignSpec::smoke()
    };
    let opts = CampaignOptions {
        seed: 0x5EED,
        count: 6,
        spec,
        oracles: vec![oracle::broken_dev()],
        quiet: true,
        ..Default::default()
    };
    let report = run_campaign(&opts);
    let failure = report
        .failures
        .iter()
        .find(|f| f.scenario.txs.len() >= 2)
        .expect("six scenarios with up to 3 txs must hit a multi-tx one");

    // Shrinking minimized it: exactly two transmissions (the dev
    // oracle's minimal failing shape) and no incidental complexity.
    assert_eq!(failure.minimized.txs.len(), 2, "{:?}", failure.minimized);
    assert_eq!(failure.minimized.gateways, 1);
    assert!(failure.minimized.validate().is_ok());

    // The repro bundle is self-contained: seed, both scenarios, all
    // three env knobs, and the replay command.
    let repro = report.render_repro(failure);
    for needle in [
        "scenario_seed:",
        "failing_oracle: broken-dev",
        "GALIOT_TEST_SEED",
        "GALIOT_FAULT_SEED",
        "GALIOT_DSP_BACKEND",
        "replay: sim_campaign --replay-seed",
        "original_scenario:",
        "minimized_scenario:",
    ] {
        assert!(
            repro.contains(needle),
            "repro bundle lacks `{needle}`:\n{repro}"
        );
    }

    // Replay from the printed seed alone: same scenario, same failure.
    let replay_opts = CampaignOptions {
        replay_seed: Some(failure.scenario.seed),
        oracles: vec![oracle::broken_dev()],
        spec: opts.spec.clone(),
        quiet: true,
        ..Default::default()
    };
    let replay = run_campaign(&replay_opts);
    assert_eq!(replay.scenarios.len(), 1);
    let replayed = &replay.failures[0];
    assert_eq!(replayed.scenario, failure.scenario, "replay diverged");
    assert_eq!(replayed.error, failure.error, "replay failed differently");
}

/// Oracle filtering works and skips are honest: a fleet-only oracle
/// reports `skip` on single-gateway scenarios rather than a vacuous
/// pass.
#[test]
fn fleet_oracle_skips_single_gateway_scenarios() {
    let spec = CampaignSpec {
        max_gateways: 1,
        crash_prob: 0.0,
        ..CampaignSpec::smoke()
    };
    let opts = CampaignOptions {
        seed: 3,
        count: 2,
        spec,
        oracles: vec![oracle::find("fleet_batch").expect("fleet_batch exists")],
        quiet: true,
        ..Default::default()
    };
    let report = run_campaign(&opts);
    assert!(report.all_green());
    assert!(report
        .scenarios
        .iter()
        .flat_map(|s| &s.outcomes)
        .all(|o| o.status == Status::Skip));
}
