//! Property-based tests (proptest) on the system's core invariants:
//! every PHY must round-trip arbitrary payloads, the bit-level codecs
//! must be exact inverses, and the DSP primitives must satisfy their
//! algebraic laws on arbitrary input.

use galiot::dsp::corr::{ncc_real, xcorr_direct, xcorr_fft};
use galiot::dsp::fft::Fft;
use galiot::dsp::Cf32;
use galiot::gateway::{
    compress, decode_ack, decode_segment, decompress, encode_ack, encode_segment, try_decompress,
    validate_header, CompressedSegment, GatewayId, ShippedSegment,
};
use galiot::phy::bits::{
    bits_to_bytes_lsb, bits_to_bytes_msb, bytes_to_bits_lsb, bytes_to_bits_msb, manchester_decode,
    manchester_encode, Pn9,
};
use galiot::phy::fec::{
    deinterleave, gray_decode, gray_encode, hamming_decode, hamming_encode, interleave, CodeRate,
};
use galiot::prelude::*;
use proptest::prelude::*;

const FS: f64 = 1_000_000.0;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bit_packing_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(bits_to_bytes_msb(&bytes_to_bits_msb(&data)), data.clone());
        prop_assert_eq!(bits_to_bytes_lsb(&bytes_to_bits_lsb(&data)), data);
    }

    #[test]
    fn whitening_is_involutive(data in proptest::collection::vec(any::<u8>(), 1..64)) {
        let mut bits = bytes_to_bits_msb(&data);
        let orig = bits.clone();
        Pn9::new().whiten(&mut bits);
        Pn9::new().whiten(&mut bits);
        prop_assert_eq!(bits, orig);
    }

    #[test]
    fn manchester_roundtrips(bits in proptest::collection::vec(0u8..2, 0..256)) {
        prop_assert_eq!(manchester_decode(&manchester_encode(&bits)), bits);
    }

    #[test]
    fn gray_code_roundtrips_and_is_adjacent(v in 0u32..(1 << 16)) {
        prop_assert_eq!(gray_decode(gray_encode(v)), v);
        prop_assert_eq!((gray_encode(v) ^ gray_encode(v + 1)).count_ones(), 1);
    }

    #[test]
    fn hamming_roundtrips_any_nibble(n in 0u8..16, cr in 1u8..5) {
        let rate = CodeRate::new(cr);
        let (dec, dist) = hamming_decode(&hamming_encode(n, rate), rate);
        prop_assert_eq!(dec, n);
        prop_assert_eq!(dist, 0);
    }

    #[test]
    fn interleaver_roundtrips(sf in 7u32..13, cr in 1u8..5, seed in any::<u64>()) {
        let rate = CodeRate::new(cr);
        let mut s = seed;
        let codewords: Vec<Vec<u8>> = (0..sf)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                hamming_encode((s >> 33) as u8 & 0x0F, rate)
            })
            .collect();
        let symbols = interleave(&codewords, sf, rate);
        prop_assert_eq!(deinterleave(&symbols, sf, rate), codewords);
    }
}

proptest! {
    // Signal-level properties are costlier: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fft_roundtrips_arbitrary_signal(
        res in proptest::collection::vec(-100.0f32..100.0, 256),
        ims in proptest::collection::vec(-100.0f32..100.0, 256),
    ) {
        let sig: Vec<Cf32> = res.iter().zip(&ims).map(|(&r, &i)| Cf32::new(r, i)).collect();
        let plan = Fft::new(256);
        let mut buf = sig.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        let scale = sig.iter().map(|z| z.abs()).fold(1.0f32, f32::max);
        for (a, b) in buf.iter().zip(&sig) {
            prop_assert!((*a - *b).abs() < 1e-3 * scale);
        }
    }

    #[test]
    fn fft_and_direct_correlation_agree(
        xs in proptest::collection::vec(-10.0f32..10.0, 64..128),
        hs in proptest::collection::vec(-10.0f32..10.0, 8..32),
    ) {
        let x: Vec<Cf32> = xs.iter().map(|&v| Cf32::new(v, -v * 0.5)).collect();
        let h: Vec<Cf32> = hs.iter().map(|&v| Cf32::new(v * 0.3, v)).collect();
        let a = xcorr_direct(&x, &h);
        let b = xcorr_fft(&x, &h);
        prop_assert_eq!(a.len(), b.len());
        let scale = a.iter().map(|z| z.abs()).fold(1.0f32, f32::max);
        for (p, q) in a.iter().zip(&b) {
            prop_assert!((*p - *q).abs() < 1e-3 * scale.max(1.0));
        }
    }

    #[test]
    fn cached_overlap_save_matches_direct_at_any_length(
        xlen in 0usize..300,
        hsel in 0usize..4,
        hraw in 1usize..97,
        seed in any::<u64>(),
    ) {
        // The cached-plan/overlap-save path must agree with the direct
        // form at *every* length combination: empty template, template
        // exactly the signal length, non-power-of-two and template
        // longer than the signal (empty output) included.
        let hlen = match hsel {
            0 => 0,
            1 => xlen,
            2 => (hraw | 1).max(3), // odd, never a power of two
            _ => hraw,
        };
        // Deterministic splitmix-style generator so lengths and
        // content shrink independently.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z >> 40) as f32 / (1u64 << 23) as f32) - 1.0
        };
        let x: Vec<Cf32> = (0..xlen).map(|_| Cf32::new(next(), next())).collect();
        let h: Vec<Cf32> = (0..hlen).map(|_| Cf32::new(next(), next())).collect();
        let a = xcorr_direct(&x, &h);
        let b = xcorr_fft(&x, &h);
        prop_assert_eq!(a.len(), b.len());
        let scale = a.iter().map(|z| z.abs()).fold(1.0f32, f32::max);
        for (p, q) in a.iter().zip(&b) {
            prop_assert!((*p - *q).abs() < 2e-3 * scale, "{p:?} vs {q:?}");
        }
    }

    #[test]
    fn ncc_is_always_bounded(
        xs in proptest::collection::vec(-100.0f32..100.0, 64..200),
        hs in proptest::collection::vec(-100.0f32..100.0, 4..32),
    ) {
        for v in ncc_real(&xs, &hs) {
            prop_assert!((-1.0001..=1.0001).contains(&v));
        }
    }

    #[test]
    fn compression_error_is_bounded(
        res in proptest::collection::vec(-2.0f32..2.0, 512),
        bits in 4u32..12,
    ) {
        let sig: Vec<Cf32> = res.iter().map(|&r| Cf32::new(r, -r * 0.7)).collect();
        let out = decompress(&compress(&sig, bits, 128));
        prop_assert_eq!(out.len(), sig.len());
        // Block floating point: error bounded by the block peak / levels.
        let peak = res.iter().fold(0.0f32, |a, &b| a.max(b.abs())) * 1.3 + 1e-6;
        let max_err = peak / ((1u32 << bits) / 2) as f32;
        for (a, b) in out.iter().zip(&sig) {
            prop_assert!((a.re - b.re).abs() <= max_err * 1.5 + 1e-6,
                "re err {} > {}", (a.re - b.re).abs(), max_err);
        }
    }
}

proptest! {
    // Backhaul wire-format invariants on arbitrary segments.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shipped_segments_roundtrip_arbitrary_content(
        res in proptest::collection::vec(-3.0f32..3.0, 0..600),
        bits in 1u32..17,
        block_exp in 0u32..9,
        seq in any::<u64>(),
        start in 0usize..1_000_000,
    ) {
        let block_len = 1usize << block_exp;
        let sig: Vec<Cf32> = res.iter().map(|&r| Cf32::new(r, r * -0.3 + 0.1)).collect();
        let shipped = ShippedSegment::pack(seq, start, &sig, bits, block_len);
        prop_assert_eq!(shipped.seq, seq);
        prop_assert_eq!(shipped.start, start);
        let out = shipped.unpack();
        prop_assert_eq!(out.len(), sig.len());
        // Error bound of block floating point at `bits`.
        let max_err = 3.0 / ((1u32 << bits) / 2).max(1) as f32 + 1e-6;
        for (a, b) in out.iter().zip(&sig) {
            prop_assert!((a.re - b.re).abs() <= max_err * 1.5);
            prop_assert!((a.im - b.im).abs() <= max_err * 1.5);
        }
        // Wire accounting covers payload plus headers.
        prop_assert!(shipped.wire_bytes() > shipped.compressed.data.len());
    }

    #[test]
    fn corrupted_segments_decompress_to_the_declared_length(
        res in proptest::collection::vec(-2.0f32..2.0, 1..400),
        bits in 1u32..17,
        flips in proptest::collection::vec(any::<u8>(), 1..16),
        drop_tail in 0usize..64,
    ) {
        let sig: Vec<Cf32> = res.iter().map(|&r| Cf32::new(r, -r)).collect();
        let mut c = compress(&sig, bits, 64);
        // Corrupt the code stream: XOR bytes, then truncate.
        for (i, f) in flips.iter().enumerate() {
            if !c.data.is_empty() {
                let at = (i * 31) % c.data.len();
                c.data[at] ^= f;
            }
        }
        let keep = c.data.len().saturating_sub(drop_tail);
        c.data.truncate(keep);
        // Decompression must neither panic nor change the sample count,
        // no matter what the bytes say.
        let out = decompress(&c);
        prop_assert_eq!(out.len(), sig.len());
    }

    #[test]
    fn hostile_scales_never_panic_decompression(
        res in proptest::collection::vec(-1.0f32..1.0, 1..200),
        scale_bits in any::<u32>(),
    ) {
        let sig: Vec<Cf32> = res.iter().map(|&r| Cf32::new(r, r * 0.5)).collect();
        let mut c = compress(&sig, 6, 32);
        // Reinterpreted garbage scales: NaN, Inf, denormals, negatives.
        for s in &mut c.scales {
            *s = f32::from_bits(scale_bits);
        }
        let out = decompress(&c);
        prop_assert_eq!(out.len(), sig.len());
    }

    #[test]
    fn empty_code_stream_reads_as_silence(
        len in 1usize..300,
        bits in 1u32..17,
    ) {
        // A segment whose data vanished in transit decodes to `len`
        // zero-ish samples, not a panic.
        let c = CompressedSegment {
            bits,
            scales: vec![1.0; len.div_ceil(32)],
            block_len: 32,
            data: Vec::new(),
            len,
        };
        let out = decompress(&c);
        prop_assert_eq!(out.len(), len);
    }
}

proptest! {
    // Versioned wire codec: framing, CRC and header validation must be
    // byte-exact on the happy path and reject — never panic on — any
    // single-bit corruption, truncation or padding.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wire_encoding_roundtrips_byte_exact(
        res in proptest::collection::vec(-3.0f32..3.0, 0..400),
        bits in 1u32..17,
        block_exp in 0u32..9,
        seq in any::<u64>(),
        start in 0usize..1_000_000,
    ) {
        let sig: Vec<Cf32> = res.iter().map(|&r| Cf32::new(r, r * 0.4 - 0.2)).collect();
        let seg = ShippedSegment::pack(seq, start, &sig, bits, 1usize << block_exp);
        let wire = encode_segment(&seg);
        let back = decode_segment(&wire).expect("clean datagram must decode");
        prop_assert_eq!(&back, &seg);
        // Determinism: re-encoding the decoded segment is the identity
        // on bytes, so retransmissions are bit-identical.
        prop_assert_eq!(encode_segment(&back), wire);
    }

    #[test]
    fn any_single_bit_flip_is_rejected(
        res in proptest::collection::vec(-2.0f32..2.0, 1..200),
        seq in any::<u64>(),
        flip in any::<usize>(),
    ) {
        let sig: Vec<Cf32> = res.iter().map(|&r| Cf32::new(r, -r)).collect();
        let mut wire = encode_segment(&ShippedSegment::pack(seq, 0, &sig, 8, 64));
        let bit = flip % (wire.len() * 8);
        wire[bit / 8] ^= 1 << (bit % 8);
        // CRC32 has Hamming distance ≥ 4 at these datagram sizes, and
        // header fields are cross-checked: one flipped bit can never
        // slip through, and must never panic the decoder.
        prop_assert!(decode_segment(&wire).is_err());
    }

    #[test]
    fn truncated_or_padded_datagrams_are_rejected(
        res in proptest::collection::vec(-2.0f32..2.0, 1..200),
        cut in 1usize..64,
        pad in 1usize..16,
    ) {
        let sig: Vec<Cf32> = res.iter().map(|&r| Cf32::new(r * 0.5, r)).collect();
        let wire = encode_segment(&ShippedSegment::pack(3, 9, &sig, 6, 32));
        let truncated = &wire[..wire.len().saturating_sub(cut)];
        prop_assert!(decode_segment(truncated).is_err());
        let mut padded = wire.clone();
        padded.extend(std::iter::repeat_n(0xA5u8, pad));
        prop_assert!(decode_segment(&padded).is_err());
    }

    #[test]
    fn acks_roundtrip_and_reject_any_bit_flip(
        gw in any::<u16>(),
        seq in any::<u64>(),
        flip in any::<usize>(),
    ) {
        let wire = encode_ack(GatewayId(gw), seq);
        prop_assert_eq!(decode_ack(&wire).expect("clean ack"), (GatewayId(gw), seq));
        let mut bad = wire.clone();
        let bit = flip % (bad.len() * 8);
        bad[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(decode_ack(&bad).is_err());
        // An ack is never a segment and vice versa.
        prop_assert!(decode_segment(&wire).is_err());
    }

    #[test]
    fn inconsistent_headers_fail_validation_but_decode_tolerantly(
        res in proptest::collection::vec(-1.0f32..1.0, 1..300),
        extra_scales in 1usize..8,
        shrink_data in 1usize..32,
    ) {
        // Regression for the decompress-trusts-its-header bug: a header
        // whose scale count or data length disagrees with `len` must be
        // an explicit decode error, while the tolerant path still
        // yields the declared sample count without panicking.
        let sig: Vec<Cf32> = res.iter().map(|&r| Cf32::new(r, r)).collect();
        let clean = compress(&sig, 8, 64);
        prop_assert!(validate_header(&clean).is_ok());

        let mut more_scales = clean.clone();
        more_scales.scales.extend(std::iter::repeat_n(1.0f32, extra_scales));
        prop_assert!(validate_header(&more_scales).is_err());
        prop_assert!(try_decompress(&more_scales).is_err());
        prop_assert_eq!(decompress(&more_scales).len(), sig.len());

        let mut short_data = clean.clone();
        let keep = short_data.data.len().saturating_sub(shrink_data);
        short_data.data.truncate(keep);
        prop_assert!(validate_header(&short_data).is_err());
        prop_assert!(try_decompress(&short_data).is_err());
        prop_assert_eq!(decompress(&short_data).len(), sig.len());

        let mut bad_bits = clean;
        bad_bits.bits = 0;
        prop_assert!(validate_header(&bad_bits).is_err());
        prop_assert_eq!(decompress(&bad_bits).len(), sig.len());
    }
}

proptest! {
    // Full modulate->demodulate across technologies: the costliest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn lora_roundtrips_arbitrary_payloads(
        payload in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let reg = Registry::prototype();
        let t = reg.get(TechId::LoRa).unwrap();
        let frame = t.demodulate(&t.modulate(&payload, FS), FS).unwrap();
        prop_assert_eq!(frame.payload, payload);
    }

    #[test]
    fn xbee_roundtrips_arbitrary_payloads(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let reg = Registry::prototype();
        let t = reg.get(TechId::XBee).unwrap();
        let frame = t.demodulate(&t.modulate(&payload, FS), FS).unwrap();
        prop_assert_eq!(frame.payload, payload);
    }

    #[test]
    fn zwave_roundtrips_arbitrary_payloads(
        payload in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let reg = Registry::prototype();
        let t = reg.get(TechId::ZWave).unwrap();
        let frame = t.demodulate(&t.modulate(&payload, FS), FS).unwrap();
        prop_assert_eq!(frame.payload, payload);
    }

    #[test]
    fn dsss_roundtrips_arbitrary_payloads(
        payload in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let reg = Registry::extended();
        let t = reg.get(TechId::OqpskDsss).unwrap();
        let frame = t.demodulate(&t.modulate(&payload, FS), FS).unwrap();
        prop_assert_eq!(frame.payload, payload);
    }

    #[test]
    fn sigfox_roundtrips_arbitrary_payloads(
        payload in proptest::collection::vec(any::<u8>(), 0..12),
    ) {
        let reg = Registry::extended();
        let t = reg.get(TechId::SigFox).unwrap();
        let sig = t.modulate(&payload, 100_000.0);
        let frame = t.demodulate(&sig, 100_000.0).unwrap();
        prop_assert_eq!(frame.payload, payload);
    }
}
