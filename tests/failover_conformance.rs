//! Failover conformance: a fleet that loses a gateway mid-stream must
//! keep its promises to the survivors. The keystone invariant:
//!
//! > For every gateway count, crash point, restart policy, and loss
//! > rate, every frame heard by a surviving session is delivered
//! > exactly once, in capture order, without waiting for teardown —
//! > and the crash is fully accounted:
//! > `Σ per_gateway_decoded == fleet_delivered + dedup_suppressed +
//! > crash_lost_frames + quarantined_frames`.
//!
//! The matrix injects a crash into session 0 (wire gateway 1) at a
//! configured segment index, with and without restart, over clean and
//! lossy links. Dead sessions must be evicted by the liveness reaper —
//! finalizing their merge watermark so capture-order release resumes —
//! and restarted sessions re-register under a bumped epoch whose
//! segments are distinguishable in the trace (`check_epoch_terminals`).
//!
//! Every cell runs under a hard wall-clock deadline: a hung fleet is
//! itself a conformance failure.
//!
//! Fault patterns are seeded (override with `GALIOT_FAULT_SEED`; CI
//! pins and sweeps it) and scenario captures route through
//! `GALIOT_TEST_SEED` — see EXPERIMENTS.md.

use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use galiot::channel::scenario_seed;
use galiot::cloud::SessionInfo;
use galiot::core::metrics::Metrics;
use galiot::core::PipelineFrame;
use galiot::dsp::spectral::Band;
use galiot::phy::common::KillRecipe;
use galiot::phy::registry::TechHandle;
use galiot::phy::{ModClass, PhyError};
use galiot::prelude::*;
use galiot::trace::verify::{
    check_epoch_terminals, check_gateway_terminals, check_nesting, check_no_drops,
};
use galiot::trace::{Trace, TraceSession};
use rand::rngs::StdRng;
use rand::SeedableRng;

const FS: f64 = 1_000_000.0;

/// Wire id of the session the matrix crashes (session index 0).
const CRASHED_GW: u16 = 1;

/// Liveness horizon for every cell: small enough that the survivors'
/// own traffic after an early crash crosses it, large enough that a
/// healthy session's gaps (the other sessions' interleaved clock
/// events) never do.
const HORIZON: u64 = 12;

/// Hard per-cell wall-clock budget. A stalled release gate or a
/// deadlocked teardown trips this rather than hanging the suite.
const CELL_DEADLINE: Duration = Duration::from_secs(180);

/// Serializes the suite: every test here runs a full multi-gateway
/// fleet (channelizer + mux + decode pool + merge, all CPU-bound) and
/// two of them record a process-global [`TraceSession`]. On a small
/// box, letting them contend turns the wall-clock budgets above into
/// lottery tickets — the cells are timing assertions, so they run one
/// at a time.
static SUITE: Mutex<()> = Mutex::new(());

fn suite_lock() -> MutexGuard<'static, ()> {
    SUITE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn fault_seed() -> u64 {
    galiot::channel::fault_seed(0xF1EE7)
}

/// A frame reduced to its conformance identity.
type FrameId = (TechId, Vec<u8>, usize);

fn frame_ids(frames: &[PipelineFrame]) -> Vec<FrameId> {
    frames
        .iter()
        .map(|f| (f.frame.tech, f.frame.payload.clone(), f.frame.start))
        .collect()
}

const START_TOLERANCE: usize = 32;

fn assert_same_frames(fleet: &[FrameId], batch: &[FrameId], ctx: &str) {
    assert_eq!(
        fleet.len(),
        batch.len(),
        "{ctx}: frame count diverged\n fleet: {fleet:?}\n batch: {batch:?}"
    );
    let mut unmatched: Vec<&FrameId> = batch.iter().collect();
    for f in fleet {
        let pos = unmatched
            .iter()
            .position(|b| b.0 == f.0 && b.1 == f.1 && b.2.abs_diff(f.2) <= START_TOLERANCE);
        match pos {
            Some(i) => {
                unmatched.remove(i);
            }
            None => panic!("{ctx}: fleet frame {f:?} has no batch counterpart in {unmatched:?}"),
        }
    }
}

/// Conformance-grade transport (cf. `fleet_conformance.rs`): the full
/// impairment mix at the given loss rate, ARQ generous enough to
/// always win, degradation ladder disabled.
fn repairable_transport(loss: f64, seed: u64) -> TransportConfig {
    let faults = LinkFaults {
        loss,
        corrupt: 0.02,
        duplicate: 0.05,
        reorder: 0.05,
        jitter_depth: 3,
        seed,
    };
    let mut t = TransportConfig::over_faulty_link(faults);
    t.arq.max_retries = 12;
    t.arq.base_timeout_s = 0.001;
    t.send_queue_cap = 1024;
    t.degrade_hwm = 1 << 20;
    t
}

/// Eight well-separated packets of two technologies: one detected
/// segment per packet per session, so crash points index cleanly into
/// each session's segment stream. Longer and denser than the
/// `fleet_conformance.rs` capture on purpose: the liveness reaper
/// measures silence in fleet clock events, so proving mid-stream
/// eviction needs enough survivor traffic *after* the crash to cross
/// the horizon while the capture is still flowing.
fn fleet_capture() -> Vec<Cf32> {
    let mut rng = StdRng::seed_from_u64(scenario_seed(61));
    let registry = Registry::prototype();
    let zwave = registry.get(TechId::ZWave).unwrap().clone();
    let xbee = registry.get(TechId::XBee).unwrap().clone();
    let events: Vec<TxEvent> = (0..8)
        .map(|i| {
            let tech = if i % 2 == 0 { &zwave } else { &xbee };
            TxEvent::new(
                tech.clone(),
                vec![0x61 + i; 6],
                120_000 + i as usize * 300_000,
            )
        })
        .collect();
    let np = snr_to_noise_power(20.0, 0.0);
    compose(&events, 2_400_000, FS, np, &mut rng).samples
}

/// The single-gateway lossless reference: the batch pipeline on the
/// same capture.
fn batch_reference(samples: &[Cf32], registry: &Registry) -> Vec<FrameId> {
    let mut base = GaliotConfig::prototype();
    base.edge_decoding = false;
    let batch = frame_ids(
        &Galiot::new(base, registry.clone())
            .process_capture(samples)
            .frames,
    );
    assert!(
        !batch.is_empty(),
        "batch recovered nothing — scenario is vacuous"
    );
    batch
}

/// One cell of the failover matrix.
#[derive(Clone, Copy)]
struct Cell {
    gateways: usize,
    /// Segment index at which session 0 crashes (it dies *before*
    /// emitting this segment).
    crash_after: u64,
    restart: bool,
    loss: f64,
    /// The early-dead 4-gateway cells additionally prove the reaper
    /// un-stalls release *before* teardown: most of the batch must
    /// arrive on the live frame channel prior to `finish()`.
    expect_unstall: bool,
    label: &'static str,
}

/// Everything one fleet run produced, captured inside the watchdog.
struct CellOutcome {
    frames: Vec<PipelineFrame>,
    pre_finish: usize,
    sessions: Vec<SessionInfo>,
    trace: Trace,
    metrics: Metrics,
}

/// Runs `f` on its own thread and panics if it misses the deadline —
/// a hung fleet must fail the cell, not the whole suite's patience.
fn run_with_deadline<T: Send + 'static>(ctx: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(CELL_DEADLINE) {
        Ok(v) => {
            let _ = handle.join();
            v
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Err(panic) => std::panic::resume_unwind(panic),
            Ok(()) => unreachable!("cell thread exited without sending"),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{ctx}: fleet run exceeded the {CELL_DEADLINE:?} deadline — failover stalled")
        }
    }
}

/// One traced fleet pass with the cell's crash injected. When the cell
/// expects mid-stream un-stalling, frames are drained from the live
/// channel (with a generous polling budget) *before* `finish()` so a
/// stalled release gate is observable.
fn run_cell(cell: Cell, batch_len: usize) -> CellOutcome {
    let samples = fleet_capture();
    run_with_deadline(cell.label, move || {
        let mut config = GaliotConfig::prototype()
            .with_gateways(cell.gateways)
            .with_cloud_workers(4)
            .with_crash(0, cell.crash_after, cell.restart)
            .with_liveness_horizon(HORIZON);
        config.edge_decoding = false;
        if cell.loss > 0.0 {
            let seed = fault_seed() ^ (cell.loss * 1000.0) as u64 ^ ((cell.gateways as u64) << 32);
            config = config.with_transport(repairable_transport(cell.loss, seed));
        }
        let session = TraceSession::start();
        let fleet = FleetGaliot::start(config, Registry::prototype());
        let metrics = fleet.metrics().clone();
        for c in samples.chunks(65_536) {
            fleet.push_chunk(c.to_vec());
        }
        let mut frames: Vec<PipelineFrame> = Vec::new();
        if cell.expect_unstall {
            // The capture's tail (up to one flush window) legitimately
            // stays buffered until teardown, so only the front of the
            // batch can release mid-stream — but a fleet stalled on
            // the dead session's watermark releases *nothing*.
            let budget = Instant::now() + Duration::from_secs(60);
            while frames.len() < batch_len / 2 && Instant::now() < budget {
                if let Ok(f) = fleet.frames().recv_timeout(Duration::from_millis(100)) {
                    frames.push(f);
                }
            }
        }
        let pre_finish = frames.len();
        let sessions = fleet.sessions();
        frames.extend(fleet.finish());
        let trace = session.finish();
        CellOutcome {
            frames,
            pre_finish,
            sessions,
            trace,
            metrics: metrics.snapshot(),
        }
    })
}

/// The full failover contract for one cell.
fn assert_failover_cell(out: &CellOutcome, cell: Cell, batch: &[FrameId]) {
    let ctx = cell.label;
    let m = &out.metrics;

    // Keystone: survivors cover the whole capture, so the delivered
    // set is still exactly the single-gateway lossless batch, in
    // capture order, despite the crash.
    let delivered = frame_ids(&out.frames);
    assert_same_frames(&delivered, batch, ctx);
    let starts: Vec<usize> = delivered.iter().map(|(_, _, s)| *s).collect();
    assert!(
        starts.windows(2).all(|w| w[1] + START_TOLERANCE >= w[0]),
        "{ctx}: frames out of capture order: {starts:?}"
    );

    // The crash fired exactly once, and restart policy was honoured.
    assert_eq!(m.sessions_crashed, 1, "{ctx}: injected crash missed: {m:?}");
    assert_eq!(
        m.sessions_restarted, cell.restart as usize,
        "{ctx}: restart accounting: {m:?}"
    );

    // Closed loss accounting: every frame decoded anywhere was
    // delivered, suppressed as a duplicate, charged to the crash, or
    // quarantined (no cell here injects decode faults, so the last
    // term must stay zero — asserted below — but the identity is the
    // full four-way fleet invariant).
    let offered: usize = m.per_gateway_decoded.values().sum();
    assert_eq!(
        offered,
        m.fleet_delivered + m.dedup_suppressed + m.crash_lost_frames + m.quarantined_frames,
        "{ctx}: fleet decode accounting leaks: {m:?}"
    );
    assert_eq!(
        m.quarantined_frames, 0,
        "{ctx}: quarantine fired without injected decode faults: {m:?}"
    );
    assert_eq!(
        m.fleet_delivered,
        out.frames.len(),
        "{ctx}: fleet_delivered vs delivered frames: {m:?}"
    );
    // Each packet still had one copy per fully-surviving session to
    // choose from.
    assert!(
        m.dedup_suppressed >= cell.gateways.saturating_sub(2) * batch.len(),
        "{ctx}: fewer duplicates than the survivors imply: {m:?}"
    );
    assert_eq!(
        m.per_gateway_segments.len(),
        cell.gateways,
        "{ctx}: sessions missing from ingest accounting: {m:?}"
    );

    // Mid-stream un-stall proof: the reaper finalized the dead lane's
    // watermark while the capture was still flowing, so all but the
    // final packet released *before* teardown.
    if cell.expect_unstall {
        assert!(
            out.pre_finish >= batch.len() / 2,
            "{ctx}: only {} of {} frames released before finish — \
             release gate stayed stalled on the dead session",
            out.pre_finish,
            batch.len()
        );
    }

    // Registry view: a crashed-unrestarted session the reaper evicted
    // is marked dead; a restarted one is alive again.
    let crashed = out
        .sessions
        .iter()
        .find(|s| s.gateway == GatewayId(CRASHED_GW))
        .unwrap_or_else(|| panic!("{ctx}: crashed session missing from registry"));
    if cell.restart {
        assert!(!crashed.dead, "{ctx}: restarted session left for dead");
    }
    if cell.expect_unstall {
        assert!(
            crashed.dead,
            "{ctx}: reaper never declared the session dead"
        );
    }

    // The gateway-tagged trace reconciles with the metrics: every
    // shipped segment reached exactly one terminal, and losses split
    // between the ARQ and the crash fence.
    check_no_drops(&out.trace).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    check_nesting(&out.trace).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    let by_gw = check_gateway_terminals(&out.trace).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    assert_eq!(
        by_gw.len(),
        cell.gateways,
        "{ctx}: trace sessions: {by_gw:?}"
    );
    let pool: usize = m.per_worker_segments.values().sum();
    let shipped: u64 = by_gw.values().map(|a| a.shipped).sum();
    let decoded: u64 = by_gw.values().map(|a| a.decoded).sum();
    let lost: u64 = by_gw.values().map(|a| a.lost).sum();
    assert_eq!(
        shipped, m.shipped_segments as u64,
        "{ctx}: trace vs shipped: {m:?}"
    );
    assert_eq!(decoded, pool as u64, "{ctx}: trace vs pool decodes: {m:?}");
    assert!(
        lost >= m.arq_lost as u64 && lost <= (m.arq_lost + m.crash_lost_segments) as u64,
        "{ctx}: trace lost terminals ({lost}) outside arq_lost + crash fence: {m:?}"
    );
    for (gw, acc) in &by_gw {
        assert_eq!(
            acc.decoded,
            *m.per_gateway_segments.get(gw).unwrap_or(&0) as u64,
            "{ctx}: gw{gw} trace decodes vs mux admissions: {by_gw:?} {m:?}"
        );
    }

    // Epoch accounting: a restarted session ships under a bumped
    // epoch; without restart only epoch 0 ever reaches the wire.
    let by_life = check_epoch_terminals(&out.trace).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    let epochs: Vec<u64> = by_life
        .keys()
        .filter(|(gw, _)| *gw == CRASHED_GW)
        .map(|(_, e)| *e)
        .collect();
    if cell.restart {
        assert_eq!(
            epochs,
            vec![0, 1],
            "{ctx}: restarted session should ship under epochs 0 and 1: {by_life:?}"
        );
        let reborn = &by_life[&(CRASHED_GW, 1)];
        assert!(
            reborn.shipped > 0,
            "{ctx}: restarted epoch shipped nothing: {by_life:?}"
        );
    } else {
        assert_eq!(
            epochs,
            vec![0],
            "{ctx}: unrestarted session leaked a bumped epoch: {by_life:?}"
        );
    }
}

/// The capture must give each session at least four detected segments,
/// or the matrix's crash points (1, 2, 3) could silently never fire.
/// (`assert_failover_cell` also checks `sessions_crashed == 1`, but
/// this pins the *reason* a future capture tweak breaks the matrix.)
#[test]
fn capture_supports_the_crash_points() {
    let _serial = suite_lock();
    let samples = fleet_capture();
    let mut config = GaliotConfig::prototype().with_gateways(1);
    config.edge_decoding = false;
    let fleet = FleetGaliot::start(config, Registry::prototype());
    let metrics = fleet.metrics().clone();
    for c in samples.chunks(65_536) {
        fleet.push_chunk(c.to_vec());
    }
    let _ = fleet.finish();
    let m = metrics.snapshot();
    let per_session = *m.per_gateway_segments.get(&1).unwrap_or(&0);
    assert!(
        per_session >= 4,
        "capture yields only {per_session} segments per session; \
         the crash-point matrix needs at least 4: {m:?}"
    );
}

/// The keystone matrix: gateways × crash point × restart policy ×
/// loss. Session 0 dies early (before segment 1), mid-stream (before
/// segment 2), or while the ARQ is still repairing earlier segments
/// (before segment 3, lossy link).
#[test]
fn fleet_survives_the_crash_matrix() {
    let _serial = suite_lock();
    let samples = fleet_capture();
    let registry = Registry::prototype();
    let batch = batch_reference(&samples, &registry);

    #[rustfmt::skip]
    let cells = [
        Cell { gateways: 4, crash_after: 1, restart: false, loss: 0.00, expect_unstall: true,  label: "early-dead" },
        Cell { gateways: 4, crash_after: 1, restart: false, loss: 0.01, expect_unstall: true,  label: "early-dead-lossy" },
        Cell { gateways: 2, crash_after: 1, restart: false, loss: 0.00, expect_unstall: false, label: "early-dead-2gw" },
        Cell { gateways: 2, crash_after: 1, restart: false, loss: 0.01, expect_unstall: false, label: "early-dead-2gw-lossy" },
        Cell { gateways: 4, crash_after: 2, restart: false, loss: 0.00, expect_unstall: false, label: "mid-dead" },
        Cell { gateways: 4, crash_after: 2, restart: false, loss: 0.01, expect_unstall: false, label: "mid-dead-lossy" },
        Cell { gateways: 4, crash_after: 3, restart: false, loss: 0.01, expect_unstall: false, label: "arq-dead" },
        Cell { gateways: 4, crash_after: 1, restart: true,  loss: 0.00, expect_unstall: false, label: "early-restart" },
        Cell { gateways: 4, crash_after: 1, restart: true,  loss: 0.01, expect_unstall: false, label: "early-restart-lossy" },
        Cell { gateways: 2, crash_after: 1, restart: true,  loss: 0.00, expect_unstall: false, label: "early-restart-2gw" },
        Cell { gateways: 4, crash_after: 2, restart: true,  loss: 0.01, expect_unstall: false, label: "mid-restart-lossy" },
        // Restart cells crash no later than segment 2 so the reborn
        // epoch still has air left to hear: the crash forfeits the
        // buffered-unflushed window, and a crash at the final segment
        // would leave the new epoch nothing to ship.
        Cell { gateways: 2, crash_after: 2, restart: true,  loss: 0.01, expect_unstall: false, label: "arq-restart-2gw" },
    ];
    for cell in cells {
        let out = run_cell(cell, batch.len());
        assert_failover_cell(&out, cell, &batch);
    }
}

/// On the air this is the wrapped PHY (same preamble, same modulator,
/// so detection and extraction engage normally), but its demodulator
/// panics inside the cloud worker — the "poisoned segment" of the
/// worker-pool failure model (cf. `failure_injection.rs`).
struct PanickingPhy(TechHandle);

impl Technology for PanickingPhy {
    fn id(&self) -> TechId {
        self.0.id()
    }
    fn modulation(&self) -> ModClass {
        self.0.modulation()
    }
    fn center_offset_hz(&self) -> f64 {
        self.0.center_offset_hz()
    }
    fn occupied_band(&self) -> Band {
        self.0.occupied_band()
    }
    fn bitrate(&self) -> f64 {
        self.0.bitrate()
    }
    fn preamble_waveform(&self, fs: f64) -> Vec<Cf32> {
        self.0.preamble_waveform(fs)
    }
    fn modulate(&self, payload: &[u8], fs: f64) -> Vec<Cf32> {
        self.0.modulate(payload, fs)
    }
    fn demodulate(&self, _capture: &[Cf32], _fs: f64) -> Result<DecodedFrame, PhyError> {
        panic!("injected demodulator fault");
    }
    fn max_frame_samples(&self, fs: f64) -> usize {
        self.0.max_frame_samples(fs)
    }
    fn max_payload_len(&self) -> usize {
        self.0.max_payload_len()
    }
    fn preamble_description(&self) -> &'static str {
        self.0.preamble_description()
    }
    fn kill_recipe(&self, fs: f64) -> KillRecipe {
        self.0.kill_recipe(fs)
    }
}

/// Satellite regression: every poisoned decode must return its
/// fairness credit. Each session ships more segments than its pool
/// quota (8) and every one of them detonates inside a worker, on
/// every attempt of the retry ladder — so each shipped segment runs
/// the full `1 + decode_retries` attempts and is then quarantined,
/// which is where the credit comes back. A single leaked credit per
/// exhausted segment would exhaust the quota and wedge the mux —
/// tripping the cell deadline instead of finishing.
#[test]
fn poisoned_decodes_do_not_leak_fairness_credits() {
    let _serial = suite_lock();
    let mut rng = StdRng::seed_from_u64(scenario_seed(62));
    let real = Registry::prototype();
    let xbee = real.get(TechId::XBee).unwrap().clone();
    let mut poisoned = Registry::new();
    poisoned.push(Arc::new(PanickingPhy(xbee.clone())) as TechHandle);

    // 12 packets per session > the quota of 8 in-flight credits.
    let events: Vec<TxEvent> = (0..12)
        .map(|i| {
            TxEvent::new(
                xbee.clone(),
                vec![i as u8; 5],
                60_000 + i as usize * 120_000,
            )
        })
        .collect();
    let np = snr_to_noise_power(18.0, 0.0);
    let samples = compose(&events, 1_600_000, FS, np, &mut rng).samples;

    let (frames, m) = run_with_deadline("poisoned-credits", move || {
        let mut config = GaliotConfig::prototype()
            .with_gateways(2)
            .with_cloud_workers(2);
        config.edge_decoding = false; // force every segment through the pool
        let fleet = FleetGaliot::start(config, poisoned);
        let metrics = fleet.metrics().clone();
        for c in samples.chunks(65_536) {
            fleet.push_chunk(c.to_vec());
        }
        (fleet.finish(), metrics.snapshot())
    });

    assert!(
        frames.is_empty(),
        "poisoned decode produced frames: {frames:?}"
    );
    // Both sessions pushed past the quota, so a per-blast leak could
    // not have survived to completion.
    for (gw, n) in &m.per_gateway_segments {
        assert!(
            *n > 8,
            "gw{gw} shipped only {n} segments — scenario no longer \
             exceeds the fairness quota: {m:?}"
        );
    }
    assert!(m.decode_poisoned >= 2 * 9, "too few blasts: {m:?}");
    // Every attempt panicked, so each shipped segment walked the whole
    // ladder: `1 + decode_retries` recorded pool attempts, the last
    // two of which were re-dispatches, ending in quarantine (which is
    // what returned the credit).
    let shipped: usize = m.per_gateway_segments.values().sum();
    let attempts = 1 + GaliotConfig::prototype().decode_retries;
    assert_eq!(
        m.per_worker_segments.values().sum::<usize>(),
        attempts * shipped,
        "pool attempts diverge from the retry ladder: {m:?}"
    );
    assert_eq!(
        m.decode_retried,
        (attempts - 1) * shipped,
        "re-dispatch accounting: {m:?}"
    );
    assert_eq!(
        m.decode_quarantined, shipped,
        "every exhausted segment must be quarantined: {m:?}"
    );
    assert_eq!(
        m.quarantine_records.len(),
        shipped,
        "dead-letter records diverge from quarantines: {m:?}"
    );
}

/// Satellite: the same failover cell under the virtual ARQ clock — a
/// crash during retransmission with zero wall-clock jitter in the
/// timeout schedule still converges and conforms.
#[test]
fn virtual_clock_failover_cell_conforms() {
    let _serial = suite_lock();
    let samples = fleet_capture();
    let registry = Registry::prototype();
    let batch = batch_reference(&samples, &registry);
    let cell = Cell {
        gateways: 4,
        crash_after: 2,
        restart: true,
        loss: 0.01,
        expect_unstall: false,
        label: "virtual-clock-restart",
    };
    let out = run_with_deadline(cell.label, {
        let samples = samples.clone();
        move || {
            let mut t = repairable_transport(cell.loss, fault_seed());
            t.arq.clock = ArqClock::deterministic();
            let mut config = GaliotConfig::prototype()
                .with_gateways(cell.gateways)
                .with_cloud_workers(4)
                .with_crash(0, cell.crash_after, cell.restart)
                .with_liveness_horizon(HORIZON)
                .with_transport(t);
            config.edge_decoding = false;
            let session = TraceSession::start();
            let fleet = FleetGaliot::start(config, Registry::prototype());
            let metrics = fleet.metrics().clone();
            for c in samples.chunks(65_536) {
                fleet.push_chunk(c.to_vec());
            }
            let sessions = fleet.sessions();
            let frames = fleet.finish();
            let trace = session.finish();
            CellOutcome {
                frames,
                pre_finish: 0,
                sessions,
                trace,
                metrics: metrics.snapshot(),
            }
        }
    });
    assert_failover_cell(&out, cell, &batch);
}
