//! Streaming ≡ batch conformance: the worker-pool streaming pipeline
//! must recover exactly the frame set of the batch pipeline — same
//! technologies, payloads and start offsets — for every worker count
//! and regardless of how the capture is chunked on the way in.
//!
//! This is the contract that makes the cloud tier elastically scalable
//! (the paper's Sec. 5 bet): adding workers may only change *when*
//! frames are decoded, never *what* is decoded or in what order it is
//! delivered.

use galiot::channel::{compose, forced_collision, scenario_seed, snr_to_noise_power, TxEvent};
use galiot::core::PipelineFrame;
use galiot::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FS: f64 = 1_000_000.0;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
/// Adversarial chunkings: sample-at-a-time, a tiny prime, and a
/// typical SDR USB transfer size.
const CHUNK_SIZES: [usize; 3] = [1, 7, 4096];

/// A frame reduced to its conformance identity.
type FrameId = (TechId, Vec<u8>, usize);

fn frame_ids(frames: &[PipelineFrame]) -> Vec<FrameId> {
    frames
        .iter()
        .map(|f| (f.frame.tech, f.frame.payload.clone(), f.frame.start))
        .collect()
}

fn run_batch(samples: &[Cf32], registry: &Registry) -> Vec<FrameId> {
    let report = Galiot::new(GaliotConfig::prototype(), registry.clone()).process_capture(samples);
    frame_ids(&report.frames)
}

fn run_streaming(
    samples: &[Cf32],
    registry: &Registry,
    workers: usize,
    chunk: usize,
) -> Vec<FrameId> {
    let sys = StreamingGaliot::start(
        GaliotConfig::prototype().with_cloud_workers(workers),
        registry.clone(),
    );
    for c in samples.chunks(chunk) {
        sys.push_chunk(c.to_vec());
    }
    frame_ids(&sys.finish())
}

/// Asserts the full workers × chunk-sizes matrix agrees with batch on
/// one capture, and that streaming delivery respects capture order.
/// Timing tolerance when matching streamed frames to batch frames.
///
/// The streaming gateway digitizes per flush window while batch
/// digitizes the whole capture, so auto-gain and 8-bit quantization
/// differ in the last bit — enough to move a demodulator's sync
/// estimate by a few samples (microseconds at 1 Msps) without changing
/// what was decoded. Payloads and technologies must still match
/// exactly, one to one.
const START_TOLERANCE: usize = 16;

/// 1:1-matches two frame sets: equal tech + payload, starts within
/// [`START_TOLERANCE`]. Panics with a diff on any unmatched frame.
fn assert_same_frames(streamed: &[FrameId], batch: &[FrameId], ctx: &str) {
    assert_eq!(
        streamed.len(),
        batch.len(),
        "{ctx}: frame count diverged\n streaming: {streamed:?}\n batch: {batch:?}"
    );
    let mut unmatched: Vec<&FrameId> = batch.iter().collect();
    for f in streamed {
        let pos = unmatched
            .iter()
            .position(|b| b.0 == f.0 && b.1 == f.1 && b.2.abs_diff(f.2) <= START_TOLERANCE);
        match pos {
            Some(i) => {
                unmatched.remove(i);
            }
            None => panic!("{ctx}: streamed frame {f:?} has no batch counterpart in {unmatched:?}"),
        }
    }
}

fn assert_conformance(samples: &[Cf32], registry: &Registry, label: &str) {
    let batch = run_batch(samples, registry);
    assert!(
        !batch.is_empty(),
        "{label}: batch recovered nothing — scenario is vacuous"
    );
    for workers in WORKER_COUNTS {
        for chunk in CHUNK_SIZES {
            let streamed = run_streaming(samples, registry, workers, chunk);
            // The ordering contract: streaming delivers in capture
            // order for any worker count (batch lists a collision
            // segment's frames in SIC power order instead).
            let starts: Vec<usize> = streamed.iter().map(|(_, _, s)| *s).collect();
            let mut sorted_starts = starts.clone();
            sorted_starts.sort_unstable();
            assert_eq!(
                starts, sorted_starts,
                "{label}: workers={workers} chunk={chunk}: frames out of capture order"
            );
            assert_same_frames(
                &streamed,
                &batch,
                &format!("{label}: workers={workers} chunk={chunk}"),
            );
        }
    }
}

/// Scenario 1: cross-technology collision with the power separation
/// Algorithm 1's SIC needs — the paper's headline case.
#[test]
fn conformance_on_two_tech_power_separated_collision() {
    let mut rng = StdRng::seed_from_u64(scenario_seed(40));
    let registry = Registry::prototype();
    let events = forced_collision(&registry, 10, &[0.0, 1.0], 20_000, 50_000, &mut rng);
    let np = snr_to_noise_power(25.0, 0.0);
    let cap = compose(&events, 700_000, FS, np, &mut rng);
    assert!(cap.has_collision());
    assert_conformance(&cap.samples, &registry, "two-tech collision");
}

/// Scenario 2: a collision cluster *and* clean packets in one capture,
/// exercising the edge/cloud split and the ordering across both paths.
#[test]
fn conformance_on_mixed_edge_and_cloud_traffic() {
    let mut rng = StdRng::seed_from_u64(scenario_seed(41));
    let registry = Registry::prototype();
    let xbee = registry.get(TechId::XBee).unwrap().clone();
    let zwave = registry.get(TechId::ZWave).unwrap().clone();
    let lora = registry.get(TechId::LoRa).unwrap().clone();
    let mut events = forced_collision(&registry, 8, &[0.0, 1.0], 15_000, 400_000, &mut rng);
    events.insert(0, TxEvent::new(xbee, vec![0xA1; 6], 80_000));
    events.push(TxEvent::new(zwave, vec![0xB2; 6], 900_000));
    events.push(TxEvent::new(lora, vec![0xC3; 6], 1_250_000));
    let np = snr_to_noise_power(20.0, 0.0);
    let cap = compose(&events, 1_700_000, FS, np, &mut rng);
    assert!(cap.has_collision());
    assert_conformance(&cap.samples, &registry, "mixed edge/cloud traffic");
}

/// Scenario 3: two separate collision clusters far apart — multiple
/// shipped segments in flight at once, so reassembly actually has to
/// reorder across workers.
#[test]
fn conformance_on_repeated_collision_clusters() {
    let mut rng = StdRng::seed_from_u64(scenario_seed(42));
    let registry = Registry::prototype();
    let mut events = forced_collision(&registry, 8, &[0.0, 1.0], 18_000, 60_000, &mut rng);
    events.extend(forced_collision(
        &registry,
        8,
        &[1.0, 0.0],
        18_000,
        900_000,
        &mut rng,
    ));
    let np = snr_to_noise_power(25.0, 0.0);
    let cap = compose(&events, 1_600_000, FS, np, &mut rng);
    assert!(cap.has_collision());
    assert_conformance(&cap.samples, &registry, "repeated collision clusters");
}

/// The pool's observability contract: per-worker decode counts and the
/// queue high-water marks are populated when segments flow through the
/// cloud tier.
#[test]
fn pool_metrics_are_observable() {
    let mut rng = StdRng::seed_from_u64(scenario_seed(43));
    let registry = Registry::prototype();
    let zwave = registry.get(TechId::ZWave).unwrap().clone();
    let xbee = registry.get(TechId::XBee).unwrap().clone();
    let events: Vec<TxEvent> = (0..3)
        .flat_map(|i| {
            [
                TxEvent::new(
                    zwave.clone(),
                    vec![0x10 + i; 6],
                    80_000 + i as usize * 500_000,
                ),
                TxEvent::new(
                    xbee.clone(),
                    vec![0x20 + i; 6],
                    300_000 + i as usize * 500_000,
                ),
            ]
        })
        .collect();
    let np = snr_to_noise_power(18.0, 0.0);
    let cap = compose(&events, 1_800_000, FS, np, &mut rng);

    // Edge decoding off: every segment must cross the backhaul, so the
    // pool counters have to move.
    let mut config = GaliotConfig::prototype().with_cloud_workers(2);
    config.edge_decoding = false;
    let sys = StreamingGaliot::start(config, registry);
    let metrics = sys.metrics().clone();
    for c in cap.samples.chunks(4096) {
        sys.push_chunk(c.to_vec());
    }
    let frames = sys.finish();
    let m = metrics.snapshot();

    assert!(
        frames.len() >= 4,
        "expected most packets decoded, got {}",
        frames.len()
    );
    assert_eq!(m.cloud_workers, 2);
    assert!(m.shipped_segments > 0, "{m:?}");
    assert!(
        m.seg_queue_hwm > 0,
        "segment queue high-water mark never moved: {m:?}"
    );
    assert!(m.pool_decoded() > 0, "no per-worker decode counts: {m:?}");
    assert!(
        m.per_worker_segments.values().all(|&n| n > 0) || m.per_worker_segments.len() == 1,
        "a worker sat idle on a multi-segment run: {:?}",
        m.per_worker_segments
    );
    assert!(m.cloud_busy_ns > 0 && m.gateway_busy_ns > 0, "{m:?}");
    assert_eq!(m.decode_poisoned, 0);
}
