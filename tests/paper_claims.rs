//! Tests pinning the *qualitative claims* of the paper to the
//! reproduction — the shapes EXPERIMENTS.md reports, in miniature so
//! they run in CI.

use galiot::core::experiment::{detection_bin, throughput_bin, DetectionConfig};
use galiot::gateway::{EnergyDetector, MatchedFilterBank, PacketDetector, UniversalDetector};
use galiot::prelude::*;

const FS: f64 = 1_000_000.0;

#[test]
fn claim_universal_beats_energy_below_minus_10_db() {
    // Paper: "Our universal preamble detects 50.89% more packets
    // compared to energy detection at SNRs below -10dB."
    let reg = Registry::prototype();
    let cfg = DetectionConfig {
        trials: 10,
        ..Default::default()
    };
    let counts = detection_bin(&reg, -20.0, -10.0, &cfg, FS, 91);
    assert!(
        counts.universal > counts.energy,
        "universal {} vs energy {} of {}",
        counts.universal,
        counts.energy,
        counts.total
    );
    // The gap is substantial, not marginal.
    assert!(counts.universal >= counts.energy + counts.total / 4);
}

#[test]
fn claim_energy_detection_collapses_below_0_db() {
    // Paper: "At SNR below 0dB, there is a sharp drop in detection all
    // the way from a total of 84% to 0.04%."
    let reg = Registry::prototype();
    let cfg = DetectionConfig {
        trials: 10,
        ..Default::default()
    };
    let above = detection_bin(&reg, 10.0, 20.0, &cfg, FS, 92);
    let below = detection_bin(&reg, -10.0, -0.1, &cfg, FS, 93);
    let (e_above, ..) = above.ratios();
    let (e_below, ..) = below.ratios();
    assert!(e_above > 0.4, "energy above 0 dB: {e_above}");
    assert!(e_below < 0.1, "energy below 0 dB: {e_below}");
}

#[test]
fn claim_universal_tracks_the_optimal_detector() {
    // Paper: "universal preamble detection is as resilient to high
    // noise scenarios as the optimal scheme" (with a small drop).
    let reg = Registry::prototype();
    let cfg = DetectionConfig {
        trials: 10,
        ..Default::default()
    };
    let counts = detection_bin(&reg, -10.0, 0.0, &cfg, FS, 94);
    assert!(
        counts.universal * 10 >= counts.matched * 8,
        "universal {} vs optimal {}",
        counts.universal,
        counts.matched
    );
}

#[test]
fn claim_kill_filters_beat_sic_on_collisions() {
    // Paper: "Our collision decoding algorithm improves throughput by
    // 7.46 times as that provided by successive interference
    // cancellation" (we assert the direction and a material factor,
    // not the absolute number — see EXPERIMENTS.md).
    let reg = Registry::prototype();
    let p = throughput_bin(&reg, 5.0, 25.0, 6, FS, 95);
    assert!(p.galiot_bits > p.sic_bits, "{p:?}");
    assert!(p.gain() >= 1.5, "gain only {:.2}", p.gain());
}

#[test]
fn claim_universal_cost_is_independent_of_technology_count() {
    // Paper, Sec. 4: "This approach is hence independent of n."
    let three = UniversalDetector::new(&Registry::prototype(), FS, 0.0);
    let five = UniversalDetector::new(&Registry::extended(), FS, 0.0);
    assert_eq!(
        three.complexity_per_sample(FS),
        five.complexity_per_sample(FS),
    );
    // ...while the optimal matched bank scales with n.
    let bank3 = MatchedFilterBank::new(Registry::prototype(), 0.0);
    let bank5 = MatchedFilterBank::new(Registry::extended(), 0.0);
    assert!(bank5.complexity_per_sample(FS) > bank3.complexity_per_sample(FS));
    // ...and energy detection is trivially cheap but (per the other
    // tests) blind below the noise floor.
    assert!(EnergyDetector::default().complexity_per_sample(FS) < 10.0);
}

#[test]
fn claim_gateway_is_cheap_because_it_does_not_classify() {
    // Paper, Sec. 4: the gateway "does not need to learn which radio
    // technologies exist within the collision" — universal detections
    // carry no technology attribution.
    let reg = Registry::prototype();
    let det = UniversalDetector::auto(&reg, FS);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
        galiot::channel::scenario_seed(96),
    );
    let lora = reg.get(TechId::LoRa).unwrap().clone();
    let ev = galiot::channel::TxEvent::new(lora, vec![1; 8], 50_000);
    let np = galiot::channel::snr_to_noise_power(10.0, 0.0);
    let cap = galiot::channel::compose(&[ev], 400_000, FS, np, &mut rng);
    let detections = det.detect(&cap.samples, FS);
    assert!(!detections.is_empty());
    assert!(detections.iter().all(|d| d.tech.is_none()));
}
