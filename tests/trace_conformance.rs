//! Trace conformance: the observability layer as a test oracle.
//!
//! A drained trace is not decoration — it must *agree with the
//! pipeline's own accounting*, exactly:
//!
//! * every `ship` event reaches a `decode`/`shed`/`lost` terminal
//!   (no segment is silently swallowed), and the per-kind totals equal
//!   the `Metrics` counters;
//! * per-thread span nesting is well-formed (a SIC round sits entirely
//!   inside its worker-decode span; guards never straddle stages);
//! * the per-stage latency histograms reconcile with the counters:
//!   `worker_decode.count == Σ per_worker_segments`,
//!   `sic_round.count == sic_rounds`,
//!   `kill_filter.count == kill_applications`, and so on — at every
//!   worker count;
//! * no ring overflowed, so none of the above is vacuous.
//!
//! Every pipeline run in this file happens *inside* a trace session.
//! Sessions serialize process-wide, which also keeps concurrently
//! scheduled tests from bleeding spans into each other's traces.

use galiot::core::metrics::Metrics;
use galiot::prelude::*;
use galiot::trace::verify::{check_nesting, check_no_drops, check_ship_terminals, ShipAccounting};
use galiot::trace::{EventKind, Stage, Trace, TraceSession};
use rand::rngs::StdRng;
use rand::SeedableRng;

const FS: f64 = 1_000_000.0;
const WORKER_COUNTS: [usize; 2] = [1, 4];

/// Scenario seed, overridable via `GALIOT_TEST_SEED` (see
/// EXPERIMENTS.md). The override is XOR-combined with each scenario's
/// default so distinct scenarios stay distinct under a sweep.
fn seed(default: u64) -> u64 {
    galiot::channel::scenario_seed(default)
}

/// A collision-bearing capture: three technologies, two colliding, so
/// the cloud tier (SIC + kill filters) is actually exercised.
fn collision_capture(s: u64) -> Vec<Cf32> {
    let mut rng = StdRng::seed_from_u64(s);
    let registry = Registry::prototype();
    let events = forced_collision(&registry, 10, &[0.0, 1.0], 20_000, 50_000, &mut rng);
    let np = snr_to_noise_power(25.0, 0.0);
    let cap = compose(&events, 700_000, FS, np, &mut rng);
    assert!(cap.has_collision());
    cap.samples
}

/// Runs one traced streaming pass and returns (trace, metrics).
fn traced_run(config: GaliotConfig, samples: &[Cf32]) -> (Trace, Metrics) {
    let session = TraceSession::start();
    let sys = StreamingGaliot::start(config, Registry::prototype());
    let metrics = sys.metrics().clone();
    for c in samples.chunks(65_536) {
        sys.push_chunk(c.to_vec());
    }
    let _frames = sys.finish();
    let trace = session.finish();
    (trace, metrics.snapshot())
}

/// The core reconciliation contract, shared by every scenario: the
/// trace's structural checks pass and its totals equal the metrics.
fn assert_reconciled(trace: &Trace, m: &Metrics, ctx: &str) -> ShipAccounting {
    check_no_drops(trace).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    check_nesting(trace).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    let acc = check_ship_terminals(trace).unwrap_or_else(|e| panic!("{ctx}: {e}"));

    let pool: usize = m.per_worker_segments.values().sum();
    assert_eq!(
        acc.shipped, m.shipped_segments as u64,
        "{ctx}: ship events vs shipped_segments: {acc:?} {m:?}"
    );
    assert_eq!(
        acc.decoded, pool as u64,
        "{ctx}: decode events vs pool segments: {acc:?} {m:?}"
    );
    assert_eq!(
        acc.shed, m.segments_shed as u64,
        "{ctx}: shed events vs segments_shed: {acc:?} {m:?}"
    );
    assert_eq!(
        acc.lost, m.arq_lost as u64,
        "{ctx}: lost events vs arq_lost: {acc:?} {m:?}"
    );

    // Histogram counts are the span counts — and both reconcile with
    // the pipeline's own counters.
    for stage in Stage::ALL {
        assert_eq!(
            trace.histogram(stage).count(),
            trace.span_count(stage),
            "{ctx}: {} histogram diverges from its span records",
            stage.name()
        );
    }
    assert_eq!(
        trace.histogram(Stage::WorkerDecode).count(),
        pool as u64,
        "{ctx}: worker_decode histogram vs per-worker segment counts"
    );
    assert_eq!(
        trace.histogram(Stage::SicRound).count(),
        m.sic_rounds,
        "{ctx}: sic_round histogram vs sic_rounds counter"
    );
    assert_eq!(
        trace.histogram(Stage::KillFilter).count(),
        m.kill_applications,
        "{ctx}: kill_filter histogram vs kill_applications counter"
    );
    acc
}

/// Direct (perfect-backhaul) shipping, across the worker matrix: every
/// shipped segment decodes, nothing is shed or lost, and every stage
/// histogram reconciles.
#[test]
fn direct_mode_trace_reconciles_with_metrics() {
    let samples = collision_capture(seed(40));
    for workers in WORKER_COUNTS {
        let ctx = format!("direct workers={workers}");
        let mut config = GaliotConfig::prototype().with_cloud_workers(workers);
        config.edge_decoding = false; // everything ships
        let (trace, m) = traced_run(config, &samples);

        assert!(m.shipped_segments > 0, "{ctx}: vacuous scenario");
        let acc = assert_reconciled(&trace, &m, &ctx);
        assert_eq!(acc.shed, 0, "{ctx}");
        assert_eq!(acc.lost, 0, "{ctx}");
        assert_eq!(acc.decoded, acc.shipped, "{ctx}: clean run must decode all");

        // Compression happens exactly once per shipped segment, and
        // reassembly advances exactly once per sequence number.
        assert_eq!(
            trace.histogram(Stage::Compress).count(),
            m.shipped_segments as u64,
            "{ctx}: compress histogram vs shipped_segments"
        );
        assert_eq!(
            trace.histogram(Stage::Reassembly).count(),
            m.shipped_segments as u64,
            "{ctx}: reassembly histogram vs shipped_segments"
        );
        // The gateway stages ran at all.
        for stage in [
            Stage::FrontendCapture,
            Stage::UniversalDetect,
            Stage::Extract,
        ] {
            assert!(
                trace.histogram(stage).count() > 0,
                "{ctx}: no {} spans recorded",
                stage.name()
            );
        }
        // SIC actually fired on a collision capture.
        assert!(m.sic_rounds > 0, "{ctx}: no SIC rounds on a collision");

        // The satellite integration: folding the trace into Metrics
        // carries the same counts.
        let mut folded = m.clone();
        folded.record_trace(&trace);
        assert_eq!(
            folded.stage_ns["worker_decode"].count(),
            trace.histogram(Stage::WorkerDecode).count()
        );
        assert!(folded.stats_json().contains("\"worker_decode\""));
    }
}

/// The ARQ transport over a clean wire: `arq_send` spans count initial
/// transmissions plus retransmissions, receiver spans cover every
/// delivered datagram, and the terminal accounting still closes.
#[test]
fn transport_mode_arq_spans_reconcile() {
    let samples = collision_capture(seed(41));
    for workers in WORKER_COUNTS {
        let ctx = format!("transport workers={workers}");
        let mut t = TransportConfig::over_faulty_link(LinkFaults::none());
        t.arq.base_timeout_s = 0.050; // no spurious timeouts on a clean wire
        let mut config = GaliotConfig::prototype()
            .with_cloud_workers(workers)
            .with_transport(t);
        config.edge_decoding = false;
        let (trace, m) = traced_run(config, &samples);

        assert!(m.shipped_segments > 0, "{ctx}: vacuous scenario");
        let acc = assert_reconciled(&trace, &m, &ctx);
        assert_eq!(acc.lost, 0, "{ctx}: clean wire lost a segment: {m:?}");
        assert_eq!(acc.shed, 0, "{ctx}: unexpected shedding: {m:?}");

        // Every non-shed shipped segment is sent once, plus any
        // retransmissions the ARQ performed.
        assert_eq!(
            trace.histogram(Stage::ArqSend).count(),
            (m.shipped_segments - m.segments_shed) as u64 + m.arq_retransmits as u64,
            "{ctx}: arq_send spans vs sends+retransmits: {m:?}"
        );
        // A clean wire delivers every uplink datagram to the receiver.
        assert_eq!(
            trace.histogram(Stage::ArqRecv).count(),
            trace.histogram(Stage::ArqSend).count(),
            "{ctx}: receiver attempts vs sender transmissions: {m:?}"
        );
    }
}

/// Under a saturated uplink the send queue sheds — and the shed
/// segments show up in the trace as `shed` terminals, not as silence.
#[test]
fn shed_segments_terminate_in_the_trace() {
    let mut rng = StdRng::seed_from_u64(seed(53));
    let registry = Registry::prototype();
    let zwave = registry.get(TechId::ZWave).unwrap().clone();
    let xbee = registry.get(TechId::XBee).unwrap().clone();
    let events: Vec<TxEvent> = (0..5)
        .flat_map(|i| {
            [
                TxEvent::new(
                    zwave.clone(),
                    vec![0x70 + i; 6],
                    60_000 + i as usize * 180_000,
                ),
                TxEvent::new(
                    xbee.clone(),
                    vec![0x80 + i; 6],
                    150_000 + i as usize * 180_000,
                ),
            ]
        })
        .collect();
    let np = snr_to_noise_power(20.0, 0.0);
    let cap = compose(&events, 1_100_000, FS, np, &mut rng);

    let mut config = GaliotConfig::prototype().with_cloud_workers(1);
    config.edge_decoding = false;
    config.emulate_backhaul = true;
    config.backhaul_bps = 1e6;
    config.backhaul_latency_s = 0.0;
    let mut t = TransportConfig::reliable();
    t.send_queue_cap = 2;
    t.degrade_hwm = 1;
    t.min_bits = 4;
    config = config.with_transport(t);

    let (trace, m) = traced_run(config, &cap.samples);
    let acc = assert_reconciled(&trace, &m, "shed");
    assert!(acc.shed > 0, "a saturated two-slot queue never shed: {m:?}");
    assert_eq!(
        acc.shipped,
        acc.decoded + acc.shed + acc.lost,
        "shed: {m:?}"
    );
}

/// With retries disabled over a heavily lossy wire, segments the ARQ
/// gives up on appear as `lost` terminals — exactly `arq_lost` many.
#[test]
fn lost_segments_terminate_in_the_trace() {
    let mut rng = StdRng::seed_from_u64(seed(52));
    let registry = Registry::prototype();
    let zwave = registry.get(TechId::ZWave).unwrap().clone();
    let events: Vec<TxEvent> = (0..6)
        .map(|i| {
            TxEvent::new(
                zwave.clone(),
                vec![0x60 + i; 6],
                120_000 + i as usize * 600_000,
            )
        })
        .collect();
    let np = snr_to_noise_power(20.0, 0.0);
    let cap = compose(&events, 3_800_000, FS, np, &mut rng);

    let mut t = TransportConfig::over_faulty_link(LinkFaults::lossy(0.35, seed(0xFA57)));
    t.ack_faults = LinkFaults::none();
    t.arq.max_retries = 0;
    t.arq.base_timeout_s = 0.050;
    let mut config = GaliotConfig::prototype()
        .with_cloud_workers(1)
        .with_transport(t);
    config.edge_decoding = false;

    let (trace, m) = traced_run(config, &cap.samples);
    let acc = assert_reconciled(&trace, &m, "lost");
    assert!(
        acc.lost > 0,
        "a 35% one-way link with zero retries should lose something: {m:?}"
    );
    // `>=` not `==`: under scheduler pressure an ack can arrive after
    // the zero-retry timeout already declared the segment lost, giving
    // that seq both a `lost` and a `decode` terminal. That duality is
    // the transport's documented behavior, not a trace defect.
    assert!(
        acc.decoded + acc.shed + acc.lost >= acc.shipped,
        "lost: {acc:?} {m:?}"
    );
}

/// A single segment's journey can be reconstructed from the trace by
/// its sequence number: shipped, decoded by a worker, reassembled — in
/// that order, with the worker-decode span between the two events.
#[test]
fn packet_journey_reconstructs_by_seq() {
    let samples = collision_capture(seed(42));
    let mut config = GaliotConfig::prototype().with_cloud_workers(4);
    config.edge_decoding = false;
    let (trace, m) = traced_run(config, &samples);
    assert!(m.shipped_segments > 0, "vacuous scenario");

    // Follow the first shipped segment.
    let seq = trace
        .events
        .iter()
        .find(|e| e.kind == EventKind::Ship)
        .expect("a ship event")
        .seq;
    let events = trace.events_for_seq(seq);
    let ship_t = events
        .iter()
        .find(|e| e.kind == EventKind::Ship)
        .expect("ship event for seq")
        .t_ns;
    let decode_t = events
        .iter()
        .find(|e| e.kind == EventKind::Decode)
        .expect("decode terminal for seq")
        .t_ns;
    assert!(ship_t <= decode_t, "shipped after decoded?");

    let spans = trace.spans_for_seq(seq);
    let worker = spans
        .iter()
        .find(|s| s.stage == Stage::WorkerDecode)
        .expect("worker_decode span for seq");
    assert!(
        ship_t <= worker.start_ns && worker.start_ns + worker.dur_ns <= decode_t,
        "worker-decode span must sit between ship and decode marks"
    );
    assert!(
        spans.iter().any(|s| s.stage == Stage::Reassembly),
        "reassembly span for seq"
    );

    // The journey renders into the chrome trace too.
    let json = trace.chrome_trace_json();
    assert!(
        json.contains("\"worker_decode\""),
        "chrome trace names stages"
    );
    assert!(
        json.contains(&format!("\"seq\":{seq}")),
        "chrome trace carries seqs"
    );
}

/// A session only sees what ran inside it: records from earlier
/// sessions (every other test here) never leak into a fresh one.
/// (The disabled-path invisibility itself is covered by the trace
/// crate's own `disabled_recording_is_invisible` unit test.)
#[test]
fn sessions_are_isolated() {
    let trace = TraceSession::start().finish();
    assert_eq!(
        trace.spans.len(),
        0,
        "stale spans leaked: {:?}",
        trace.spans
    );
    assert_eq!(trace.events.len(), 0, "stale events leaked");
    assert!(trace.stage_histograms().all(|(_, h)| h.count() == 0));
}
