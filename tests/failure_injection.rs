//! Failure injection: hostile, malformed and degenerate inputs must
//! produce errors (or empty results), never panics or wrong frames.

use galiot::channel::{compose, TxEvent};
use galiot::cloud::{cancel_frame, sic_decode, SicParams};
use galiot::dsp::Cf32;
use galiot::gateway::{compress, decompress, CompressedSegment, EnergyDetector, PacketDetector};
use galiot::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FS: f64 = 1_000_000.0;

#[test]
fn truncated_frames_error_cleanly_for_every_phy() {
    let reg = Registry::extended();
    for tech in reg.techs() {
        let fs = if tech.id() == TechId::SigFox { 100_000.0 } else { FS };
        let sig = tech.modulate(&[1, 2, 3, 4, 5, 6], fs);
        // Cut at many points, including mid-preamble and mid-payload.
        for frac in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let cut = (sig.len() as f64 * frac) as usize;
            let r = tech.demodulate(&sig[..cut], fs);
            assert!(
                r.is_err() || r.as_ref().unwrap().payload == vec![1, 2, 3, 4, 5, 6],
                "{} at {frac}: accepted a wrong frame {r:?}",
                tech.id(),
            );
        }
    }
}

#[test]
fn degenerate_samples_do_not_panic_detectors_or_demods() {
    let reg = Registry::prototype();
    let nasty: Vec<Cf32> = (0..50_000)
        .map(|i| match i % 5 {
            0 => Cf32::new(f32::NAN, 0.0),
            1 => Cf32::new(0.0, f32::INFINITY),
            2 => Cf32::new(-f32::INFINITY, f32::NAN),
            3 => Cf32::new(1e30, -1e30),
            _ => Cf32::ZERO,
        })
        .collect();
    // Detectors: any result is fine, panicking is not.
    let _ = UniversalDetector::auto(&reg, FS).detect(&nasty, FS);
    let _ = EnergyDetector::default().detect(&nasty, FS);
    // Demodulators must not return a "decoded" frame from garbage.
    for tech in reg.techs() {
        if let Ok(frame) = tech.demodulate(&nasty, FS) {
            panic!("{} decoded a frame from NaN soup: {frame:?}", tech.id());
        }
    }
}

#[test]
fn empty_and_tiny_captures_flow_through_the_pipeline() {
    let system = Galiot::new(GaliotConfig::prototype(), Registry::prototype());
    for n in [0usize, 1, 7, 100, 1000] {
        let report = system.process_capture(&vec![Cf32::ZERO; n]);
        assert!(report.frames.is_empty(), "{n} samples produced frames");
    }
}

#[test]
fn corrupted_compressed_segments_decompress_without_panic() {
    let mut rng = StdRng::seed_from_u64(1);
    let reg = Registry::prototype();
    let xbee = reg.get(TechId::XBee).unwrap().clone();
    let ev = TxEvent::new(xbee, vec![1, 2, 3], 2_000);
    let cap = compose(&[ev], 30_000, FS, 0.01, &mut rng);
    let c = compress(&cap.samples, 8, 256);

    // Flip bytes throughout the code stream.
    let mut bad = c.clone();
    for i in (0..bad.data.len()).step_by(97) {
        bad.data[i] ^= 0xFF;
    }
    let out = decompress(&bad);
    assert_eq!(out.len(), cap.samples.len());

    // Truncated code stream: missing bytes read as zero.
    let short = CompressedSegment { data: c.data[..c.data.len() / 2].to_vec(), ..c.clone() };
    let out = decompress(&short);
    assert_eq!(out.len(), cap.samples.len());

    // Hostile scale factors.
    let mut evil = c;
    for s in &mut evil.scales {
        *s = f32::INFINITY;
    }
    let _ = decompress(&evil); // must not panic
}

#[test]
fn cancellation_with_a_lying_frame_does_not_panic_or_amplify() {
    // A frame whose payload does NOT match what's on the air: the
    // block gains should fit poorly and the subtraction stay bounded.
    let mut rng = StdRng::seed_from_u64(2);
    let reg = Registry::prototype();
    let xbee = reg.get(TechId::XBee).unwrap().clone();
    let ev = TxEvent::new(xbee.clone(), vec![0xAA; 10], 3_000);
    let cap = compose(&[ev], 40_000, FS, 0.01, &mut rng);
    let lie = galiot::phy::DecodedFrame {
        tech: TechId::XBee,
        payload: vec![0x55; 10], // wrong bits
        start: 3_000,
        len: 100,
    };
    let mut residual = cap.samples.clone();
    let before = galiot::dsp::power::mean_power(&residual);
    let _ = cancel_frame(&mut residual, xbee.as_ref(), &lie, FS, 64);
    let after = galiot::dsp::power::mean_power(&residual);
    assert!(after <= before * 1.5, "cancellation amplified energy: {before} -> {after}");
}

#[test]
fn sic_handles_captures_full_of_preamble_lookalikes() {
    // A capture that is nothing but repeated preamble patterns (no
    // valid frames) must terminate and return nothing.
    let reg = Registry::prototype();
    let xbee = reg.get(TechId::XBee).unwrap().clone();
    let pre = xbee.preamble_waveform(FS);
    let mut capture = Vec::new();
    for _ in 0..20 {
        capture.extend_from_slice(&pre);
    }
    let res = sic_decode(&capture, FS, &reg, &SicParams::default());
    assert!(res.frames.is_empty());
}

#[test]
fn zero_power_capture_is_quiet_everywhere() {
    let reg = Registry::prototype();
    let silence = vec![Cf32::ZERO; 200_000];
    assert!(UniversalDetector::auto(&reg, FS).detect(&silence, FS).is_empty());
    let dec = CloudDecoder::new(reg.clone());
    assert!(dec.decode(&silence, FS).frames.is_empty());
    for tech in reg.techs() {
        assert!(tech.demodulate(&silence, FS).is_err(), "{}", tech.id());
    }
}

#[test]
fn malformed_length_fields_are_rejected() {
    // Craft an XBee frame, then decode with a registry whose XBee
    // expects the same framing — but corrupt only the PHR so the
    // length points past the capture.
    let mut rng = StdRng::seed_from_u64(3);
    let reg = Registry::prototype();
    let xbee = reg.get(TechId::XBee).unwrap().clone();
    let ev = TxEvent::new(xbee.clone(), vec![5; 4], 1_000);
    let cap = compose(&[ev], 20_000, FS, 0.001, &mut rng);
    // The PHR sits right after the 6 sync bytes: flip its bits by
    // conjugating that region (inverts FSK tones).
    let sps = 20; // 50 kb/s at 1 Msps
    let phr_at = 1_000 + 6 * 8 * sps;
    let mut bad = cap.samples.clone();
    for z in &mut bad[phr_at..phr_at + 16 * sps] {
        *z = z.conj();
    }
    match xbee.demodulate(&bad, FS) {
        Err(_) => {}
        Ok(frame) => assert_ne!(frame.payload, vec![5; 4], "corrupt PHR accepted"),
    }
}
