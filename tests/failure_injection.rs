//! Failure injection: hostile, malformed and degenerate inputs must
//! produce errors (or empty results), never panics or wrong frames.

use galiot::channel::{compose, scenario_seed, snr_to_noise_power, TxEvent};
use galiot::cloud::{cancel_frame, sic_decode, SicParams};
use galiot::dsp::spectral::Band;
use galiot::dsp::Cf32;
use galiot::gateway::{compress, decompress, CompressedSegment, EnergyDetector, PacketDetector};
use galiot::phy::common::KillRecipe;
use galiot::phy::registry::TechHandle;
use galiot::phy::{DecodedFrame, ModClass, PhyError};
use galiot::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const FS: f64 = 1_000_000.0;

#[test]
fn truncated_frames_error_cleanly_for_every_phy() {
    let reg = Registry::extended();
    for tech in reg.techs() {
        let fs = if tech.id() == TechId::SigFox {
            100_000.0
        } else {
            FS
        };
        let sig = tech.modulate(&[1, 2, 3, 4, 5, 6], fs);
        // Cut at many points, including mid-preamble and mid-payload.
        for frac in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let cut = (sig.len() as f64 * frac) as usize;
            let r = tech.demodulate(&sig[..cut], fs);
            assert!(
                r.is_err() || r.as_ref().unwrap().payload == vec![1, 2, 3, 4, 5, 6],
                "{} at {frac}: accepted a wrong frame {r:?}",
                tech.id(),
            );
        }
    }
}

#[test]
fn degenerate_samples_do_not_panic_detectors_or_demods() {
    let reg = Registry::prototype();
    let nasty: Vec<Cf32> = (0..50_000)
        .map(|i| match i % 5 {
            0 => Cf32::new(f32::NAN, 0.0),
            1 => Cf32::new(0.0, f32::INFINITY),
            2 => Cf32::new(-f32::INFINITY, f32::NAN),
            3 => Cf32::new(1e30, -1e30),
            _ => Cf32::ZERO,
        })
        .collect();
    // Detectors: any result is fine, panicking is not.
    let _ = UniversalDetector::auto(&reg, FS).detect(&nasty, FS);
    let _ = EnergyDetector::default().detect(&nasty, FS);
    // Demodulators must not return a "decoded" frame from garbage.
    for tech in reg.techs() {
        if let Ok(frame) = tech.demodulate(&nasty, FS) {
            panic!("{} decoded a frame from NaN soup: {frame:?}", tech.id());
        }
    }
}

#[test]
fn empty_and_tiny_captures_flow_through_the_pipeline() {
    let system = Galiot::new(GaliotConfig::prototype(), Registry::prototype());
    for n in [0usize, 1, 7, 100, 1000] {
        let report = system.process_capture(&vec![Cf32::ZERO; n]);
        assert!(report.frames.is_empty(), "{n} samples produced frames");
    }
}

#[test]
fn corrupted_compressed_segments_decompress_without_panic() {
    let mut rng = StdRng::seed_from_u64(scenario_seed(1));
    let reg = Registry::prototype();
    let xbee = reg.get(TechId::XBee).unwrap().clone();
    let ev = TxEvent::new(xbee, vec![1, 2, 3], 2_000);
    let cap = compose(&[ev], 30_000, FS, 0.01, &mut rng);
    let c = compress(&cap.samples, 8, 256);

    // Flip bytes throughout the code stream.
    let mut bad = c.clone();
    for i in (0..bad.data.len()).step_by(97) {
        bad.data[i] ^= 0xFF;
    }
    let out = decompress(&bad);
    assert_eq!(out.len(), cap.samples.len());

    // Truncated code stream: missing bytes read as zero.
    let short = CompressedSegment {
        data: c.data[..c.data.len() / 2].to_vec(),
        ..c.clone()
    };
    let out = decompress(&short);
    assert_eq!(out.len(), cap.samples.len());

    // Hostile scale factors.
    let mut evil = c;
    for s in &mut evil.scales {
        *s = f32::INFINITY;
    }
    let _ = decompress(&evil); // must not panic
}

#[test]
fn cancellation_with_a_lying_frame_does_not_panic_or_amplify() {
    // A frame whose payload does NOT match what's on the air: the
    // block gains should fit poorly and the subtraction stay bounded.
    let mut rng = StdRng::seed_from_u64(scenario_seed(2));
    let reg = Registry::prototype();
    let xbee = reg.get(TechId::XBee).unwrap().clone();
    let ev = TxEvent::new(xbee.clone(), vec![0xAA; 10], 3_000);
    let cap = compose(&[ev], 40_000, FS, 0.01, &mut rng);
    let lie = galiot::phy::DecodedFrame {
        tech: TechId::XBee,
        payload: vec![0x55; 10], // wrong bits
        start: 3_000,
        len: 100,
    };
    let mut residual = cap.samples.clone();
    let before = galiot::dsp::power::mean_power(&residual);
    let _ = cancel_frame(&mut residual, xbee.as_ref(), &lie, FS, 64);
    let after = galiot::dsp::power::mean_power(&residual);
    assert!(
        after <= before * 1.5,
        "cancellation amplified energy: {before} -> {after}"
    );
}

#[test]
fn sic_handles_captures_full_of_preamble_lookalikes() {
    // A capture that is nothing but repeated preamble patterns (no
    // valid frames) must terminate and return nothing.
    let reg = Registry::prototype();
    let xbee = reg.get(TechId::XBee).unwrap().clone();
    let pre = xbee.preamble_waveform(FS);
    let mut capture = Vec::new();
    for _ in 0..20 {
        capture.extend_from_slice(&pre);
    }
    let res = sic_decode(&capture, FS, &reg, &SicParams::default());
    assert!(res.frames.is_empty());
}

#[test]
fn zero_power_capture_is_quiet_everywhere() {
    let reg = Registry::prototype();
    let silence = vec![Cf32::ZERO; 200_000];
    assert!(UniversalDetector::auto(&reg, FS)
        .detect(&silence, FS)
        .is_empty());
    let dec = CloudDecoder::new(reg.clone());
    assert!(dec.decode(&silence, FS).frames.is_empty());
    for tech in reg.techs() {
        assert!(tech.demodulate(&silence, FS).is_err(), "{}", tech.id());
    }
}

/// A sabotaged technology: looks exactly like the wrapped PHY on the
/// air (same preamble, same modulator — so detection, classification
/// and extraction all engage), but its demodulator panics. This is the
/// "poisoned segment" of the worker-pool failure model: a decode that
/// blows up *inside* a cloud worker.
struct PanickingPhy(TechHandle);

impl Technology for PanickingPhy {
    fn id(&self) -> TechId {
        self.0.id()
    }
    fn modulation(&self) -> ModClass {
        self.0.modulation()
    }
    fn center_offset_hz(&self) -> f64 {
        self.0.center_offset_hz()
    }
    fn occupied_band(&self) -> Band {
        self.0.occupied_band()
    }
    fn bitrate(&self) -> f64 {
        self.0.bitrate()
    }
    fn preamble_waveform(&self, fs: f64) -> Vec<Cf32> {
        self.0.preamble_waveform(fs)
    }
    fn modulate(&self, payload: &[u8], fs: f64) -> Vec<Cf32> {
        self.0.modulate(payload, fs)
    }
    fn demodulate(&self, _capture: &[Cf32], _fs: f64) -> Result<DecodedFrame, PhyError> {
        panic!("injected demodulator fault");
    }
    fn max_frame_samples(&self, fs: f64) -> usize {
        self.0.max_frame_samples(fs)
    }
    fn max_payload_len(&self) -> usize {
        self.0.max_payload_len()
    }
    fn preamble_description(&self) -> &'static str {
        self.0.preamble_description()
    }
    fn kill_recipe(&self, fs: f64) -> KillRecipe {
        self.0.kill_recipe(fs)
    }
}

#[test]
fn poisoned_segment_does_not_take_down_the_worker_pool() {
    // The cloud registry decodes with a PHY whose demodulator panics,
    // so every shipped segment detonates inside a worker. The pool must
    // contain each blast, count it, keep the remaining segments
    // flowing, and still shut down cleanly.
    let mut rng = StdRng::seed_from_u64(scenario_seed(21));
    let real = Registry::prototype();
    let xbee = real.get(TechId::XBee).unwrap().clone();
    let mut poisoned = Registry::new();
    poisoned.push(Arc::new(PanickingPhy(xbee.clone())) as TechHandle);

    let events: Vec<TxEvent> = (0..3)
        .map(|i| {
            TxEvent::new(
                xbee.clone(),
                vec![i as u8; 5],
                60_000 + i as usize * 400_000,
            )
        })
        .collect();
    let np = snr_to_noise_power(18.0, 0.0);
    let cap = compose(&events, 1_400_000, FS, np, &mut rng);

    let mut config = GaliotConfig::prototype().with_cloud_workers(2);
    config.edge_decoding = false; // force every segment through the pool
    let sys = StreamingGaliot::start(config, poisoned);
    let metrics = sys.metrics().clone();
    for chunk in cap.samples.chunks(65_536) {
        sys.push_chunk(chunk.to_vec());
    }
    let frames = sys.finish(); // must return, not hang or die
    let m = metrics.snapshot();

    assert!(
        frames.is_empty(),
        "poisoned decode produced frames: {frames:?}"
    );
    assert!(m.decode_poisoned >= 1, "no poison recorded: {m:?}");
    assert_eq!(
        m.per_worker_segments.values().sum::<usize>(),
        m.shipped_segments,
        "pool dropped segments after a panic: {m:?}"
    );
}

#[test]
fn nan_burst_between_packets_does_not_stop_the_stream() {
    // Clean packet, then a burst of NaN/Inf garbage samples, then
    // another clean packet: both packets must decode and the pipeline
    // must terminate normally.
    let mut rng = StdRng::seed_from_u64(scenario_seed(22));
    let reg = Registry::prototype();
    let zwave = reg.get(TechId::ZWave).unwrap().clone();
    let np = snr_to_noise_power(18.0, 0.0);
    let first = compose(
        &[TxEvent::new(zwave.clone(), vec![0x0F; 6], 60_000)],
        400_000,
        FS,
        np,
        &mut rng,
    );
    let second = compose(
        &[TxEvent::new(zwave, vec![0xF0; 6], 60_000)],
        400_000,
        FS,
        np,
        &mut rng,
    );
    let burst: Vec<Cf32> = (0..50_000)
        .map(|i| match i % 4 {
            0 => Cf32::new(f32::NAN, 0.0),
            1 => Cf32::new(0.0, f32::INFINITY),
            2 => Cf32::new(1e30, -1e30),
            _ => Cf32::new(f32::NEG_INFINITY, f32::NAN),
        })
        .collect();

    // Quiet spans longer than a gateway flush window isolate the burst:
    // the windows that digitize NaN (auto-gain smears NaN across its
    // whole window, exactly as the batch front end would) detect
    // nothing, and the stream must carry on into the clean windows.
    let quiet = vec![Cf32::ZERO; 600_000];
    let sys = StreamingGaliot::start(GaliotConfig::prototype().with_cloud_workers(2), reg);
    for part in [&first.samples, &quiet, &burst, &quiet, &second.samples] {
        for chunk in part.chunks(32_768) {
            sys.push_chunk(chunk.to_vec());
        }
    }
    let frames = sys.finish();
    let payloads: Vec<&Vec<u8>> = frames.iter().map(|f| &f.frame.payload).collect();
    assert!(
        payloads.contains(&&vec![0x0F; 6]) && payloads.contains(&&vec![0xF0; 6]),
        "packets around the NaN burst were lost: {payloads:?}"
    );
}

#[test]
fn malformed_length_fields_are_rejected() {
    // Craft an XBee frame, then decode with a registry whose XBee
    // expects the same framing — but corrupt only the PHR so the
    // length points past the capture.
    let mut rng = StdRng::seed_from_u64(scenario_seed(3));
    let reg = Registry::prototype();
    let xbee = reg.get(TechId::XBee).unwrap().clone();
    let ev = TxEvent::new(xbee.clone(), vec![5; 4], 1_000);
    let cap = compose(&[ev], 20_000, FS, 0.001, &mut rng);
    // The PHR sits right after the 6 sync bytes: flip its bits by
    // conjugating that region (inverts FSK tones).
    let sps = 20; // 50 kb/s at 1 Msps
    let phr_at = 1_000 + 6 * 8 * sps;
    let mut bad = cap.samples.clone();
    for z in &mut bad[phr_at..phr_at + 16 * sps] {
        *z = z.conj();
    }
    match xbee.demodulate(&bad, FS) {
        Err(_) => {}
        Ok(frame) => assert_ne!(frame.payload, vec![5; 4], "corrupt PHR accepted"),
    }
}
