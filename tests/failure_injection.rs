//! Failure injection: hostile, malformed and degenerate inputs must
//! produce errors (or empty results), never panics or wrong frames.

use galiot::channel::{compose, decode_fault_seed, scenario_seed, snr_to_noise_power, TxEvent};
use galiot::cloud::{cancel_frame, sic_decode, SicParams};
use galiot::core::{DecodeFaultKind, DecodeFaultSpec, Metrics, PipelineFrame};
use galiot::dsp::spectral::Band;
use galiot::dsp::Cf32;
use galiot::gateway::{compress, decompress, CompressedSegment, EnergyDetector, PacketDetector};
use galiot::phy::common::KillRecipe;
use galiot::phy::registry::TechHandle;
use galiot::phy::{DecodedFrame, ModClass, PhyError};
use galiot::prelude::*;
use galiot::trace::verify::{check_gateway_terminals, check_ship_terminals};
use galiot::trace::TraceSession;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

const FS: f64 = 1_000_000.0;

/// Serializes the decode-running tests in this binary. The recovery
/// matrix records a [`TraceSession`] — a process-global recorder — so
/// any concurrently running pipeline or DSP stage would bleed spans
/// into its trace and break the reconciliation it asserts.
static PIPELINE: Mutex<()> = Mutex::new(());

fn pipeline_lock() -> MutexGuard<'static, ()> {
    PIPELINE.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn truncated_frames_error_cleanly_for_every_phy() {
    let _serial = pipeline_lock();
    let reg = Registry::extended();
    for tech in reg.techs() {
        let fs = if tech.id() == TechId::SigFox {
            100_000.0
        } else {
            FS
        };
        let sig = tech.modulate(&[1, 2, 3, 4, 5, 6], fs);
        // Cut at many points, including mid-preamble and mid-payload.
        for frac in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let cut = (sig.len() as f64 * frac) as usize;
            let r = tech.demodulate(&sig[..cut], fs);
            assert!(
                r.is_err() || r.as_ref().unwrap().payload == vec![1, 2, 3, 4, 5, 6],
                "{} at {frac}: accepted a wrong frame {r:?}",
                tech.id(),
            );
        }
    }
}

#[test]
fn degenerate_samples_do_not_panic_detectors_or_demods() {
    let _serial = pipeline_lock();
    let reg = Registry::prototype();
    let nasty: Vec<Cf32> = (0..50_000)
        .map(|i| match i % 5 {
            0 => Cf32::new(f32::NAN, 0.0),
            1 => Cf32::new(0.0, f32::INFINITY),
            2 => Cf32::new(-f32::INFINITY, f32::NAN),
            3 => Cf32::new(1e30, -1e30),
            _ => Cf32::ZERO,
        })
        .collect();
    // Detectors: any result is fine, panicking is not.
    let _ = UniversalDetector::auto(&reg, FS).detect(&nasty, FS);
    let _ = EnergyDetector::default().detect(&nasty, FS);
    // Demodulators must not return a "decoded" frame from garbage.
    for tech in reg.techs() {
        if let Ok(frame) = tech.demodulate(&nasty, FS) {
            panic!("{} decoded a frame from NaN soup: {frame:?}", tech.id());
        }
    }
}

#[test]
fn empty_and_tiny_captures_flow_through_the_pipeline() {
    let _serial = pipeline_lock();
    let system = Galiot::new(GaliotConfig::prototype(), Registry::prototype());
    for n in [0usize, 1, 7, 100, 1000] {
        let report = system.process_capture(&vec![Cf32::ZERO; n]);
        assert!(report.frames.is_empty(), "{n} samples produced frames");
    }
}

#[test]
fn corrupted_compressed_segments_decompress_without_panic() {
    let _serial = pipeline_lock();
    let mut rng = StdRng::seed_from_u64(scenario_seed(1));
    let reg = Registry::prototype();
    let xbee = reg.get(TechId::XBee).unwrap().clone();
    let ev = TxEvent::new(xbee, vec![1, 2, 3], 2_000);
    let cap = compose(&[ev], 30_000, FS, 0.01, &mut rng);
    let c = compress(&cap.samples, 8, 256);

    // Flip bytes throughout the code stream.
    let mut bad = c.clone();
    for i in (0..bad.data.len()).step_by(97) {
        bad.data[i] ^= 0xFF;
    }
    let out = decompress(&bad);
    assert_eq!(out.len(), cap.samples.len());

    // Truncated code stream: missing bytes read as zero.
    let short = CompressedSegment {
        data: c.data[..c.data.len() / 2].to_vec(),
        ..c.clone()
    };
    let out = decompress(&short);
    assert_eq!(out.len(), cap.samples.len());

    // Hostile scale factors.
    let mut evil = c;
    for s in &mut evil.scales {
        *s = f32::INFINITY;
    }
    let _ = decompress(&evil); // must not panic
}

#[test]
fn cancellation_with_a_lying_frame_does_not_panic_or_amplify() {
    let _serial = pipeline_lock();
    // A frame whose payload does NOT match what's on the air: the
    // block gains should fit poorly and the subtraction stay bounded.
    let mut rng = StdRng::seed_from_u64(scenario_seed(2));
    let reg = Registry::prototype();
    let xbee = reg.get(TechId::XBee).unwrap().clone();
    let ev = TxEvent::new(xbee.clone(), vec![0xAA; 10], 3_000);
    let cap = compose(&[ev], 40_000, FS, 0.01, &mut rng);
    let lie = galiot::phy::DecodedFrame {
        tech: TechId::XBee,
        payload: vec![0x55; 10], // wrong bits
        start: 3_000,
        len: 100,
    };
    let mut residual = cap.samples.clone();
    let before = galiot::dsp::power::mean_power(&residual);
    let _ = cancel_frame(&mut residual, xbee.as_ref(), &lie, FS, 64);
    let after = galiot::dsp::power::mean_power(&residual);
    assert!(
        after <= before * 1.5,
        "cancellation amplified energy: {before} -> {after}"
    );
}

#[test]
fn sic_handles_captures_full_of_preamble_lookalikes() {
    let _serial = pipeline_lock();
    // A capture that is nothing but repeated preamble patterns (no
    // valid frames) must terminate and return nothing.
    let reg = Registry::prototype();
    let xbee = reg.get(TechId::XBee).unwrap().clone();
    let pre = xbee.preamble_waveform(FS);
    let mut capture = Vec::new();
    for _ in 0..20 {
        capture.extend_from_slice(&pre);
    }
    let res = sic_decode(&capture, FS, &reg, &SicParams::default());
    assert!(res.frames.is_empty());
}

#[test]
fn zero_power_capture_is_quiet_everywhere() {
    let _serial = pipeline_lock();
    let reg = Registry::prototype();
    let silence = vec![Cf32::ZERO; 200_000];
    assert!(UniversalDetector::auto(&reg, FS)
        .detect(&silence, FS)
        .is_empty());
    let dec = CloudDecoder::new(reg.clone());
    assert!(dec.decode(&silence, FS).frames.is_empty());
    for tech in reg.techs() {
        assert!(tech.demodulate(&silence, FS).is_err(), "{}", tech.id());
    }
}

/// A sabotaged technology: looks exactly like the wrapped PHY on the
/// air (same preamble, same modulator — so detection, classification
/// and extraction all engage), but its demodulator panics. This is the
/// "poisoned segment" of the worker-pool failure model: a decode that
/// blows up *inside* a cloud worker.
struct PanickingPhy(TechHandle);

impl Technology for PanickingPhy {
    fn id(&self) -> TechId {
        self.0.id()
    }
    fn modulation(&self) -> ModClass {
        self.0.modulation()
    }
    fn center_offset_hz(&self) -> f64 {
        self.0.center_offset_hz()
    }
    fn occupied_band(&self) -> Band {
        self.0.occupied_band()
    }
    fn bitrate(&self) -> f64 {
        self.0.bitrate()
    }
    fn preamble_waveform(&self, fs: f64) -> Vec<Cf32> {
        self.0.preamble_waveform(fs)
    }
    fn modulate(&self, payload: &[u8], fs: f64) -> Vec<Cf32> {
        self.0.modulate(payload, fs)
    }
    fn demodulate(&self, _capture: &[Cf32], _fs: f64) -> Result<DecodedFrame, PhyError> {
        panic!("injected demodulator fault");
    }
    fn max_frame_samples(&self, fs: f64) -> usize {
        self.0.max_frame_samples(fs)
    }
    fn max_payload_len(&self) -> usize {
        self.0.max_payload_len()
    }
    fn preamble_description(&self) -> &'static str {
        self.0.preamble_description()
    }
    fn kill_recipe(&self, fs: f64) -> KillRecipe {
        self.0.kill_recipe(fs)
    }
}

#[test]
fn poisoned_segment_does_not_take_down_the_worker_pool() {
    let _serial = pipeline_lock();
    // The cloud registry decodes with a PHY whose demodulator panics,
    // so every shipped segment detonates inside a worker. The pool must
    // contain each blast, count it, keep the remaining segments
    // flowing, and still shut down cleanly.
    let mut rng = StdRng::seed_from_u64(scenario_seed(21));
    let real = Registry::prototype();
    let xbee = real.get(TechId::XBee).unwrap().clone();
    let mut poisoned = Registry::new();
    poisoned.push(Arc::new(PanickingPhy(xbee.clone())) as TechHandle);

    let events: Vec<TxEvent> = (0..3)
        .map(|i| {
            TxEvent::new(
                xbee.clone(),
                vec![i as u8; 5],
                60_000 + i as usize * 400_000,
            )
        })
        .collect();
    let np = snr_to_noise_power(18.0, 0.0);
    let cap = compose(&events, 1_400_000, FS, np, &mut rng);

    let mut config = GaliotConfig::prototype().with_cloud_workers(2);
    config.edge_decoding = false; // force every segment through the pool
    let sys = StreamingGaliot::start(config, poisoned);
    let metrics = sys.metrics().clone();
    for chunk in cap.samples.chunks(65_536) {
        sys.push_chunk(chunk.to_vec());
    }
    let frames = sys.finish(); // must return, not hang or die
    let m = metrics.snapshot();

    assert!(
        frames.is_empty(),
        "poisoned decode produced frames: {frames:?}"
    );
    // Every segment detonates on every attempt, so the supervisor
    // walks each one down the full retry ladder (attempt 0 plus
    // `decode_retries` = 2 retries) and then quarantines it.
    let shipped = m.shipped_segments;
    assert!(shipped >= 1, "nothing shipped: {m:?}");
    assert_eq!(
        m.decode_poisoned,
        3 * shipped,
        "every attempt should have been poisoned: {m:?}"
    );
    assert_eq!(m.decode_retried, 2 * shipped, "retry ladder: {m:?}");
    assert_eq!(m.decode_quarantined, shipped, "quarantine count: {m:?}");
    assert_eq!(
        m.quarantine_records.len(),
        shipped,
        "dead-letter records: {m:?}"
    );
    assert_eq!(
        m.per_worker_segments.values().sum::<usize>(),
        3 * shipped,
        "pool attempt accounting: {m:?}"
    );
}

#[test]
fn nan_burst_between_packets_does_not_stop_the_stream() {
    let _serial = pipeline_lock();
    // Clean packet, then a burst of NaN/Inf garbage samples, then
    // another clean packet: both packets must decode and the pipeline
    // must terminate normally.
    let mut rng = StdRng::seed_from_u64(scenario_seed(22));
    let reg = Registry::prototype();
    let zwave = reg.get(TechId::ZWave).unwrap().clone();
    let np = snr_to_noise_power(18.0, 0.0);
    let first = compose(
        &[TxEvent::new(zwave.clone(), vec![0x0F; 6], 60_000)],
        400_000,
        FS,
        np,
        &mut rng,
    );
    let second = compose(
        &[TxEvent::new(zwave, vec![0xF0; 6], 60_000)],
        400_000,
        FS,
        np,
        &mut rng,
    );
    let burst: Vec<Cf32> = (0..50_000)
        .map(|i| match i % 4 {
            0 => Cf32::new(f32::NAN, 0.0),
            1 => Cf32::new(0.0, f32::INFINITY),
            2 => Cf32::new(1e30, -1e30),
            _ => Cf32::new(f32::NEG_INFINITY, f32::NAN),
        })
        .collect();

    // Quiet spans longer than a gateway flush window isolate the burst:
    // the windows that digitize NaN (auto-gain smears NaN across its
    // whole window, exactly as the batch front end would) detect
    // nothing, and the stream must carry on into the clean windows.
    let quiet = vec![Cf32::ZERO; 600_000];
    let sys = StreamingGaliot::start(GaliotConfig::prototype().with_cloud_workers(2), reg);
    for part in [&first.samples, &quiet, &burst, &quiet, &second.samples] {
        for chunk in part.chunks(32_768) {
            sys.push_chunk(chunk.to_vec());
        }
    }
    let frames = sys.finish();
    let payloads: Vec<&Vec<u8>> = frames.iter().map(|f| &f.frame.payload).collect();
    assert!(
        payloads.contains(&&vec![0x0F; 6]) && payloads.contains(&&vec![0xF0; 6]),
        "packets around the NaN burst were lost: {payloads:?}"
    );
}

#[test]
fn malformed_length_fields_are_rejected() {
    let _serial = pipeline_lock();
    // Craft an XBee frame, then decode with a registry whose XBee
    // expects the same framing — but corrupt only the PHR so the
    // length points past the capture.
    let mut rng = StdRng::seed_from_u64(scenario_seed(3));
    let reg = Registry::prototype();
    let xbee = reg.get(TechId::XBee).unwrap().clone();
    let ev = TxEvent::new(xbee.clone(), vec![5; 4], 1_000);
    let cap = compose(&[ev], 20_000, FS, 0.001, &mut rng);
    // The PHR sits right after the 6 sync bytes: flip its bits by
    // conjugating that region (inverts FSK tones).
    let sps = 20; // 50 kb/s at 1 Msps
    let phr_at = 1_000 + 6 * 8 * sps;
    let mut bad = cap.samples.clone();
    for z in &mut bad[phr_at..phr_at + 16 * sps] {
        *z = z.conj();
    }
    match xbee.demodulate(&bad, FS) {
        Err(_) => {}
        Ok(frame) => assert_ne!(frame.payload, vec![5; 4], "corrupt PHR accepted"),
    }
}

// ------------------------------------------------------------------
// The decode-recovery keystone matrix: workers {2,4} × fault kind
// {panic, hang, slow} × topology {streaming, fleet}, each cell under a
// hard wall-clock deadline. A quarantine-regime pass (strikes outlast
// the retry ladder) proves delivery loses *only* the quarantined
// windows' frames with closed per-fate accounting; a healing-regime
// pass (strikes the ladder absorbs) proves delivery stays lossless.

type Fid = (TechId, Vec<u8>, usize);

fn fids(frames: &[PipelineFrame]) -> Vec<Fid> {
    frames
        .iter()
        .map(|f| (f.frame.tech, f.frame.payload.clone(), f.frame.start))
        .collect()
}

struct RecoveryFixture {
    capture: Vec<Cf32>,
    /// The lossless batch reference every cell's delivery is judged
    /// against.
    batch: Vec<Fid>,
}

fn recovery_fixture() -> &'static RecoveryFixture {
    static FIX: OnceLock<RecoveryFixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(scenario_seed(31));
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let events: Vec<TxEvent> = (0..3)
            .map(|i| {
                TxEvent::new(
                    xbee.clone(),
                    vec![0x40 + i as u8; 5],
                    60_000 + i as usize * 400_000,
                )
            })
            .collect();
        let np = snr_to_noise_power(18.0, 0.0);
        let cap = compose(&events, 1_300_000, FS, np, &mut rng);
        let mut config = GaliotConfig::prototype();
        config.edge_decoding = false;
        let batch = fids(
            &Galiot::new(config, reg)
                .process_capture(&cap.samples)
                .frames,
        );
        assert_eq!(batch.len(), 3, "fixture must decode all three packets");
        RecoveryFixture {
            capture: cap.samples,
            batch,
        }
    })
}

/// Runs `f` on its own thread and panics if it has not finished within
/// `secs` — the matrix's "a hung worker must never stall delivery"
/// guarantee, enforced with wall clock rather than trust.
fn with_hard_deadline(name: &str, secs: u64, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    std::thread::Builder::new()
        .name(format!("cell-{name}"))
        .spawn(move || {
            let _ = tx.send(catch_unwind(AssertUnwindSafe(f)));
        })
        .expect("spawn matrix cell");
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(Ok(())) => {}
        Ok(Err(p)) => resume_unwind(p),
        Err(_) => panic!("recovery cell `{name}` blew its {secs}s hard deadline: delivery stalled"),
    }
}

/// Delivered frames must 1:1-match into the reference (within start
/// tolerance), and every reference frame left unmatched must start
/// inside some quarantined segment's `[start, start + len)` window.
fn assert_lost_only_to_quarantine(got: &[Fid], want: &[Fid], m: &Metrics, ctx: &str) {
    let mut missing: Vec<&Fid> = want.iter().collect();
    for f in got {
        let i = missing
            .iter()
            .position(|b| b.0 == f.0 && b.1 == f.1 && b.2.abs_diff(f.2) <= 32)
            .unwrap_or_else(|| panic!("{ctx}: delivered {f:?} has no reference counterpart"));
        missing.remove(i);
    }
    for f in missing {
        let covered = m.quarantine_records.iter().any(|r| {
            let lo = (r.start as usize).saturating_sub(32);
            (lo..r.start as usize + r.len + 32).contains(&f.2)
        });
        assert!(
            covered,
            "{ctx}: frame {f:?} lost outside every quarantined window: {:?}",
            m.quarantine_records
        );
    }
}

/// One matrix cell: run the topology under the fault plan, then check
/// delivery, capture order, per-fate trace reconciliation, and the
/// supervision counters.
fn run_recovery_cell(workers: usize, kind: DecodeFaultKind, fleet: bool, sticky: u32) {
    let fix = recovery_fixture();
    let spec = DecodeFaultSpec {
        kind,
        period: 1, // strike every segment: no dependence on the seed sweep
        sticky_attempts: sticky,
        seed: decode_fault_seed(0x51C0),
    };
    // 2 s: long enough that an honest decode never trips it even with
    // every worker contending for one CPU, short enough that the full
    // hang ladder (3 attempts/segment) stays well inside the cell's
    // hard deadline.
    let mut config = GaliotConfig::prototype()
        .with_cloud_workers(workers)
        .with_decode_deadline(2.0)
        .with_decode_faults(spec);
    config.edge_decoding = false; // every frame must cross the pool
    if fleet {
        config = config.with_gateways(2);
    }
    let ctx = format!(
        "{workers}w/{}/{}/sticky{sticky}",
        kind.name(),
        if fleet { "fleet" } else { "streaming" }
    );

    let session = TraceSession::start();
    let (frames, m) = if fleet {
        let sys = FleetGaliot::start(config, Registry::prototype());
        let metrics = sys.metrics().clone();
        for chunk in fix.capture.chunks(65_536) {
            sys.push_chunk(chunk.to_vec());
        }
        (sys.finish(), metrics.snapshot())
    } else {
        let sys = StreamingGaliot::start(config, Registry::prototype());
        let metrics = sys.metrics().clone();
        for chunk in fix.capture.chunks(65_536) {
            sys.push_chunk(chunk.to_vec());
        }
        (sys.finish(), metrics.snapshot())
    };
    let trace = session.finish();

    // Delivery: capture order, and nothing lost outside quarantine.
    let delivered = fids(&frames);
    let starts: Vec<usize> = delivered.iter().map(|f| f.2).collect();
    assert!(
        starts.windows(2).all(|w| w[1] + 32 >= w[0]),
        "{ctx}: frames out of capture order: {starts:?}"
    );
    assert_lost_only_to_quarantine(&delivered, &fix.batch, &m, &ctx);

    // Per-fate trace ↔ metrics reconciliation.
    let acc = check_ship_terminals(&trace).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    let pool: usize = m.per_worker_segments.values().sum();
    assert_eq!(acc.shipped as usize, m.shipped_segments, "{ctx}: {m:?}");
    assert_eq!(acc.retried as usize, m.decode_retried, "{ctx}: {m:?}");
    assert_eq!(
        acc.quarantined as usize, m.decode_quarantined,
        "{ctx}: {m:?}"
    );
    assert_eq!(m.quarantine_records.len(), m.decode_quarantined, "{ctx}");
    assert_eq!(
        acc.decoded as usize + m.decode_poisoned + m.decode_stale_results,
        pool,
        "{ctx}: completed pool attempts must be wins, poisons or stales: {m:?}"
    );
    assert_eq!(
        acc.decoded + acc.quarantined,
        acc.shipped,
        "{ctx}: every shipped segment needs exactly one fate"
    );
    let by_gw = check_gateway_terminals(&trace).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    assert_eq!(
        by_gw.len(),
        if fleet { 2 } else { 1 },
        "{ctx}: gateway sessions in trace"
    );
    for (gw, a) in &by_gw {
        assert_eq!(
            a.decoded + a.quarantined,
            a.shipped,
            "{ctx}: gw{gw} fates leak"
        );
    }
    if fleet {
        let offered: usize = m.per_gateway_decoded.values().sum();
        assert_eq!(
            offered,
            m.fleet_delivered + m.dedup_suppressed + m.crash_lost_frames + m.quarantined_frames,
            "{ctx}: fleet decode identity: {m:?}"
        );
    }

    let shipped = m.shipped_segments;
    assert!(
        shipped >= if fleet { 2 } else { 1 },
        "{ctx}: nothing shipped"
    );
    if sticky as usize > 2 {
        // Quarantine regime: every strike pattern outlasts the ladder.
        for r in &m.quarantine_records {
            assert_eq!(
                r.attempts.len(),
                3,
                "{ctx}: record {r:?} short of the full ladder"
            );
        }
        match kind {
            DecodeFaultKind::Panic => {
                assert_eq!(m.decode_quarantined, shipped, "{ctx}: {m:?}");
                assert_eq!(m.decode_poisoned, 3 * shipped, "{ctx}: {m:?}");
                assert_eq!(m.decode_retried, 2 * shipped, "{ctx}: {m:?}");
            }
            DecodeFaultKind::Hang => {
                assert_eq!(m.decode_quarantined, shipped, "{ctx}: {m:?}");
                assert_eq!(m.decode_hung, 3 * shipped, "{ctx}: {m:?}");
                assert_eq!(m.decode_retried, 2 * shipped, "{ctx}: {m:?}");
                assert!(m.workers_replaced >= m.decode_hung, "{ctx}: {m:?}");
            }
            DecodeFaultKind::Slow => {
                // A slow attempt normally blows the deadline and walks
                // the same ladder as a hang, but a late scheduler wake
                // can legitimately let it win before the deadline
                // check fires — so bound rather than pin the counts.
                assert!(m.decode_hung >= m.decode_quarantined, "{ctx}: {m:?}");
                assert!(m.decode_quarantined <= shipped, "{ctx}: {m:?}");
            }
        }
    } else {
        // Healing regime: the ladder absorbs every strike; delivery is
        // lossless.
        assert_eq!(m.decode_quarantined, 0, "{ctx}: {m:?}");
        assert_eq!(m.quarantined_frames, 0, "{ctx}: {m:?}");
        assert_eq!(
            delivered.len(),
            fix.batch.len(),
            "{ctx}: healed delivery lost frames: {delivered:?}"
        );
        match kind {
            DecodeFaultKind::Panic => {
                assert_eq!(m.decode_poisoned, 2 * shipped, "{ctx}: {m:?}");
                assert_eq!(m.decode_retried, 2 * shipped, "{ctx}: {m:?}");
            }
            DecodeFaultKind::Hang => {
                assert_eq!(m.decode_hung, 2 * shipped, "{ctx}: {m:?}");
                assert_eq!(m.decode_retried, 2 * shipped, "{ctx}: {m:?}");
            }
            DecodeFaultKind::Slow => {}
        }
    }
}

#[test]
fn decode_pool_quarantines_exhausted_segments_across_the_matrix() {
    let _serial = pipeline_lock();
    for fleet in [false, true] {
        for kind in [
            DecodeFaultKind::Panic,
            DecodeFaultKind::Hang,
            DecodeFaultKind::Slow,
        ] {
            for workers in [2usize, 4] {
                let name = format!("{workers}w-{}-{}-q", kind.name(), fleet);
                with_hard_deadline(&name, 90, move || {
                    run_recovery_cell(workers, kind, fleet, 3)
                });
            }
        }
    }
}

#[test]
fn decode_pool_heals_transient_faults_across_the_matrix() {
    let _serial = pipeline_lock();
    for fleet in [false, true] {
        for kind in [
            DecodeFaultKind::Panic,
            DecodeFaultKind::Hang,
            DecodeFaultKind::Slow,
        ] {
            for workers in [2usize, 4] {
                let name = format!("{workers}w-{}-{}-h", kind.name(), fleet);
                with_hard_deadline(&name, 90, move || {
                    run_recovery_cell(workers, kind, fleet, 2)
                });
            }
        }
    }
}
