//! The three environment knobs every randomized suite answers to —
//! `GALIOT_TEST_SEED`, `GALIOT_FAULT_SEED`, `GALIOT_DSP_BACKEND` —
//! must actually be read, swept consistently (the two seeds share one
//! XOR rule), and echoed in failure output (the sim repro bundle must
//! print all three). This file pins that contract, table-driven.
//!
//! Everything lives in ONE test function: the knobs are process
//! environment, and the test harness runs `#[test]`s concurrently
//! within a binary — a second env-mutating test here would race.

use galiot::channel::{fault_seed, scenario_seed};
use galiot::dsp::kernels::{env_request, Backend};
use galiot_sim::campaign::{run_campaign, CampaignOptions};
use galiot_sim::oracle;
use galiot_sim::scenario::EnvKnobs;
use galiot_sim::spec::CampaignSpec;
use std::env;

/// A seed-knob reader under test: `(env var, reader fn)`.
type SeedKnob = (&'static str, fn(u64) -> u64);
/// A backend-knob case: `(env value, expected env_request outcome)`.
type BackendCase = (Option<&'static str>, Option<Result<Backend, ()>>);

fn with_env(var: &str, value: Option<&str>, f: impl FnOnce()) {
    let saved = env::var(var).ok();
    match value {
        Some(v) => env::set_var(var, v),
        None => env::remove_var(var),
    }
    f();
    match saved {
        Some(v) => env::set_var(var, v),
        None => env::remove_var(var),
    }
}

#[test]
fn seed_knobs_are_read_swept_and_echoed() {
    // --- The two seed knobs share one sweep rule: unset (or
    // unparseable) leaves the default untouched; set XORs in, so one
    // value sweeps every scenario while distinct defaults stay
    // distinct.
    let seed_knobs: [SeedKnob; 2] = [
        ("GALIOT_TEST_SEED", scenario_seed),
        ("GALIOT_FAULT_SEED", fault_seed),
    ];
    for (var, read) in seed_knobs {
        let cases: [(Option<&str>, u64, u64); 5] = [
            (None, 40, 40),            // unset → default
            (Some("0"), 40, 40),       // zero sweep is the identity
            (Some("16"), 40, 40 ^ 16), // swept → XOR
            (Some("16"), 41, 41 ^ 16), // distinct defaults stay distinct
            (Some("zebra"), 40, 40),   // unparseable → default
        ];
        for (value, default, want) in cases {
            with_env(var, value, || {
                let got = read(default);
                assert_eq!(
                    got, want,
                    "{var}={value:?}: read({default}) = {got}, want {want}"
                );
            });
        }
        // The *other* seed knob must not bleed into this reader.
        let other = if var == "GALIOT_TEST_SEED" {
            "GALIOT_FAULT_SEED"
        } else {
            "GALIOT_TEST_SEED"
        };
        with_env(var, None, || {
            with_env(other, Some("999"), || {
                assert_eq!(read(40), 40, "{other} bled into {var}'s reader");
            });
        });
    }

    // --- GALIOT_DSP_BACKEND: read on every call; unset/empty/auto
    // mean "detect", a known name parses, an unknown one is surfaced
    // as an error (not silently ignored).
    let backend_cases: [BackendCase; 6] = [
        (None, None),
        (Some(""), None),
        (Some("auto"), None),
        (Some("scalar"), Some(Ok(Backend::Scalar))),
        (Some("avx2"), Some(Ok(Backend::Avx2))),
        (Some("never-a-backend"), Some(Err(()))),
    ];
    for (value, want) in backend_cases {
        with_env("GALIOT_DSP_BACKEND", value, || {
            let got = env_request();
            match (got, want) {
                (None, None) => {}
                (Some(Ok(b)), Some(Ok(w))) => {
                    assert_eq!(b, w, "GALIOT_DSP_BACKEND={value:?}")
                }
                (Some(Err(raw)), Some(Err(()))) => {
                    assert_eq!(raw, value.unwrap(), "error echoes the raw value")
                }
                (got, want) => {
                    panic!("GALIOT_DSP_BACKEND={value:?}: got {got:?}, want {want:?}")
                }
            }
        });
    }

    // --- The sim campaign folds GALIOT_TEST_SEED through the same
    // sweep rule, and its repro bundles echo all three knobs verbatim.
    with_env("GALIOT_TEST_SEED", Some("12345"), || {
        with_env("GALIOT_FAULT_SEED", Some("678"), || {
            with_env("GALIOT_DSP_BACKEND", Some("scalar"), || {
                let knobs = EnvKnobs::capture();
                let rendered = knobs.render();
                for needle in [
                    "GALIOT_TEST_SEED=12345",
                    "GALIOT_FAULT_SEED=678",
                    "GALIOT_DSP_BACKEND=scalar",
                ] {
                    assert!(rendered.contains(needle), "knobs render lacks {needle}");
                }

                let opts = CampaignOptions {
                    seed: 7,
                    count: 1,
                    spec: CampaignSpec {
                        max_txs: 2,
                        fault_prob: 0.0,
                        crash_prob: 0.0,
                        collision_prob: 0.0,
                        ..CampaignSpec::smoke()
                    },
                    oracles: vec![oracle::broken_dev()],
                    shrink: false,
                    quiet: true,
                    ..Default::default()
                };
                let report = run_campaign(&opts);
                assert_eq!(
                    report.campaign_seed,
                    7 ^ 12345,
                    "campaign seed must fold GALIOT_TEST_SEED by the sweep rule"
                );
                // Hunt a failing seed if the first scenario was 1-tx.
                let failure = if report.failures.is_empty() {
                    let mut o = opts.clone();
                    let mut found = None;
                    for seed in 0..50 {
                        o.seed = seed;
                        let r = run_campaign(&o);
                        if !r.failures.is_empty() {
                            found = Some(r);
                            break;
                        }
                    }
                    found.expect("some seed yields a multi-tx scenario")
                } else {
                    report
                };
                let repro = failure.render_repro(&failure.failures[0]);
                for needle in [
                    "GALIOT_TEST_SEED=12345",
                    "GALIOT_FAULT_SEED=678",
                    "GALIOT_DSP_BACKEND=scalar",
                ] {
                    assert!(
                        repro.contains(needle),
                        "repro bundle lacks {needle}:\n{repro}"
                    );
                }
            });
        });
    });
}
