//! Cross-crate integration tests: the full GalioT system driven
//! through the public facade, from simulated air to decoded payloads.

use galiot::channel::{
    compose, forced_collision, generate, scenario_seed, snr_to_noise_power, TrafficParams, TxEvent,
};
use galiot::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FS: f64 = 1_000_000.0;

#[test]
fn every_prototype_technology_roundtrips_through_the_pipeline() {
    let registry = Registry::prototype();
    let system = Galiot::new(GaliotConfig::prototype(), registry.clone());
    for (i, tech) in registry.techs().iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(scenario_seed(100 + i as u64));
        let payload = vec![i as u8 + 1; 10];
        let ev = TxEvent::new(tech.clone(), payload.clone(), 60_000);
        let np = snr_to_noise_power(12.0, 0.0);
        let cap = compose(&[ev], 500_000, FS, np, &mut rng);
        let report = system.process_capture(&cap.samples);
        assert_eq!(
            report.frames.len(),
            1,
            "{}: {:?}",
            tech.id(),
            report.metrics
        );
        assert_eq!(report.frames[0].frame.tech, tech.id());
        assert_eq!(report.frames[0].frame.payload, payload);
    }
}

#[test]
fn full_overlap_collision_is_resolved_end_to_end() {
    let mut rng = StdRng::seed_from_u64(scenario_seed(7));
    let registry = Registry::prototype();
    let events = forced_collision(&registry, 10, &[0.0, 1.0], 20_000, 50_000, &mut rng);
    let truth: Vec<(TechId, Vec<u8>)> = events
        .iter()
        .map(|e| (e.tech.id(), e.payload.clone()))
        .collect();
    let np = snr_to_noise_power(25.0, 0.0);
    let cap = compose(&events, 700_000, FS, np, &mut rng);
    assert!(cap.has_collision());
    let system = Galiot::new(GaliotConfig::prototype(), registry);
    let report = system.process_capture(&cap.samples);
    let got: Vec<(TechId, Vec<u8>)> = report
        .frames
        .iter()
        .map(|f| (f.frame.tech, f.frame.payload.clone()))
        .collect();
    for t in &truth {
        assert!(got.contains(t), "missing {t:?} in {got:?}");
    }
}

#[test]
fn poisson_traffic_mostly_recovered_at_comfortable_snr() {
    let mut rng = StdRng::seed_from_u64(scenario_seed(8));
    let registry = Registry::prototype();
    let params = TrafficParams {
        rate_hz: 1.5,
        ..Default::default()
    };
    let events = generate(&registry, &params, 1.0, FS, &mut rng);
    let np = snr_to_noise_power(15.0, 0.0);
    let cap = compose(&events, 1_000_000, FS, np, &mut rng);
    let system = Galiot::new(GaliotConfig::prototype(), registry);
    let report = system.process_capture(&cap.samples);
    let correct = report
        .frames
        .iter()
        .filter(|f| {
            cap.truth
                .iter()
                .any(|t| t.tech == f.frame.tech && t.payload == f.frame.payload)
        })
        .count();
    // Same-technology co-channel overlaps are outside the paper's (and
    // physics') reach — GalioT decodes *cross*-technology collisions.
    // Count only frames that don't overlap a same-tech twin.
    let recoverable = cap
        .truth
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !cap.truth.iter().enumerate().any(|(j, b)| {
                *i != j
                    && a.tech == b.tech
                    && a.start < b.start + b.len
                    && b.start < a.start + a.len
            })
        })
        .count();
    assert!(
        correct * 10 >= recoverable * 7,
        "only {correct}/{recoverable} recoverable frames recovered"
    );
}

#[test]
fn batch_and_streaming_agree_on_the_same_capture() {
    let mut rng = StdRng::seed_from_u64(scenario_seed(9));
    let registry = Registry::prototype();
    let xbee = registry.get(TechId::XBee).unwrap().clone();
    let zwave = registry.get(TechId::ZWave).unwrap().clone();
    let events = vec![
        TxEvent::new(xbee, vec![0x11; 8], 150_000),
        TxEvent::new(zwave, vec![0x22; 8], 650_000),
    ];
    let np = snr_to_noise_power(15.0, 0.0);
    let cap = compose(&events, 1_000_000, FS, np, &mut rng);

    let batch =
        Galiot::new(GaliotConfig::prototype(), registry.clone()).process_capture(&cap.samples);
    let streaming = {
        let sys = StreamingGaliot::start(GaliotConfig::prototype(), registry);
        for chunk in cap.samples.chunks(65_536) {
            sys.push_chunk(chunk.to_vec());
        }
        sys.finish()
    };
    let collect = |frames: Vec<(TechId, Vec<u8>)>| {
        let mut v = frames;
        v.sort();
        v
    };
    let b = collect(
        batch
            .frames
            .iter()
            .map(|f| (f.frame.tech, f.frame.payload.clone()))
            .collect(),
    );
    let s = collect(
        streaming
            .iter()
            .map(|f| (f.frame.tech, f.frame.payload.clone()))
            .collect(),
    );
    assert_eq!(b, s, "batch and streaming recovered different frame sets");
    assert_eq!(b.len(), 2);
}

#[test]
fn compression_does_not_break_cloud_decoding() {
    // 4-bit backhaul compression (aggressive) must still decode.
    let mut rng = StdRng::seed_from_u64(scenario_seed(10));
    let registry = Registry::prototype();
    let lora = registry.get(TechId::LoRa).unwrap().clone();
    let ev = TxEvent::new(lora, vec![0x42; 12], 50_000);
    let np = snr_to_noise_power(15.0, 0.0);
    let cap = compose(&[ev], 500_000, FS, np, &mut rng);
    let config = GaliotConfig {
        compression_bits: 4,
        edge_decoding: false, // force the backhaul path
        ..GaliotConfig::prototype()
    };
    let report = Galiot::new(config, registry).process_capture(&cap.samples);
    assert_eq!(report.frames.len(), 1);
    assert_eq!(report.frames[0].frame.payload, vec![0x42; 12]);
    assert!(!report.frames[0].at_edge);
}

#[test]
fn detector_kinds_are_interchangeable_at_high_snr() {
    for kind in [
        DetectorKind::Energy,
        DetectorKind::MatchedBank,
        DetectorKind::Universal,
    ] {
        let mut rng = StdRng::seed_from_u64(scenario_seed(11));
        let registry = Registry::prototype();
        let zwave = registry.get(TechId::ZWave).unwrap().clone();
        let ev = TxEvent::new(zwave, vec![5; 6], 80_000);
        let np = snr_to_noise_power(20.0, 0.0);
        let cap = compose(&[ev], 500_000, FS, np, &mut rng);
        let config = GaliotConfig {
            detector: kind,
            ..GaliotConfig::prototype()
        };
        let report = Galiot::new(config, registry).process_capture(&cap.samples);
        assert_eq!(report.frames.len(), 1, "{kind:?}");
    }
}
