//! Golden-vector tests for every PHY in [`Registry::extended`].
//!
//! Each technology modulates a fixed payload at the prototype capture
//! rate; the waveform is quantized and hashed, and the hash must match
//! the constant checked in under `tests/golden/phy_waveforms.txt`. Any
//! change to a modulator — intentional or not — shows up as a hash
//! mismatch here before it shows up as a mysterious end-to-end decode
//! regression.
//!
//! To bless new vectors after an *intentional* modulator change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --test golden_vectors
//! git diff tests/golden/phy_waveforms.txt   # review what moved!
//! ```
//!
//! The quantization grid (1e-4) absorbs harmless last-bit float noise
//! while still pinning the waveform to four decimal places per rail.

use galiot::prelude::*;
use std::fmt::Write as _;
use std::path::PathBuf;

const FS: f64 = 1_000_000.0;
/// Fixed golden payload, truncated to each PHY's maximum.
const PAYLOAD: [u8; 12] = *b"GalioT\x00\x01\x7f\x80\xfe\xff";

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/phy_waveforms.txt")
}

/// FNV-1a (64-bit) over the quantized I/Q stream.
fn waveform_fingerprint(samples: &[Cf32]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: i32| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for z in samples {
        // 1e-4 grid: immune to sub-ulp noise, sensitive to any real
        // waveform change.
        eat((z.re as f64 * 1e4).round() as i32);
        eat((z.im as f64 * 1e4).round() as i32);
    }
    h
}

/// One technology's golden record.
struct Golden {
    name: String,
    len: usize,
    hash: u64,
}

fn current_goldens() -> Vec<Golden> {
    Registry::extended()
        .techs()
        .iter()
        .map(|tech| {
            let n = PAYLOAD.len().min(tech.max_payload_len());
            let wf = tech.modulate(&PAYLOAD[..n], FS);
            Golden {
                name: tech.id().to_string(),
                len: wf.len(),
                hash: waveform_fingerprint(&wf),
            }
        })
        .collect()
}

fn render(goldens: &[Golden]) -> String {
    let mut out = String::from(
        "# Golden PHY waveform fingerprints — do not edit by hand.\n\
         # Regenerate with: GOLDEN_BLESS=1 cargo test --test golden_vectors\n\
         # Format: <tech name>\\t<waveform samples>\\t<fnv1a-64 of 1e-4-quantized I/Q>\n",
    );
    for g in goldens {
        writeln!(out, "{}\t{}\t{:016x}", g.name, g.len, g.hash).unwrap();
    }
    out
}

fn parse(text: &str) -> Vec<Golden> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            let mut f = l.split('\t');
            let name = f.next().expect("tech name").to_string();
            let len = f.next().expect("length").parse().expect("length as usize");
            let hash = u64::from_str_radix(f.next().expect("hash"), 16).expect("hex hash");
            Golden { name, len, hash }
        })
        .collect()
}

#[test]
fn waveforms_match_golden_fingerprints() {
    let current = current_goldens();
    let path = golden_path();

    if std::env::var("GOLDEN_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, render(&current)).unwrap();
        eprintln!(
            "blessed {} golden vectors into {}",
            current.len(),
            path.display()
        );
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "no golden file at {} ({e}); run GOLDEN_BLESS=1 cargo test --test golden_vectors",
            path.display()
        )
    });
    let expected = parse(&text);
    assert_eq!(
        expected.len(),
        current.len(),
        "golden file covers {} techs, registry has {} — re-bless after reviewing",
        expected.len(),
        current.len()
    );
    for (e, c) in expected.iter().zip(&current) {
        assert_eq!(
            e.name, c.name,
            "registry order changed — re-bless after reviewing"
        );
        assert_eq!(
            e.len, c.len,
            "{}: waveform length changed ({} -> {})",
            c.name, e.len, c.len
        );
        assert_eq!(
            e.hash, c.hash,
            "{}: waveform fingerprint changed ({:016x} -> {:016x}) — \
             modulator output moved; if intentional, GOLDEN_BLESS=1 and review the diff",
            c.name, e.hash, c.hash
        );
    }
}

/// The other half of the golden contract: every extended-registry PHY
/// demodulates its own golden waveform back to the golden payload, with
/// sync at the true frame start.
#[test]
fn golden_waveforms_demodulate_round_trip() {
    for tech in Registry::extended().techs() {
        let n = PAYLOAD.len().min(tech.max_payload_len());
        let wf = tech.modulate(&PAYLOAD[..n], FS);
        let frame = tech
            .demodulate(&wf, FS)
            .unwrap_or_else(|e| panic!("{}: clean round-trip failed: {e}", tech.id()));
        assert_eq!(frame.tech, tech.id());
        assert_eq!(
            frame.payload,
            &PAYLOAD[..n],
            "{}: payload corrupted",
            tech.id()
        );
        assert!(
            frame.start < 128,
            "{}: sync found at {} instead of the frame head",
            tech.id(),
            frame.start
        );
        assert!(
            frame.len <= wf.len(),
            "{}: frame len overruns capture",
            tech.id()
        );
    }
}

/// Fingerprints must be payload-sensitive — a hash that doesn't change
/// when the payload does would pin nothing.
#[test]
fn fingerprint_is_payload_sensitive() {
    for tech in Registry::extended().techs() {
        let n = PAYLOAD.len().min(tech.max_payload_len());
        let a = waveform_fingerprint(&tech.modulate(&PAYLOAD[..n], FS));
        let mut other = PAYLOAD[..n].to_vec();
        other[0] ^= 0xFF;
        let b = waveform_fingerprint(&tech.modulate(&other, FS));
        assert_ne!(a, b, "{}: fingerprint blind to payload", tech.id());
    }
}
