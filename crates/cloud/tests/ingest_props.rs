//! Property tests for the fleet-ingest merge: whatever order decode
//! shards complete in across gateways, the [`FleetMerge`] must deliver
//! each logical frame exactly once, in capture order, picking the
//! best-power copy — and its accounting must reconcile to the offer
//! count.
//!
//! The model: `G` gateways all hear the same `K` over-the-air frames.
//! Each gateway observes every frame with its own start jitter (±8
//! samples — clock skew between sessions) and its own received power.
//! Offers arrive in-order *per gateway* (that is what the per-session
//! reassembly lane guarantees upstream) but interleave arbitrarily
//! *across* gateways — exactly the nondeterminism a sharded worker
//! pool produces.

use galiot_cloud::{FleetMerge, GatewayId, SessionRegistry};
use galiot_phy::TechId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Frames spaced well past the dedup window so each is its own group.
const FRAME_SPACING: usize = 10_000;
const SLACK: u64 = 4_096;

/// One gateway's observation of one logical frame.
#[derive(Clone, Copy)]
struct Obs {
    frame: usize,
    start: usize,
    power: f32,
}

/// Builds each gateway's in-order observation list of `k` frames.
fn observations(gateways: usize, k: usize, seed: u64) -> Vec<Vec<Obs>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..gateways)
        .map(|_| {
            (0..k)
                .map(|frame| Obs {
                    frame,
                    start: (frame + 1) * FRAME_SPACING + rng.gen_range(0..=16usize) - 8,
                    power: rng.gen_range(0.01f32..1.0),
                })
                .collect()
        })
        .collect()
}

/// Replays the observations through the merge under one interleaving
/// (driven by `sched_seed`), finishing every session at the end.
/// Returns the delivered `(frame, gateway)` pairs in release order.
fn run_schedule(obs: &[Vec<Obs>], sched_seed: u64) -> (Vec<(usize, usize)>, u64, u64) {
    let mut rng = StdRng::seed_from_u64(sched_seed);
    let mut merge: FleetMerge<(usize, usize)> = FleetMerge::new(obs.len(), SLACK);
    let mut next = vec![0usize; obs.len()];
    let mut out = Vec::new();
    loop {
        let live: Vec<usize> = (0..obs.len()).filter(|&g| next[g] < obs[g].len()).collect();
        let Some(&g) = live.get(rng.gen_range(0..live.len().max(1))) else {
            break;
        };
        let o = obs[g][next[g]];
        next[g] += 1;
        let payload = (o.frame as u32).to_le_bytes();
        merge.offer(g, TechId::LoRa, &payload, o.start, o.power, (o.frame, g));
        out.extend(merge.advance(g, o.start as u64));
    }
    for g in 0..obs.len() {
        out.extend(merge.finish(g));
    }
    (out, merge.delivered(), merge.suppressed())
}

/// The winner the merge is contractually obliged to pick for `frame`:
/// highest power, ties to the lowest session index.
fn expected_winner(obs: &[Vec<Obs>], frame: usize) -> usize {
    (0..obs.len())
        .max_by(|&a, &b| {
            obs[a][frame]
                .power
                .partial_cmp(&obs[b][frame].power)
                .unwrap()
                // max_by keeps the *last* max; prefer the lower index
                // on ties by ranking it higher.
                .then(b.cmp(&a))
        })
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn merge_delivers_each_frame_once_best_power_in_capture_order(
        gateways in 1usize..=5,
        k in 1usize..=12,
        obs_seed in any::<u64>(),
        sched_seed in any::<u64>(),
    ) {
        let obs = observations(gateways, k, obs_seed);
        let (out, delivered, suppressed) = run_schedule(&obs, sched_seed);
        // Exactly once, in capture order.
        let frames: Vec<usize> = out.iter().map(|&(f, _)| f).collect();
        prop_assert_eq!(frames, (0..k).collect::<Vec<_>>());
        // Best-power copy wins, ties to the lowest session.
        for &(frame, winner) in &out {
            prop_assert_eq!(
                winner,
                expected_winner(&obs, frame),
                "frame {} winner", frame
            );
        }
        // Accounting closes: every offer is delivered or suppressed.
        prop_assert_eq!(delivered as usize, k);
        prop_assert_eq!(suppressed as usize, gateways * k - k);
    }

    #[test]
    fn merge_outcome_is_schedule_invariant(
        gateways in 2usize..=4,
        k in 1usize..=8,
        obs_seed in any::<u64>(),
        sched_a in any::<u64>(),
        sched_b in any::<u64>(),
    ) {
        let obs = observations(gateways, k, obs_seed);
        let a = run_schedule(&obs, sched_a);
        let b = run_schedule(&obs, sched_b);
        // Different cross-gateway interleavings (different shard
        // completion orders) must not change what is delivered, who
        // won, or the counters.
        prop_assert_eq!(a, b);
    }

    #[test]
    fn registry_admits_arbitrary_touch_orders(
        touches in proptest::collection::vec(any::<u16>(), 1..64),
    ) {
        let reg = SessionRegistry::new();
        for &gw in &touches {
            reg.touch(GatewayId(gw));
        }
        let snap = reg.snapshot();
        let total: u64 = snap.iter().map(|s| s.segments).sum();
        prop_assert_eq!(total as usize, touches.len());
        // Sorted by gateway, last-seen stamps strictly increasing in
        // touch order for any fixed gateway.
        prop_assert!(snap.windows(2).all(|w| w[0].gateway < w[1].gateway));
        prop_assert!(snap.iter().all(|s| s.last_seen > 0 && s.epoch == 0));
    }
}
