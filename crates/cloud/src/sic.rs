//! Successive interference cancellation — the baseline the paper
//! compares against (Sec. 5: "a strawman approach").
//!
//! Strongest-first decoding with reconstruct-and-subtract, exactly as
//! the strawman is defined: decode the highest-power signal, subtract
//! it, repeat — and **stop when the strongest signal fails to decode**,
//! because everything weaker is buried under it. This is the failure
//! the paper pins down ("SIC fails when multiple transmitters are
//! received at low power with comparable signal strengths"): when the
//! strongest signal cannot be decoded under its comparable-power
//! interferers, SIC has no way to make progress. Algorithm 1 escapes
//! through the kill filters, which remove interference *without*
//! decoding it first.

use galiot_dsp::Cf32;
use galiot_phy::registry::Registry;
use galiot_phy::{DecodedFrame, TechId};

use crate::cancel::cancel_frame;
use crate::classify::classify;

/// SIC tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct SicParams {
    /// Classification (preamble correlation) threshold.
    pub classify_threshold: f32,
    /// Alignment slack for cancellation, in samples.
    pub cancel_slack: usize,
    /// Hard bound on decode rounds (each round decodes one frame).
    pub max_rounds: usize,
}

impl Default for SicParams {
    fn default() -> Self {
        SicParams {
            classify_threshold: 0.12,
            cancel_slack: 64,
            max_rounds: 8,
        }
    }
}

/// Result of a SIC run.
#[derive(Clone, Debug, Default)]
pub struct SicResult {
    /// Frames recovered, in decode order.
    pub frames: Vec<DecodedFrame>,
    /// Number of decode rounds executed.
    pub rounds: usize,
}

/// Runs SIC on a segment: classify, decode strongest-first, cancel,
/// repeat until nothing more decodes.
pub fn sic_decode(segment: &[Cf32], fs: f64, registry: &Registry, params: &SicParams) -> SicResult {
    let mut residual = segment.to_vec();
    let mut result = SicResult::default();
    let mut already: Vec<(TechId, Vec<u8>)> = Vec::new();

    while result.rounds < params.max_rounds {
        // One span per successful round (the stall probe is
        // discarded), mirroring the CloudDecode instrumentation.
        let round_span = galiot_trace::span(galiot_trace::Stage::SicRound, galiot_trace::NO_SEQ);
        let frame = (|| {
            let candidates = classify(&residual, fs, registry, params.classify_threshold);
            // Strict SIC: only the strongest remaining signal is eligible.
            let strongest = candidates.first()?;
            let tech = registry.get(strongest.tech)?;
            let frame = tech.demodulate(&residual, fs).ok()?;
            if already
                .iter()
                .any(|(t, p)| *t == frame.tech && *p == frame.payload)
            {
                return None;
            }
            cancel_frame(
                &mut residual,
                tech.as_ref(),
                &frame,
                fs,
                params.cancel_slack,
            )?;
            Some(frame)
        })();
        let Some(frame) = frame else {
            round_span.discard();
            break;
        };
        already.push((frame.tech, frame.payload.clone()));
        result.frames.push(frame);
        result.rounds += 1;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use galiot_channel::{compose, snr_to_noise_power, TxEvent};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FS: f64 = 1_000_000.0;

    #[test]
    fn sic_decodes_time_separated_frames() {
        let mut rng = StdRng::seed_from_u64(1);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let zwave = reg.get(TechId::ZWave).unwrap().clone();
        let events = vec![
            TxEvent::new(xbee, vec![1; 8], 2_000),
            TxEvent::new(zwave, vec![2; 8], 60_000),
        ];
        let np = snr_to_noise_power(20.0, 0.0);
        let cap = compose(&events, 200_000, FS, np, &mut rng);
        let res = sic_decode(&cap.samples, FS, &reg, &SicParams::default());
        assert_eq!(res.frames.len(), 2, "{res:?}");
    }

    #[test]
    fn sic_resolves_power_separated_collision() {
        // Classic SIC win: a strong LoRa over a weak... here a strong
        // LoRa frame fully overlapping a weaker XBee: decode LoRa
        // (CSS is interference-tolerant), cancel, recover XBee.
        let mut rng = StdRng::seed_from_u64(2);
        let reg = Registry::prototype();
        let lora = reg.get(TechId::LoRa).unwrap().clone();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let events = vec![
            TxEvent::new(lora, vec![0xAA; 10], 0).with_power_db(0.0),
            TxEvent::new(xbee, vec![0xBB; 10], 30_000).with_power_db(-3.0),
        ];
        let np = snr_to_noise_power(25.0, -3.0);
        let cap = compose(&events, 400_000, FS, np, &mut rng);
        let res = sic_decode(&cap.samples, FS, &reg, &SicParams::default());
        let ids: Vec<TechId> = res.frames.iter().map(|f| f.tech).collect();
        assert!(ids.contains(&TechId::LoRa), "{ids:?}");
        assert!(ids.contains(&TechId::XBee), "{ids:?}");
    }

    #[test]
    fn sic_stalls_on_comparable_power_fsk_collision() {
        // Two same-band FSK technologies at equal power: neither
        // decodes under the other, so SIC recovers at most one — this
        // is the failure mode the kill filters exist for (paper:
        // "SIC fails when multiple transmitters are received at low
        // power with comparable signal strengths").
        let mut rng = StdRng::seed_from_u64(3);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let zwave = reg.get(TechId::ZWave).unwrap().clone();
        let events = vec![
            TxEvent::new(xbee, vec![1; 16], 1_000),
            TxEvent::new(zwave, vec![2; 16], 1_500),
        ];
        let np = snr_to_noise_power(20.0, 0.0);
        let cap = compose(&events, 80_000, FS, np, &mut rng);
        let res = sic_decode(&cap.samples, FS, &reg, &SicParams::default());
        assert!(
            res.frames.len() < 2,
            "SIC should stall, got {:?}",
            res.frames.len()
        );
    }

    #[test]
    fn sic_on_noise_returns_nothing() {
        let mut rng = StdRng::seed_from_u64(4);
        let reg = Registry::prototype();
        let noise = galiot_channel::awgn(150_000, 1.0, &mut rng);
        let res = sic_decode(&noise, FS, &reg, &SicParams::default());
        assert!(res.frames.is_empty());
    }

    #[test]
    fn round_limit_is_respected() {
        let mut rng = StdRng::seed_from_u64(5);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let events: Vec<TxEvent> = (0..4)
            .map(|i| TxEvent::new(xbee.clone(), vec![i as u8; 4], 5_000 + i * 40_000))
            .collect();
        let cap = compose(&events, 200_000, FS, 0.0, &mut rng);
        let params = SicParams {
            max_rounds: 2,
            ..Default::default()
        };
        let res = sic_decode(&cap.samples, FS, &reg, &params);
        assert!(res.frames.len() <= 2);
    }
}
