//! Multi-gateway cloud ingest: session registry, shard routing,
//! per-gateway fairness, and cross-gateway duplicate suppression.
//!
//! The paper's deployment shape is many cheap SDR gateways feeding one
//! cloud decoder, which means the ingest tier — not the radio — is
//! where fleet-scale correctness lives. Four concerns, four pieces:
//!
//! 1. [`SessionRegistry`] — who is talking: one record per gateway
//!    session (epoch, last-seen, segment count), so sequence spaces
//!    are namespaced per session and a rebooted gateway gets a fresh
//!    epoch instead of colliding with its past self.
//! 2. [`shard_for`] — where a segment decodes: a deterministic hash of
//!    (gateway, seq) onto `shards`, spreading one gateway's burst
//!    across the worker pool while keeping routing reproducible.
//! 3. [`FairnessGate`] — per-gateway in-flight credit: one pathological
//!    link retransmitting furiously can hold at most its quota of
//!    decode slots, so it degrades itself, not the fleet.
//! 4. [`FleetMerge`] — exactly-once delivery: N gateways hearing the
//!    same over-the-air frame produce N decoded copies; the merge
//!    keeps the best-power copy, counts the rest as suppressed, and
//!    releases frames in capture order once every session's watermark
//!    has moved past them.
//!
//! Everything here is generic over the carried frame type so the core
//! pipeline crate (which this crate cannot depend on) can thread its
//! own frame records through.

use galiot_phy::TechId;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A gateway identity as carried on the wire.
pub use galiot_gateway::backhaul::GatewayId;

// ---------------------------------------------------------------------
// Session registry
// ---------------------------------------------------------------------

/// A point-in-time view of one gateway session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionInfo {
    /// The session's gateway identity.
    pub gateway: GatewayId,
    /// Monotone registration counter: a gateway that re-registers
    /// (reboot, reconnect) gets a larger epoch than every session
    /// registered before it.
    pub epoch: u64,
    /// Logical timestamp (registry-wide touch counter) of the last
    /// segment seen from this session. 0 = never heard from.
    pub last_seen: u64,
    /// Segments ingested from this session so far.
    pub segments: u64,
    /// Declared dead by liveness tracking; a dead session stays dead
    /// until it re-registers under a fresh epoch.
    pub dead: bool,
}

#[derive(Default)]
struct SessionRecord {
    epoch: u64,
    last_seen: u64,
    segments: u64,
    dead: bool,
}

/// Tracks every gateway session feeding the cloud.
///
/// "Time" here is a logical counter bumped on every touch, not a wall
/// clock: the registry is part of a deterministic pipeline and its
/// observable state must not depend on scheduler timing.
#[derive(Default)]
pub struct SessionRegistry {
    clock: AtomicU64,
    epochs: AtomicU64,
    sessions: Mutex<HashMap<GatewayId, SessionRecord>>,
}

impl SessionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-registers) a gateway session, returning its
    /// epoch. Re-registration resets the segment count (the old
    /// session's traffic is not the new session's), revives a session
    /// previously declared dead, and stamps last-seen so a freshly
    /// booted gateway gets a full silence horizon before liveness can
    /// evict it.
    pub fn register(&self, gateway: GatewayId) -> u64 {
        let epoch = self.epochs.fetch_add(1, Ordering::Relaxed) + 1;
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut sessions = self.sessions.lock().unwrap();
        let rec = sessions.entry(gateway).or_default();
        rec.epoch = epoch;
        rec.segments = 0;
        rec.last_seen = now;
        rec.dead = false;
        epoch
    }

    /// Records one ingested segment from `gateway`, stamping its
    /// last-seen logical time. Unregistered gateways are admitted
    /// with epoch 0 — the wire does not wait for bookkeeping.
    pub fn touch(&self, gateway: GatewayId) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut sessions = self.sessions.lock().unwrap();
        let rec = sessions.entry(gateway).or_default();
        rec.last_seen = now;
        rec.segments += 1;
    }

    /// Epoch-fenced [`touch`](Self::touch): records the segment only
    /// if the session is alive and still on `epoch`. Returns `false`
    /// — without stamping anything — when the session is dead or has
    /// re-registered under a newer epoch, i.e. when the segment is
    /// stale in-flight traffic from a crashed instance and must be
    /// dropped at the mux.
    pub fn touch_current(&self, gateway: GatewayId, epoch: u64) -> bool {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut sessions = self.sessions.lock().unwrap();
        let rec = sessions.entry(gateway).or_default();
        if rec.dead || rec.epoch != epoch {
            return false;
        }
        rec.last_seen = now;
        rec.segments += 1;
        true
    }

    /// Stamps `gateway`'s last-seen time without counting a segment:
    /// proof of life from downstream (a decode result reaching the
    /// merge), as opposed to ingest-side admission.
    pub fn heartbeat(&self, gateway: GatewayId) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut sessions = self.sessions.lock().unwrap();
        let rec = sessions.entry(gateway).or_default();
        rec.last_seen = now;
    }

    /// Alive sessions whose silence exceeds `horizon` logical events,
    /// ordered by gateway. Dead sessions are not re-reported.
    pub fn stale(&self, horizon: u64) -> Vec<GatewayId> {
        let now = self.clock.load(Ordering::Relaxed);
        let sessions = self.sessions.lock().unwrap();
        let mut out: Vec<GatewayId> = sessions
            .iter()
            .filter(|(_, rec)| !rec.dead && now.saturating_sub(rec.last_seen) > horizon)
            .map(|(&gateway, _)| gateway)
            .collect();
        out.sort();
        out
    }

    /// Declares `gateway` dead if — checked atomically under the
    /// registry lock — it is still alive and still silent past
    /// `horizon`. Returns whether the session transitioned to dead
    /// here; `false` means it revived (re-registered or produced
    /// traffic) between the caller's staleness probe and this call.
    pub fn mark_dead_if_stale(&self, gateway: GatewayId, horizon: u64) -> bool {
        let now = self.clock.load(Ordering::Relaxed);
        let mut sessions = self.sessions.lock().unwrap();
        let rec = sessions.entry(gateway).or_default();
        if rec.dead || now.saturating_sub(rec.last_seen) <= horizon {
            return false;
        }
        rec.dead = true;
        true
    }

    /// The epoch `gateway` is currently registered under (0 if never
    /// registered).
    pub fn current_epoch(&self, gateway: GatewayId) -> u64 {
        self.sessions
            .lock()
            .unwrap()
            .get(&gateway)
            .map(|rec| rec.epoch)
            .unwrap_or(0)
    }

    /// Point-in-time view of every known session, ordered by gateway.
    pub fn snapshot(&self) -> Vec<SessionInfo> {
        let sessions = self.sessions.lock().unwrap();
        let mut out: Vec<SessionInfo> = sessions
            .iter()
            .map(|(&gateway, rec)| SessionInfo {
                gateway,
                epoch: rec.epoch,
                last_seen: rec.last_seen,
                segments: rec.segments,
                dead: rec.dead,
            })
            .collect();
        out.sort_by_key(|s| s.gateway);
        out
    }
}

// ---------------------------------------------------------------------
// Shard routing
// ---------------------------------------------------------------------

/// Routes one segment to a decode shard: a splitmix64 finalizer over
/// the (gateway, seq) pair, reduced onto `shards`.
///
/// Deterministic (the fleet conformance suite replays routing across
/// runs), well-spread (consecutive seqs from one gateway land on
/// different shards, so a burst fans out across the pool), and
/// session-scoped (two gateways' identical seqs are independent).
pub fn shard_for(gateway: GatewayId, seq: u64, shards: usize) -> usize {
    let mut x = ((gateway.0 as u64) << 48) ^ seq;
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards.max(1) as u64) as usize
}

// ---------------------------------------------------------------------
// Per-gateway fairness
// ---------------------------------------------------------------------

struct GateState {
    in_flight: HashMap<u16, usize>,
    closed: bool,
}

/// Per-gateway in-flight credit gate in front of the shared decode
/// pool.
///
/// Each session may hold at most `quota` segments in flight between
/// its mux and the workers; `acquire` blocks the *offending session's*
/// mux thread (backpressure flows up its own transport, eventually
/// shedding at its own send queue) while every other session routes
/// freely. That is the fairness property: a pathological link starves
/// itself, not the fleet.
pub struct FairnessGate {
    state: Mutex<GateState>,
    freed: Condvar,
    quota: usize,
}

impl FairnessGate {
    /// Creates a gate granting each gateway `quota` in-flight credits
    /// (min 1).
    pub fn new(quota: usize) -> Self {
        FairnessGate {
            state: Mutex::new(GateState {
                in_flight: HashMap::new(),
                closed: false,
            }),
            freed: Condvar::new(),
            quota: quota.max(1),
        }
    }

    /// Takes one credit for `gateway` as an RAII guard, blocking while
    /// the session is at quota. The credit is returned when the guard
    /// drops — on every path, including a panicking decode worker or a
    /// segment discarded in a queue at teardown, so no path can leak a
    /// credit and starve the session. Returns `None` if the gate was
    /// closed instead.
    pub fn acquire_guard(self: &Arc<Self>, gateway: GatewayId) -> Option<CreditGuard> {
        self.acquire(gateway).then(|| CreditGuard {
            gate: Arc::clone(self),
            gateway,
        })
    }

    /// Takes one credit for `gateway`, blocking while the session is
    /// at quota. Returns `false` if the gate was closed instead.
    pub fn acquire(&self, gateway: GatewayId) -> bool {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.closed {
                return false;
            }
            let held = st.in_flight.entry(gateway.0).or_insert(0);
            if *held < self.quota {
                *held += 1;
                return true;
            }
            st = self.freed.wait(st).unwrap();
        }
    }

    /// Returns one credit for `gateway`.
    pub fn release(&self, gateway: GatewayId) {
        let mut st = self.state.lock().unwrap();
        if let Some(held) = st.in_flight.get_mut(&gateway.0) {
            *held = held.saturating_sub(1);
        }
        drop(st);
        self.freed.notify_all();
    }

    /// Reclaims every credit `gateway` currently holds (session
    /// declared dead), returning how many were reclaimed. Guards the
    /// dead session still holds release harmlessly later:
    /// [`release`](Self::release) saturates at zero.
    pub fn revoke(&self, gateway: GatewayId) -> usize {
        let mut st = self.state.lock().unwrap();
        let reclaimed = st.in_flight.insert(gateway.0, 0).unwrap_or(0);
        drop(st);
        self.freed.notify_all();
        reclaimed
    }

    /// Unblocks every waiter permanently (teardown).
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.freed.notify_all();
    }

    /// Credits currently held by `gateway` (test/diagnostic hook).
    pub fn held(&self, gateway: GatewayId) -> usize {
        *self
            .state
            .lock()
            .unwrap()
            .in_flight
            .get(&gateway.0)
            .unwrap_or(&0)
    }
}

/// One [`FairnessGate`] credit held by a segment in flight between its
/// session's mux and a decode worker. Dropping the guard returns the
/// credit; attach it to the segment so whoever drops the segment —
/// worker, panicking worker, or a torn-down queue — returns the credit
/// with it.
pub struct CreditGuard {
    gate: Arc<FairnessGate>,
    gateway: GatewayId,
}

impl Drop for CreditGuard {
    fn drop(&mut self) {
        self.gate.release(self.gateway);
    }
}

impl std::fmt::Debug for CreditGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CreditGuard")
            .field("gateway", &self.gateway)
            .finish()
    }
}

// ---------------------------------------------------------------------
// Cross-gateway duplicate suppression
// ---------------------------------------------------------------------

/// One decoded copy awaiting release, with the copies it absorbed.
struct Group<T> {
    tech: TechId,
    payload: Vec<u8>,
    /// Capture start of the first copy seen; later copies match within
    /// `slack` of this.
    start: u64,
    best_power: f32,
    best_gateway: usize,
    order: u64,
    item: T,
}

/// Cross-gateway exactly-once merge.
///
/// Every gateway hears (roughly) the same air, so the same over-the-air
/// frame arrives once per gateway — and possibly more than once per
/// gateway when overlapping segments both decode it. Copies are
/// identified by `(tech, payload)` plus a time-of-arrival window of
/// `slack` samples; the copy with the highest reported power (best
/// receive SNR) is delivered, the rest increment
/// [`suppressed`](FleetMerge::suppressed).
///
/// Release is watermark-driven, which is what makes delivery both
/// exactly-once and deterministic: each session advances a watermark —
/// the capture start of its newest in-order-completed segment, a
/// non-decreasing quantity — and a group is released only once every
/// session's watermark has moved `slack` past the group's start. At
/// that point no session can still produce a matching copy (a frame
/// from a future segment starts at or after that session's watermark,
/// hence at least `slack` past the group), so the winner is final no
/// matter how decode shards interleave across gateways.
pub struct FleetMerge<T> {
    slack: u64,
    /// Per-session watermark; `u64::MAX` once the session finished.
    progress: Vec<u64>,
    pending: Vec<Group<T>>,
    /// Identities of the most recently released groups. The watermark
    /// invariant makes a post-release duplicate impossible from a
    /// session that only ever moves forward — but a session revived by
    /// [`reopen`](Self::reopen) after a crash/restart race replays air
    /// the fleet already delivered, and its copies must be suppressed,
    /// not re-released.
    released_recent: VecDeque<(TechId, Vec<u8>, u64)>,
    next_order: u64,
    suppressed: u64,
    delivered: u64,
}

/// Released-group identities remembered for revived-session dedup.
const RELEASED_MEMORY: usize = 256;

impl<T> FleetMerge<T> {
    /// Creates a merge over `n_gateways` sessions with a duplicate
    /// time-of-arrival window of `slack` samples.
    pub fn new(n_gateways: usize, slack: u64) -> Self {
        FleetMerge {
            slack,
            progress: vec![0; n_gateways.max(1)],
            pending: Vec::new(),
            released_recent: VecDeque::new(),
            next_order: 0,
            suppressed: 0,
            delivered: 0,
        }
    }

    /// Offers one decoded copy from session `gateway` (0-based index,
    /// not the wire id). `start` is in absolute capture samples;
    /// `power` is the copy's mean received power.
    pub fn offer(
        &mut self,
        gateway: usize,
        tech: TechId,
        payload: &[u8],
        start: usize,
        power: f32,
        item: T,
    ) {
        let start = start as u64;
        if self
            .released_recent
            .iter()
            .any(|(t, p, s)| *t == tech && s.abs_diff(start) < self.slack && *p == *payload)
        {
            self.suppressed += 1;
            return;
        }
        for g in &mut self.pending {
            if g.tech == tech && g.start.abs_diff(start) < self.slack && g.payload == *payload {
                self.suppressed += 1;
                // Keep the best-SNR copy; ties go to the lowest
                // session index so the winner does not depend on
                // cross-thread arrival order.
                if power > g.best_power || (power == g.best_power && gateway < g.best_gateway) {
                    g.best_power = power;
                    g.best_gateway = gateway;
                    g.item = item;
                }
                return;
            }
        }
        self.pending.push(Group {
            tech,
            payload: payload.to_vec(),
            start,
            best_power: power,
            best_gateway: gateway,
            order: self.next_order,
            item,
        });
        self.next_order += 1;
    }

    /// Raises session `gateway`'s watermark to `watermark` (absolute
    /// capture samples; watermarks never regress) and returns every
    /// group that became final, in capture order.
    pub fn advance(&mut self, gateway: usize, watermark: u64) -> Vec<T> {
        let p = &mut self.progress[gateway];
        *p = (*p).max(watermark);
        self.drain_final()
    }

    /// Marks session `gateway` as finished — it will never offer
    /// again — and returns every group that became final. This is also
    /// the failover finalization rule: declaring a dead session
    /// finished removes it from the release horizon so capture-order
    /// delivery resumes for the survivors instead of stalling forever
    /// on a watermark that will never advance.
    pub fn finish(&mut self, gateway: usize) -> Vec<T> {
        self.progress[gateway] = u64::MAX;
        self.drain_final()
    }

    /// Re-admits a previously [`finish`](Self::finish)ed session to
    /// the release horizon with its watermark regressed to
    /// `watermark` — the one sanctioned regression, used when a
    /// session declared dead comes back (gateway restart racing the
    /// liveness verdict). Re-offers of already-released air are caught
    /// by the release memory, so exactly-once delivery survives the
    /// revival.
    pub fn reopen(&mut self, gateway: usize, watermark: u64) {
        self.progress[gateway] = watermark;
    }

    fn drain_final(&mut self) -> Vec<T> {
        let horizon = self.progress.iter().copied().min().unwrap_or(u64::MAX);
        if self
            .pending
            .iter()
            .all(|g| g.start.saturating_add(self.slack) > horizon)
        {
            return Vec::new();
        }
        let mut released: Vec<Group<T>> = Vec::new();
        let mut keep: Vec<Group<T>> = Vec::new();
        for g in self.pending.drain(..) {
            if g.start.saturating_add(self.slack) <= horizon {
                released.push(g);
            } else {
                keep.push(g);
            }
        }
        self.pending = keep;
        released.sort_by_key(|g| (g.start, g.order));
        self.delivered += released.len() as u64;
        for g in &released {
            self.released_recent
                .push_back((g.tech, g.payload.clone(), g.start));
        }
        while self.released_recent.len() > RELEASED_MEMORY {
            self.released_recent.pop_front();
        }
        released.into_iter().map(|g| g.item).collect()
    }

    /// Copies absorbed as duplicates so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Groups released so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Groups still awaiting release.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_epochs_are_monotone_and_reregistration_resets_counts() {
        let reg = SessionRegistry::new();
        let e1 = reg.register(GatewayId(1));
        let e2 = reg.register(GatewayId(2));
        assert!(e2 > e1);
        reg.touch(GatewayId(1));
        reg.touch(GatewayId(1));
        reg.touch(GatewayId(2));
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].segments, 2);
        assert!(snap[1].last_seen > snap[0].last_seen, "{snap:?}");
        // Reboot: fresh epoch, counters reset, identity preserved.
        let e1b = reg.register(GatewayId(1));
        assert!(e1b > e2);
        let snap = reg.snapshot();
        assert_eq!(snap[0].epoch, e1b);
        assert_eq!(snap[0].segments, 0);
    }

    #[test]
    fn shard_routing_is_deterministic_spread_and_session_scoped() {
        for shards in [1usize, 2, 7, 16] {
            let mut hit = vec![0usize; shards];
            for seq in 0..256u64 {
                let s = shard_for(GatewayId(3), seq, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for(GatewayId(3), seq, shards));
                hit[s] += 1;
            }
            // No empty shard over a dense burst of 256 seqs.
            assert!(hit.iter().all(|&h| h > 0), "shards={shards} hit={hit:?}");
        }
        // Same seq, different session → generally a different route.
        let diverge = (0..64u64)
            .filter(|&s| shard_for(GatewayId(1), s, 8) != shard_for(GatewayId(2), s, 8))
            .count();
        assert!(diverge > 32, "only {diverge}/64 diverged");
    }

    #[test]
    fn fairness_gate_blocks_only_the_over_quota_session() {
        let gate = FairnessGate::new(2);
        assert!(gate.acquire(GatewayId(1)));
        assert!(gate.acquire(GatewayId(1)));
        // Gateway 1 is at quota; gateway 2 is unaffected.
        assert!(gate.acquire(GatewayId(2)));
        assert_eq!(gate.held(GatewayId(1)), 2);
        assert_eq!(gate.held(GatewayId(2)), 1);
        gate.release(GatewayId(1));
        assert!(gate.acquire(GatewayId(1)));
        gate.close();
        assert!(!gate.acquire(GatewayId(1)), "closed gate must not admit");
    }

    #[test]
    fn fairness_gate_wakes_blocked_acquirer_on_release() {
        use std::sync::Arc;
        let gate = Arc::new(FairnessGate::new(1));
        assert!(gate.acquire(GatewayId(5)));
        let g2 = gate.clone();
        let waiter = std::thread::spawn(move || g2.acquire(GatewayId(5)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        gate.release(GatewayId(5));
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn merge_delivers_best_power_copy_exactly_once() {
        let mut m: FleetMerge<&'static str> = FleetMerge::new(2, 100);
        m.offer(0, TechId::ZWave, b"hello", 1000, 0.5, "gw0-copy");
        m.offer(1, TechId::ZWave, b"hello", 1010, 0.9, "gw1-copy");
        assert!(m.advance(0, 900).is_empty(), "horizon below start");
        assert!(m.advance(1, 5000).is_empty(), "gateway 0 still behind");
        let out = m.advance(0, 5000);
        assert_eq!(out, vec!["gw1-copy"], "higher power must win");
        assert_eq!(m.suppressed(), 1);
        assert_eq!(m.delivered(), 1);
    }

    #[test]
    fn merge_power_tie_breaks_to_lowest_session_either_arrival_order() {
        for flip in [false, true] {
            let mut m: FleetMerge<u32> = FleetMerge::new(2, 100);
            let offers = [(0usize, 10u32), (1usize, 11u32)];
            let order = if flip { [1, 0] } else { [0, 1] };
            for &i in &order {
                let (gw, item) = offers[i];
                m.offer(gw, TechId::XBee, b"t", 50, 0.7, item);
            }
            let out = m
                .finish(0)
                .into_iter()
                .chain(m.finish(1))
                .collect::<Vec<_>>();
            assert_eq!(out, vec![10], "flip={flip}: session 0 must win ties");
        }
    }

    #[test]
    fn merge_separates_frames_outside_the_window_and_orders_releases() {
        let mut m: FleetMerge<u64> = FleetMerge::new(1, 100);
        // Same payload, far apart in time: two distinct frames.
        m.offer(0, TechId::ZWave, b"re", 5000, 0.5, 2);
        m.offer(0, TechId::ZWave, b"re", 200, 0.5, 1);
        // Different payload inside the window: also distinct.
        m.offer(0, TechId::ZWave, b"other", 210, 0.5, 3);
        let out = m.finish(0);
        assert_eq!(out, vec![1, 3, 2], "capture order, no false merges");
        assert_eq!(m.suppressed(), 0);
    }

    #[test]
    fn merge_same_gateway_overlap_duplicates_are_suppressed() {
        let mut m: FleetMerge<u8> = FleetMerge::new(1, 4096);
        m.offer(0, TechId::XBee, b"dup", 10_000, 0.4, 1);
        m.offer(0, TechId::XBee, b"dup", 10_008, 0.4, 2);
        let out = m.finish(0);
        assert_eq!(out, vec![1]);
        assert_eq!(m.suppressed(), 1);
    }

    #[test]
    fn registry_declares_silent_sessions_dead_and_register_revives() {
        let reg = SessionRegistry::new();
        reg.register(GatewayId(1));
        reg.register(GatewayId(2));
        // Gateway 2 keeps talking; gateway 1 goes silent.
        for _ in 0..6 {
            reg.touch(GatewayId(2));
        }
        assert_eq!(reg.stale(5), vec![GatewayId(1)]);
        assert!(reg.stale(100).is_empty(), "inside horizon = alive");
        assert!(reg.mark_dead_if_stale(GatewayId(1), 5));
        assert!(!reg.mark_dead_if_stale(GatewayId(1), 5), "already dead");
        assert!(reg.stale(5).is_empty(), "dead sessions are not re-reported");
        let snap = reg.snapshot();
        assert!(snap[0].dead && !snap[1].dead, "{snap:?}");
        // Revival: a fresh registration clears the verdict and grants a
        // full horizon of silence before liveness can fire again.
        reg.register(GatewayId(1));
        assert!(!reg.snapshot()[0].dead);
        assert!(!reg.mark_dead_if_stale(GatewayId(1), 5));
    }

    #[test]
    fn touch_current_fences_stale_epochs_and_dead_sessions() {
        let reg = SessionRegistry::new();
        let e1 = reg.register(GatewayId(7));
        assert!(reg.touch_current(GatewayId(7), e1));
        let e2 = reg.register(GatewayId(7));
        assert!(!reg.touch_current(GatewayId(7), e1), "stale epoch fenced");
        assert!(reg.touch_current(GatewayId(7), e2));
        assert_eq!(reg.current_epoch(GatewayId(7)), e2);
        assert_eq!(reg.snapshot()[0].segments, 1, "fenced touch must not count");
        // A dead session admits nothing, not even its current epoch.
        for _ in 0..4 {
            reg.touch(GatewayId(8));
        }
        assert!(reg.mark_dead_if_stale(GatewayId(7), 2));
        assert!(!reg.touch_current(GatewayId(7), e2));
    }

    #[test]
    fn credit_guard_returns_credit_on_drop_and_revoke_reclaims() {
        use std::sync::Arc;
        let gate = Arc::new(FairnessGate::new(2));
        let g1 = gate.acquire_guard(GatewayId(3)).unwrap();
        let g2 = gate.acquire_guard(GatewayId(3)).unwrap();
        assert_eq!(gate.held(GatewayId(3)), 2);
        drop(g1);
        assert_eq!(gate.held(GatewayId(3)), 1, "drop must return the credit");
        // Dead-session reclaim: outstanding credits zeroed at once,
        // and the straggler guard's later release saturates harmlessly.
        assert_eq!(gate.revoke(GatewayId(3)), 1);
        assert_eq!(gate.held(GatewayId(3)), 0);
        drop(g2);
        assert_eq!(gate.held(GatewayId(3)), 0);
        // Blocked waiter wakes when revoke frees the quota.
        let full = gate.acquire_guard(GatewayId(4)).unwrap();
        let _full2 = gate.acquire_guard(GatewayId(4)).unwrap();
        let g2c = gate.clone();
        let waiter = std::thread::spawn(move || g2c.acquire_guard(GatewayId(4)).is_some());
        std::thread::sleep(std::time::Duration::from_millis(20));
        gate.revoke(GatewayId(4));
        assert!(waiter.join().unwrap());
        drop(full);
        gate.close();
        assert!(gate.acquire_guard(GatewayId(4)).is_none());
    }

    #[test]
    fn merge_reopen_suppresses_replayed_released_groups() {
        let mut m: FleetMerge<u32> = FleetMerge::new(2, 100);
        m.offer(0, TechId::ZWave, b"frame", 1000, 0.5, 1);
        m.offer(1, TechId::ZWave, b"frame", 1010, 0.9, 2);
        // Session 1 dies → finished; session 0 advances → release.
        m.finish(1);
        let out = m.advance(0, 5000);
        assert_eq!(out, vec![2]);
        // Session 1 restarts and replays the same air from scratch.
        m.reopen(1, 0);
        m.offer(1, TechId::ZWave, b"frame", 1005, 0.95, 3);
        // A genuinely new frame from the revived session still flows —
        // once every lane's watermark covers it again.
        m.offer(1, TechId::ZWave, b"later", 9000, 0.4, 4);
        assert!(
            m.advance(1, 20_000).is_empty(),
            "survivor watermark still gates release"
        );
        let out = m.advance(0, 20_000);
        assert_eq!(out, vec![4], "replayed copy must not re-release");
        assert_eq!(m.suppressed(), 2);
        assert_eq!(m.delivered(), 2);
    }

    #[test]
    fn merge_watermarks_never_regress() {
        let mut m: FleetMerge<u8> = FleetMerge::new(1, 10);
        m.advance(0, 500);
        m.offer(0, TechId::ZWave, b"a", 600, 0.5, 7);
        // A stale, smaller watermark must not drag the horizon back;
        // only genuine progress releases the group.
        assert!(m.advance(0, 50).is_empty());
        assert_eq!(m.advance(0, 700), vec![7]);
        assert_eq!(m.pending_len(), 0);
    }
}
