//! Signal reconstruction and subtraction — the cancellation half of
//! successive interference cancellation.
//!
//! A decoded frame is remodulated, re-aligned against the residual at
//! sample resolution, and subtracted with per-block complex gains. The
//! block-wise gain estimate absorbs the unknown amplitude, phase and
//! (slowly rotating) residual CFO of the original transmission without
//! explicit CFO estimation.

use galiot_dsp::corr::xcorr_fft;
use galiot_dsp::kernels;
use galiot_dsp::Cf32;
use galiot_phy::{DecodedFrame, Technology};

/// Cancellation quality report.
#[derive(Clone, Copy, Debug)]
pub struct CancelReport {
    /// Sample offset the reference was aligned to.
    pub aligned_at: usize,
    /// Energy in the overlap before subtraction.
    pub energy_before: f32,
    /// Energy in the overlap after subtraction.
    pub energy_after: f32,
    /// The estimated complex channel gain (energy-weighted mean of the
    /// per-block gains). Beyond cancellation, this is the "wireless
    /// channel retrieved from I/Q samples" the paper's Sec. 6 proposes
    /// mining for sensing.
    pub mean_gain: Cf32,
    /// Estimated residual CFO in radians/sample.
    pub cfo_rad_per_sample: f32,
}

impl CancelReport {
    /// Suppression achieved, in dB (positive = energy removed).
    pub fn suppression_db(&self) -> f32 {
        if self.energy_after <= 0.0 {
            return f32::INFINITY;
        }
        10.0 * (self.energy_before / self.energy_after).log10()
    }
}

/// Subtracts a decoded frame's waveform from `residual` in place.
///
/// `hint_start` bounds the alignment search to
/// `[hint_start - slack, hint_start + slack]`; pass the decoder's
/// reported frame start. Returns a report, or `None` if the reference
/// cannot be aligned inside the residual.
pub fn cancel_frame(
    residual: &mut [Cf32],
    tech: &dyn Technology,
    frame: &DecodedFrame,
    fs: f64,
    slack: usize,
) -> Option<CancelReport> {
    let reference = tech.modulate(&frame.payload, fs);
    if reference.is_empty() || residual.is_empty() {
        return None;
    }
    // Alignment search window around the hint. Correlating the whole
    // frame coherently would self-destruct under residual CFO (the
    // integrand rotates through full turns), so alignment combines
    // short-block correlations non-coherently: per candidate lag, sum
    // |<residual, ref_block>|^2 over blocks spread across the frame.
    let lo = frame.start.saturating_sub(slack);
    let hi = (frame.start + slack + reference.len()).min(residual.len());
    if lo >= hi || hi - lo < reference.len() {
        return None;
    }
    let lags = hi - lo - reference.len() + 1;
    let block_n = 512.min(reference.len());
    let nblocks = (reference.len() / block_n).clamp(1, 8);
    let stride = if nblocks > 1 {
        (reference.len() - block_n) / (nblocks - 1)
    } else {
        0
    };
    let mut score = vec![0.0f64; lags];
    for b in 0..nblocks {
        let o = b * stride;
        let seg_end = (lo + o + block_n + lags - 1).min(residual.len());
        if lo + o >= seg_end || seg_end - (lo + o) < block_n {
            continue;
        }
        let corr = xcorr_fft(&residual[lo + o..seg_end], &reference[o..o + block_n]);
        for (i, c) in corr.iter().take(lags).enumerate() {
            score[i] += c.norm_sqr() as f64;
        }
    }
    let best = score
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)?;
    let at = lo + best;
    let n = reference.len().min(residual.len() - at);

    let energy_before: f32 = kernels::energy_f32(&residual[at..at + n]);

    // --- Residual CFO estimation: the transmitter's crystal error
    // makes the received frame rotate against the CFO-free reference.
    // Track the phase of <residual, reference> over short blocks and
    // fit a weighted linear slope; 256-sample blocks resolve CFOs up to
    // ~2 kHz at 1 Msps without unwrap ambiguity.
    let track = 256usize.min(n.max(1));
    let mut phases: Vec<(f32, f32, f32)> = Vec::new(); // (t, phase, weight)
    let mut k = 0;
    while k + track <= n {
        let num = kernels::dot_conj(&residual[at + k..at + k + track], &reference[k..k + track]);
        if num.abs() > 0.0 {
            phases.push(((k + track / 2) as f32, num.arg(), num.abs()));
        }
        k += track;
    }
    let omega = if phases.len() >= 2 {
        // Unwrap, then weighted least squares through the points.
        let mut unwrapped = Vec::with_capacity(phases.len());
        let mut prev = phases[0].1;
        let mut acc = phases[0].1;
        unwrapped.push(acc);
        for p in &phases[1..] {
            let mut d = p.1 - prev;
            while d > std::f32::consts::PI {
                d -= std::f32::consts::TAU;
            }
            while d < -std::f32::consts::PI {
                d += std::f32::consts::TAU;
            }
            acc += d;
            prev = p.1;
            unwrapped.push(acc);
        }
        let wsum: f32 = phases.iter().map(|p| p.2).sum();
        let tm: f32 = phases.iter().map(|p| p.0 * p.2).sum::<f32>() / wsum;
        let pm: f32 = unwrapped
            .iter()
            .zip(&phases)
            .map(|(&u, p)| u * p.2)
            .sum::<f32>()
            / wsum;
        let mut num_s = 0.0f32;
        let mut den_s = 0.0f32;
        for (&u, p) in unwrapped.iter().zip(&phases) {
            num_s += p.2 * (p.0 - tm) * (u - pm);
            den_s += p.2 * (p.0 - tm) * (p.0 - tm);
        }
        if den_s > 0.0 {
            num_s / den_s
        } else {
            0.0
        }
    } else {
        0.0
    };

    // Derotate the reference by the estimated CFO, then subtract with
    // per-block complex gains (which absorb amplitude, phase and any
    // residual drift the linear fit missed).
    let reference: Vec<Cf32> = reference
        .iter()
        .enumerate()
        .map(|(i, &r)| r * Cf32::cis(omega * i as f32))
        .collect();
    let block = (n / 16).clamp(256, 2048).min(n.max(1));
    let mut k = 0;
    let mut gain_acc = Cf32::ZERO;
    let mut gain_w = 0.0f32;
    while k < n {
        let end = (k + block).min(n);
        let num = kernels::dot_conj(&residual[at + k..at + end], &reference[k..end]);
        let den = kernels::energy_f32(&reference[k..end]);
        if den > 0.0 {
            let g = num / den;
            gain_acc += g * den;
            gain_w += den;
            kernels::sub_scaled(&mut residual[at + k..at + end], &reference[k..end], g);
        }
        k = end;
    }
    let energy_after: f32 = kernels::energy_f32(&residual[at..at + n]);
    Some(CancelReport {
        aligned_at: at,
        energy_before,
        energy_after,
        mean_gain: if gain_w > 0.0 {
            gain_acc / gain_w
        } else {
            Cf32::ZERO
        },
        cfo_rad_per_sample: omega,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use galiot_channel::{compose, snr_to_noise_power, Impairments, TxEvent};
    use galiot_phy::registry::Registry;
    use galiot_phy::TechId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FS: f64 = 1_000_000.0;

    #[test]
    fn clean_frame_cancels_deeply() {
        let mut rng = StdRng::seed_from_u64(1);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let ev = TxEvent::new(xbee.clone(), vec![5; 10], 8_000);
        let cap = compose(&[ev], 80_000, FS, 0.0, &mut rng);
        let frame = xbee.demodulate(&cap.samples, FS).unwrap();
        let mut residual = cap.samples.clone();
        let rep = cancel_frame(&mut residual, xbee.as_ref(), &frame, FS, 64).unwrap();
        assert!(
            rep.suppression_db() > 25.0,
            "only {} dB",
            rep.suppression_db()
        );
    }

    #[test]
    fn cancellation_survives_phase_and_gain() {
        let mut rng = StdRng::seed_from_u64(2);
        let reg = Registry::prototype();
        let zwave = reg.get(TechId::ZWave).unwrap().clone();
        let imp = Impairments {
            phase: 1.1,
            ..Impairments::clean()
        };
        let ev = TxEvent::new(zwave.clone(), vec![9; 6], 4_000)
            .with_power_db(-7.0)
            .with_impairments(imp);
        let cap = compose(&[ev], 80_000, FS, 0.0, &mut rng);
        let frame = zwave.demodulate(&cap.samples, FS).unwrap();
        let mut residual = cap.samples.clone();
        let rep = cancel_frame(&mut residual, zwave.as_ref(), &frame, FS, 64).unwrap();
        assert!(
            rep.suppression_db() > 20.0,
            "only {} dB",
            rep.suppression_db()
        );
    }

    #[test]
    fn cancellation_with_moderate_cfo_still_suppresses() {
        let mut rng = StdRng::seed_from_u64(3);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let imp = Impairments {
            cfo_hz: 300.0,
            phase: 0.4,
            ..Impairments::clean()
        };
        let ev = TxEvent::new(xbee.clone(), vec![3; 8], 2_000).with_impairments(imp);
        let cap = compose(&[ev], 60_000, FS, 0.0, &mut rng);
        let frame = xbee.demodulate(&cap.samples, FS).unwrap();
        let mut residual = cap.samples.clone();
        let rep = cancel_frame(&mut residual, xbee.as_ref(), &frame, FS, 64).unwrap();
        assert!(
            rep.suppression_db() > 10.0,
            "only {} dB",
            rep.suppression_db()
        );
    }

    #[test]
    fn cancelling_one_of_two_leaves_the_other() {
        let mut rng = StdRng::seed_from_u64(4);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let zwave = reg.get(TechId::ZWave).unwrap().clone();
        // Far apart in time so both decode cleanly.
        let events = vec![
            TxEvent::new(xbee.clone(), vec![1; 8], 2_000),
            TxEvent::new(zwave.clone(), vec![2; 8], 60_000),
        ];
        let np = snr_to_noise_power(30.0, 0.0);
        let cap = compose(&events, 160_000, FS, np, &mut rng);
        let frame = xbee.demodulate(&cap.samples, FS).unwrap();
        let mut residual = cap.samples.clone();
        cancel_frame(&mut residual, xbee.as_ref(), &frame, FS, 64).unwrap();
        // Z-Wave must still decode from the residual.
        let z = zwave.demodulate(&residual, FS).expect("zwave survives");
        assert_eq!(z.payload, vec![2; 8]);
        // And XBee must now be gone.
        assert!(xbee.demodulate(&residual, FS).is_err());
    }

    #[test]
    fn refuses_empty_or_misplaced() {
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let frame = DecodedFrame {
            tech: TechId::XBee,
            payload: vec![1],
            start: 1_000_000, // far outside
            len: 100,
        };
        let mut residual = vec![Cf32::ZERO; 1_000];
        assert!(cancel_frame(&mut residual, xbee.as_ref(), &frame, FS, 64).is_none());
        let mut empty: Vec<Cf32> = Vec::new();
        assert!(cancel_frame(&mut empty, xbee.as_ref(), &frame, FS, 64).is_none());
    }
}
