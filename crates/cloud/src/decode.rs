//! Algorithm 1 — `CloudDecode` (paper, Sec. 5).
//!
//! The full GalioT cloud decoder: power-ordered decoding with
//! reconstruct-and-subtract (SIC), and — where SIC stalls — the kill
//! filters: remove the weakest orthogonal technology by its modulation
//! class, decode the survivors, then cancel *their* reconstructed
//! waveforms from the original residual so the killed technology itself
//! becomes recoverable. Decode order depends only on power, never on
//! technology, exactly as the paper requires.

use galiot_dsp::Cf32;
use galiot_phy::registry::Registry;
use galiot_phy::{DecodedFrame, TechId};

use crate::cancel::cancel_frame;
use crate::classify::{classify, Classified};
use crate::kill::apply_kill;

/// Cloud decoder tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct CloudParams {
    /// Classification (preamble correlation) threshold.
    pub classify_threshold: f32,
    /// Alignment slack for cancellation, in samples.
    pub cancel_slack: usize,
    /// Hard bound on decode rounds.
    pub max_rounds: usize,
}

impl Default for CloudParams {
    fn default() -> Self {
        CloudParams {
            classify_threshold: 0.12,
            cancel_slack: 64,
            max_rounds: 12,
        }
    }
}

/// How one frame was recovered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recovery {
    /// Decoded directly from the residual (plain SIC round).
    Direct,
    /// Decoded after applying the kill filter of `victim`.
    AfterKill {
        /// The technology whose kill filter unlocked the decode.
        victim: TechId,
    },
}

/// Result of a CloudDecode run.
#[derive(Clone, Debug, Default)]
pub struct CloudResult {
    /// Frames recovered, with how each was obtained.
    pub frames: Vec<(DecodedFrame, Recovery)>,
    /// Decode rounds executed.
    pub rounds: usize,
    /// Number of kill-filter applications.
    pub kills: usize,
}

impl CloudResult {
    /// Just the decoded frames.
    pub fn decoded(&self) -> Vec<&DecodedFrame> {
        self.frames.iter().map(|(f, _)| f).collect()
    }

    /// Total payload bits recovered.
    pub fn payload_bits(&self) -> usize {
        self.frames.iter().map(|(f, _)| f.payload.len() * 8).sum()
    }
}

/// The GalioT cloud decoder.
pub struct CloudDecoder {
    registry: Registry,
    params: CloudParams,
}

impl CloudDecoder {
    /// Creates a decoder over a registry with default parameters.
    pub fn new(registry: Registry) -> Self {
        CloudDecoder {
            registry,
            params: CloudParams::default(),
        }
    }

    /// Creates a decoder with explicit parameters.
    pub fn with_params(registry: Registry, params: CloudParams) -> Self {
        CloudDecoder { registry, params }
    }

    /// The registry in use.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Runs Algorithm 1 on a segment.
    ///
    /// Per decode round, following the paper's pseudo-code line by
    /// line: pick the highest-powered classified signal `S_i` (step 4);
    /// try to decode it directly (step 5) and cancel it on success
    /// (step 6 — SIC). If that fails, take the *least*-powered other
    /// signal `S_j` (step 7), apply the kill filter matching `S_j`'s
    /// modulation class (steps 8-13), and retry `S_i` on the killed
    /// copy — moving to the next-least `S_j` while that fails
    /// (step 14). If `S_i` is unrecoverable under every kill, move to
    /// the next-highest-powered `S_i` and repeat (steps 15-16).
    pub fn decode(&self, segment: &[Cf32], fs: f64) -> CloudResult {
        let mut residual = segment.to_vec();
        let mut result = CloudResult::default();
        let mut already: Vec<(TechId, Vec<u8>)> = Vec::new();

        while result.rounds < self.params.max_rounds {
            // One span per *successful* round, so the sic_round
            // histogram count reconciles exactly with `rounds`; the
            // final nothing-left probe is discarded.
            let round_span =
                galiot_trace::span(galiot_trace::Stage::SicRound, galiot_trace::NO_SEQ);
            let candidates = classify(
                &residual,
                fs,
                &self.registry,
                self.params.classify_threshold,
            );
            if candidates.is_empty() {
                round_span.discard();
                break;
            }
            let mut round: Option<(DecodedFrame, Recovery)> = None;
            // Steps 4/15-16: S_i in descending power order.
            's_i: for (i, s_i) in candidates.iter().enumerate() {
                // Step 5: direct decode of S_i.
                if let Some(frame) = self.try_decode(&residual, s_i, &already, fs) {
                    if cancel_frame(
                        &mut residual,
                        self.registry.get(s_i.tech).unwrap().as_ref(),
                        &frame,
                        fs,
                        self.params.cancel_slack,
                    )
                    .is_some()
                    {
                        round = Some((frame, Recovery::Direct));
                        break 's_i;
                    }
                }
                // Steps 7-14: kill the least-powered other signal and
                // retry S_i; escalate victims while it keeps failing.
                for (j, s_j) in candidates.iter().enumerate().rev() {
                    if i == j {
                        continue;
                    }
                    let Some(vtech) = self.registry.get(s_j.tech) else {
                        continue;
                    };
                    let span_end = s_j.start + vtech.max_frame_samples(fs);
                    let killed = apply_kill(
                        &residual,
                        fs,
                        vtech.as_ref(),
                        s_j.start,
                        s_j.start..span_end.min(residual.len()),
                    );
                    result.kills += 1;
                    if let Some(frame) = self.try_decode(&killed, s_i, &already, fs) {
                        // Cancel from the *original* residual (not the
                        // killed copy) so S_j's own signal is preserved
                        // for later rounds.
                        if cancel_frame(
                            &mut residual,
                            self.registry.get(s_i.tech).unwrap().as_ref(),
                            &frame,
                            fs,
                            self.params.cancel_slack,
                        )
                        .is_some()
                        {
                            round = Some((frame, Recovery::AfterKill { victim: s_j.tech }));
                            break 's_i;
                        }
                    }
                }
            }
            match round {
                Some((frame, how)) => {
                    already.push((frame.tech, frame.payload.clone()));
                    result.frames.push((frame, how));
                    result.rounds += 1;
                }
                None => {
                    round_span.discard();
                    break;
                }
            }
        }
        result
    }

    /// Attempts to decode one classified signal, rejecting duplicates.
    fn try_decode(
        &self,
        samples: &[Cf32],
        cand: &Classified,
        already: &[(TechId, Vec<u8>)],
        fs: f64,
    ) -> Option<DecodedFrame> {
        let tech = self.registry.get(cand.tech)?;
        let frame = tech.demodulate(samples, fs).ok()?;
        if already
            .iter()
            .any(|(t, p)| *t == frame.tech && *p == frame.payload)
        {
            return None;
        }
        Some(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galiot_channel::{compose, forced_collision, snr_to_noise_power, TxEvent};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FS: f64 = 1_000_000.0;

    fn payloads(result: &CloudResult) -> Vec<(TechId, Vec<u8>)> {
        result
            .frames
            .iter()
            .map(|(f, _)| (f.tech, f.payload.clone()))
            .collect()
    }

    #[test]
    fn decodes_single_clean_frame() {
        let mut rng = StdRng::seed_from_u64(1);
        let reg = Registry::prototype();
        let zwave = reg.get(TechId::ZWave).unwrap().clone();
        let ev = TxEvent::new(zwave, vec![4, 4, 4], 3_000);
        let np = snr_to_noise_power(15.0, 0.0);
        let cap = compose(&[ev], 80_000, FS, np, &mut rng);
        let dec = CloudDecoder::new(reg);
        let res = dec.decode(&cap.samples, FS);
        assert_eq!(res.frames.len(), 1);
        assert_eq!(res.frames[0].0.payload, vec![4, 4, 4]);
        assert_eq!(res.frames[0].1, Recovery::Direct);
    }

    #[test]
    fn resolves_equal_power_lora_xbee_collision_via_kill() {
        let mut rng = StdRng::seed_from_u64(2);
        let reg = Registry::prototype();
        let lora = reg.get(TechId::LoRa).unwrap().clone();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let pl_l = vec![0x11u8; 10];
        let pl_x = vec![0x22u8; 12];
        let events = vec![
            TxEvent::new(lora, pl_l.clone(), 0),
            TxEvent::new(xbee, pl_x.clone(), 25_000),
        ];
        let np = snr_to_noise_power(25.0, 0.0);
        let cap = compose(&events, 400_000, FS, np, &mut rng);
        let dec = CloudDecoder::new(reg);
        let res = dec.decode(&cap.samples, FS);
        let got = payloads(&res);
        assert!(got.contains(&(TechId::LoRa, pl_l)), "{got:?}");
        assert!(got.contains(&(TechId::XBee, pl_x)), "{got:?}");
    }

    #[test]
    fn resolves_three_way_prototype_collision() {
        // The paper's headline scenario: LoRa, XBee and Z-Wave all
        // overlapping at comparable power.
        let mut rng = StdRng::seed_from_u64(3);
        let reg = Registry::prototype();
        let events = forced_collision(&reg, 8, &[0.0, -1.0, -2.0], 5_000, 4_096, &mut rng);
        let truth: Vec<(TechId, Vec<u8>)> = events
            .iter()
            .map(|e| (e.tech.id(), e.payload.clone()))
            .collect();
        let np = snr_to_noise_power(25.0, 0.0);
        let cap = compose(&events, 500_000, FS, np, &mut rng);
        let dec = CloudDecoder::new(reg);
        let res = dec.decode(&cap.samples, FS);
        let got = payloads(&res);
        let hits = truth.iter().filter(|t| got.contains(t)).count();
        assert!(hits >= 2, "only {hits}/3 recovered: {got:?}");
    }

    #[test]
    fn kill_recovery_is_attributed() {
        // XBee buried under LoRa at equal power is only recoverable
        // after KILL-CSS; the result must say so.
        let mut rng = StdRng::seed_from_u64(4);
        let reg = Registry::prototype();
        let lora = reg.get(TechId::LoRa).unwrap().clone();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let events = vec![
            TxEvent::new(lora, vec![0xEE; 10], 0),
            TxEvent::new(xbee, vec![0x77; 12], 30_000),
        ];
        let np = snr_to_noise_power(30.0, 0.0);
        let cap = compose(&events, 400_000, FS, np, &mut rng);
        let dec = CloudDecoder::new(reg);
        let res = dec.decode(&cap.samples, FS);
        let xbee_rec = res
            .frames
            .iter()
            .find(|(f, _)| f.tech == TechId::XBee)
            .map(|(_, r)| *r);
        match xbee_rec {
            Some(Recovery::AfterKill { victim }) => assert_eq!(victim, TechId::LoRa),
            Some(Recovery::Direct) => {
                // Acceptable only if LoRa was decoded and cancelled first.
                assert_eq!(res.frames[0].0.tech, TechId::LoRa);
            }
            None => panic!("XBee not recovered: {:?}", res.frames),
        }
        assert!(res.payload_bits() > 0);
    }

    #[test]
    fn noise_only_returns_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        let reg = Registry::prototype();
        let noise = galiot_channel::awgn(200_000, 1.0, &mut rng);
        let dec = CloudDecoder::new(reg);
        let res = dec.decode(&noise, FS);
        assert!(res.frames.is_empty());
    }

    #[test]
    fn outperforms_sic_on_comparable_power_collision() {
        // The quantitative heart of Fig. 3(c): count frames recovered
        // by SIC alone vs CloudDecode over several comparable-power
        // collisions.
        let reg = Registry::prototype();
        let mut sic_total = 0usize;
        let mut galiot_total = 0usize;
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            // XBee a hair stronger than LoRa: strict SIC must decode
            // XBee first, fails under the comparable-power LoRa, and
            // stalls; Algorithm 1 kills LoRa and recovers both.
            let events = forced_collision(&reg, 8, &[0.0, 1.0], 20_000, 4_096, &mut rng);
            let truth: Vec<(TechId, Vec<u8>)> = events
                .iter()
                .map(|e| (e.tech.id(), e.payload.clone()))
                .collect();
            let np = snr_to_noise_power(25.0, 0.0);
            let cap = compose(&events, 500_000, FS, np, &mut rng);
            let sic =
                crate::sic::sic_decode(&cap.samples, FS, &reg, &crate::sic::SicParams::default());
            let gal = CloudDecoder::new(reg.clone()).decode(&cap.samples, FS);
            sic_total += sic
                .frames
                .iter()
                .filter(|f| truth.contains(&(f.tech, f.payload.clone())))
                .count();
            galiot_total += payloads(&gal).iter().filter(|t| truth.contains(t)).count();
        }
        assert!(
            galiot_total > sic_total,
            "GalioT {galiot_total} vs SIC {sic_total}"
        );
    }
}
