//! Signal classification at the cloud.
//!
//! The gateway deliberately does not learn which technologies are
//! inside a detection (paper, Sec. 4, "can outsource this task to the
//! cloud"). The cloud identifies them by correlating the segment
//! against each technology's own preamble and estimating per-signal
//! received power from the matched-filter response.

use galiot_dsp::kernels;
use galiot_dsp::Cf32;
use galiot_phy::registry::Registry;
use galiot_phy::TechId;

/// One classified signal inside a segment.
#[derive(Clone, Copy, Debug)]
pub struct Classified {
    /// Which technology.
    pub tech: TechId,
    /// Sample offset of its preamble inside the segment.
    pub start: usize,
    /// Normalized correlation score in [0, 1].
    pub score: f32,
    /// Estimated received amplitude (linear) from the matched filter.
    pub amplitude: f32,
}

impl Classified {
    /// Estimated received power (linear).
    pub fn power(&self) -> f32 {
        self.amplitude * self.amplitude
    }
}

/// Classifies the technologies present in a segment.
///
/// Returns one entry per technology whose preamble correlation exceeds
/// `threshold`, sorted by estimated power, strongest first — the decode
/// order of Algorithm 1 ("dependent only on the power of the signal").
pub fn classify(segment: &[Cf32], fs: f64, registry: &Registry, threshold: f32) -> Vec<Classified> {
    let mut found = Vec::new();
    // One template bank per (registry, fs): preamble waveforms and
    // their forward FFTs are synthesized once, not per classify call.
    let bank = registry.template_bank(fs);
    for (i, tech) in registry.techs().iter().enumerate() {
        let template = bank.template(i);
        if template.len() > segment.len() || template.is_empty() {
            continue;
        }
        let ncc = template.xcorr_normalized(segment);
        let Some((start, score)) = ncc
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &v)| (i, v))
        else {
            continue;
        };
        if score < threshold {
            continue;
        }
        // Amplitude from the raw matched-filter output at the peak:
        // corr = a * E_template for a scaled template copy. A direct
        // dot product at the known lag beats an FFT correlation whose
        // only used output is lag zero.
        let h = template.waveform();
        let end = (start + h.len()).min(segment.len());
        let dot = kernels::dot_conj(&segment[start..end], h);
        let e = template.energy();
        let amplitude = if e > 0.0 { dot.abs() / e } else { 0.0 };
        found.push(Classified {
            tech: tech.id(),
            start,
            score,
            amplitude,
        });
    }
    found.sort_by(|a, b| b.amplitude.total_cmp(&a.amplitude));
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use galiot_channel::{compose, forced_collision, snr_to_noise_power, TxEvent};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FS: f64 = 1_000_000.0;

    #[test]
    fn single_tech_is_identified() {
        let mut rng = StdRng::seed_from_u64(1);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let ev = TxEvent::new(xbee, vec![1, 2, 3], 10_000);
        let np = snr_to_noise_power(10.0, 0.0);
        let cap = compose(&[ev], 100_000, FS, np, &mut rng);
        let found = classify(&cap.samples, FS, &reg, 0.3);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].tech, TechId::XBee);
        assert!(found[0].start.abs_diff(10_000) <= 4);
        // Unit-power transmit: amplitude near 1.
        assert!(
            (found[0].amplitude - 1.0).abs() < 0.2,
            "{}",
            found[0].amplitude
        );
    }

    #[test]
    fn collision_members_are_all_identified() {
        let mut rng = StdRng::seed_from_u64(2);
        let reg = Registry::prototype();
        let events = forced_collision(&reg, 8, &[0.0, 0.0, 0.0], 3_000, 10_000, &mut rng);
        let np = snr_to_noise_power(15.0, 0.0);
        let cap = compose(&events, 400_000, FS, np, &mut rng);
        let found = classify(&cap.samples, FS, &reg, 0.15);
        let ids: Vec<TechId> = found.iter().map(|c| c.tech).collect();
        for want in [TechId::LoRa, TechId::XBee, TechId::ZWave] {
            assert!(ids.contains(&want), "{want} missing from {ids:?}");
        }
    }

    #[test]
    fn ordering_follows_power() {
        let mut rng = StdRng::seed_from_u64(3);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let zwave = reg.get(TechId::ZWave).unwrap().clone();
        let events = vec![
            TxEvent::new(xbee, vec![1; 8], 5_000).with_power_db(-10.0),
            TxEvent::new(zwave, vec![2; 8], 60_000).with_power_db(0.0),
        ];
        let np = snr_to_noise_power(20.0, -10.0);
        let cap = compose(&events, 200_000, FS, np, &mut rng);
        let found = classify(&cap.samples, FS, &reg, 0.2);
        assert!(found.len() >= 2, "{found:?}");
        assert_eq!(found[0].tech, TechId::ZWave, "strongest first");
        assert!(found[0].amplitude > found[1].amplitude);
    }

    #[test]
    fn noise_only_yields_nothing() {
        let mut rng = StdRng::seed_from_u64(4);
        let reg = Registry::prototype();
        let noise = galiot_channel::awgn(200_000, 1.0, &mut rng);
        let found = classify(&noise, FS, &reg, 0.3);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn short_segment_is_handled() {
        let reg = Registry::prototype();
        let found = classify(&[Cf32::ZERO; 100], FS, &reg, 0.3);
        assert!(found.is_empty());
    }
}
