//! The "kill" filters (paper, Sec. 5): modulation-aware removal of one
//! technology from a collision so the others become decodable — the
//! step that lets GalioT proceed where plain SIC stalls.

use galiot_dsp::fft::Fft;
use galiot_dsp::kernels;
use galiot_dsp::mix::mix;
use galiot_dsp::spectral::{suppress_bands, Band};
use galiot_dsp::Cf32;
use galiot_phy::common::KillRecipe;
use galiot_phy::Technology;

/// KILL-FREQUENCY: suppress the spectral bands where an FSK/PSK
/// technology concentrates its energy.
pub fn kill_frequency(samples: &[Cf32], fs: f64, bands: &[Band]) -> Vec<Cf32> {
    suppress_bands(samples, fs, bands)
}

/// Adaptive KILL-FREQUENCY: *learns* where the interference
/// concentrates instead of using a registry recipe — the first step
/// toward the paper's "generalized set of filters that span a
/// wide-range of available IoT radio technologies" (Sec. 5).
///
/// Estimates the PSD of `span` (Welch) and suppresses the bands that
/// stand `threshold_factor` above the 90th-percentile bin power.
/// Referencing a high percentile — rather than the median/noise floor —
/// makes any co-channel *wideband* signal's plateau the baseline, so
/// only energy that genuinely concentrates (the KILL-FREQUENCY class)
/// is removed and a spread-spectrum victim is never notched to death.
/// Returns the filtered samples and the learned bands.
pub fn kill_frequency_adaptive(
    samples: &[Cf32],
    fs: f64,
    span: std::ops::Range<usize>,
    threshold_factor: f32,
) -> (Vec<Cf32>, Vec<Band>) {
    let lo = span.start.min(samples.len());
    let hi = span.end.min(samples.len());
    if hi <= lo {
        return (samples.to_vec(), Vec::new());
    }
    let psd = galiot_dsp::psd::welch_psd(&samples[lo..hi], fs, 1024);
    let threshold = psd.percentile(90) * threshold_factor;
    let candidates =
        galiot_dsp::psd::find_bands_above(&psd, threshold, 4.0 * fs / 1024.0, fs / 1024.0);
    // Keep the densest bands up to a total-width budget.
    let budget = 0.4 * fs;
    let mut width = 0.0;
    let mut bands = Vec::new();
    for b in candidates {
        if width + b.width() > budget {
            continue;
        }
        width += b.width();
        bands.push(b);
    }
    if bands.is_empty() {
        return (samples.to_vec(), bands);
    }
    (suppress_bands(samples, fs, &bands), bands)
}

/// KILL-CSS: collapse a CSS signal to narrowband tones by multiplying
/// with the inverted elementary chirp, notch the tones, and restore the
/// rest of the spectrum by re-chirping (Sec. 5, filter 2).
///
/// * `grid_start` — the classifier's estimate of the CSS frame's
///   preamble start (anchors the symbol grid).
/// * `span` — the region to process (the classified frame extent);
///   samples outside are untouched.
/// * `head_symbols` / `sfd_symbols` — the frame anatomy from the
///   [`KillRecipe`]: up-chirp symbols at the head, whole down-chirp
///   SFD symbols (followed by a quarter symbol), after which the data
///   grid runs shifted by that quarter.
///
/// Per window the two strongest dechirped tone clusters (a cyclically
/// shifted chirp folds into a main tone plus its wrap-around alias)
/// are zeroed with a small guard band.
#[allow(clippy::too_many_arguments)]
pub fn kill_css(
    samples: &[Cf32],
    fs: f64,
    bw: f64,
    sf: u32,
    center_offset_hz: f64,
    grid_start: usize,
    span: std::ops::Range<usize>,
    head_symbols: usize,
    sfd_symbols: usize,
) -> Vec<Cf32> {
    let os = (fs / bw).round() as usize;
    if os == 0 || (fs / bw - os as f64).abs() > 1e-9 {
        // Cannot form a symbol grid: return input unchanged.
        return samples.to_vec();
    }
    let sps = os << sf;
    if samples.len() < sps {
        return samples.to_vec();
    }
    let mut base = if center_offset_hz != 0.0 {
        mix(samples, -center_offset_hz, fs)
    } else {
        samples.to_vec()
    };
    let down = galiot_dsp::chirp::downchirp(bw, sps, fs);
    let up = galiot_dsp::chirp::upchirp(bw, sps, fs);
    let plan = galiot_dsp::engine::plan(sps.next_power_of_two());

    let lo = span.start.min(base.len());
    let hi = span.end.min(base.len());

    // Head (preamble + sync): up-chirps aligned to grid_start.
    let head_end = (grid_start + head_symbols * sps).min(hi);
    dechirp_notch_pass(&mut base, &down, &up, &plan, os, grid_start, lo..head_end);
    // SFD: whole down-chirps right after the head...
    let sfd_start = grid_start + head_symbols * sps;
    let sfd_end = (sfd_start + sfd_symbols * sps).min(hi);
    dechirp_notch_pass(
        &mut base,
        &up,
        &down,
        &plan,
        os,
        sfd_start,
        sfd_start.min(hi)..sfd_end,
    );
    // ...plus one quarter-shifted window that catches the trailing
    // quarter down-chirp (it up-dechirps to a tone alongside whatever
    // tail of the previous down-chirp remains).
    let tail_grid = sfd_start + sfd_symbols * sps - (3 * sps) / 4;
    let tail_end = (tail_grid + sps).min(hi);
    dechirp_notch_pass(
        &mut base,
        &up,
        &down,
        &plan,
        os,
        tail_grid,
        tail_grid.min(hi)..tail_end,
    );
    // Data: up-chirp symbols on the quarter-shifted grid.
    let data_start = sfd_start + sfd_symbols * sps + sps / 4;
    dechirp_notch_pass(
        &mut base,
        &down,
        &up,
        &plan,
        os,
        data_start,
        data_start.min(hi)..hi,
    );

    if center_offset_hz != 0.0 {
        mix(&base, center_offset_hz, fs)
    } else {
        base
    }
}

/// One dechirp-project-rechirp pass over symbol-grid windows.
///
/// Multiplying a window by `fwd` (the conjugate of the chirp family to
/// kill) collapses an aligned, cyclically-shifted chirp into *two tone
/// segments*: frequency `f1` until the chirp's wrap instant, then
/// `f2 = f1 - sign * bw` for the remainder, where
/// `t_wrap = T (1 - sign * f1 / bw)` and `sign` is +1 when killing
/// up-chirps with a down-chirp and −1 for the converse. Each tone is
/// removed by exact least-squares projection over its own segment —
/// unlike FFT-bin notching this leaves no spectral leakage from the
/// mid-window transition.
///
/// A window is only touched while its strongest dechirped bin
/// genuinely dominates (a collapsed chirp is a near-pure tone; any
/// other signal dechirps to spread energy), which keeps the filter
/// from shredding collision survivors.
#[allow(clippy::too_many_arguments)]
fn dechirp_notch_pass(
    base: &mut [Cf32],
    fwd: &[Cf32],
    inv: &[Cf32],
    plan: &Fft,
    os: usize,
    grid_start: usize,
    span: std::ops::Range<usize>,
) {
    let sps = fwd.len();
    let padded = plan.len();
    // `fwd` is a down-chirp (sweeping high -> low) when killing
    // up-chirps. Orientation comes from the *sweep direction*: the
    // instantaneous frequency at the start versus the end of `fwd`.
    let d0 = (fwd[1] * fwd[0].conj()).arg();
    let d1 = (fwd[sps - 1] * fwd[sps - 2].conj()).arg();
    let sign = if d0 > d1 { 1.0f64 } else { -1.0 };
    let bw_norm = 1.0 / os as f64; // bw / fs
    let lo = span.start.min(base.len());
    let hi = span.end.min(base.len());
    let phase = grid_start % sps;
    let mut w = if lo <= phase {
        phase
    } else {
        phase + ((lo - phase).div_ceil(sps)) * sps
    };
    let mut buf = vec![Cf32::ZERO; padded];
    while w + sps <= hi {
        let mut d: Vec<Cf32> = base[w..w + sps].to_vec();
        kernels::mul_in_place(&mut d, fwd);
        let mut any = false;
        for _ in 0..2 {
            buf[..sps].copy_from_slice(&d);
            for b in buf.iter_mut().skip(sps) {
                *b = Cf32::ZERO;
            }
            plan.forward(&mut buf);
            let total: f32 = kernels::energy_f32(&buf);
            if total <= 0.0 {
                break;
            }
            let peak = galiot_dsp::fft::peak_bin(&buf);
            if buf[peak].norm_sqr() / total < 0.04 {
                break;
            }
            // Fine frequency via parabolic interpolation of the
            // magnitude around the peak (cyclic neighbours).
            let m = |b: usize| buf[b % padded].abs();
            let (ml, mc, mr) = (m(peak + padded - 1), m(peak), m(peak + 1));
            let denom = ml - 2.0 * mc + mr;
            let delta = if denom.abs() > 1e-12 {
                (0.5 * (ml - mr) / denom).clamp(-0.5, 0.5)
            } else {
                0.0
            };
            // Normalized frequency (cycles/sample) of the peak tone.
            let fb = {
                let b = peak as f64 + delta as f64;
                let b = if b > padded as f64 / 2.0 {
                    b - padded as f64
                } else {
                    b
                };
                b / padded as f64
            };
            // Map to the first-segment tone f1 with sign*f1 in [0, bw).
            let f1 = if sign * fb >= 0.0 {
                fb
            } else {
                fb + sign * bw_norm
            };
            let f2 = f1 - sign * bw_norm;
            let frac = (sign * f1 / bw_norm).clamp(0.0, 1.0);
            let t_wrap = ((1.0 - frac) * sps as f64).round() as usize;
            project_out_tone(&mut d[..t_wrap.min(sps)], f1);
            if t_wrap < sps {
                project_out_tone(&mut d[t_wrap..], f2);
            }
            any = true;
        }
        if any {
            kernels::mul_in_place(&mut d, inv);
            base[w..w + sps].copy_from_slice(&d);
        }
        w += sps;
    }
}

/// Removes the least-squares projection of `seg` onto the unit tone
/// `e^{i 2 pi f n}` (`f` in cycles/sample).
fn project_out_tone(seg: &mut [Cf32], f: f64) {
    if seg.is_empty() {
        return;
    }
    let step = 2.0 * std::f64::consts::PI * f;
    let mut ph = 0.0f64;
    let phasors: Vec<Cf32> = (0..seg.len())
        .map(|_| {
            let p = Cf32::cis(ph as f32);
            ph += step;
            if ph > std::f64::consts::TAU {
                ph -= std::f64::consts::TAU;
            } else if ph < -std::f64::consts::TAU {
                ph += std::f64::consts::TAU;
            }
            p
        })
        .collect();
    let num = kernels::dot_conj(seg, &phasors);
    let g = num / seg.len() as f32;
    kernels::sub_scaled(seg, &phasors, g);
}

/// KILL-CODES: for each code-symbol window, project the signal onto the
/// best-matching code reference and subtract the projection (Sec. 5,
/// filter 3). Works whether or not the coded frame itself is decodable.
pub fn kill_codes(
    samples: &[Cf32],
    fs: f64,
    refs: &[Vec<Cf32>],
    sps: usize,
    center_offset_hz: f64,
    grid_start: usize,
    span: std::ops::Range<usize>,
) -> Vec<Cf32> {
    if refs.is_empty() || sps == 0 || samples.len() < sps {
        return samples.to_vec();
    }
    let mut base = if center_offset_hz != 0.0 {
        mix(samples, -center_offset_hz, fs)
    } else {
        samples.to_vec()
    };
    let lo = span.start.min(base.len());
    let hi = span.end.min(base.len());
    let phase = grid_start % sps;
    let mut w = if lo <= phase {
        phase
    } else {
        phase + ((lo - phase).div_ceil(sps)) * sps
    };
    while w + sps <= hi {
        // Best-matching reference by normalized projection energy.
        let mut best: Option<(usize, Cf32)> = None;
        let mut best_metric = 0.0f32;
        for (ri, r) in refs.iter().enumerate() {
            let n = sps.min(r.len());
            let num = kernels::dot_conj(&base[w..w + n], &r[..n]);
            let den = kernels::energy_f32(&r[..n]);
            if den <= 0.0 {
                continue;
            }
            let metric = num.norm_sqr() / den;
            if metric > best_metric {
                best_metric = metric;
                best = Some((ri, num / den));
            }
        }
        if let Some((ri, g)) = best {
            let r = &refs[ri];
            let n = sps.min(r.len());
            kernels::sub_scaled(&mut base[w..w + n], &r[..n], g);
        }
        w += sps;
    }
    if center_offset_hz != 0.0 {
        mix(&base, center_offset_hz, fs)
    } else {
        base
    }
}

/// Applies the kill filter of `tech` to a segment.
///
/// `grid_start` is the classifier's estimate of where the victim's
/// frame begins (its symbol grid anchor); `span` bounds the processing
/// to the victim's extent.
pub fn apply_kill(
    samples: &[Cf32],
    fs: f64,
    tech: &dyn Technology,
    grid_start: usize,
    span: std::ops::Range<usize>,
) -> Vec<Cf32> {
    let _span = galiot_trace::span(galiot_trace::Stage::KillFilter, galiot_trace::NO_SEQ);
    match tech.kill_recipe(fs) {
        KillRecipe::Frequency(bands) => kill_frequency(samples, fs, &bands),
        KillRecipe::Css {
            bw,
            sf,
            center_offset_hz,
            head_symbols,
            sfd_symbols,
        } => kill_css(
            samples,
            fs,
            bw,
            sf,
            center_offset_hz,
            grid_start,
            span,
            head_symbols,
            sfd_symbols,
        ),
        KillRecipe::Codes {
            refs,
            sps,
            center_offset_hz,
        } => kill_codes(samples, fs, &refs, sps, center_offset_hz, grid_start, span),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galiot_channel::{compose, TxEvent};
    use galiot_dsp::power::mean_power;
    use galiot_phy::dsss::{DsssParams, DsssPhy};
    use galiot_phy::lora::{LoraParams, LoraPhy};
    use galiot_phy::registry::Registry;
    use galiot_phy::xbee::{XbeeParams, XbeePhy};
    use galiot_phy::TechId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    const FS: f64 = 1_000_000.0;

    fn suppression_db(before: &[Cf32], after: &[Cf32], span: std::ops::Range<usize>) -> f32 {
        let b = mean_power(&before[span.clone()]);
        let a = mean_power(&after[span]);
        10.0 * (b / a.max(1e-20)).log10()
    }

    #[test]
    fn kill_frequency_removes_fsk() {
        let mut rng = StdRng::seed_from_u64(1);
        let xbee: Arc<XbeePhy> = Arc::new(XbeePhy::new(XbeeParams::default()));
        let ev = TxEvent::new(xbee.clone(), vec![0x5A; 16], 4_000);
        let cap = compose(&[ev], 60_000, FS, 0.0, &mut rng);
        let t = &cap.truth[0];
        let killed = apply_kill(
            &cap.samples,
            FS,
            xbee.as_ref(),
            t.start,
            0..cap.samples.len(),
        );
        let s = suppression_db(&cap.samples, &killed, t.start + 500..t.start + t.len - 500);
        assert!(s > 10.0, "only {s} dB suppressed");
    }

    #[test]
    fn kill_css_removes_lora() {
        let mut rng = StdRng::seed_from_u64(2);
        let lora: Arc<LoraPhy> = Arc::new(LoraPhy::new(LoraParams::default()));
        let ev = TxEvent::new(lora.clone(), vec![0xA5; 12], 8_192);
        let cap = compose(&[ev], 400_000, FS, 0.0, &mut rng);
        let t = &cap.truth[0];
        let killed = apply_kill(
            &cap.samples,
            FS,
            lora.as_ref(),
            t.start,
            t.start..t.start + t.len,
        );
        let s = suppression_db(&cap.samples, &killed, t.start..t.start + t.len - 2048);
        assert!(s > 12.0, "only {s} dB suppressed");
    }

    #[test]
    fn kill_css_preserves_out_of_grid_region() {
        let mut rng = StdRng::seed_from_u64(3);
        let lora: Arc<LoraPhy> = Arc::new(LoraPhy::new(LoraParams::default()));
        let ev = TxEvent::new(lora.clone(), vec![1; 4], 10_240);
        let cap = compose(&[ev], 300_000, FS, 0.0, &mut rng);
        let t = &cap.truth[0];
        let killed = apply_kill(
            &cap.samples,
            FS,
            lora.as_ref(),
            t.start,
            t.start..t.start + t.len,
        );
        // Samples before the span are bit-identical.
        assert_eq!(cap.samples[..t.start], killed[..t.start]);
    }

    #[test]
    fn kill_codes_removes_dsss() {
        let mut rng = StdRng::seed_from_u64(4);
        let dsss: Arc<DsssPhy> = Arc::new(DsssPhy::new(DsssParams::default()));
        let ev = TxEvent::new(dsss.clone(), vec![0x3C; 10], 2_560);
        let cap = compose(&[ev], 200_000, FS, 0.0, &mut rng);
        let t = &cap.truth[0];
        let killed = apply_kill(
            &cap.samples,
            FS,
            dsss.as_ref(),
            t.start,
            t.start..t.start + t.len,
        );
        let s = suppression_db(&cap.samples, &killed, t.start..t.start + t.len - 256);
        assert!(s > 10.0, "only {s} dB suppressed");
    }

    #[test]
    fn killing_fsk_leaves_lora_decodable() {
        // The headline mechanism: a full-overlap XBee x LoRa collision;
        // killing XBee's tones must leave LoRa decodable.
        let mut rng = StdRng::seed_from_u64(5);
        let reg = Registry::prototype();
        let lora = reg.get(TechId::LoRa).unwrap().clone();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let payload = vec![0x42u8; 10];
        let events = vec![
            TxEvent::new(lora.clone(), payload.clone(), 0),
            TxEvent::new(xbee.clone(), vec![0x99; 16], 20_000),
        ];
        let cap = compose(&events, 400_000, FS, 0.0, &mut rng);
        let killed = apply_kill(
            &cap.samples,
            FS,
            xbee.as_ref(),
            20_000,
            0..cap.samples.len(),
        );
        let frame = lora
            .demodulate(&killed, FS)
            .expect("LoRa after KILL-FREQUENCY");
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn killing_lora_leaves_fsk_decodable() {
        // The reverse: kill LoRa's chirps, decode the buried XBee.
        let mut rng = StdRng::seed_from_u64(6);
        let reg = Registry::prototype();
        let lora = reg.get(TechId::LoRa).unwrap().clone();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let payload = vec![0x77u8; 12];
        let events = vec![
            TxEvent::new(lora.clone(), vec![0xEE; 10], 0),
            TxEvent::new(xbee.clone(), payload.clone(), 30_000),
        ];
        let cap = compose(&events, 400_000, FS, 0.0, &mut rng);
        // XBee alone under the LoRa chirps is not decodable...
        assert!(xbee.demodulate(&cap.samples, FS).is_err());
        // ...until KILL-CSS removes LoRa.
        let t = &cap.truth[0];
        let killed = apply_kill(
            &cap.samples,
            FS,
            lora.as_ref(),
            t.start,
            t.start..t.start + t.len,
        );
        let frame = xbee.demodulate(&killed, FS).expect("XBee after KILL-CSS");
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn adaptive_kill_learns_unknown_fsk_tones() {
        // An interferer with a deviation no registry recipe knows:
        // the adaptive filter must find and remove its tone bands.
        let mut rng = StdRng::seed_from_u64(21);
        let rogue: Arc<XbeePhy> = Arc::new(XbeePhy::new(XbeeParams {
            deviation_hz: 33_000.0, // non-standard tone placement
            bitrate: 9_600.0,       // narrowband: energy concentrates
            ..Default::default()
        }));
        let ev = TxEvent::new(rogue, vec![0x55; 20], 2_000);
        let cap = compose(&[ev], 300_000, FS, 0.001, &mut rng);
        let t = &cap.truth[0];
        let (killed, bands) =
            kill_frequency_adaptive(&cap.samples, FS, t.start..t.start + t.len, 3.0);
        assert!(!bands.is_empty(), "no bands learned");
        // The learned bands bracket the rogue deviation.
        assert!(
            bands.iter().any(|b| b.contains(33_000.0))
                || bands.iter().any(|b| b.contains(-33_000.0)),
            "{bands:?}"
        );
        let s = suppression_db(
            &cap.samples,
            &killed,
            t.start + 2_000..t.start + t.len - 2_000,
        );
        assert!(s > 8.0, "only {s} dB suppressed");
    }

    #[test]
    fn adaptive_kill_unlocks_lora_under_unknown_interferer() {
        let mut rng = StdRng::seed_from_u64(22);
        let reg = Registry::prototype();
        let lora = reg.get(TechId::LoRa).unwrap().clone();
        let rogue: Arc<XbeePhy> = Arc::new(XbeePhy::new(XbeeParams {
            deviation_hz: 18_000.0, // tones inside LoRa's band
            bitrate: 9_600.0,
            ..Default::default()
        }));
        let payload = vec![0x5Au8; 10];
        let events = vec![
            TxEvent::new(lora.clone(), payload.clone(), 0),
            // Long rogue burst spanning the LoRa frame, 6 dB hotter.
            TxEvent::new(rogue, vec![0xA5; 80], 5_000).with_power_db(6.0),
        ];
        let cap = compose(&events, 700_000, FS, 0.001, &mut rng);
        // LoRa does not decode under the hot in-band interferer...
        // (if it does on some seeds, the kill must at least not hurt).
        let (killed, bands) = kill_frequency_adaptive(&cap.samples, FS, 0..cap.samples.len(), 3.0);
        assert!(!bands.is_empty());
        let frame = lora
            .demodulate(&killed, FS)
            .expect("LoRa after adaptive kill");
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn adaptive_kill_on_noise_is_nearly_identity() {
        let mut rng = StdRng::seed_from_u64(23);
        let noise = galiot_channel::awgn(40_000, 1.0, &mut rng);
        let (out, bands) = kill_frequency_adaptive(&noise, FS, 0..noise.len(), 3.0);
        // White noise has no coherent bands above 8x median worth
        // keeping; whatever slivers are found must be narrow.
        let width: f64 = bands.iter().map(|b| b.width()).sum();
        assert!(width < 0.1 * FS, "killed {width} Hz of noise");
        assert_eq!(out.len(), noise.len());
    }

    #[test]
    fn degenerate_inputs_pass_through() {
        let lora = LoraPhy::new(LoraParams::default());
        let out = kill_css(&[Cf32::ONE; 100], FS, 125_000.0, 7, 0.0, 0, 0..100, 10, 2);
        assert_eq!(out.len(), 100); // too short for one symbol: unchanged
        let out = kill_codes(&[Cf32::ONE; 10], FS, &[], 0, 0.0, 0, 0..10);
        assert_eq!(out.len(), 10);
        let _ = lora;
    }
}
