//! # galiot-cloud — joint multi-technology decoding (paper, Sec. 5)
//!
//! The cloud half of GalioT. Shipped segments are classified by
//! per-technology preamble correlation ([`classify()`](classify())), decoded
//! power-first with reconstruct-and-subtract cancellation ([`cancel`],
//! [`sic`] — the paper's strawman baseline), and, where SIC stalls on
//! comparable-power collisions, unlocked by the modulation-aware kill
//! filters ([`kill`]: KILL-FREQUENCY, KILL-CSS, KILL-CODES). The whole
//! of Algorithm 1 is [`decode::CloudDecoder`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod classify;
pub mod decode;
pub mod ingest;
pub mod kill;
pub mod sic;

pub use cancel::{cancel_frame, CancelReport};
pub use classify::{classify, Classified};
pub use decode::{CloudDecoder, CloudParams, CloudResult, Recovery};
pub use ingest::{
    shard_for, CreditGuard, FairnessGate, FleetMerge, GatewayId, SessionInfo, SessionRegistry,
};
pub use kill::{apply_kill, kill_codes, kill_css, kill_frequency, kill_frequency_adaptive};
pub use sic::{sic_decode, SicParams, SicResult};
