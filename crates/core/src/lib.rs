//! # galiot-core — the GalioT system
//!
//! Reproduction of *"Revisiting Software Defined Radios in the IoT
//! Era"* (Narayanan & Kumar, HotNets '18). This crate assembles the
//! substrates — [`galiot_dsp`], [`galiot_phy`], [`galiot_channel`],
//! [`galiot_gateway`], [`galiot_cloud`] — into the end-to-end system a
//! downstream user runs:
//!
//! * [`pipeline::Galiot`] — batch processing of a capture: RTL-SDR
//!   front end, universal-preamble detection, extraction, edge-first
//!   decode, compressed backhaul, and Algorithm 1 at the cloud;
//! * [`streaming::StreamingGaliot`] — the same stages as a live,
//!   thread-per-stage pipeline over crossbeam channels;
//! * [`experiment`] — the engines behind every figure of the paper;
//! * [`sensing`] — the Sec. 6 multi-technology wireless-sensing sketch;
//! * [`config`], [`metrics`] — knobs and counters.
//!
//! ```no_run
//! use galiot_core::{Galiot, GaliotConfig};
//! use galiot_phy::registry::Registry;
//!
//! let system = Galiot::new(GaliotConfig::prototype(), Registry::prototype());
//! let capture: Vec<galiot_dsp::Cf32> = vec![]; // samples from your SDR
//! let report = system.process_capture(&capture);
//! for f in &report.frames {
//!     println!("{}: {} bytes", f.frame.tech, f.frame.payload.len());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod experiment;
pub mod fleet;
pub mod metrics;
pub mod pipeline;
pub mod sensing;
pub mod spawn;
pub mod streaming;
pub mod transport;

pub use config::{ConfigError, CrashSpec, DetectorKind, GaliotConfig};
pub use fleet::FleetGaliot;
/// Re-export of the decode-fault injection spec so downstream users can
/// configure the supervised pool without depending on `galiot-channel`
/// directly.
pub use galiot_channel::{DecodeFaultKind, DecodeFaultSpec};
/// Re-export of the observability layer so downstream users can start
/// trace sessions without depending on `galiot-trace` directly.
pub use galiot_trace as trace;
pub use metrics::{Metrics, QuarantineRecord, SharedMetrics};
pub use pipeline::{Galiot, PipelineFrame, RunReport};
pub use spawn::{spawn_thread, SpawnError};
pub use streaming::StreamingGaliot;
pub use transport::{
    degraded_bits, ArqClock, ArqParams, QueuedSegment, SendQueue, SendQueueTx, TransportConfig,
    ARQ_DEDUP_WINDOW,
};
