//! The unreliable-backhaul segment transport: a windowed ARQ sender
//! and a deduplicating receiver speaking the versioned datagram format
//! of [`galiot_gateway::backhaul`], plus the gateway-side send queue
//! whose depth drives graceful degradation (compression step-down,
//! then lowest-power load shedding).
//!
//! # Topology
//!
//! ```text
//!  gateway ──▶ SendQueue ──▶ ARQ sender ══ FaultyLink ══▶ receiver ──▶ worker pool
//!   (shed          │           ▲   (loss/corrupt/dup/      │ (CRC check,
//!    lowest        │           │    reorder, seeded)       │  dedup by seq,
//!    power)        ▼           └──══ FaultyLink ◀══────────┘  ack)
//!              compression          (acks, lossy too)
//!              ladder 8→6→4
//! ```
//!
//! The sender keeps at most `window` datagrams in flight, retransmits
//! on per-segment timeouts with exponential backoff and jitter, and —
//! after `max_retries` — declares a segment lost and reports the gap
//! (via the `on_lost` hook) so the reassembly stage can advance past
//! it instead of stalling. The receiver validates every datagram's
//! framing and CRC32, acks everything it can parse (acks are cheap and
//! ack loss is survivable — the sender just retransmits and the
//! receiver's dedup set absorbs the duplicate), and forwards each
//! sequence number to the decode pool exactly once.
//!
//! Degradation is strictly ordered, per the paper's "bandwidth
//! limited" uplink: a congested send queue first *costs fidelity*
//! (fewer bits per I/Q rail, tracked per segment so the cloud decodes
//! with the right scale), and only sheds whole segments — lowest mean
//! power first, those are the ones SIC was least likely to save — once
//! the queue is full.

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use galiot_gateway::{
    decode_ack, decode_segment, encode_ack, encode_segment, FaultyLink, GatewayId, LinkFaults,
    ShippedSegment,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::metrics::SharedMetrics;
use crate::spawn::spawn_thread;

/// Automatic-repeat-request knobs of the segment transport.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArqParams {
    /// Whether the sender tracks acks and retransmits at all. Off, the
    /// transport is fire-and-forget (every loss is silent).
    pub enabled: bool,
    /// Maximum unacknowledged segments in flight (1 = stop-and-wait).
    pub window: usize,
    /// Initial per-segment retransmit timeout, seconds.
    pub base_timeout_s: f64,
    /// Ceiling the exponential backoff saturates at, seconds.
    pub max_timeout_s: f64,
    /// Timeout multiplier per retry (exponential backoff).
    pub backoff: f64,
    /// Random extra fraction added to each backoff step (decorrelates
    /// retransmit storms).
    pub jitter: f64,
    /// Retransmissions before a segment is declared lost.
    pub max_retries: u32,
    /// Seed of the backoff-jitter generator.
    pub seed: u64,
    /// Time source retransmit deadlines are measured against.
    pub clock: ArqClock,
}

impl Default for ArqParams {
    fn default() -> Self {
        ArqParams {
            enabled: false,
            window: 8,
            base_timeout_s: 0.002,
            max_timeout_s: 0.25,
            backoff: 2.0,
            jitter: 0.5,
            max_retries: 10,
            seed: 0x5EED,
            clock: ArqClock::Wall,
        }
    }
}

/// Time source for ARQ retransmit deadlines.
///
/// The sender's deadlines were originally raw `Instant::now()`
/// arithmetic, which makes every transport test timing-sensitive: a
/// loaded CI runner that stalls the sender thread past a deadline
/// turns a healthy ack into a spurious retransmit — or a spurious
/// loss. The emulated clock removes the wall clock from the deadline
/// *decision*: virtual time only advances when the sender has
/// verifiably nothing to do, so a slow scheduler can delay a run but
/// never change which segments get retransmitted or declared lost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArqClock {
    /// Wall-clock deadlines (`Instant`-based) — the deployment mode.
    Wall,
    /// Deterministic virtual clock for tests: time jumps straight to
    /// the earliest deadline once no ack has arrived within `grace_s`
    /// real seconds (the allowance for in-flight acks to cross the
    /// emulated wire; it shapes only how long a run takes, never its
    /// outcome).
    Virtual {
        /// Real seconds to wait for a late ack before declaring the
        /// virtual deadline reached.
        grace_s: f64,
    },
}

impl ArqClock {
    /// The virtual clock with its standard ack grace (5 ms).
    pub fn deterministic() -> Self {
        ArqClock::Virtual { grace_s: 0.005 }
    }
}

/// The sender's view of time: a monotone `Duration` since the session
/// started, advanced by the wall clock or by deadline jumps.
struct SenderClock {
    mode: ArqClock,
    origin: Instant,
    virtual_now: Duration,
}

impl SenderClock {
    fn new(mode: ArqClock) -> Self {
        SenderClock {
            mode,
            origin: Instant::now(),
            virtual_now: Duration::ZERO,
        }
    }

    fn now(&self) -> Duration {
        match self.mode {
            ArqClock::Wall => self.origin.elapsed(),
            ArqClock::Virtual { .. } => self.virtual_now,
        }
    }

    /// Waits for an ack until `deadline` on this clock. On the wall
    /// clock this is a plain timed receive; on the virtual clock, an
    /// empty channel after the real-time grace means "no ack by the
    /// deadline" and virtual time jumps to it.
    fn await_ack(
        &mut self,
        ack_rx: &Receiver<Vec<u8>>,
        deadline: Duration,
    ) -> Result<Vec<u8>, RecvTimeoutError> {
        match self.mode {
            ArqClock::Wall => {
                let wait = deadline.saturating_sub(self.origin.elapsed());
                ack_rx.recv_timeout(wait)
            }
            ArqClock::Virtual { grace_s } => {
                if let Ok(bytes) = ack_rx.try_recv() {
                    return Ok(bytes);
                }
                match ack_rx.recv_timeout(Duration::from_secs_f64(grace_s.max(0.0))) {
                    Ok(bytes) => Ok(bytes),
                    Err(RecvTimeoutError::Timeout) => {
                        self.virtual_now = self.virtual_now.max(deadline);
                        Err(RecvTimeoutError::Timeout)
                    }
                    Err(e) => Err(e),
                }
            }
        }
    }
}

/// Full configuration of the gateway→cloud segment transport.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransportConfig {
    /// Impairments of the data direction (gateway → cloud).
    pub data_faults: LinkFaults,
    /// Impairments of the ack direction (cloud → gateway).
    pub ack_faults: LinkFaults,
    /// ARQ behavior.
    pub arq: ArqParams,
    /// Send-queue capacity; beyond it the lowest-power queued segment
    /// is shed.
    pub send_queue_cap: usize,
    /// Queue depth at which the compression ladder starts stepping
    /// down (8→6→4 bits).
    pub degrade_hwm: usize,
    /// Floor of the compression ladder, bits per I/Q rail.
    pub min_bits: u32,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            data_faults: LinkFaults::none(),
            ack_faults: LinkFaults::none(),
            arq: ArqParams::default(),
            send_queue_cap: 32,
            degrade_hwm: 8,
            min_bits: 4,
        }
    }
}

impl TransportConfig {
    /// Whether the streaming pipeline can skip the transport entirely
    /// (perfect links, no ARQ): segments then flow straight from the
    /// gateway to the worker pool exactly as before this subsystem.
    pub fn is_passthrough(&self) -> bool {
        !self.arq.enabled && self.data_faults.is_perfect() && self.ack_faults.is_perfect()
    }

    /// ARQ over perfect links — exercises the wire codec and windowed
    /// delivery without impairments.
    pub fn reliable() -> Self {
        TransportConfig {
            arq: ArqParams {
                enabled: true,
                ..ArqParams::default()
            },
            ..TransportConfig::default()
        }
    }

    /// ARQ over a faulty data link (the ack direction inherits the
    /// same impairment rates under a decorrelated seed).
    pub fn over_faulty_link(faults: LinkFaults) -> Self {
        TransportConfig {
            data_faults: faults,
            ack_faults: LinkFaults {
                seed: faults.seed ^ 0x9E37_79B9_7F4A_7C15,
                ..faults
            },
            arq: ArqParams {
                enabled: true,
                ..ArqParams::default()
            },
            ..TransportConfig::default()
        }
    }
}

/// The compression ladder: how many bits per I/Q rail a segment gets,
/// given the current send-queue depth. Below `hwm` the configured
/// `base` is used; past `hwm` compression steps down two bits; midway
/// between `hwm` and `cap` it drops to `floor` (shedding takes over at
/// `cap` itself).
pub fn degraded_bits(base: u32, floor: u32, depth: usize, hwm: usize, cap: usize) -> u32 {
    let floor = floor.clamp(1, base.max(1));
    let hwm = hwm.max(1);
    let second = (hwm + cap.saturating_sub(hwm) / 2).max(hwm + 1);
    if depth >= second {
        floor
    } else if depth >= hwm {
        base.saturating_sub(2).max(floor)
    } else {
        base
    }
}

/// One segment queued for transmission, annotated with the mean power
/// the shedding policy ranks by.
#[derive(Clone, Debug)]
pub struct QueuedSegment {
    /// The compressed segment to ship.
    pub seg: ShippedSegment,
    /// Mean power of the segment's samples before compression.
    pub power: f32,
}

struct SqState {
    q: VecDeque<QueuedSegment>,
    closed: bool,
    hwm: usize,
}

/// The gateway-side send queue: bounded, never blocks the producer —
/// overflow sheds the lowest-power queued segment instead (decode
/// effort goes to the segments SIC has the best chance on).
pub struct SendQueue {
    state: Mutex<SqState>,
    ready: Condvar,
    cap: usize,
}

impl SendQueue {
    /// Creates a queue holding at most `cap` segments (min 1).
    pub fn new(cap: usize) -> Arc<Self> {
        Arc::new(SendQueue {
            state: Mutex::new(SqState {
                q: VecDeque::new(),
                closed: false,
                hwm: 0,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        })
    }

    /// Enqueues a segment. Returns the shed victim — the lowest-power
    /// segment, possibly the one just pushed — when the queue was
    /// already full; the caller must account for the victim (its
    /// sequence number still needs a gap notice downstream).
    pub fn push(&self, item: QueuedSegment) -> Option<QueuedSegment> {
        let mut st = self.state.lock().unwrap();
        st.q.push_back(item);
        st.hwm = st.hwm.max(st.q.len());
        let victim = if st.q.len() > self.cap {
            let (idx, _) =
                st.q.iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        a.power
                            .partial_cmp(&b.power)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("queue cannot be empty right after a push");
            st.q.remove(idx)
        } else {
            None
        };
        drop(st);
        self.ready.notify_one();
        victim
    }

    /// Dequeues the oldest segment, blocking while the queue is empty
    /// and open. `None` means closed and drained.
    pub fn pop(&self) -> Option<QueuedSegment> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = st.q.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap();
        }
    }

    /// Dequeues without blocking.
    pub fn try_pop(&self) -> Option<QueuedSegment> {
        self.state.lock().unwrap().q.pop_front()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().q.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest the queue ever got.
    pub fn high_water_mark(&self) -> usize {
        self.state.lock().unwrap().hwm
    }

    /// Closes the queue; `pop` returns `None` once drained.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// Producer handle that closes the queue when dropped, so the consumer
/// side always observes end-of-stream even if the producer thread
/// bails early.
pub struct SendQueueTx(Arc<SendQueue>);

impl SendQueueTx {
    /// Wraps a queue in a closing producer handle.
    pub fn new(queue: Arc<SendQueue>) -> Self {
        SendQueueTx(queue)
    }

    /// The underlying queue.
    pub fn queue(&self) -> &SendQueue {
        &self.0
    }
}

impl Drop for SendQueueTx {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// A datagram tracked by the ARQ window. Deadlines are points on the
/// sender's [`SenderClock`], not raw `Instant`s.
struct Flight {
    bytes: Vec<u8>,
    retries: u32,
    timeout: Duration,
    deadline: Duration,
}

/// Offers `bytes` to the lossy link and forwards whatever comes out.
/// Returns `false` when the far end is gone.
fn push_link(
    link: &mut FaultyLink,
    bytes: &[u8],
    wire_tx: &Sender<Vec<u8>>,
    metrics: &SharedMetrics,
) -> bool {
    metrics.with(|m| m.wire_bytes_sent += bytes.len() as u64);
    for d in link.transmit(bytes) {
        if wire_tx.send(d).is_err() {
            return false;
        }
    }
    true
}

/// Spawns the ARQ sender: pulls segments off the send queue, keeps up
/// to `arq.window` datagrams in flight over the (possibly faulty) data
/// link, retransmits on timeout with exponential backoff + jitter, and
/// declares a segment lost after `arq.max_retries` — invoking
/// `on_lost(seq)` so downstream reassembly can tolerate the gap
/// (return `false` from the hook to stop the sender). With
/// `serialize_bps` set, each datagram also pays its real-time
/// serialization delay on the uplink.
#[allow(clippy::too_many_arguments)] // one endpoint per wiring half: queue + 2 channels + knobs
pub fn spawn_arq_sender(
    queue: Arc<SendQueue>,
    wire_tx: Sender<Vec<u8>>,
    ack_rx: Receiver<Vec<u8>>,
    arq: ArqParams,
    faults: LinkFaults,
    serialize_bps: Option<f64>,
    metrics: SharedMetrics,
    on_lost: impl Fn(u64) -> bool + Send + 'static,
) -> thread::JoinHandle<()> {
    spawn_thread("galiot-uplink", move || {
        let mut link = FaultyLink::new(faults);
        let mut rng = StdRng::seed_from_u64(arq.seed);
        let mut clock = SenderClock::new(arq.clock);
        // Keyed by (gateway, seq): sequence numbers are dense per
        // session, so a shared wire must never let one session's
        // ack retire another's in-flight datagram.
        let mut in_flight: BTreeMap<(GatewayId, u64), Flight> = BTreeMap::new();
        let max_timeout = Duration::from_secs_f64(arq.max_timeout_s.max(arq.base_timeout_s));

        'run: loop {
            // Top the window up (ARQ off: everything is
            // fire-and-forget, the window stays empty).
            while !arq.enabled || in_flight.len() < arq.window.max(1) {
                let item = if in_flight.is_empty() {
                    match queue.pop() {
                        Some(item) => item,
                        None => break 'run, // closed and drained
                    }
                } else {
                    match queue.try_pop() {
                        Some(item) => item,
                        None => break,
                    }
                };
                let send_span = galiot_trace::span(
                    galiot_trace::Stage::ArqSend,
                    galiot_trace::tag_seq(item.seg.gateway.0, item.seg.seq),
                );
                let bytes = encode_segment(&item.seg);
                if let Some(bps) = serialize_bps {
                    thread::sleep(Duration::from_secs_f64(bytes.len() as f64 * 8.0 / bps));
                }
                if !push_link(&mut link, &bytes, &wire_tx, &metrics) {
                    break 'run;
                }
                drop(send_span);
                if arq.enabled {
                    let timeout = Duration::from_secs_f64(
                        arq.base_timeout_s * (1.0 + arq.jitter * rng.gen::<f64>()),
                    );
                    in_flight.insert(
                        (item.seg.gateway, item.seg.seq),
                        Flight {
                            bytes,
                            retries: 0,
                            timeout,
                            deadline: clock.now() + timeout,
                        },
                    );
                }
            }
            if in_flight.is_empty() {
                continue;
            }

            // Wait for acks until the earliest retransmit deadline.
            let deadline = in_flight
                .values()
                .map(|f| f.deadline)
                .min()
                .expect("in_flight is non-empty");
            match clock.await_ack(&ack_rx, deadline) {
                Ok(bytes) => match decode_ack(&bytes) {
                    Ok((gw, seq)) => {
                        // An ack for another session's (gateway,
                        // seq) — e.g. on a shared wire — must not
                        // retire this one's flight.
                        if in_flight.remove(&(gw, seq)).is_some() {
                            metrics.with(|m| m.arq_acked += 1);
                        }
                    }
                    Err(_) => metrics.with(|m| m.wire_decode_errors += 1),
                },
                Err(RecvTimeoutError::Timeout) => {
                    let now = clock.now();
                    let expired: Vec<(GatewayId, u64)> = in_flight
                        .iter()
                        .filter(|(_, f)| f.deadline <= now)
                        .map(|(k, _)| *k)
                        .collect();
                    for key in expired {
                        let f = in_flight.get_mut(&key).expect("expired seq is in flight");
                        if f.retries >= arq.max_retries {
                            in_flight.remove(&key);
                            metrics.with(|m| m.arq_lost += 1);
                            if !on_lost(key.1) {
                                break 'run;
                            }
                        } else {
                            f.retries += 1;
                            f.timeout = f
                                .timeout
                                .mul_f64(arq.backoff * (1.0 + arq.jitter * rng.gen::<f64>()))
                                .min(max_timeout);
                            f.deadline = now + f.timeout;
                            let bytes = f.bytes.clone();
                            metrics.with(|m| m.arq_retransmits += 1);
                            let send_span = galiot_trace::span(
                                galiot_trace::Stage::ArqSend,
                                galiot_trace::tag_seq(key.0 .0, key.1),
                            );
                            if let Some(bps) = serialize_bps {
                                thread::sleep(Duration::from_secs_f64(
                                    bytes.len() as f64 * 8.0 / bps,
                                ));
                            }
                            if !push_link(&mut link, &bytes, &wire_tx, &metrics) {
                                break 'run;
                            }
                            drop(send_span);
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Receiver is gone (pool shutdown): nothing
                    // will ever be acked again.
                    break 'run;
                }
            }
        }

        // Traffic over: flush delay-jittered copies still inside
        // the link model.
        for d in link.drain() {
            if wire_tx.send(d).is_err() {
                break;
            }
        }
        metrics.with(|m| m.record_link_stats(&link.stats));
    })
    .unwrap_or_else(|e| panic!("ARQ sender startup: {e}"))
}

/// Duplicate seqs the receiver still recognizes behind the newest seq
/// it has seen from a session. A duplicate can only trail the original
/// by what the sender still has in flight — `window` datagrams plus
/// the link's reorder depth — so 1024 is two orders of magnitude of
/// headroom while keeping receiver memory O(window), not O(session).
pub const ARQ_DEDUP_WINDOW: u64 = 1024;

/// Per-session sliding-window duplicate detector for the ARQ receiver.
///
/// The receiver must forward each `(gateway, seq)` exactly once, but a
/// long-lived session makes "remember every seq ever seen" unbounded
/// state. Per session this keeps a cumulative frontier — every seq
/// below it has been forwarded — plus the sparse set of out-of-order
/// seqs at or above it; contiguous arrivals collapse into the frontier
/// immediately, and the set is clamped to `window` behind the newest
/// seq seen. Behaviour is identical to the unbounded set for any
/// duplicate arriving within `window` of the newest seq (proptested),
/// and the ARQ sender's in-flight window makes wider reordering
/// impossible.
pub struct DedupWindow {
    window: u64,
    sessions: BTreeMap<GatewayId, SessionSeen>,
}

#[derive(Default)]
struct SessionSeen {
    /// Every seq below this has been seen (the cumulative ack
    /// frontier, receiver-side).
    frontier: u64,
    /// Out-of-order seqs at or above the frontier.
    recent: std::collections::BTreeSet<u64>,
    /// Newest seq ever seen (the window is keyed off this).
    max_seen: u64,
}

impl DedupWindow {
    /// Creates a detector recognizing duplicates up to `window` seqs
    /// behind the newest seq of their session (min 1).
    pub fn new(window: u64) -> Self {
        DedupWindow {
            window: window.max(1),
            sessions: BTreeMap::new(),
        }
    }

    /// Records one arrival. Returns `true` if this is the first
    /// sighting of `(gateway, seq)` — i.e. the segment should be
    /// forwarded — and `false` for a duplicate.
    pub fn insert(&mut self, gateway: GatewayId, seq: u64) -> bool {
        let s = self.sessions.entry(gateway).or_default();
        if seq < s.frontier || !s.recent.insert(seq) {
            return false;
        }
        s.max_seen = s.max_seen.max(seq);
        // Collapse a now-contiguous prefix into the frontier.
        while s.recent.remove(&s.frontier) {
            s.frontier += 1;
        }
        // Clamp memory: anything more than `window` behind the newest
        // seq is past any possible in-flight duplicate — treat it as
        // seen wholesale.
        let floor = s.max_seen.saturating_sub(self.window - 1);
        if floor > s.frontier {
            s.frontier = floor;
            s.recent = s.recent.split_off(&floor);
            while s.recent.remove(&s.frontier) {
                s.frontier += 1;
            }
        }
        true
    }

    /// Out-of-order seqs currently remembered across all sessions
    /// (bounded-memory diagnostic).
    pub fn sparse_len(&self) -> usize {
        self.sessions.values().map(|s| s.recent.len()).sum()
    }
}

/// Spawns the cloud-ingress ARQ receiver: validates every datagram
/// (framing + CRC32 + header consistency), acks everything parseable
/// over the (possibly faulty) ack link, drops duplicates by sequence
/// number, and forwards each unique segment to the decode pool.
///
/// Generic over the pool's item type so the fleet can wrap segments
/// with ingest bookkeeping; plain `Sender<ShippedSegment>` works
/// unchanged via the identity conversion.
pub fn spawn_arq_receiver<T: From<ShippedSegment> + Send + 'static>(
    wire_rx: Receiver<Vec<u8>>,
    ack_tx: Sender<Vec<u8>>,
    seg_tx: Sender<T>,
    ack_faults: LinkFaults,
    metrics: SharedMetrics,
) -> thread::JoinHandle<()> {
    spawn_thread("galiot-ingress", move || {
        let mut ack_link = FaultyLink::new(ack_faults);
        // Sliding-window dedup keyed per session: sequence spaces
        // are dense *per gateway*, so with a global key gateway
        // 2's seq 0 would be swallowed as a "duplicate" of
        // gateway 1's.
        let mut seen = DedupWindow::new(ARQ_DEDUP_WINDOW);
        while let Ok(bytes) = wire_rx.recv() {
            // One span per datagram handled, tagged with the seq
            // once (and if) the wire bytes decode.
            let mut recv_span =
                galiot_trace::span(galiot_trace::Stage::ArqRecv, galiot_trace::NO_SEQ);
            match decode_segment(&bytes) {
                Ok(seg) => {
                    recv_span.set_seq(galiot_trace::tag_seq(seg.gateway.0, seg.seq));
                    // Ack first, even for duplicates: the original
                    // ack may have been the casualty.
                    for d in ack_link.transmit(&encode_ack(seg.gateway, seg.seq)) {
                        let _ = ack_tx.send(d);
                    }
                    if !seen.insert(seg.gateway, seg.seq) {
                        metrics.with(|m| m.dup_segments_dropped += 1);
                        continue;
                    }
                    if seg_tx.send(T::from(seg)).is_err() {
                        break; // pool is gone
                    }
                    let depth = seg_tx.len();
                    metrics.with(|m| m.seg_queue_hwm = m.seg_queue_hwm.max(depth));
                }
                Err(_) => metrics.with(|m| m.wire_decode_errors += 1),
            }
        }
        // Late acks for traffic the sender no longer waits on are
        // harmless; flush the ack link's jitter buffer anyway.
        for d in ack_link.drain() {
            let _ = ack_tx.send(d);
        }
        metrics.with(|m| m.record_link_stats(&ack_link.stats));
    })
    .unwrap_or_else(|e| panic!("ARQ receiver startup: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::{bounded, unbounded};
    use galiot_dsp::Cf32;
    use std::collections::HashSet;

    fn seg(seq: u64, amp: f32, n: usize) -> QueuedSegment {
        let samples: Vec<Cf32> = (0..n).map(|i| Cf32::cis(i as f32 * 0.3) * amp).collect();
        QueuedSegment {
            seg: ShippedSegment::pack(seq, seq as usize * 1000, &samples, 8, 64),
            power: amp * amp,
        }
    }

    #[test]
    fn degradation_ladder_steps_8_6_4() {
        // Defaults: hwm 8, cap 32 → second threshold at 20.
        assert_eq!(degraded_bits(8, 4, 0, 8, 32), 8);
        assert_eq!(degraded_bits(8, 4, 7, 8, 32), 8);
        assert_eq!(degraded_bits(8, 4, 8, 8, 32), 6);
        assert_eq!(degraded_bits(8, 4, 19, 8, 32), 6);
        assert_eq!(degraded_bits(8, 4, 20, 8, 32), 4);
        assert_eq!(degraded_bits(8, 4, 1000, 8, 32), 4);
        // The floor is respected even when base-2 would undershoot it.
        assert_eq!(degraded_bits(5, 4, 8, 8, 32), 4);
        // Degenerate hwm never divides by zero or exceeds base.
        assert_eq!(degraded_bits(8, 4, 5, 0, 4), 4);
    }

    #[test]
    fn send_queue_sheds_the_lowest_power_segment() {
        let q = SendQueue::new(2);
        assert!(q.push(seg(0, 1.0, 64)).is_none());
        assert!(q.push(seg(1, 0.1, 64)).is_none());
        // Overflow: seq 1 is the quietest of the three → shed.
        let victim = q.push(seg(2, 0.5, 64)).expect("must shed");
        assert_eq!(victim.seg.seq, 1);
        assert_eq!(q.len(), 2);
        // An incoming segment quieter than everything queued sheds
        // itself.
        let victim = q.push(seg(3, 0.01, 64)).expect("must shed");
        assert_eq!(victim.seg.seq, 3);
        let order: Vec<u64> = std::iter::from_fn(|| q.try_pop())
            .map(|i| i.seg.seq)
            .collect();
        assert_eq!(order, vec![0, 2], "FIFO among survivors");
    }

    #[test]
    fn send_queue_close_wakes_blocked_consumer() {
        let q = SendQueue::new(4);
        let q2 = q.clone();
        let consumer = thread::spawn(move || {
            let first = q2.pop();
            let second = q2.pop();
            (first.map(|i| i.seg.seq), second.map(|i| i.seg.seq))
        });
        q.push(seg(7, 1.0, 32));
        let tx = SendQueueTx::new(q.clone());
        assert_eq!(tx.queue().high_water_mark(), 1);
        drop(tx); // closing handle → consumer unblocks with None
        let (first, second) = consumer.join().unwrap();
        assert_eq!(first, Some(7));
        assert_eq!(second, None);
    }

    /// End-to-end ARQ over a 30 % lossy link with duplication and
    /// reordering: every segment must reach the pool exactly once.
    #[test]
    fn arq_delivers_everything_over_a_bad_link() {
        let metrics = SharedMetrics::new();
        let q = SendQueue::new(64);
        let (wire_tx, wire_rx) = bounded::<Vec<u8>>(64);
        let (ack_tx, ack_rx) = unbounded::<Vec<u8>>();
        let (seg_tx, seg_rx) = unbounded::<ShippedSegment>();
        let faults = LinkFaults::harsh(0.3, 41);
        let arq = ArqParams {
            enabled: true,
            base_timeout_s: 0.005,
            ..ArqParams::default()
        };
        let sender = spawn_arq_sender(
            q.clone(),
            wire_tx,
            ack_rx,
            arq,
            faults,
            None,
            metrics.clone(),
            |_| true,
        );
        let receiver = spawn_arq_receiver(
            wire_rx,
            ack_tx,
            seg_tx,
            LinkFaults::lossy(0.2, 77),
            metrics.clone(),
        );

        let n = 24u64;
        for i in 0..n {
            assert!(q.push(seg(i, 1.0, 128)).is_none(), "no shedding expected");
        }
        q.close();
        sender.join().unwrap();
        receiver.join().unwrap();

        let mut got: Vec<u64> = seg_rx.try_iter().map(|s| s.seq).collect();
        got.sort_unstable();
        assert_eq!(got, (0..n).collect::<Vec<u64>>(), "exactly-once delivery");
        let m = metrics.snapshot();
        assert_eq!(m.arq_lost, 0, "{m:?}");
        assert_eq!(m.arq_acked as u64, n, "{m:?}");
        assert!(m.arq_retransmits > 0, "a 30% link must retransmit: {m:?}");
        assert!(m.wire_dropped > 0 && m.wire_bytes_sent > 0, "{m:?}");
    }

    /// With retries disabled over a one-way lossy link, exactly the
    /// dropped data datagrams are declared lost — no silent gaps.
    #[test]
    fn zero_retry_arq_declares_exactly_the_dropped_segments() {
        let metrics = SharedMetrics::new();
        let q = SendQueue::new(64);
        let (wire_tx, wire_rx) = bounded::<Vec<u8>>(64);
        let (ack_tx, ack_rx) = unbounded::<Vec<u8>>();
        let (seg_tx, seg_rx) = unbounded::<ShippedSegment>();
        let lost = Arc::new(Mutex::new(Vec::<u64>::new()));
        let lost2 = lost.clone();
        let arq = ArqParams {
            enabled: true,
            max_retries: 0,
            base_timeout_s: 0.020,
            ..ArqParams::default()
        };
        let sender = spawn_arq_sender(
            q.clone(),
            wire_tx,
            ack_rx,
            arq,
            LinkFaults::lossy(0.4, 23),
            None,
            metrics.clone(),
            move |seq| {
                lost2.lock().unwrap().push(seq);
                true
            },
        );
        let receiver =
            spawn_arq_receiver(wire_rx, ack_tx, seg_tx, LinkFaults::none(), metrics.clone());

        let n = 30u64;
        for i in 0..n {
            q.push(seg(i, 1.0, 64));
        }
        q.close();
        sender.join().unwrap();
        receiver.join().unwrap();

        let delivered: HashSet<u64> = seg_rx.try_iter().map(|s| s.seq).collect();
        let mut declared: Vec<u64> = lost.lock().unwrap().clone();
        declared.sort_unstable();
        let mut missing: Vec<u64> = (0..n).filter(|s| !delivered.contains(s)).collect();
        missing.sort_unstable();
        assert_eq!(declared, missing, "declared-lost ≠ actually-missing");
        assert!(!declared.is_empty(), "a 40% link should have dropped some");
        let m = metrics.snapshot();
        assert_eq!(m.arq_lost, declared.len());
        assert_eq!(m.arq_acked as u64 + m.arq_lost as u64, n);
    }

    /// Regression for the seq-dedup scope bug: two gateway sessions
    /// share one wire and emit the *same* dense sequence numbers. A
    /// receiver deduplicating on the bare seq would swallow the whole
    /// second session as "duplicates"; per-(gateway, seq) scoping must
    /// deliver both, and each sender must ignore the other session's
    /// acks.
    #[test]
    fn overlapping_seq_spaces_from_two_gateways_both_deliver() {
        let metrics = SharedMetrics::new();
        let (wire_tx, wire_rx) = bounded::<Vec<u8>>(64);
        let (ack_tx, ack_rx) = unbounded::<Vec<u8>>();
        let (seg_tx, seg_rx) = unbounded::<ShippedSegment>();
        // Fan the single ack stream out to both senders; the sender's
        // (gateway, seq) flight key makes foreign acks inert.
        let (ack_tx_a, ack_rx_a) = unbounded::<Vec<u8>>();
        let (ack_tx_b, ack_rx_b) = unbounded::<Vec<u8>>();
        let fanout = thread::spawn(move || {
            while let Ok(bytes) = ack_rx.recv() {
                let _ = ack_tx_a.send(bytes.clone());
                let _ = ack_tx_b.send(bytes);
            }
        });

        let arq = ArqParams {
            enabled: true,
            base_timeout_s: 0.005,
            ..ArqParams::default()
        };
        let n = 16u64;
        let mut senders = Vec::new();
        for (gw, ack_rx, seed) in [
            (GatewayId(1), ack_rx_a, 41u64),
            (GatewayId(2), ack_rx_b, 43),
        ] {
            let q = SendQueue::new(64);
            senders.push(spawn_arq_sender(
                q.clone(),
                wire_tx.clone(),
                ack_rx,
                ArqParams { seed, ..arq },
                LinkFaults::harsh(0.2, seed),
                None,
                metrics.clone(),
                |_| true,
            ));
            for i in 0..n {
                let mut item = seg(i, 1.0, 64);
                item.seg = item.seg.with_gateway(gw);
                assert!(q.push(item).is_none());
            }
            q.close();
        }
        drop(wire_tx);
        let receiver = spawn_arq_receiver(
            wire_rx,
            ack_tx,
            seg_tx,
            LinkFaults::lossy(0.1, 7),
            metrics.clone(),
        );
        for s in senders {
            s.join().unwrap();
        }
        receiver.join().unwrap();
        fanout.join().unwrap();

        let mut got: Vec<(u16, u64)> = seg_rx.try_iter().map(|s| (s.gateway.0, s.seq)).collect();
        got.sort_unstable();
        let want: Vec<(u16, u64)> = (1..=2u16)
            .flat_map(|g| (0..n).map(move |s| (g, s)))
            .collect();
        assert_eq!(got, want, "every (gateway, seq) exactly once");
        let m = metrics.snapshot();
        assert_eq!(m.arq_lost, 0, "{m:?}");
        assert_eq!(m.arq_acked as u64, 2 * n, "{m:?}");
    }

    /// Regression for the unbounded dedup set: the windowed detector
    /// must behave exactly like remember-everything for in-window
    /// duplicates, while holding only O(window) sparse state.
    #[test]
    fn dedup_window_matches_unbounded_set_and_stays_bounded() {
        let mut win = DedupWindow::new(16);
        let mut all = HashSet::new();
        let gw = GatewayId(1);
        // In-order stream with immediate duplicates.
        for seq in 0..100u64 {
            assert_eq!(win.insert(gw, seq), all.insert(seq), "seq {seq}");
            assert!(!win.insert(gw, seq), "immediate dup of {seq}");
        }
        // Out-of-order arrivals within the window still dedup.
        for seq in [105u64, 103, 104, 103, 105, 106] {
            assert_eq!(win.insert(gw, seq), all.insert(seq), "seq {seq}");
        }
        // Sessions are independent: another gateway's identical seqs
        // are fresh.
        assert!(win.insert(GatewayId(2), 50));
        // A long session keeps sparse state bounded by the window.
        for seq in (200..20_000u64).step_by(2) {
            win.insert(gw, seq);
            assert!(win.sparse_len() <= 16 + 1, "sparse={}", win.sparse_len());
        }
    }

    proptest::proptest! {
        /// For any arrival stream whose duplicates trail the newest
        /// seq by less than the window — the only duplicates a
        /// `window`-bounded ARQ sender can produce — the sliding
        /// detector's verdicts are exactly the unbounded set's.
        #[test]
        fn dedup_window_equals_unbounded_for_in_window_duplicates(
            jumps in proptest::collection::vec(0u64..400, 1..400),
            window in 8u64..64,
        ) {
            let mut win = DedupWindow::new(window);
            let mut unbounded: HashSet<u64> = HashSet::new();
            let gw = GatewayId(3);
            let mut newest = 0u64;
            for jump in jumps {
                // Candidate seq: odd jumps duplicate something within
                // the window behind the newest seq, even jumps wander
                // forward.
                let offset = jump / 2;
                let seq = if jump % 2 == 1 {
                    newest.saturating_sub(offset % window)
                } else {
                    newest + offset % 3
                };
                newest = newest.max(seq);
                let fresh = win.insert(gw, seq);
                proptest::prop_assert_eq!(
                    fresh,
                    unbounded.insert(seq),
                    "seq {} newest {} window {}",
                    seq,
                    newest,
                    window
                );
                proptest::prop_assert!(win.sparse_len() as u64 <= window + 1);
            }
        }
    }

    /// Satellite of the wall-clock bugfix: the full ARQ path delivers
    /// exactly-once over a harsh link with a 0-jitter virtual clock —
    /// retransmit decisions driven purely by emulated time.
    #[test]
    fn arq_delivers_everything_with_a_zero_jitter_virtual_clock() {
        let metrics = SharedMetrics::new();
        let q = SendQueue::new(64);
        let (wire_tx, wire_rx) = bounded::<Vec<u8>>(64);
        let (ack_tx, ack_rx) = unbounded::<Vec<u8>>();
        let (seg_tx, seg_rx) = unbounded::<ShippedSegment>();
        let arq = ArqParams {
            enabled: true,
            jitter: 0.0,
            clock: ArqClock::deterministic(),
            ..ArqParams::default()
        };
        let sender = spawn_arq_sender(
            q.clone(),
            wire_tx,
            ack_rx,
            arq,
            LinkFaults::harsh(0.3, 41),
            None,
            metrics.clone(),
            |_| true,
        );
        let receiver = spawn_arq_receiver(
            wire_rx,
            ack_tx,
            seg_tx,
            LinkFaults::lossy(0.2, 77),
            metrics.clone(),
        );
        let n = 24u64;
        for i in 0..n {
            assert!(q.push(seg(i, 1.0, 128)).is_none());
        }
        q.close();
        sender.join().unwrap();
        receiver.join().unwrap();
        let mut got: Vec<u64> = seg_rx.try_iter().map(|s| s.seq).collect();
        got.sort_unstable();
        assert_eq!(got, (0..n).collect::<Vec<u64>>(), "exactly-once delivery");
        let m = metrics.snapshot();
        assert_eq!(m.arq_lost, 0, "{m:?}");
        assert_eq!(m.arq_acked as u64, n, "{m:?}");
        assert!(m.arq_retransmits > 0, "a 30% link must retransmit: {m:?}");
    }
}
