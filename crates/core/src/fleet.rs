//! The multi-gateway fleet pipeline: N independent gateway sessions —
//! each with its own sequence space, transport, and (in transport
//! mode) decorrelated link-fault seeds — feeding one shared cloud
//! decode pool through a sharded, fairness-gated ingest, with
//! cross-gateway duplicate suppression on the way out.
//!
//! # Topology
//!
//! ```text
//!              chunks (broadcast)          per-session inbox
//!  push_chunk ──▶ gateway 1 ─[transport 1]─▶ mux 1 ─┐ shard_for(gw,seq)
//!             ──▶ gateway 2 ─[transport 2]─▶ mux 2 ─┼─▶ worker 0..W ─┐
//!             ──▶   ...                       ...   ┘ (FairnessGate) │
//!                                                                    ▼
//!        frames ◀── FleetMerge (dedup, capture order) ◀── per-session
//!                                                         reassembly
//! ```
//!
//! Every gateway hears (roughly) the same air — the paper's deployment
//! shape is redundant cheap SDRs covering one neighbourhood — so the
//! same over-the-air frame decodes once per session. The merge keeps
//! the best-power copy and counts the rest as `dedup_suppressed`; the
//! fleet conformance suite pins the keystone invariant that N sessions
//! deliver exactly the single-gateway frame set, once, for any worker
//! count, shard count, and per-link fault seeds.
//!
//! Ingest-side fleet mechanics — [`SessionRegistry`],
//! [`galiot_cloud::shard_for`], [`galiot_cloud::FairnessGate`],
//! [`galiot_cloud::FleetMerge`] — live in `galiot-cloud`; this module
//! wires them to the per-session machinery of [`crate::streaming`] and
//! [`crate::transport`].

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use galiot_cloud::{shard_for, FairnessGate, FleetMerge, SessionInfo, SessionRegistry};
use galiot_dsp::Cf32;
use galiot_gateway::{GatewayId, LinkFaults, ShippedSegment};
use galiot_phy::registry::Registry;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;

use crate::config::GaliotConfig;
use crate::metrics::SharedMetrics;
use crate::pipeline::PipelineFrame;
use crate::streaming::{
    spawn_gateway, spawn_worker, SegmentResult, ShipMode, Shipper, DEDUP_SLACK,
};
use crate::transport::{spawn_arq_receiver, spawn_arq_sender, SendQueue, SendQueueTx};

/// In-flight decode credits each session may hold between its mux and
/// the worker pool (see [`FairnessGate`]).
const SESSION_QUOTA: usize = 8;

/// Decorrelates a per-link seed across fleet sessions. Session index 0
/// (wire gateway 1) keeps the configured seed, so a one-gateway fleet
/// reproduces [`crate::StreamingGaliot`]'s wire behavior exactly.
fn session_seed(seed: u64, index: u64) -> u64 {
    seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A running multi-gateway GalioT fleet.
///
/// Feed raw capture chunks with [`FleetGaliot::push_chunk`] — every
/// session receives each chunk, modelling N gateways hearing the same
/// air — close the intake with [`FleetGaliot::finish`], and collect
/// deduplicated, capture-ordered frames from the output receiver.
pub struct FleetGaliot {
    chunk_txs: Vec<Sender<Vec<Cf32>>>,
    frames_rx: Receiver<PipelineFrame>,
    gateways: Vec<thread::JoinHandle<()>>,
    uplinks: Vec<thread::JoinHandle<()>>,
    ingresses: Vec<thread::JoinHandle<()>>,
    muxes: Vec<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    merge: Option<thread::JoinHandle<()>>,
    send_queues: Vec<Arc<SendQueue>>,
    registry: Arc<SessionRegistry>,
    metrics: SharedMetrics,
    engine_before: Option<galiot_dsp::engine::EngineStats>,
}

impl FleetGaliot {
    /// Spawns `config.gateways` gateway sessions (wire ids 1..=N), a
    /// shared pool of `config.effective_cloud_workers()` decode
    /// workers, and the fleet merge.
    pub fn start(config: GaliotConfig, phy_registry: Registry) -> Self {
        let fs = config.fs;
        let n_gateways = config.gateways.max(1);
        let n_workers = config.effective_cloud_workers();
        let n_shards = config.effective_ingest_shards();
        let engine_before = galiot_dsp::engine::stats();
        let metrics = SharedMetrics::new();
        metrics.with(|m| {
            m.cloud_workers = n_workers;
            m.fleet_gateways = n_gateways;
            m.ingest_shards = n_shards;
        });

        let registry = Arc::new(SessionRegistry::new());
        let gate = Arc::new(FairnessGate::new(SESSION_QUOTA));
        let (result_tx, result_rx) = unbounded::<SegmentResult>();
        let (frames_tx, frames_rx) = unbounded::<PipelineFrame>();

        // Shared worker pool, one bounded channel per worker so shard
        // routing is deterministic (an MPMC free-for-all would let
        // scheduling decide who decodes what).
        let mut worker_txs: Vec<Sender<ShippedSegment>> = Vec::with_capacity(n_workers);
        let mut workers = Vec::with_capacity(n_workers);
        for wid in 0..n_workers {
            let (tx, rx) = bounded::<ShippedSegment>(2 * n_gateways.max(4));
            worker_txs.push(tx);
            workers.push(spawn_worker(
                wid,
                phy_registry.clone(),
                &config,
                fs,
                rx,
                result_tx.clone(),
                Some(gate.clone()),
                metrics.clone(),
            ));
        }

        let mut chunk_txs = Vec::with_capacity(n_gateways);
        let mut gateways = Vec::with_capacity(n_gateways);
        let mut uplinks = Vec::new();
        let mut ingresses = Vec::new();
        let mut muxes = Vec::with_capacity(n_gateways);
        let mut send_queues = Vec::new();
        let transport = config.transport;

        for index in 0..n_gateways {
            let gw = GatewayId(index as u16 + 1);
            registry.register(gw);
            let (chunk_tx, chunk_rx) = bounded::<Vec<Cf32>>(8);
            chunk_txs.push(chunk_tx);
            // The session inbox: segments that survived this session's
            // backhaul, awaiting shard routing.
            let (inbox_tx, inbox_rx) = bounded::<ShippedSegment>(2 * n_workers.max(4));

            let shipper = if transport.is_passthrough() {
                Shipper {
                    gateway: gw,
                    mode: ShipMode::Direct(inbox_tx),
                    base_bits: config.compression_bits,
                    uplink_bps: config.emulate_backhaul.then_some(config.backhaul_bps),
                    metrics: metrics.clone(),
                }
            } else {
                // Each session owns a full transport stack over its own
                // impaired links, seeds decorrelated per session.
                let mut t = transport;
                t.data_faults = LinkFaults {
                    seed: session_seed(t.data_faults.seed, index as u64),
                    ..t.data_faults
                };
                t.ack_faults = LinkFaults {
                    seed: session_seed(t.ack_faults.seed, index as u64),
                    ..t.ack_faults
                };
                t.arq.seed = session_seed(t.arq.seed, index as u64);
                let queue = SendQueue::new(t.send_queue_cap);
                let (wire_tx, wire_rx) = bounded::<Vec<u8>>(64);
                let (ack_tx, ack_rx) = unbounded::<Vec<u8>>();
                let lost_tx = result_tx.clone();
                uplinks.push(spawn_arq_sender(
                    queue.clone(),
                    wire_tx,
                    ack_rx,
                    t.arq,
                    t.data_faults,
                    config.emulate_backhaul.then_some(config.backhaul_bps),
                    metrics.clone(),
                    move |seq| {
                        galiot_trace::event(
                            galiot_trace::EventKind::Lost,
                            galiot_trace::tag_seq(gw.0, seq),
                        );
                        lost_tx
                            .send(SegmentResult {
                                gateway: gw,
                                seq,
                                frames: Vec::new(),
                                watermark: 0,
                                power: 0.0,
                            })
                            .is_ok()
                    },
                ));
                ingresses.push(spawn_arq_receiver(
                    wire_rx,
                    ack_tx,
                    inbox_tx,
                    t.ack_faults,
                    metrics.clone(),
                ));
                send_queues.push(queue.clone());
                Shipper {
                    gateway: gw,
                    mode: ShipMode::Transport {
                        tx: SendQueueTx::new(queue),
                        hwm: t.degrade_hwm,
                        cap: t.send_queue_cap,
                        min_bits: t.min_bits,
                        result_tx: result_tx.clone(),
                    },
                    base_bits: config.compression_bits,
                    uplink_bps: None,
                    metrics: metrics.clone(),
                }
            };

            gateways.push(spawn_gateway(
                &config,
                &phy_registry,
                chunk_rx,
                shipper,
                result_tx.clone(),
                metrics.clone(),
            ));
            muxes.push(spawn_mux(
                inbox_rx,
                worker_txs.clone(),
                gate.clone(),
                registry.clone(),
                n_shards,
                metrics.clone(),
            ));
        }
        // Disconnection must propagate down the dataflow: muxes hold
        // the only worker senders, workers + gateways + lost hooks the
        // only result senders.
        drop(worker_txs);
        drop(result_tx);

        let merge = spawn_merge(result_rx, frames_tx, n_gateways, metrics.clone());

        FleetGaliot {
            chunk_txs,
            frames_rx,
            gateways,
            uplinks,
            ingresses,
            muxes,
            workers,
            merge: Some(merge),
            send_queues,
            registry,
            metrics,
            engine_before: Some(engine_before),
        }
    }

    /// Feeds one capture chunk to every session; blocks if any session
    /// is saturated.
    pub fn push_chunk(&self, chunk: Vec<Cf32>) {
        for tx in &self.chunk_txs {
            let _ = tx.send(chunk.clone());
        }
    }

    /// The deduplicated frame output channel, in capture order.
    pub fn frames(&self) -> &Receiver<PipelineFrame> {
        &self.frames_rx
    }

    /// Shared metrics handle.
    pub fn metrics(&self) -> &SharedMetrics {
        &self.metrics
    }

    /// Point-in-time view of every session the ingest has heard from.
    pub fn sessions(&self) -> Vec<SessionInfo> {
        self.registry.snapshot()
    }

    fn join_all(&mut self) {
        self.chunk_txs.clear();
        // Join order follows the dataflow (cf. StreamingGaliot): each
        // gateway closes its send queue / inbox, ending its uplink,
        // whose dropped wire ends its ingress, whose dropped inbox
        // ends its mux; dropped worker senders end the pool; dropped
        // result senders end the merge.
        for g in self.gateways.drain(..) {
            let _ = g.join();
        }
        for u in self.uplinks.drain(..) {
            let _ = u.join();
        }
        for i in self.ingresses.drain(..) {
            let _ = i.join();
        }
        for m in self.muxes.drain(..) {
            let _ = m.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(m) = self.merge.take() {
            let _ = m.join();
        }
        for q in self.send_queues.drain(..) {
            self.metrics
                .with(|m| m.send_queue_hwm = m.send_queue_hwm.max(q.high_water_mark()));
        }
        if let Some(before) = self.engine_before.take() {
            self.metrics.with(|m| m.record_engine_stats(&before));
        }
    }

    /// Closes the intake, waits for the whole fleet, and returns all
    /// remaining frames (deduplicated, in capture order).
    pub fn finish(mut self) -> Vec<PipelineFrame> {
        self.join_all();
        self.frames_rx.try_iter().collect()
    }
}

impl Drop for FleetGaliot {
    fn drop(&mut self) {
        self.join_all();
    }
}

/// Per-session mux: stamps the session registry, takes a fairness
/// credit, and routes each surviving segment to its shard's worker.
/// The worker returns the credit after decoding.
fn spawn_mux(
    inbox_rx: Receiver<ShippedSegment>,
    worker_txs: Vec<Sender<ShippedSegment>>,
    gate: Arc<FairnessGate>,
    registry: Arc<SessionRegistry>,
    n_shards: usize,
    metrics: SharedMetrics,
) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("galiot-mux".into())
        .spawn(move || {
            let n_workers = worker_txs.len().max(1);
            while let Ok(seg) = inbox_rx.recv() {
                registry.touch(seg.gateway);
                metrics.with(|m| *m.per_gateway_segments.entry(seg.gateway.0).or_default() += 1);
                if !gate.acquire(seg.gateway) {
                    return; // gate closed: fleet is tearing down
                }
                // Two-level routing keeps the shard map stable across
                // worker-count changes: (gateway, seq) → shard → worker.
                let wid = shard_for(seg.gateway, seg.seq, n_shards) % n_workers;
                let gw = seg.gateway;
                if worker_txs[wid].send(seg).is_err() {
                    gate.release(gw);
                    return; // pool is gone
                }
            }
        })
        .expect("spawn fleet mux thread")
}

/// Per-session in-order reassembly state feeding the fleet merge.
#[derive(Default)]
struct SessionLane {
    pending: BTreeMap<u64, SegmentResult>,
    next_seq: u64,
}

/// The fleet merge thread: restores each session's emission order,
/// offers every decoded frame to the cross-gateway dedup, and emits
/// released groups in capture order, recording frame metrics exactly
/// once per delivered frame.
fn spawn_merge(
    result_rx: Receiver<SegmentResult>,
    frames_tx: Sender<PipelineFrame>,
    n_gateways: usize,
    metrics: SharedMetrics,
) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("galiot-fleet-merge".into())
        .spawn(move || {
            let mut lanes: Vec<SessionLane> =
                (0..n_gateways).map(|_| SessionLane::default()).collect();
            let mut merge: FleetMerge<PipelineFrame> =
                FleetMerge::new(n_gateways, DEDUP_SLACK as u64);

            let emit = |released: Vec<PipelineFrame>, merge_suppressed: u64| -> bool {
                metrics.with(|m| {
                    m.dedup_suppressed = merge_suppressed as usize;
                    m.fleet_delivered += released.len();
                    for pf in &released {
                        m.record_frame(&pf.frame, pf.at_edge, pf.via_kill);
                    }
                });
                for pf in released {
                    if frames_tx.send(pf).is_err() {
                        return false;
                    }
                }
                true
            };

            // Feeds one in-order segment result into the merge: offer
            // its frames (capture order within the segment), advance
            // the session watermark, release whatever became final.
            let offer_segment =
                |merge: &mut FleetMerge<PipelineFrame>, index: usize, result: SegmentResult| {
                    let SegmentResult {
                        gateway,
                        seq,
                        mut frames,
                        watermark,
                        power,
                    } = result;
                    let _span = galiot_trace::span(
                        galiot_trace::Stage::Reassembly,
                        galiot_trace::tag_seq(gateway.0, seq),
                    );
                    frames.sort_by_key(|pf| pf.frame.start);
                    if !frames.is_empty() {
                        metrics.with(|m| {
                            *m.per_gateway_decoded.entry(gateway.0).or_default() += frames.len()
                        });
                    }
                    for pf in frames {
                        let (tech, start) = (pf.frame.tech, pf.frame.start);
                        let payload = pf.frame.payload.clone();
                        merge.offer(index, tech, &payload, start, power, pf);
                    }
                    // Watermark 0 means "start unknown" (a lost-segment
                    // gap notice): hold the horizon rather than risk
                    // releasing a group a late copy could still match.
                    (watermark > 0).then_some(watermark)
                };

            while let Ok(result) = result_rx.recv() {
                let index = (result.gateway.0 as usize).wrapping_sub(1);
                if index >= n_gateways {
                    continue; // not a fleet session (defensive)
                }
                let lane = &mut lanes[index];
                // As in single-gateway reassembly, a seq can report
                // twice under the faulty transport (declared lost, then
                // delivered late by a reordering link): first wins.
                if result.seq < lane.next_seq {
                    continue;
                }
                lane.pending.entry(result.seq).or_insert(result);
                metrics.with(|m| {
                    let depth: usize = lanes.iter().map(|l| l.pending.len()).sum();
                    m.reassembly_hwm = m.reassembly_hwm.max(depth);
                });
                let lane = &mut lanes[index];
                while let Some(r) = lane.pending.remove(&lane.next_seq) {
                    lane.next_seq += 1;
                    if let Some(wm) = offer_segment(&mut merge, index, r) {
                        let released = merge.advance(index, wm);
                        if !emit(released, merge.suppressed()) {
                            return;
                        }
                    }
                }
            }

            // Producers are gone: flush each lane's stragglers in seq
            // order, then retire every session so the last groups
            // become final.
            for (index, lane) in lanes.iter_mut().enumerate() {
                for (_, r) in std::mem::take(&mut lane.pending) {
                    offer_segment(&mut merge, index, r);
                }
            }
            for index in 0..n_gateways {
                let released = merge.finish(index);
                if !emit(released, merge.suppressed()) {
                    return;
                }
            }
        })
        .expect("spawn fleet merge thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use galiot_channel::{compose, snr_to_noise_power, TxEvent};
    use galiot_phy::TechId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FS: f64 = 1_000_000.0;

    fn capture(seed: u64) -> galiot_channel::Capture {
        let mut rng = StdRng::seed_from_u64(seed);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let zwave = reg.get(TechId::ZWave).unwrap().clone();
        let events = vec![
            TxEvent::new(xbee, vec![0xA1, 0xB2], 200_000),
            TxEvent::new(zwave, vec![0x5C; 4], 800_000),
        ];
        let np = snr_to_noise_power(18.0, 0.0);
        compose(&events, 1_400_000, FS, np, &mut rng)
    }

    fn run_fleet(
        config: GaliotConfig,
        cap: &galiot_channel::Capture,
    ) -> (Vec<PipelineFrame>, crate::Metrics) {
        let fleet = FleetGaliot::start(config, Registry::prototype());
        for chunk in cap.samples.chunks(65_536) {
            fleet.push_chunk(chunk.to_vec());
        }
        let metrics = fleet.metrics().clone();
        let frames = fleet.finish();
        (frames, metrics.snapshot())
    }

    #[test]
    fn two_gateways_deliver_the_frame_set_exactly_once() {
        let cap = capture(11);
        // Edge decoding off: every segment must flow through the
        // sharded ingest, so the mux accounting is exercised.
        let mut config = GaliotConfig::prototype()
            .with_cloud_workers(2)
            .with_gateways(2);
        config.edge_decoding = false;
        let (frames, m) = run_fleet(config, &cap);
        let payloads: Vec<&Vec<u8>> = frames.iter().map(|f| &f.frame.payload).collect();
        assert!(payloads.contains(&&vec![0xA1, 0xB2]), "{payloads:?}");
        assert!(payloads.contains(&&vec![0x5C; 4]), "{payloads:?}");
        assert_eq!(frames.len(), 2, "duplicates leaked: {payloads:?}");
        assert_eq!(m.fleet_gateways, 2);
        assert_eq!(m.fleet_delivered, 2);
        assert!(
            m.dedup_suppressed >= 2,
            "each frame decodes once per gateway: {m:?}"
        );
        let offered: usize = m.per_gateway_decoded.values().sum();
        assert_eq!(offered, m.fleet_delivered + m.dedup_suppressed, "{m:?}");
        // Both sessions show up in the ingest accounting.
        assert_eq!(m.per_gateway_segments.len(), 2, "{m:?}");
    }

    #[test]
    fn fleet_frames_arrive_in_capture_order() {
        let cap = capture(12);
        let config = GaliotConfig::prototype()
            .with_cloud_workers(4)
            .with_gateways(3)
            .with_ingest_shards(7);
        let (frames, m) = run_fleet(config, &cap);
        let starts: Vec<usize> = frames.iter().map(|f| f.frame.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted, "fleet output out of capture order");
        assert_eq!(m.ingest_shards, 7);
        let offered: usize = m.per_gateway_decoded.values().sum();
        assert_eq!(offered, m.fleet_delivered + m.dedup_suppressed, "{m:?}");
    }

    #[test]
    fn session_registry_tracks_every_gateway() {
        let cap = capture(13);
        let config = GaliotConfig::prototype()
            .with_cloud_workers(2)
            .with_gateways(2);
        let fleet = FleetGaliot::start(config, Registry::prototype());
        for chunk in cap.samples.chunks(65_536) {
            fleet.push_chunk(chunk.to_vec());
        }
        let sessions_early = fleet.sessions();
        let _ = fleet.finish();
        assert_eq!(sessions_early.len(), 2);
        assert!(sessions_early.iter().all(|s| s.epoch > 0));
        assert_eq!(sessions_early[0].gateway, GatewayId(1));
        assert_eq!(sessions_early[1].gateway, GatewayId(2));
    }

    #[test]
    fn empty_fleet_run_is_clean() {
        let fleet = FleetGaliot::start(
            GaliotConfig::prototype()
                .with_gateways(2)
                .with_cloud_workers(1),
            Registry::prototype(),
        );
        let frames = fleet.finish();
        assert!(frames.is_empty());
    }
}
