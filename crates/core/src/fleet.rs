//! The multi-gateway fleet pipeline: N independent gateway sessions —
//! each with its own sequence space, transport, and (in transport
//! mode) decorrelated link-fault seeds — feeding one shared cloud
//! decode pool through a sharded, fairness-gated ingest, with
//! cross-gateway duplicate suppression on the way out.
//!
//! # Topology
//!
//! ```text
//!              chunks (broadcast)          per-session inbox
//!  push_chunk ──▶ session 1 ─[transport 1]─▶ mux 1 ─┐  supervised pool
//!             ──▶ session 2 ─[transport 2]─▶ mux 2 ─┼─▶ shard_for(gw,seq)
//!             ──▶   ...                       ...   ┘  ─▶ worker 0..W ─┐
//!                                                      (FairnessGate)  │
//!                                                                      ▼
//!        frames ◀── FleetMerge (dedup, capture order) ◀── per-session
//!                                                         reassembly
//! ```
//!
//! Every gateway hears (roughly) the same air — the paper's deployment
//! shape is redundant cheap SDRs covering one neighbourhood — so the
//! same over-the-air frame decodes once per session. The merge keeps
//! the best-power copy and counts the rest as `dedup_suppressed`; the
//! fleet conformance suite pins the keystone invariant that N sessions
//! deliver exactly the single-gateway frame set, once, for any worker
//! count, shard count, and per-link fault seeds.
//!
//! # Self-healing
//!
//! Each session runs under a supervisor thread that can survive the
//! gateway instance crashing (fault injection via
//! [`crate::config::CrashSpec`]; a real deployment's equivalent is the
//! SDR process dying). A session moves through `alive → silent → dead`
//! as observed by the [`SessionRegistry`] logical clock: once it has
//! been silent past `liveness_horizon` events while holding no
//! [`FairnessGate`] credits, the merge-side reaper declares it dead,
//! reclaims its credits, and finalizes its [`FleetMerge`] watermark to
//! `u64::MAX` so capture-order release resumes for the survivors
//! instead of stalling forever. A restarted instance re-registers
//! under a bumped epoch and numbers segments from
//! `instance << EPOCH_SHIFT`, so its sequence space never collides
//! with its past self; the superseded epoch's late traffic is fenced
//! at the mux (registry epoch check) and at the merge (lane epoch
//! floor) and accounted as `crash_lost_*`.
//!
//! The shared decode pool is supervised the same way (see
//! [`crate::streaming`] §supervised pool and DESIGN.md §17): every
//! dispatched segment holds a deadline lease, hung workers are
//! replaced in place, panicked and hung decodes are re-dispatched up
//! to `decode_retries` times, and a segment that exhausts the ladder
//! is quarantined to a dead-letter record while an empty watermarked
//! result keeps capture-order release and the liveness reaper moving.
//!
//! Ingest-side fleet mechanics — [`SessionRegistry`],
//! [`galiot_cloud::shard_for`], [`galiot_cloud::FairnessGate`],
//! [`galiot_cloud::FleetMerge`] — live in `galiot-cloud`; this module
//! wires them to the per-session machinery of [`crate::streaming`] and
//! [`crate::transport`].

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use galiot_cloud::{FairnessGate, FleetMerge, SessionInfo, SessionRegistry};
use galiot_dsp::Cf32;
use galiot_gateway::{GatewayId, LinkFaults};
use galiot_phy::registry::Registry;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;

use crate::config::{CrashSpec, GaliotConfig};
use crate::metrics::SharedMetrics;
use crate::pipeline::PipelineFrame;
use crate::spawn::spawn_thread;
use crate::streaming::{
    run_gateway, spawn_supervised_pool, PoolItem, ResultMsg, SegmentResult, SessionStart, ShipMode,
    Shipper, DEDUP_SLACK,
};
use crate::transport::{spawn_arq_receiver, spawn_arq_sender, SendQueue, SendQueueTx};

/// In-flight decode credits each session may hold between its mux and
/// the worker pool (see [`FairnessGate`]).
const SESSION_QUOTA: usize = 8;

/// Decorrelates a per-link seed across fleet sessions and instances.
/// Salt 0 (session index 0, first life) keeps the configured seed, so
/// a one-gateway fleet reproduces [`crate::StreamingGaliot`]'s wire
/// behavior exactly; a restarted instance draws fresh link randomness,
/// as a rebooted radio would.
fn session_seed(seed: u64, salt: u64) -> u64 {
    seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Per-instance seed salt: session index in the low half, instance
/// (life) number in the high half.
fn instance_salt(index: usize, instance: u64) -> u64 {
    index as u64 | (instance << 32)
}

/// A running multi-gateway GalioT fleet.
///
/// Feed raw capture chunks with [`FleetGaliot::push_chunk`] — every
/// session receives each chunk, modelling N gateways hearing the same
/// air — close the intake with [`FleetGaliot::finish`], and collect
/// deduplicated, capture-ordered frames from the output receiver.
pub struct FleetGaliot {
    chunk_txs: Vec<Sender<Vec<Cf32>>>,
    frames_rx: Receiver<PipelineFrame>,
    /// One supervisor per session; each owns its instances' gateway
    /// loop and IO threads (transport, mux) across crash/restart.
    sessions: Vec<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    merge: Option<thread::JoinHandle<()>>,
    /// Send queues created by session supervisors (one per transport
    /// instance), drained for their high-water marks at join time.
    send_queues: Arc<Mutex<Vec<Arc<SendQueue>>>>,
    registry: Arc<SessionRegistry>,
    metrics: SharedMetrics,
    engine_before: Option<galiot_dsp::engine::EngineStats>,
}

impl FleetGaliot {
    /// Spawns `config.gateways` session supervisors (wire ids 1..=N),
    /// a shared pool of `config.effective_cloud_workers()` decode
    /// workers, and the fleet merge.
    ///
    /// # Panics
    /// Panics if `config` fails [`GaliotConfig::validate`] — in
    /// particular a crash spec the liveness reaper could never evict
    /// must be rejected here rather than wedge the merge.
    pub fn start(config: GaliotConfig, phy_registry: Registry) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid GaliotConfig: {e}");
        }
        let n_gateways = config.gateways.max(1);
        let n_workers = config.effective_cloud_workers();
        let n_shards = config.effective_ingest_shards();
        let engine_before = galiot_dsp::engine::stats();
        let metrics = SharedMetrics::new();
        metrics.with(|m| {
            m.cloud_workers = n_workers;
            m.fleet_gateways = n_gateways;
            m.ingest_shards = n_shards;
        });

        let registry = Arc::new(SessionRegistry::new());
        let gate = Arc::new(FairnessGate::new(SESSION_QUOTA));
        let (result_tx, result_rx) = unbounded::<ResultMsg>();
        let (frames_tx, frames_rx) = unbounded::<PipelineFrame>();

        // Shared supervised decode pool. The supervisor owns shard
        // routing ((gateway, seq) → shard → worker stays deterministic
        // — an MPMC free-for-all would let scheduling decide who
        // decodes what) and the hang/retry/quarantine ladder. Intake
        // capacity scales with the fleet so every session keeps the
        // queue depth it had with per-worker channels.
        let pool = spawn_supervised_pool(
            &config,
            phy_registry.clone(),
            n_workers,
            2 * n_gateways.max(4) * n_workers,
            n_shards,
            result_tx.clone(),
            metrics.clone(),
        );
        let pool_tx = pool.intake;
        let workers = vec![pool.supervisor];

        let send_queues: Arc<Mutex<Vec<Arc<SendQueue>>>> = Arc::new(Mutex::new(Vec::new()));
        let mut chunk_txs = Vec::with_capacity(n_gateways);
        let mut sessions = Vec::with_capacity(n_gateways);
        for index in 0..n_gateways {
            let (chunk_tx, chunk_rx) = bounded::<Vec<Cf32>>(8);
            chunk_txs.push(chunk_tx);
            let crash = config.crashes.iter().find(|c| c.session == index).copied();
            sessions.push(spawn_session(SessionSupervisor {
                index,
                config: config.clone(),
                phy_registry: phy_registry.clone(),
                chunk_rx,
                pool_tx: pool_tx.clone(),
                gate: gate.clone(),
                registry: registry.clone(),
                result_tx: result_tx.clone(),
                send_queues: send_queues.clone(),
                crash,
                metrics: metrics.clone(),
            }));
        }
        // Disconnection must propagate down the dataflow: session
        // supervisors hold the only pool senders, the pool + session
        // supervisors the only result senders.
        drop(pool_tx);
        drop(result_tx);

        let merge = spawn_merge(
            result_rx,
            frames_tx,
            n_gateways,
            registry.clone(),
            gate.clone(),
            config.liveness_horizon,
            metrics.clone(),
        );

        FleetGaliot {
            chunk_txs,
            frames_rx,
            sessions,
            workers,
            merge: Some(merge),
            send_queues,
            registry,
            metrics,
            engine_before: Some(engine_before),
        }
    }

    /// Feeds one capture chunk to every session; blocks if any session
    /// is saturated. Chunks to a dead (crashed, unrestarted) session
    /// are discarded — its radio is gone.
    pub fn push_chunk(&self, chunk: Vec<Cf32>) {
        for tx in &self.chunk_txs {
            let _ = tx.send(chunk.clone());
        }
    }

    /// The deduplicated frame output channel, in capture order.
    pub fn frames(&self) -> &Receiver<PipelineFrame> {
        &self.frames_rx
    }

    /// Shared metrics handle.
    pub fn metrics(&self) -> &SharedMetrics {
        &self.metrics
    }

    /// Point-in-time view of every session the ingest has heard from.
    pub fn sessions(&self) -> Vec<SessionInfo> {
        self.registry.snapshot()
    }

    fn join_all(&mut self) {
        self.chunk_txs.clear();
        // Join order follows the dataflow: each supervisor's gateway
        // instance closes its send queue / inbox, ending its uplink,
        // ingress, and mux (joined inside the supervisor); exited
        // supervisors drop the pool senders, ending the decode pool;
        // the pool drops the result senders, ending the merge.
        for s in self.sessions.drain(..) {
            let _ = s.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(m) = self.merge.take() {
            let _ = m.join();
        }
        for q in self.send_queues.lock().drain(..) {
            self.metrics
                .with(|m| m.send_queue_hwm = m.send_queue_hwm.max(q.high_water_mark()));
        }
        if let Some(before) = self.engine_before.take() {
            self.metrics.with(|m| m.record_engine_stats(&before));
        }
    }

    /// Closes the intake, waits for the whole fleet, and returns all
    /// remaining frames (deduplicated, in capture order).
    pub fn finish(mut self) -> Vec<PipelineFrame> {
        self.join_all();
        self.frames_rx.try_iter().collect()
    }
}

impl Drop for FleetGaliot {
    fn drop(&mut self) {
        self.join_all();
    }
}

/// Everything a session supervisor owns for the lifetime of its slot.
struct SessionSupervisor {
    index: usize,
    config: GaliotConfig,
    phy_registry: Registry,
    chunk_rx: Receiver<Vec<Cf32>>,
    pool_tx: Sender<PoolItem>,
    gate: Arc<FairnessGate>,
    registry: Arc<SessionRegistry>,
    result_tx: Sender<ResultMsg>,
    send_queues: Arc<Mutex<Vec<Arc<SendQueue>>>>,
    crash: Option<CrashSpec>,
    metrics: SharedMetrics,
}

/// The IO threads one gateway instance runs with; joined when the
/// instance ends (cleanly or by crash) before any successor starts, so
/// epochs never overlap on the wire.
struct SessionIo {
    uplink: Option<thread::JoinHandle<()>>,
    ingress: Option<thread::JoinHandle<()>>,
    mux: thread::JoinHandle<()>,
}

impl SessionIo {
    fn join(self) {
        if let Some(u) = self.uplink {
            let _ = u.join();
        }
        if let Some(i) = self.ingress {
            let _ = i.join();
        }
        let _ = self.mux.join();
    }
}

/// One gateway session's supervisor: runs successive gateway instances
/// over the shared chunk feed, restarting after an injected crash when
/// the [`CrashSpec`] asks for it. Each instance gets its own transport
/// stack and epoch-fenced mux; the crashed instance's IO drains and is
/// joined before the replacement registers, so a restarted session
/// never overlaps its past self on the wire.
fn spawn_session(sup: SessionSupervisor) -> thread::JoinHandle<()> {
    let gw = GatewayId(sup.index as u16 + 1);
    spawn_thread(&format!("galiot-session-{}", gw.0), move || {
        let mut capture_offset = 0usize;
        let mut instance = 0u64;
        loop {
            let epoch = sup.registry.register(gw);
            let seq_base = instance << galiot_trace::EPOCH_SHIFT;
            if instance > 0 {
                sup.metrics.with(|m| m.sessions_restarted += 1);
                // Announced on the supervisor's own sender BEFORE
                // any of the new instance's IO exists: channel FIFO
                // then orders the revival ahead of every new-epoch
                // result at the merge.
                if sup
                    .result_tx
                    .send(ResultMsg::SessionRestarted {
                        gateway: gw,
                        seq_base,
                    })
                    .is_err()
                {
                    return;
                }
            }
            // Each spec fires once, on the session's first life.
            let crash_after = if instance == 0 {
                sup.crash.map(|c| c.after_segments)
            } else {
                None
            };
            let (shipper, io) = build_session_io(&sup, gw, epoch, instance);
            let run = run_gateway(
                &sup.config,
                &sup.phy_registry,
                &sup.chunk_rx,
                shipper,
                &sup.result_tx,
                &sup.metrics,
                SessionStart {
                    capture_offset,
                    seq_base,
                    crash_after,
                },
            );
            // The instance is over; its shipper is dropped, which
            // closes the send queue / inbox. Drain and join its IO
            // (a graceful-drain crash model: segments already in
            // the transport complete their ARQ journey).
            io.join();
            if run.crashed {
                sup.metrics.with(|m| m.sessions_crashed += 1);
                if sup.crash.is_some_and(|c| c.restart) {
                    instance += 1;
                    capture_offset = run.consumed;
                    continue;
                }
                // No restart: the slot stays dead. The liveness
                // reaper will notice the silence, reclaim credits,
                // and finalize the merge watermark; dropping
                // chunk_rx makes push_chunk discard this session's
                // chunks from here on.
            }
            return;
        }
    })
    .unwrap_or_else(|e| panic!("fleet session startup: {e}"))
}

/// Builds one gateway instance's IO: inbox, transport stack (faulty
/// links decorrelated per session *and* per instance), and the
/// epoch-fenced mux into the shared worker pool.
fn build_session_io(
    sup: &SessionSupervisor,
    gw: GatewayId,
    epoch: u64,
    instance: u64,
) -> (Shipper, SessionIo) {
    let config = &sup.config;
    let transport = config.transport;
    let n_workers = config.effective_cloud_workers();
    // The session inbox: segments that survived this instance's
    // backhaul, awaiting the fence + fairness credit.
    let (inbox_tx, inbox_rx) = bounded::<PoolItem>(2 * n_workers.max(4));

    let mut uplink = None;
    let mut ingress = None;
    let shipper = if transport.is_passthrough() {
        Shipper {
            gateway: gw,
            mode: ShipMode::Direct(inbox_tx),
            base_bits: config.compression_bits,
            uplink_bps: config.emulate_backhaul.then_some(config.backhaul_bps),
            metrics: sup.metrics.clone(),
        }
    } else {
        // Each instance owns a full transport stack over its own
        // impaired links, seeds decorrelated per session and per life.
        let salt = instance_salt(sup.index, instance);
        let mut t = transport;
        t.data_faults = LinkFaults {
            seed: session_seed(t.data_faults.seed, salt),
            ..t.data_faults
        };
        t.ack_faults = LinkFaults {
            seed: session_seed(t.ack_faults.seed, salt),
            ..t.ack_faults
        };
        t.arq.seed = session_seed(t.arq.seed, salt);
        let queue = SendQueue::new(t.send_queue_cap);
        let (wire_tx, wire_rx) = bounded::<Vec<u8>>(64);
        let (ack_tx, ack_rx) = unbounded::<Vec<u8>>();
        let lost_tx = sup.result_tx.clone();
        uplink = Some(spawn_arq_sender(
            queue.clone(),
            wire_tx,
            ack_rx,
            t.arq,
            t.data_faults,
            config.emulate_backhaul.then_some(config.backhaul_bps),
            sup.metrics.clone(),
            move |seq| {
                galiot_trace::event(
                    galiot_trace::EventKind::Lost,
                    galiot_trace::tag_seq(gw.0, seq),
                );
                lost_tx
                    .send(ResultMsg::Segment(SegmentResult {
                        gateway: gw,
                        seq,
                        frames: Vec::new(),
                        watermark: None,
                        power: 0.0,
                    }))
                    .is_ok()
            },
        ));
        ingress = Some(spawn_arq_receiver(
            wire_rx,
            ack_tx,
            inbox_tx,
            t.ack_faults,
            sup.metrics.clone(),
        ));
        sup.send_queues.lock().push(queue.clone());
        Shipper {
            gateway: gw,
            mode: ShipMode::Transport {
                tx: SendQueueTx::new(queue),
                hwm: t.degrade_hwm,
                cap: t.send_queue_cap,
                min_bits: t.min_bits,
                result_tx: sup.result_tx.clone(),
            },
            base_bits: config.compression_bits,
            uplink_bps: None,
            metrics: sup.metrics.clone(),
        }
    };

    let mux = spawn_mux(
        inbox_rx,
        sup.pool_tx.clone(),
        sup.gate.clone(),
        sup.registry.clone(),
        epoch,
        sup.metrics.clone(),
    );
    (
        shipper,
        SessionIo {
            uplink,
            ingress,
            mux,
        },
    )
}

/// Per-instance mux: fences stale traffic against the session
/// registry, takes a fairness credit, and hands each surviving segment
/// to the supervised pool with the credit attached (the supervisor
/// does the deterministic shard routing). The credit's guard returns
/// it wherever the segment is dropped.
fn spawn_mux(
    inbox_rx: Receiver<PoolItem>,
    pool_tx: Sender<PoolItem>,
    gate: Arc<FairnessGate>,
    registry: Arc<SessionRegistry>,
    epoch: u64,
    metrics: SharedMetrics,
) -> thread::JoinHandle<()> {
    spawn_thread("galiot-mux", move || {
        while let Ok(mut item) = inbox_rx.recv() {
            let gw = item.seg.gateway;
            // Epoch fence: traffic of a dead or superseded
            // instance stops here, before it can consume a credit
            // or a worker. A fenced segment gets a Lost terminal
            // and is accounted to the crash, never to
            // per_gateway_segments.
            if !registry.touch_current(gw, epoch) {
                metrics.with(|m| m.crash_lost_segments += 1);
                galiot_trace::event(
                    galiot_trace::EventKind::Lost,
                    galiot_trace::tag_seq(gw.0, item.seg.seq),
                );
                continue;
            }
            metrics.with(|m| *m.per_gateway_segments.entry(gw.0).or_default() += 1);
            let Some(credit) = gate.acquire_guard(gw) else {
                return; // gate closed: fleet is tearing down
            };
            item.credit = Some(credit);
            if pool_tx.send(item).is_err() {
                return; // pool gone; the in-item guard frees the credit
            }
        }
    })
    .unwrap_or_else(|e| panic!("fleet mux startup: {e}"))
}

/// Per-session in-order reassembly state feeding the fleet merge.
#[derive(Default)]
struct SessionLane {
    pending: BTreeMap<u64, SegmentResult>,
    next_seq: u64,
    /// Results below this sequence belong to a superseded (pre-crash)
    /// epoch of a restarted session and are dropped on the crash's
    /// account.
    epoch_floor: u64,
    /// Set when the liveness reaper declares the session dead; a dead
    /// lane drops everything until a restart revives it.
    dead: bool,
}

/// The fleet merge's state machine, extracted from the merge thread
/// for direct unit testing: per-session in-order lanes in front of the
/// cross-gateway [`FleetMerge`], plus the failover transitions — death
/// finalizes the session's watermark to `u64::MAX` so capture-order
/// release resumes for the survivors; restart fences the superseded
/// epoch's sequence space and revives the lane.
struct MergeCore {
    lanes: Vec<SessionLane>,
    merge: FleetMerge<PipelineFrame>,
    metrics: SharedMetrics,
}

impl MergeCore {
    fn new(n_gateways: usize, metrics: SharedMetrics) -> Self {
        MergeCore {
            lanes: (0..n_gateways).map(|_| SessionLane::default()).collect(),
            merge: FleetMerge::new(n_gateways, DEDUP_SLACK as u64),
            metrics,
        }
    }

    fn lane_index(&self, gateway: GatewayId) -> Option<usize> {
        let index = (gateway.0 as usize).wrapping_sub(1);
        (index < self.lanes.len()).then_some(index)
    }

    /// Feeds one in-order segment result into the merge: offer its
    /// frames (capture order within the segment), advance the session
    /// watermark, return whatever groups became final.
    fn offer_segment(&mut self, index: usize, result: SegmentResult) -> Vec<PipelineFrame> {
        let SegmentResult {
            gateway,
            seq,
            mut frames,
            watermark,
            power,
        } = result;
        let _span = galiot_trace::span(
            galiot_trace::Stage::Reassembly,
            galiot_trace::tag_seq(gateway.0, seq),
        );
        frames.sort_by_key(|pf| pf.frame.start);
        if !frames.is_empty() {
            self.metrics
                .with(|m| *m.per_gateway_decoded.entry(gateway.0).or_default() += frames.len());
        }
        for pf in frames {
            let (tech, start) = (pf.frame.tech, pf.frame.start);
            let payload = pf.frame.payload.clone();
            self.merge.offer(index, tech, &payload, start, power, pf);
        }
        // `None` is a gap notice (lost segment, start unknown): hold
        // the horizon rather than risk releasing a group a late copy
        // could still match. `Some(0)` is genuine progress from a
        // segment starting at capture sample 0 and must advance — the
        // two no longer share a sentinel.
        match watermark {
            Some(wm) => self.merge.advance(index, wm),
            None => Vec::new(),
        }
    }

    /// One decode result from the pool (or a gap notice), drained
    /// in-order through the session's lane.
    fn on_result(&mut self, result: SegmentResult) -> Vec<PipelineFrame> {
        let Some(index) = self.lane_index(result.gateway) else {
            return Vec::new(); // not a fleet session (defensive)
        };
        let lane = &mut self.lanes[index];
        if lane.dead || result.seq < lane.epoch_floor {
            // Late traffic of a dead or superseded epoch: dropped on
            // the crash's account. Counting its frames into both
            // per_gateway_decoded and crash_lost_frames keeps the
            // delivery identity closed.
            let n = result.frames.len();
            let gw = result.gateway.0;
            self.metrics.with(|m| {
                m.crash_lost_segments += 1;
                if n > 0 {
                    *m.per_gateway_decoded.entry(gw).or_default() += n;
                    m.crash_lost_frames += n;
                }
            });
            return Vec::new();
        }
        // As in single-gateway reassembly, a seq can report twice
        // under the faulty transport (declared lost, then delivered
        // late by a reordering link): first wins.
        if result.seq < lane.next_seq {
            return Vec::new();
        }
        lane.pending.entry(result.seq).or_insert(result);
        self.metrics.with(|m| {
            let depth: usize = self.lanes.iter().map(|l| l.pending.len()).sum();
            m.reassembly_hwm = m.reassembly_hwm.max(depth);
        });
        let mut released = Vec::new();
        loop {
            // Re-borrow per iteration: offer_segment needs &mut self.
            let lane = &mut self.lanes[index];
            let Some(r) = lane.pending.remove(&lane.next_seq) else {
                break;
            };
            lane.next_seq += 1;
            released.extend(self.offer_segment(index, r));
        }
        released
    }

    /// Death transition: flush the lane's stragglers (the session will
    /// never fill its gaps), then finalize its merge watermark so the
    /// survivors' capture-order release resumes. Idempotent.
    fn on_dead(&mut self, gateway: GatewayId) -> Vec<PipelineFrame> {
        let Some(index) = self.lane_index(gateway) else {
            return Vec::new();
        };
        if self.lanes[index].dead {
            return Vec::new();
        }
        self.lanes[index].dead = true;
        let pending = std::mem::take(&mut self.lanes[index].pending);
        let mut released = Vec::new();
        for (_, r) in pending {
            released.extend(self.offer_segment(index, r));
        }
        released.extend(self.merge.finish(index));
        released
    }

    /// Restart transition: flush pre-crash stragglers, fence the
    /// superseded epoch (`epoch_floor`), and revive a dead lane —
    /// including reopening its merge watermark, the one sanctioned
    /// regression from the finalized `u64::MAX`.
    fn on_restart(&mut self, gateway: GatewayId, seq_base: u64) -> Vec<PipelineFrame> {
        let Some(index) = self.lane_index(gateway) else {
            return Vec::new();
        };
        let pending = std::mem::take(&mut self.lanes[index].pending);
        let mut released = Vec::new();
        for (_, r) in pending {
            released.extend(self.offer_segment(index, r));
        }
        let lane = &mut self.lanes[index];
        lane.next_seq = seq_base;
        lane.epoch_floor = seq_base;
        if lane.dead {
            lane.dead = false;
            self.merge.reopen(index, 0);
        }
        released
    }

    /// End of input: flush every lane, then retire every session so
    /// the last groups become final. (`FleetMerge::finish` is
    /// idempotent for sessions the reaper already retired.)
    fn finish(&mut self) -> Vec<PipelineFrame> {
        let mut released = Vec::new();
        for index in 0..self.lanes.len() {
            let pending = std::mem::take(&mut self.lanes[index].pending);
            for (_, r) in pending {
                released.extend(self.offer_segment(index, r));
            }
        }
        for index in 0..self.lanes.len() {
            released.extend(self.merge.finish(index));
        }
        released
    }

    fn suppressed(&self) -> u64 {
        self.merge.suppressed()
    }
}

/// The fleet merge thread: restores each session's emission order,
/// offers every decoded frame to the cross-gateway dedup, emits
/// released groups in capture order (recording frame metrics exactly
/// once per delivered frame) — and runs the liveness reaper, declaring
/// sessions dead after `liveness_horizon` logical events of silence.
fn spawn_merge(
    result_rx: Receiver<ResultMsg>,
    frames_tx: Sender<PipelineFrame>,
    n_gateways: usize,
    registry: Arc<SessionRegistry>,
    gate: Arc<FairnessGate>,
    liveness_horizon: u64,
    metrics: SharedMetrics,
) -> thread::JoinHandle<()> {
    spawn_thread("galiot-fleet-merge", move || {
        let mut core = MergeCore::new(n_gateways, metrics.clone());

        let emit = |released: Vec<PipelineFrame>, merge_suppressed: u64| -> bool {
            metrics.with(|m| {
                m.dedup_suppressed = merge_suppressed as usize;
                m.fleet_delivered += released.len();
                for pf in &released {
                    m.record_frame(&pf.frame, pf.at_edge, pf.via_kill);
                }
            });
            for pf in released {
                if frames_tx.send(pf).is_err() {
                    return false;
                }
            }
            true
        };

        while let Ok(msg) = result_rx.recv() {
            let released = match msg {
                ResultMsg::Segment(result) => {
                    // Proof of life: a result reaching the merge
                    // means the session's pipeline is flowing.
                    registry.heartbeat(result.gateway);
                    let mut rel = core.on_result(result);
                    // The liveness reaper piggybacks on result
                    // traffic: silence is only measurable while
                    // the rest of the fleet advances the logical
                    // clock, which is exactly when a stalled
                    // watermark blocks survivors. A session still
                    // holding pool credits has results on the way
                    // (the credit is dropped only after the result
                    // is queued here) — only quiesced silence is
                    // death.
                    if liveness_horizon > 0 {
                        for gw in registry.stale(liveness_horizon) {
                            if gate.held(gw) == 0
                                && registry.mark_dead_if_stale(gw, liveness_horizon)
                            {
                                gate.revoke(gw);
                                rel.extend(core.on_dead(gw));
                            }
                        }
                    }
                    rel
                }
                ResultMsg::SessionRestarted { gateway, seq_base } => {
                    registry.heartbeat(gateway);
                    core.on_restart(gateway, seq_base)
                }
            };
            if !emit(released, core.suppressed()) {
                return;
            }
        }

        // Producers are gone: flush the stragglers and retire
        // every session so the last groups become final.
        let released = core.finish();
        let _ = emit(released, core.suppressed());
    })
    .unwrap_or_else(|e| panic!("fleet merge startup: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use galiot_channel::{compose, snr_to_noise_power, TxEvent};
    use galiot_phy::TechId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FS: f64 = 1_000_000.0;

    fn capture(seed: u64) -> galiot_channel::Capture {
        let mut rng = StdRng::seed_from_u64(seed);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let zwave = reg.get(TechId::ZWave).unwrap().clone();
        let events = vec![
            TxEvent::new(xbee, vec![0xA1, 0xB2], 200_000),
            TxEvent::new(zwave, vec![0x5C; 4], 800_000),
        ];
        let np = snr_to_noise_power(18.0, 0.0);
        compose(&events, 1_400_000, FS, np, &mut rng)
    }

    fn run_fleet(
        config: GaliotConfig,
        cap: &galiot_channel::Capture,
    ) -> (Vec<PipelineFrame>, crate::Metrics) {
        let fleet = FleetGaliot::start(config, Registry::prototype());
        for chunk in cap.samples.chunks(65_536) {
            fleet.push_chunk(chunk.to_vec());
        }
        let metrics = fleet.metrics().clone();
        let frames = fleet.finish();
        (frames, metrics.snapshot())
    }

    #[test]
    fn two_gateways_deliver_the_frame_set_exactly_once() {
        let cap = capture(11);
        // Edge decoding off: every segment must flow through the
        // sharded ingest, so the mux accounting is exercised.
        let mut config = GaliotConfig::prototype()
            .with_cloud_workers(2)
            .with_gateways(2);
        config.edge_decoding = false;
        let (frames, m) = run_fleet(config, &cap);
        let payloads: Vec<&Vec<u8>> = frames.iter().map(|f| &f.frame.payload).collect();
        assert!(payloads.contains(&&vec![0xA1, 0xB2]), "{payloads:?}");
        assert!(payloads.contains(&&vec![0x5C; 4]), "{payloads:?}");
        assert_eq!(frames.len(), 2, "duplicates leaked: {payloads:?}");
        assert_eq!(m.fleet_gateways, 2);
        assert_eq!(m.fleet_delivered, 2);
        assert!(
            m.dedup_suppressed >= 2,
            "each frame decodes once per gateway: {m:?}"
        );
        let offered: usize = m.per_gateway_decoded.values().sum();
        assert_eq!(
            offered,
            m.fleet_delivered + m.dedup_suppressed + m.crash_lost_frames + m.quarantined_frames,
            "{m:?}"
        );
        assert_eq!(m.sessions_crashed, 0, "{m:?}");
        assert_eq!(m.crash_lost_segments, 0, "{m:?}");
        // Both sessions show up in the ingest accounting.
        assert_eq!(m.per_gateway_segments.len(), 2, "{m:?}");
    }

    #[test]
    fn fleet_frames_arrive_in_capture_order() {
        let cap = capture(12);
        let config = GaliotConfig::prototype()
            .with_cloud_workers(4)
            .with_gateways(3)
            .with_ingest_shards(7);
        let (frames, m) = run_fleet(config, &cap);
        let starts: Vec<usize> = frames.iter().map(|f| f.frame.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted, "fleet output out of capture order");
        assert_eq!(m.ingest_shards, 7);
        let offered: usize = m.per_gateway_decoded.values().sum();
        assert_eq!(
            offered,
            m.fleet_delivered + m.dedup_suppressed + m.crash_lost_frames + m.quarantined_frames,
            "{m:?}"
        );
    }

    #[test]
    fn session_registry_tracks_every_gateway() {
        let cap = capture(13);
        let config = GaliotConfig::prototype()
            .with_cloud_workers(2)
            .with_gateways(2);
        let fleet = FleetGaliot::start(config, Registry::prototype());
        for chunk in cap.samples.chunks(65_536) {
            fleet.push_chunk(chunk.to_vec());
        }
        let sessions_early = fleet.sessions();
        let _ = fleet.finish();
        assert_eq!(sessions_early.len(), 2);
        assert!(sessions_early.iter().all(|s| s.epoch > 0));
        assert!(sessions_early.iter().all(|s| !s.dead));
        assert_eq!(sessions_early[0].gateway, GatewayId(1));
        assert_eq!(sessions_early[1].gateway, GatewayId(2));
    }

    #[test]
    fn empty_fleet_run_is_clean() {
        let fleet = FleetGaliot::start(
            GaliotConfig::prototype()
                .with_gateways(2)
                .with_cloud_workers(1),
            Registry::prototype(),
        );
        let frames = fleet.finish();
        assert!(frames.is_empty());
    }

    // -----------------------------------------------------------------
    // MergeCore unit tests: the failover state machine without threads.
    // -----------------------------------------------------------------

    fn frame(tech: TechId, payload: &[u8], start: usize) -> PipelineFrame {
        PipelineFrame {
            frame: galiot_phy::DecodedFrame {
                tech,
                payload: payload.to_vec(),
                start,
                len: 100,
            },
            at_edge: false,
            via_kill: false,
        }
    }

    fn seg(gw: u16, seq: u64, frames: Vec<PipelineFrame>, watermark: Option<u64>) -> SegmentResult {
        SegmentResult {
            gateway: GatewayId(gw),
            seq,
            frames,
            watermark,
            power: 1.0,
        }
    }

    #[test]
    fn watermark_zero_advances_but_gap_notice_holds() {
        // Regression for the release-gate bug: a segment starting at
        // capture sample 0 used to be indistinguishable from a lost
        // segment's gap notice (both watermark 0), holding the fleet
        // horizon back. With Option watermarks, Some(0) is progress.
        let metrics = SharedMetrics::new();
        let mut core = MergeCore::new(2, metrics);
        // Session 1 decodes a frame at capture start 0 and reports
        // watermark Some(0); session 2 has already advanced past it.
        let rel = core.on_result(seg(1, 0, vec![frame(TechId::XBee, &[1], 0)], Some(0)));
        assert!(rel.is_empty(), "session 2 has not spoken yet");
        let rel = core.on_result(seg(2, 0, Vec::new(), Some(50_000)));
        assert!(
            rel.is_empty(),
            "session 1's Some(0) watermark must hold the group (0 + slack > 0)"
        );
        // Session 1 advances past the group: both sessions' watermarks
        // now clear start 0 + slack, so the frame releases mid-stream.
        let rel = core.on_result(seg(1, 1, Vec::new(), Some(50_000)));
        assert_eq!(rel.len(), 1, "Some(0) then Some(50k) must release");
        // A gap notice (None) must NOT advance: session 1's next
        // report is a loss, and a frame offered at its frontier stays
        // held even though both numeric watermarks would clear it.
        let rel = core.on_result(seg(
            2,
            1,
            vec![frame(TechId::XBee, &[2], 60_000)],
            Some(70_000),
        ));
        assert!(rel.is_empty());
        let rel = core.on_result(seg(1, 2, Vec::new(), None));
        assert!(rel.is_empty(), "gap notice must not release anything");
        let rel = core.finish();
        assert_eq!(rel.len(), 1, "finish releases the held frame");
    }

    #[test]
    fn dead_session_watermark_finalizes_and_releases_survivors() {
        // The tentpole stall: session 2 dies silently at watermark 0;
        // session 1 keeps streaming. Without the death transition the
        // merge would hold every group behind session 2's frozen
        // watermark until teardown.
        let metrics = SharedMetrics::new();
        let mut core = MergeCore::new(2, metrics.clone());
        let rel = core.on_result(seg(
            1,
            0,
            vec![frame(TechId::ZWave, &[7; 4], 10_000)],
            Some(10_000),
        ));
        assert!(rel.is_empty());
        let rel = core.on_result(seg(1, 1, Vec::new(), Some(90_000)));
        assert!(
            rel.is_empty(),
            "survivor frames stall behind the silent session"
        );
        let rel = core.on_dead(GatewayId(2));
        assert_eq!(rel.len(), 1, "death finalizes the watermark mid-stream");
        // Idempotent: a second death report changes nothing.
        assert!(core.on_dead(GatewayId(2)).is_empty());
        // Survivor traffic keeps releasing promptly afterwards.
        let rel = core.on_result(seg(
            1,
            2,
            vec![frame(TechId::ZWave, &[8; 4], 100_000)],
            Some(100_000),
        ));
        let rel2 = core.on_result(seg(1, 3, Vec::new(), Some(200_000)));
        assert_eq!(rel.len() + rel2.len(), 1, "post-death flow is unblocked");
    }

    #[test]
    fn restart_fences_superseded_epoch_and_revives_lane() {
        let metrics = SharedMetrics::new();
        let mut core = MergeCore::new(2, metrics.clone());
        let seq_base = 1u64 << galiot_trace::EPOCH_SHIFT;
        let mut delivered = 0usize;
        // Old epoch delivers seq 0, then the session dies.
        delivered += core
            .on_result(seg(
                1,
                0,
                vec![frame(TechId::XBee, &[1], 5_000)],
                Some(5_000),
            ))
            .len();
        delivered += core.on_dead(GatewayId(1)).len();
        // Restart under the bumped epoch.
        delivered += core.on_restart(GatewayId(1), seq_base).len();
        // A late old-epoch result (seq below the floor) is dropped and
        // accounted to the crash, frames included.
        let rel = core.on_result(seg(
            1,
            1,
            vec![frame(TechId::XBee, &[9], 8_000)],
            Some(8_000),
        ));
        assert!(rel.is_empty());
        let m = metrics.snapshot();
        assert_eq!(m.crash_lost_segments, 1, "{m:?}");
        assert_eq!(m.crash_lost_frames, 1, "{m:?}");
        // The new epoch's traffic flows from seq_base.
        delivered += core
            .on_result(seg(
                1,
                seq_base,
                vec![frame(TechId::XBee, &[2], 20_000)],
                Some(20_000),
            ))
            .len();
        delivered += core.on_result(seg(2, 0, Vec::new(), Some(90_000))).len();
        let rel = core.on_result(seg(1, seq_base + 1, Vec::new(), Some(90_000)));
        assert_eq!(rel.len(), 1, "revived lane releases new-epoch frames");
        delivered += rel.len();
        // Identity: every decoded frame is delivered, suppressed, or
        // crash-lost.
        delivered += core.finish().len();
        let m = metrics.snapshot();
        let offered: usize = m.per_gateway_decoded.values().sum();
        assert_eq!(
            offered,
            delivered + core.suppressed() as usize + m.crash_lost_frames + m.quarantined_frames,
            "{m:?}"
        );
    }

    #[test]
    fn dead_lane_drops_results_on_the_crash_account() {
        let metrics = SharedMetrics::new();
        let mut core = MergeCore::new(1, metrics.clone());
        let _ = core.on_dead(GatewayId(1));
        let rel = core.on_result(seg(
            1,
            0,
            vec![frame(TechId::XBee, &[3], 1_000)],
            Some(1_000),
        ));
        assert!(rel.is_empty());
        let rel = core.on_result(seg(1, 1, Vec::new(), None));
        assert!(rel.is_empty(), "late gap notices count to the crash too");
        let m = metrics.snapshot();
        assert_eq!(m.crash_lost_segments, 2, "{m:?}");
        assert_eq!(m.crash_lost_frames, 1, "{m:?}");
        assert_eq!(m.per_gateway_decoded.get(&1), Some(&1), "{m:?}");
    }
}
