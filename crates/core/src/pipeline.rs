//! The end-to-end GalioT pipeline: front end → detection → extraction
//! → edge decode → compressed backhaul → cloud decode.
//!
//! This is the batch (whole-capture) form; [`crate::streaming`] runs
//! the same stages across threads for live chunked captures.

use galiot_cloud::{CloudDecoder, Recovery};
use galiot_dsp::Cf32;
use galiot_gateway::{
    compress, decompress, extract, Backhaul, Detection, EdgeDecoder, EdgeOutcome, EnergyDetector,
    ExtractParams, MatchedFilterBank, PacketDetector, RtlSdrFrontEnd, UniversalDetector,
};
use galiot_phy::registry::Registry;
use galiot_phy::DecodedFrame;

use crate::config::{DetectorKind, GaliotConfig};
use crate::metrics::Metrics;

/// A decoded frame plus where in the pipeline it was recovered.
#[derive(Clone, Debug)]
pub struct PipelineFrame {
    /// The decoded frame (start in capture coordinates).
    pub frame: DecodedFrame,
    /// `true` if the edge decoded it; `false` for the cloud.
    pub at_edge: bool,
    /// `true` if a cloud kill filter was needed.
    pub via_kill: bool,
}

/// The result of processing one capture.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Every recovered frame.
    pub frames: Vec<PipelineFrame>,
    /// Counters for the run.
    pub metrics: Metrics,
    /// Cloud arrival time of the last shipped segment (seconds from
    /// capture start), if anything was shipped.
    pub last_arrival_s: Option<f64>,
}

/// The GalioT system: a configured gateway + cloud pair.
pub struct Galiot {
    config: GaliotConfig,
    registry: Registry,
    front_end: RtlSdrFrontEnd,
    detector: Box<dyn PacketDetector>,
    edge: EdgeDecoder,
    cloud: CloudDecoder,
}

impl Galiot {
    /// Builds the system for a technology registry.
    ///
    /// # Panics
    /// Panics if `config` fails [`GaliotConfig::validate`] — a
    /// silently-degenerate configuration must fail at construction,
    /// not mid-capture.
    pub fn new(config: GaliotConfig, registry: Registry) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid GaliotConfig: {e}");
        }
        let detector: Box<dyn PacketDetector> = match config.detector {
            DetectorKind::Energy => Box::new(EnergyDetector {
                threshold_db: if config.detect_threshold > 0.0 {
                    config.detect_threshold
                } else {
                    6.0
                },
                ..EnergyDetector::default()
            }),
            DetectorKind::MatchedBank => Box::new(MatchedFilterBank::new(
                registry.clone(),
                config.detect_threshold,
            )),
            DetectorKind::Universal => Box::new(UniversalDetector::new(
                &registry,
                config.fs,
                config.detect_threshold,
            )),
        };
        Galiot {
            front_end: RtlSdrFrontEnd::new(config.front_end),
            detector,
            edge: EdgeDecoder::new(registry.clone())
                .with_cluster_guard_s(config.edge_cluster_guard_s),
            cloud: CloudDecoder::with_params(registry.clone(), config.cloud),
            registry,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GaliotConfig {
        &self.config
    }

    /// The registry in use.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Runs detection only (used by the detection experiments).
    pub fn detect(&self, analog: &[Cf32]) -> Vec<Detection> {
        let digital = self.front_end.digitize(analog);
        self.detector.detect(&digital, self.config.fs)
    }

    /// Processes one analog capture end to end.
    pub fn process_capture(&self, analog: &[Cf32]) -> RunReport {
        let fs = self.config.fs;
        let engine_before = galiot_dsp::engine::stats();
        let mut metrics = Metrics {
            samples_processed: analog.len() as u64,
            ..Metrics::default()
        };

        // Gateway: digitize and detect.
        let digital = self.front_end.digitize(analog);
        let detections = self.detector.detect(&digital, fs);
        metrics.detections = detections.len();

        // Extract segments around detections (paper: 2x max frame,
        // sized by the deployment's expected payloads).
        let params = ExtractParams::paper(
            self.registry
                .max_frame_samples_for(fs, self.config.max_expected_payload)
                .max(1),
        );
        let segments = extract(&digital, &detections, params);
        metrics.segments = segments.len();

        let mut frames = Vec::new();
        let mut backhaul = Backhaul::new(self.config.backhaul_bps, self.config.backhaul_latency_s);
        let mut last_arrival = None;

        for seg in segments {
            // Edge-first decode (paper, Sec. 4): handle clean single
            // packets locally, ship everything else.
            let mut shipped_frames: Vec<DecodedFrame> = Vec::new();
            let mut ship = true;
            if self.config.edge_decoding {
                match self.edge.process(&seg, fs) {
                    EdgeOutcome::DecodedLocally(frame) => {
                        metrics.record_frame(&frame, true, false);
                        frames.push(PipelineFrame {
                            frame,
                            at_edge: true,
                            via_kill: false,
                        });
                        ship = false;
                    }
                    EdgeOutcome::ShipToCloud(partial) => {
                        shipped_frames = partial;
                    }
                }
            }
            if !ship {
                continue;
            }
            let _ = &shipped_frames; // edge partial decodes are re-derived at the cloud

            // Compress, ship, decompress at the cloud.
            let compressed = compress(&seg.samples, self.config.compression_bits, 1024);
            let bytes = compressed.wire_bytes();
            metrics.shipped_segments += 1;
            metrics.shipped_bytes += bytes as u64;
            let now_s = seg.end() as f64 / fs;
            last_arrival = Some(backhaul.ship(bytes, now_s));
            let at_cloud = decompress(&compressed);

            // Cloud: Algorithm 1.
            let decode_span =
                galiot_trace::span(galiot_trace::Stage::WorkerDecode, galiot_trace::NO_SEQ);
            let result = self.cloud.decode(&at_cloud, fs);
            drop(decode_span);
            metrics.sic_rounds += result.rounds as u64;
            metrics.kill_applications += result.kills as u64;
            for (mut frame, how) in result.frames {
                frame.start += seg.start;
                let via_kill = matches!(how, Recovery::AfterKill { .. });
                metrics.record_frame(&frame, false, via_kill);
                frames.push(PipelineFrame {
                    frame,
                    at_edge: false,
                    via_kill,
                });
            }
        }
        metrics.record_engine_stats(&engine_before);
        RunReport {
            frames,
            metrics,
            last_arrival_s: last_arrival,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galiot_channel::{compose, forced_collision, snr_to_noise_power, TxEvent};
    use galiot_phy::TechId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FS: f64 = 1_000_000.0;

    fn system() -> Galiot {
        Galiot::new(GaliotConfig::prototype(), Registry::prototype())
    }

    #[test]
    fn clean_packet_is_decoded_at_edge() {
        let mut rng = StdRng::seed_from_u64(1);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let ev = TxEvent::new(xbee, vec![1, 2, 3, 4], 50_000);
        let np = snr_to_noise_power(15.0, 0.0);
        let cap = compose(&[ev], 600_000, FS, np, &mut rng);
        let report = system().process_capture(&cap.samples);
        assert_eq!(report.frames.len(), 1, "{:?}", report.metrics);
        assert!(report.frames[0].at_edge);
        assert_eq!(report.frames[0].frame.payload, vec![1, 2, 3, 4]);
        // Nothing shipped: the edge handled it.
        assert_eq!(report.metrics.shipped_segments, 0);
        // The DSP engine counters are folded into the metrics: the run
        // must have exercised the FFT plan cache.
        let m = &report.metrics;
        assert!(
            m.plan_cache_hits + m.plan_cache_misses > 0,
            "no plan lookups recorded: {m:?}"
        );
        assert!(m.plan_cache_hit_rate().is_some());
    }

    #[test]
    fn collision_goes_to_cloud_and_both_recovered() {
        let mut rng = StdRng::seed_from_u64(2);
        let reg = Registry::prototype();
        let events = forced_collision(&reg, 8, &[0.0, 1.0], 25_000, 60_000, &mut rng);
        let truth: Vec<(TechId, Vec<u8>)> = events
            .iter()
            .map(|e| (e.tech.id(), e.payload.clone()))
            .collect();
        let np = snr_to_noise_power(25.0, 0.0);
        let cap = compose(&events, 800_000, FS, np, &mut rng);
        let report = system().process_capture(&cap.samples);
        assert!(report.metrics.shipped_segments >= 1);
        let got: Vec<(TechId, Vec<u8>)> = report
            .frames
            .iter()
            .map(|p| (p.frame.tech, p.frame.payload.clone()))
            .collect();
        let hits = truth.iter().filter(|t| got.contains(t)).count();
        assert_eq!(hits, 2, "got {got:?}");
        assert!(report.last_arrival_s.is_some());
    }

    #[test]
    fn noise_only_ships_nothing_and_decodes_nothing() {
        let mut rng = StdRng::seed_from_u64(3);
        let noise = galiot_channel::awgn(500_000, 1.0, &mut rng);
        let report = system().process_capture(&noise);
        assert!(report.frames.is_empty());
        // Bandwidth saving: nearly nothing shipped from pure noise.
        assert!(report.metrics.shipped_fraction(8) < 0.2);
    }

    #[test]
    fn energy_detector_variant_works_at_high_snr() {
        let mut rng = StdRng::seed_from_u64(4);
        let reg = Registry::prototype();
        let zwave = reg.get(TechId::ZWave).unwrap().clone();
        let ev = TxEvent::new(zwave, vec![9; 6], 60_000);
        let np = snr_to_noise_power(20.0, 0.0);
        let cap = compose(&[ev], 600_000, FS, np, &mut rng);
        let config = GaliotConfig {
            detector: DetectorKind::Energy,
            detect_threshold: 6.0,
            ..GaliotConfig::prototype()
        };
        let report = Galiot::new(config, Registry::prototype()).process_capture(&cap.samples);
        assert_eq!(report.frames.len(), 1);
    }

    #[test]
    fn goodput_is_positive_when_frames_recovered() {
        let mut rng = StdRng::seed_from_u64(5);
        let reg = Registry::prototype();
        let lora = reg.get(TechId::LoRa).unwrap().clone();
        let ev = TxEvent::new(lora, vec![7; 20], 30_000);
        let np = snr_to_noise_power(15.0, 0.0);
        let cap = compose(&[ev], 600_000, FS, np, &mut rng);
        let report = system().process_capture(&cap.samples);
        assert!(report.metrics.goodput_bps(FS) > 0.0);
    }
}
