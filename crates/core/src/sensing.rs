//! Multi-technology wireless sensing — a working sketch of the
//! paper's Sec. 6 direction ("At the Cloud — Multi-Technology Wireless
//! Sensing").
//!
//! Every frame the cloud decodes yields a channel estimate as a
//! by-product of cancellation (the complex gain between the
//! remodulated reference and the received signal). A static
//! environment gives each transmitter a stable gain; people moving
//! through the propagation paths perturb it. Because IoT devices are
//! "diverse, transmit occasionally" (Sec. 6), the monitor aggregates
//! observations across *all* technologies to shorten the time between
//! channel samples.

use galiot_dsp::Cf32;
use galiot_phy::TechId;
use std::collections::{BTreeMap, VecDeque};

/// One channel observation: a decoded frame's estimated complex gain.
#[derive(Clone, Copy, Debug)]
pub struct ChannelObservation {
    /// Which technology's frame produced it.
    pub tech: TechId,
    /// Capture time of the frame, seconds.
    pub t_s: f64,
    /// Estimated complex channel gain.
    pub gain: Cf32,
}

/// Sliding-window channel-variation monitor.
///
/// Tracks per-technology gain histories and scores environmental
/// change as the pooled relative deviation of recent gains from each
/// transmitter's own windowed mean — near zero for a static channel,
/// rising when the environment (or the people in it) moves.
#[derive(Clone, Debug)]
pub struct SensingMonitor {
    window: usize,
    history: BTreeMap<TechId, VecDeque<ChannelObservation>>,
}

impl SensingMonitor {
    /// Creates a monitor keeping the last `window` observations per
    /// technology.
    ///
    /// # Panics
    /// Panics if `window < 2` (variation needs at least two samples).
    pub fn new(window: usize) -> Self {
        assert!(window >= 2, "window must hold at least 2 observations");
        SensingMonitor {
            window,
            history: BTreeMap::new(),
        }
    }

    /// Feeds one observation.
    pub fn observe(&mut self, obs: ChannelObservation) {
        let h = self.history.entry(obs.tech).or_default();
        h.push_back(obs);
        while h.len() > self.window {
            h.pop_front();
        }
    }

    /// Number of observations currently held, across technologies.
    pub fn len(&self) -> usize {
        self.history.values().map(|h| h.len()).sum()
    }

    /// Whether no observations are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The motion score: pooled coefficient of variation of the
    /// complex gains, per transmitter, averaged across technologies.
    /// Complex (not magnitude) deviation also catches pure phase
    /// changes — a path-length change moves phase first.
    pub fn motion_score(&self) -> f32 {
        let mut score = 0.0f64;
        let mut groups = 0usize;
        for h in self.history.values() {
            if h.len() < 2 {
                continue;
            }
            let mean: Cf32 = h.iter().map(|o| o.gain).sum::<Cf32>() / h.len() as f32;
            let var: f32 =
                h.iter().map(|o| (o.gain - mean).norm_sqr()).sum::<f32>() / h.len() as f32;
            let mag2 = mean.norm_sqr().max(1e-20);
            score += (var / mag2) as f64;
            groups += 1;
        }
        if groups == 0 {
            0.0
        } else {
            (score / groups as f64).sqrt() as f32
        }
    }

    /// Per-technology observation counts (for diagnostics).
    pub fn counts(&self) -> BTreeMap<TechId, usize> {
        self.history.iter().map(|(k, v)| (*k, v.len())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(tech: TechId, t: f64, gain: Cf32) -> ChannelObservation {
        ChannelObservation { tech, t_s: t, gain }
    }

    #[test]
    fn static_channel_scores_near_zero() {
        let mut m = SensingMonitor::new(16);
        for k in 0..16 {
            m.observe(obs(TechId::LoRa, k as f64, Cf32::new(0.8, 0.1)));
            m.observe(obs(TechId::XBee, k as f64, Cf32::new(0.3, -0.4)));
        }
        assert!(m.motion_score() < 1e-3, "score {}", m.motion_score());
    }

    #[test]
    fn amplitude_fluctuation_raises_score() {
        let mut m = SensingMonitor::new(16);
        for k in 0..16 {
            let a = 0.8 + 0.3 * (k as f32 * 1.7).sin();
            m.observe(obs(TechId::LoRa, k as f64, Cf32::new(a, 0.0)));
        }
        assert!(m.motion_score() > 0.1, "score {}", m.motion_score());
    }

    #[test]
    fn pure_phase_motion_is_detected() {
        // Constant magnitude, rotating phase: magnitude-only sensing
        // would miss this; complex deviation must not.
        let mut m = SensingMonitor::new(16);
        for k in 0..16 {
            m.observe(obs(
                TechId::ZWave,
                k as f64,
                Cf32::from_polar(0.7, k as f32 * 0.5),
            ));
        }
        assert!(m.motion_score() > 0.3, "score {}", m.motion_score());
    }

    #[test]
    fn pooling_across_technologies() {
        let mut m = SensingMonitor::new(8);
        // One static device, one moving device: pooled score between.
        for k in 0..8 {
            m.observe(obs(TechId::LoRa, k as f64, Cf32::new(1.0, 0.0)));
            let a = 0.5 + 0.4 * (k as f32).sin();
            m.observe(obs(TechId::XBee, k as f64, Cf32::new(a, 0.0)));
        }
        let pooled = m.motion_score();
        assert!(pooled > 0.05 && pooled < 1.0, "score {pooled}");
        assert_eq!(m.counts()[&TechId::LoRa], 8);
    }

    #[test]
    fn window_evicts_old_observations() {
        let mut m = SensingMonitor::new(4);
        // Early chaos followed by a long static period: the window
        // forgets the chaos.
        for k in 0..4 {
            m.observe(obs(TechId::LoRa, k as f64, Cf32::new((k % 2) as f32, 0.5)));
        }
        for k in 4..20 {
            m.observe(obs(TechId::LoRa, k as f64, Cf32::new(0.9, 0.0)));
        }
        assert_eq!(m.len(), 4);
        assert!(m.motion_score() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn tiny_window_rejected() {
        let _ = SensingMonitor::new(1);
    }
}
