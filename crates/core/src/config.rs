//! End-to-end GalioT configuration.

use galiot_cloud::CloudParams;
use galiot_gateway::FrontEndParams;

/// Which packet detector the gateway runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectorKind {
    /// Energy threshold (the baseline of the existing literature).
    Energy,
    /// Per-technology matched-filter bank (optimal, scales linearly).
    MatchedBank,
    /// GalioT's universal preamble (the paper's contribution).
    Universal,
}

/// Full system configuration.
#[derive(Clone, Debug)]
pub struct GaliotConfig {
    /// Capture sample rate in Hz (1 MHz in the paper's prototype).
    pub fs: f64,
    /// Front-end model parameters.
    pub front_end: FrontEndParams,
    /// Which detector the gateway runs.
    pub detector: DetectorKind,
    /// Detection threshold (meaning depends on the detector: dB over
    /// noise floor for energy, normalized correlation otherwise).
    pub detect_threshold: f32,
    /// Whether the edge tries to decode before shipping to the cloud.
    pub edge_decoding: bool,
    /// Largest payload (bytes) the deployment expects — sizes the
    /// shipped window ("twice the maximum packet length", Sec. 4)
    /// without assuming worst-case 255-byte LoRa frames.
    pub max_expected_payload: usize,
    /// Bits per I/Q rail on the backhaul (compression).
    pub compression_bits: u32,
    /// Backhaul uplink rate, bits per second.
    pub backhaul_bps: f64,
    /// Backhaul one-way latency, seconds.
    pub backhaul_latency_s: f64,
    /// Cloud decoder parameters.
    pub cloud: CloudParams,
}

impl Default for GaliotConfig {
    fn default() -> Self {
        GaliotConfig {
            fs: 1_000_000.0,
            front_end: FrontEndParams::default(),
            detector: DetectorKind::Universal,
            // 0.0 = analytic noise threshold for correlation
            // detectors; energy detection falls back to 6 dB.
            detect_threshold: 0.0,
            edge_decoding: true,
            max_expected_payload: 32,
            compression_bits: 8,
            backhaul_bps: 20e6,
            backhaul_latency_s: 0.010,
            cloud: CloudParams::default(),
        }
    }
}

impl GaliotConfig {
    /// The paper's prototype configuration: RTL-SDR front end at
    /// 1 Msps, universal-preamble detection, edge-first decoding,
    /// 8-bit compression over a home cable uplink.
    pub fn prototype() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_paper_parameters() {
        let c = GaliotConfig::prototype();
        assert_eq!(c.fs, 1_000_000.0);
        assert_eq!(c.front_end.adc_bits, 8);
        assert_eq!(c.detector, DetectorKind::Universal);
        assert!(c.edge_decoding);
    }
}
