//! End-to-end GalioT configuration.

use crate::transport::TransportConfig;
use galiot_channel::DecodeFaultSpec;
use galiot_cloud::CloudParams;
use galiot_gateway::{FrontEndParams, LinkFaults};
use std::fmt;

/// Why a [`GaliotConfig`] was rejected by [`GaliotConfig::validate`]
/// or one of the `try_with_*` builders.
///
/// Every variant names a *silently-degenerate* configuration: one the
/// pipelines would accept without an immediate error but that cannot
/// behave as a deployment (or a randomized scenario generator) means
/// it to — a wedged fleet, a guard that never fires, a capture rate of
/// zero. `galiot-sim`'s `ScenarioGen` relies on these checks to reject
/// invalid samples instead of chasing phantom conformance failures.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// A numeric knob that must be finite and strictly positive
    /// (e.g. `fs`, `backhaul_bps`) is not.
    NonPositive {
        /// The field name.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A numeric knob that must be finite and non-negative
    /// (e.g. `edge_cluster_guard_s`, `detect_threshold`) is not.
    Negative {
        /// The field name.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A count that must be at least one (e.g. `gateways`,
    /// `max_expected_payload`, an explicit ingest shard count) is zero.
    ZeroCount {
        /// The field name.
        field: &'static str,
    },
    /// `compression_bits` (or the transport's degradation floor
    /// `min_bits`) outside the representable 1..=16 range, or a floor
    /// above the configured starting bits.
    BadCompressionBits {
        /// Configured bits per I/Q rail.
        bits: u32,
        /// Degradation-ladder floor.
        min_bits: u32,
    },
    /// A [`CrashSpec`] names a session index outside `0..gateways`:
    /// the crash would never fire and the scenario silently tests
    /// nothing.
    CrashSessionOutOfRange {
        /// The offending session index.
        session: usize,
        /// The configured fleet size.
        gateways: usize,
    },
    /// A no-restart [`CrashSpec`] while `liveness_horizon == 0`
    /// (eviction disabled): the dead session's merge watermark is
    /// never finalized and the fleet wedges instead of failing over.
    CrashWithoutEviction {
        /// The session whose crash could never be reaped.
        session: usize,
    },
    /// An enabled [`DecodeFaultSpec`] whose sticky window is zero: the
    /// spec would strike no attempt and the scenario silently tests
    /// nothing.
    DecodeFaultsWithoutAttempts,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonPositive { field, value } => {
                write!(f, "{field} must be finite and > 0 (got {value})")
            }
            ConfigError::Negative { field, value } => {
                write!(f, "{field} must be finite and >= 0 (got {value})")
            }
            ConfigError::ZeroCount { field } => {
                write!(f, "{field} must be at least 1 (got 0)")
            }
            ConfigError::BadCompressionBits { bits, min_bits } => write!(
                f,
                "compression bits must satisfy 1 <= min_bits <= bits <= 16 \
                 (got bits={bits}, min_bits={min_bits})"
            ),
            ConfigError::CrashSessionOutOfRange { session, gateways } => write!(
                f,
                "crash spec names session {session} but the fleet has only \
                 {gateways} gateway(s) (sessions 0..{gateways}); the crash would never fire"
            ),
            ConfigError::CrashWithoutEviction { session } => write!(
                f,
                "session {session} crashes without restart while liveness_horizon = 0 \
                 (eviction disabled): the fleet would wedge on its unfinalized watermark"
            ),
            ConfigError::DecodeFaultsWithoutAttempts => write!(
                f,
                "decode_faults is enabled (period > 0) with sticky_attempts = 0: \
                 no attempt would ever be struck"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which packet detector the gateway runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectorKind {
    /// Energy threshold (the baseline of the existing literature).
    Energy,
    /// Per-technology matched-filter bank (optimal, scales linearly).
    MatchedBank,
    /// GalioT's universal preamble (the paper's contribution).
    Universal,
}

/// One injected gateway crash for [`crate::FleetGaliot`] failover
/// testing: session `session` dies immediately before emitting its
/// `after_segments`-th segment (0 = silent from the first would-be
/// segment). With `restart` set the session supervisor brings a new
/// instance up under a bumped [`galiot_cloud::SessionRegistry`] epoch,
/// resuming the capture where the dead instance stopped consuming it.
/// Each spec fires at most once, on the session's first life.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// Fleet session index (0-based, i.e. wire gateway `session + 1`).
    pub session: usize,
    /// Number of segments the first instance emits before dying.
    pub after_segments: u64,
    /// Whether a replacement instance is started after the crash.
    pub restart: bool,
}

/// Full system configuration.
#[derive(Clone, Debug)]
pub struct GaliotConfig {
    /// Capture sample rate in Hz (1 MHz in the paper's prototype).
    pub fs: f64,
    /// Front-end model parameters.
    pub front_end: FrontEndParams,
    /// Which detector the gateway runs.
    pub detector: DetectorKind,
    /// Detection threshold (meaning depends on the detector: dB over
    /// noise floor for energy, normalized correlation otherwise).
    pub detect_threshold: f32,
    /// Whether the edge tries to decode before shipping to the cloud.
    pub edge_decoding: bool,
    /// The edge decoder's collision cluster guard in seconds:
    /// preamble-correlation peaks closer than this count as one
    /// packet. Expressed in time so shipping decisions do not change
    /// with the capture rate (2.048 ms ≡ the historical 2,048-sample
    /// guard at the prototype's 1 Msps).
    pub edge_cluster_guard_s: f64,
    /// Largest payload (bytes) the deployment expects — sizes the
    /// shipped window ("twice the maximum packet length", Sec. 4)
    /// without assuming worst-case 255-byte LoRa frames.
    pub max_expected_payload: usize,
    /// Bits per I/Q rail on the backhaul (compression).
    pub compression_bits: u32,
    /// Backhaul uplink rate, bits per second.
    pub backhaul_bps: f64,
    /// Backhaul one-way latency, seconds.
    pub backhaul_latency_s: f64,
    /// Cloud decoder parameters.
    pub cloud: CloudParams,
    /// Number of parallel cloud decode workers in the streaming
    /// pipeline. `0` means "one per available CPU core"; `1`
    /// reproduces the historical single-threaded cloud tier. The
    /// batch pipeline ignores this knob.
    pub cloud_workers: usize,
    /// When true, the *streaming* pipeline emulates the backhaul in
    /// real time: the gateway blocks for each segment's serialization
    /// on the shared uplink (`backhaul_bps`) and every cloud worker
    /// blocks `backhaul_latency_s` per segment before decoding,
    /// modeling the hop to a remote elastic cloud instance. The batch
    /// pipeline instead models the same wire analytically
    /// ([`crate::pipeline::RunReport::last_arrival_s`]). Off by
    /// default: conformance tests compare decoded output, not timing.
    pub emulate_backhaul: bool,
    /// The gateway→cloud segment transport: link impairments, ARQ,
    /// send-queue sizing, and the compression-degradation ladder. The
    /// default is a passthrough (perfect links, no ARQ) in which the
    /// streaming pipeline behaves exactly as it did before the
    /// transport existed.
    pub transport: TransportConfig,
    /// Number of gateway sessions in [`crate::FleetGaliot`]'s fleet,
    /// each with its own sequence space, transport, and (in transport
    /// mode) decorrelated link-fault seeds. The single-gateway
    /// pipelines ignore this knob. Minimum 1.
    pub gateways: usize,
    /// Number of routing shards the fleet ingest hashes (gateway, seq)
    /// onto before folding shards onto workers. `0` means "one shard
    /// per worker". More shards than workers is legal and keeps
    /// routing stable across worker-count changes.
    pub ingest_shards: usize,
    /// Injected gateway crashes for fleet failover testing. Empty in
    /// production configurations.
    pub crashes: Vec<CrashSpec>,
    /// Fleet liveness horizon in registry logical-clock events: a
    /// session silent for more than this many events (while holding no
    /// in-flight credits) is declared dead, its merge watermark is
    /// finalized, and its credits are reclaimed. `0` disables
    /// liveness-driven eviction.
    pub liveness_horizon: u64,
    /// Per-segment decode lease deadline, seconds: a worker that has
    /// held one segment longer than this is declared hung by the pool
    /// supervisor, replaced, and the segment is re-dispatched. Must be
    /// positive; generous by default so healthy decodes never trip it.
    pub decode_deadline_s: f64,
    /// How many times the pool supervisor re-dispatches a failed
    /// (panicked or hung) decode before quarantining the segment to the
    /// dead-letter record. `0` quarantines on the first failure.
    pub decode_retries: usize,
    /// Deterministic decode-fault injection (panic/hang/slow) for
    /// supervisor testing. Disabled (`period == 0`) in production
    /// configurations; see [`galiot_channel::DecodeFaultSpec`].
    pub decode_faults: DecodeFaultSpec,
}

impl Default for GaliotConfig {
    fn default() -> Self {
        GaliotConfig {
            fs: 1_000_000.0,
            front_end: FrontEndParams::default(),
            detector: DetectorKind::Universal,
            // 0.0 = analytic noise threshold for correlation
            // detectors; energy detection falls back to 6 dB.
            detect_threshold: 0.0,
            edge_decoding: true,
            edge_cluster_guard_s: galiot_gateway::DEFAULT_CLUSTER_GUARD_S,
            max_expected_payload: 32,
            compression_bits: 8,
            backhaul_bps: 20e6,
            backhaul_latency_s: 0.010,
            cloud: CloudParams::default(),
            cloud_workers: 0,
            emulate_backhaul: false,
            transport: TransportConfig::default(),
            gateways: 1,
            ingest_shards: 0,
            crashes: Vec::new(),
            liveness_horizon: 64,
            decode_deadline_s: 5.0,
            decode_retries: 2,
            decode_faults: DecodeFaultSpec::disabled(),
        }
    }
}

impl GaliotConfig {
    /// The paper's prototype configuration: RTL-SDR front end at
    /// 1 Msps, universal-preamble detection, edge-first decoding,
    /// 8-bit compression over a home cable uplink.
    pub fn prototype() -> Self {
        Self::default()
    }

    /// Returns the configuration with an explicit cloud worker count.
    pub fn with_cloud_workers(mut self, workers: usize) -> Self {
        self.cloud_workers = workers;
        self
    }

    /// Returns the configuration with real-time backhaul emulation in
    /// the streaming pipeline (uplink serialization at `backhaul_bps`,
    /// per-segment cloud latency of `backhaul_latency_s`).
    pub fn with_emulated_backhaul(mut self, rtt_s: f64) -> Self {
        self.emulate_backhaul = true;
        self.backhaul_latency_s = rtt_s;
        self
    }

    /// Returns the configuration with the streaming backhaul routed
    /// over a faulty link (data direction uses `faults`; the ack
    /// direction inherits the same rates under a decorrelated seed)
    /// with windowed ARQ enabled to repair it.
    pub fn with_faulty_link(mut self, faults: LinkFaults) -> Self {
        self.transport = TransportConfig::over_faulty_link(faults);
        self
    }

    /// Returns the configuration with an explicit transport setup
    /// (full control over impairments, ARQ, and degradation knobs).
    pub fn with_transport(mut self, transport: TransportConfig) -> Self {
        self.transport = transport;
        self
    }

    /// The worker count [`crate::StreamingGaliot`] will actually spawn:
    /// `cloud_workers`, with `0` resolved to the machine's available
    /// parallelism.
    pub fn effective_cloud_workers(&self) -> usize {
        if self.cloud_workers > 0 {
            self.cloud_workers
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }

    /// Returns the configuration with `gateways` fleet sessions.
    pub fn with_gateways(mut self, gateways: usize) -> Self {
        self.gateways = gateways;
        self
    }

    /// Returns the configuration with an explicit ingest shard count.
    pub fn with_ingest_shards(mut self, shards: usize) -> Self {
        self.ingest_shards = shards;
        self
    }

    /// Returns the configuration with one injected gateway crash
    /// (fleet failover testing; see [`CrashSpec`]). May be called
    /// repeatedly to crash several sessions.
    pub fn with_crash(mut self, session: usize, after_segments: u64, restart: bool) -> Self {
        self.crashes.push(CrashSpec {
            session,
            after_segments,
            restart,
        });
        self
    }

    /// Returns the configuration with an explicit fleet liveness
    /// horizon (`0` disables liveness-driven eviction).
    pub fn with_liveness_horizon(mut self, horizon: u64) -> Self {
        self.liveness_horizon = horizon;
        self
    }

    /// Returns the configuration with an explicit decode lease
    /// deadline (seconds; must be positive to validate).
    pub fn with_decode_deadline(mut self, deadline_s: f64) -> Self {
        self.decode_deadline_s = deadline_s;
        self
    }

    /// Returns the configuration with an explicit decode retry budget
    /// (re-dispatches before quarantine; `0` quarantines immediately).
    pub fn with_decode_retries(mut self, retries: usize) -> Self {
        self.decode_retries = retries;
        self
    }

    /// Returns the configuration with deterministic decode-fault
    /// injection enabled (see [`galiot_channel::DecodeFaultSpec`]).
    pub fn with_decode_faults(mut self, faults: DecodeFaultSpec) -> Self {
        self.decode_faults = faults;
        self
    }

    /// The shard count the fleet ingest will actually route over:
    /// `ingest_shards`, with `0` resolved to one shard per effective
    /// worker.
    pub fn effective_ingest_shards(&self) -> usize {
        if self.ingest_shards > 0 {
            self.ingest_shards
        } else {
            self.effective_cloud_workers()
        }
    }

    /// Checks the configuration for silently-degenerate knob
    /// combinations (see [`ConfigError`] for the catalogue). The
    /// pipeline constructors ([`crate::Galiot::new`],
    /// [`crate::StreamingGaliot::start`], [`crate::FleetGaliot::start`])
    /// assert this, so an invalid configuration fails loudly at
    /// construction instead of wedging or quietly testing nothing.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn positive(field: &'static str, value: f64) -> Result<(), ConfigError> {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(ConfigError::NonPositive { field, value })
            }
        }
        fn non_negative(field: &'static str, value: f64) -> Result<(), ConfigError> {
            if value.is_finite() && value >= 0.0 {
                Ok(())
            } else {
                Err(ConfigError::Negative { field, value })
            }
        }
        positive("fs", self.fs)?;
        non_negative("detect_threshold", self.detect_threshold as f64)?;
        non_negative("edge_cluster_guard_s", self.edge_cluster_guard_s)?;
        positive("backhaul_bps", self.backhaul_bps)?;
        non_negative("backhaul_latency_s", self.backhaul_latency_s)?;
        if self.max_expected_payload == 0 {
            return Err(ConfigError::ZeroCount {
                field: "max_expected_payload",
            });
        }
        if self.gateways == 0 {
            return Err(ConfigError::ZeroCount { field: "gateways" });
        }
        let bits = self.compression_bits;
        let min_bits = self.transport.min_bits;
        if bits == 0 || bits > 16 || min_bits == 0 || min_bits > bits {
            return Err(ConfigError::BadCompressionBits { bits, min_bits });
        }
        if self.transport.send_queue_cap == 0 {
            return Err(ConfigError::ZeroCount {
                field: "transport.send_queue_cap",
            });
        }
        for c in &self.crashes {
            if c.session >= self.gateways {
                return Err(ConfigError::CrashSessionOutOfRange {
                    session: c.session,
                    gateways: self.gateways,
                });
            }
            if !c.restart && self.liveness_horizon == 0 {
                return Err(ConfigError::CrashWithoutEviction { session: c.session });
            }
        }
        positive("decode_deadline_s", self.decode_deadline_s)?;
        if self.decode_faults.enabled() && self.decode_faults.sticky_attempts == 0 {
            return Err(ConfigError::DecodeFaultsWithoutAttempts);
        }
        Ok(())
    }

    /// [`GaliotConfig::validate`] as a consuming builder finisher:
    /// `config.with_gateways(n).with_crash(...).validated()?`.
    pub fn validated(self) -> Result<Self, ConfigError> {
        self.validate()?;
        Ok(self)
    }

    /// [`GaliotConfig::with_gateways`], rejecting a zero-session fleet.
    pub fn try_with_gateways(self, gateways: usize) -> Result<Self, ConfigError> {
        if gateways == 0 {
            return Err(ConfigError::ZeroCount { field: "gateways" });
        }
        Ok(self.with_gateways(gateways))
    }

    /// [`GaliotConfig::with_ingest_shards`], rejecting an *explicit*
    /// zero shard count (auto-sizing is expressed by not calling this;
    /// an explicit 0 is almost always a generator bug, not a request
    /// for one-shard-per-worker).
    pub fn try_with_ingest_shards(self, shards: usize) -> Result<Self, ConfigError> {
        if shards == 0 {
            return Err(ConfigError::ZeroCount {
                field: "ingest_shards",
            });
        }
        Ok(self.with_ingest_shards(shards))
    }

    /// [`GaliotConfig::with_liveness_horizon`], rejecting an *explicit*
    /// `0` (which disables eviction and lets a dead session wedge the
    /// fleet; disabling on purpose goes through the raw field or the
    /// unchecked builder).
    pub fn try_with_liveness_horizon(self, horizon: u64) -> Result<Self, ConfigError> {
        if horizon == 0 {
            return Err(ConfigError::ZeroCount {
                field: "liveness_horizon",
            });
        }
        Ok(self.with_liveness_horizon(horizon))
    }

    /// [`GaliotConfig::with_decode_deadline`], rejecting a deadline
    /// that is not finite and strictly positive (a zero or negative
    /// lease would declare every worker hung on dispatch).
    pub fn try_with_decode_deadline(self, deadline_s: f64) -> Result<Self, ConfigError> {
        if !(deadline_s.is_finite() && deadline_s > 0.0) {
            return Err(ConfigError::NonPositive {
                field: "decode_deadline_s",
                value: deadline_s,
            });
        }
        Ok(self.with_decode_deadline(deadline_s))
    }

    /// [`GaliotConfig::with_crash`], rejecting a session index outside
    /// the configured fleet and a no-restart crash the liveness reaper
    /// could never evict. Set `gateways` (and any custom
    /// `liveness_horizon`) before injecting crashes.
    pub fn try_with_crash(
        self,
        session: usize,
        after_segments: u64,
        restart: bool,
    ) -> Result<Self, ConfigError> {
        if session >= self.gateways {
            return Err(ConfigError::CrashSessionOutOfRange {
                session,
                gateways: self.gateways,
            });
        }
        if !restart && self.liveness_horizon == 0 {
            return Err(ConfigError::CrashWithoutEviction { session });
        }
        Ok(self.with_crash(session, after_segments, restart))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_paper_parameters() {
        let c = GaliotConfig::prototype();
        assert_eq!(c.fs, 1_000_000.0);
        assert_eq!(c.front_end.adc_bits, 8);
        assert_eq!(c.detector, DetectorKind::Universal);
        assert!(c.edge_decoding);
    }

    #[test]
    fn default_transport_is_a_passthrough() {
        let c = GaliotConfig::prototype();
        assert!(c.transport.is_passthrough());
        let faulty = c.clone().with_faulty_link(LinkFaults::lossy(0.05, 7));
        assert!(!faulty.transport.is_passthrough());
        assert!(faulty.transport.arq.enabled);
        assert_eq!(faulty.transport.data_faults.loss, 0.05);
        assert_eq!(faulty.transport.ack_faults.loss, 0.05);
        assert_ne!(
            faulty.transport.ack_faults.seed, faulty.transport.data_faults.seed,
            "ack link must be decorrelated from the data link"
        );
    }

    #[test]
    fn cloud_workers_default_to_available_parallelism() {
        let c = GaliotConfig::prototype();
        assert_eq!(c.cloud_workers, 0);
        assert!(c.effective_cloud_workers() >= 1);
        assert_eq!(c.clone().with_cloud_workers(3).effective_cloud_workers(), 3);
    }

    #[test]
    fn default_and_prototype_configs_validate() {
        GaliotConfig::default().validate().unwrap();
        GaliotConfig::prototype()
            .with_gateways(4)
            .with_cloud_workers(4)
            .with_crash(2, 3, true)
            .validated()
            .unwrap();
    }

    #[test]
    fn degenerate_knobs_are_rejected() {
        // fs must be finite and positive.
        let mut c = GaliotConfig::prototype();
        c.fs = 0.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NonPositive { field: "fs", .. })
        ));
        c.fs = f64::NAN;
        assert!(c.validate().is_err());

        // A negative collision cluster guard can never fire.
        let mut c = GaliotConfig::prototype();
        c.edge_cluster_guard_s = -1.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::Negative {
                field: "edge_cluster_guard_s",
                ..
            })
        ));

        // Compression outside 1..=16 bits, or a floor above the start.
        let mut c = GaliotConfig::prototype();
        c.compression_bits = 0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadCompressionBits { .. })
        ));
        let mut c = GaliotConfig::prototype();
        c.compression_bits = 2;
        assert_eq!(
            c.validate(),
            Err(ConfigError::BadCompressionBits {
                bits: 2,
                min_bits: 4
            }),
            "degradation floor above the starting bits must be rejected"
        );

        // A zero-session fleet and an empty payload budget.
        let mut c = GaliotConfig::prototype();
        c.gateways = 0;
        assert!(c.validate().is_err());
        let mut c = GaliotConfig::prototype();
        c.max_expected_payload = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn crash_specs_are_cross_checked() {
        // A crash aimed past the fleet never fires.
        let c = GaliotConfig::prototype()
            .with_gateways(2)
            .with_crash(2, 0, false);
        assert_eq!(
            c.validate(),
            Err(ConfigError::CrashSessionOutOfRange {
                session: 2,
                gateways: 2
            })
        );
        // A no-restart crash with eviction disabled wedges the fleet.
        let c = GaliotConfig::prototype()
            .with_gateways(2)
            .with_liveness_horizon(0)
            .with_crash(0, 0, false);
        assert_eq!(
            c.validate(),
            Err(ConfigError::CrashWithoutEviction { session: 0 })
        );
        // The same crash with restart is fine: the replacement's
        // registration supersedes the dead epoch without the reaper.
        GaliotConfig::prototype()
            .with_gateways(2)
            .with_liveness_horizon(0)
            .with_crash(0, 0, true)
            .validated()
            .unwrap();
    }

    #[test]
    fn try_builders_reject_what_with_builders_accept() {
        assert!(GaliotConfig::prototype().try_with_gateways(0).is_err());
        assert!(GaliotConfig::prototype().try_with_ingest_shards(0).is_err());
        assert!(GaliotConfig::prototype()
            .try_with_liveness_horizon(0)
            .is_err());
        assert!(GaliotConfig::prototype()
            .try_with_crash(1, 0, true)
            .is_err());
        let c = GaliotConfig::prototype()
            .try_with_gateways(3)
            .unwrap()
            .try_with_ingest_shards(5)
            .unwrap()
            .try_with_liveness_horizon(16)
            .unwrap()
            .try_with_crash(1, 2, false)
            .unwrap();
        assert_eq!(c.gateways, 3);
        assert_eq!(c.ingest_shards, 5);
        assert_eq!(c.liveness_horizon, 16);
        assert_eq!(
            c.crashes,
            vec![CrashSpec {
                session: 1,
                after_segments: 2,
                restart: false
            }]
        );
        c.validated().unwrap();
    }

    #[test]
    fn decode_supervision_knobs_validate() {
        use galiot_channel::{DecodeFaultKind, DecodeFaultSpec};

        let c = GaliotConfig::prototype();
        assert_eq!(c.decode_retries, 2);
        assert!(c.decode_deadline_s > 0.0);
        assert!(!c.decode_faults.enabled());

        // A non-positive lease deadline is degenerate.
        let mut c = GaliotConfig::prototype();
        c.decode_deadline_s = 0.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NonPositive {
                field: "decode_deadline_s",
                ..
            })
        ));
        assert!(GaliotConfig::prototype()
            .try_with_decode_deadline(f64::NAN)
            .is_err());
        let c = GaliotConfig::prototype()
            .try_with_decode_deadline(0.25)
            .unwrap()
            .with_decode_retries(1);
        assert_eq!(c.decode_deadline_s, 0.25);
        assert_eq!(c.decode_retries, 1);

        // An enabled fault spec with an empty sticky window tests
        // nothing and is rejected.
        let c = GaliotConfig::prototype().with_decode_faults(DecodeFaultSpec {
            kind: DecodeFaultKind::Panic,
            period: 2,
            sticky_attempts: 0,
            seed: 7,
        });
        assert_eq!(c.validate(), Err(ConfigError::DecodeFaultsWithoutAttempts));
        let c = GaliotConfig::prototype().with_decode_faults(DecodeFaultSpec {
            kind: DecodeFaultKind::Slow,
            period: 3,
            sticky_attempts: 1,
            seed: 7,
        });
        c.validated().unwrap();
    }

    #[test]
    fn fleet_knobs_default_to_one_gateway_and_per_worker_shards() {
        let c = GaliotConfig::prototype().with_cloud_workers(4);
        assert_eq!(c.gateways, 1);
        assert_eq!(c.ingest_shards, 0);
        assert_eq!(c.effective_ingest_shards(), 4, "0 → one shard per worker");
        let c = c.with_gateways(3).with_ingest_shards(16);
        assert_eq!(c.gateways, 3);
        assert_eq!(c.effective_ingest_shards(), 16);
    }
}
