//! System metrics: what the experiments measure.
//!
//! Counters fall into four groups: detection/decode outcomes, the
//! streaming pool (per-worker counts, queue high-water marks, busy
//! time), the DSP engine caches, and — since the fault-tolerant
//! backhaul — the segment transport: the degradation ladder
//! (`segments_downgraded`, `segments_shed`, `shipped_by_bits`,
//! `send_queue_hwm`), the ARQ (`arq_retransmits`, `arq_acked`,
//! `arq_lost`), and the wire itself (`wire_*`,
//! `dup_segments_dropped`). The transport accounting invariant —
//! every shipped segment is decoded by exactly one worker, shed, or
//! declared lost — is asserted by `tests/transport_conformance.rs`.

use galiot_gateway::LinkStats;
use galiot_phy::{DecodedFrame, TechId};
use galiot_trace::Histogram;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Dead-letter record for a segment the decode-pool supervisor
/// quarantined after exhausting its retry budget (DESIGN.md §17):
/// everything needed to reproduce the failing decode offline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Gateway the segment was captured by.
    pub gateway: u16,
    /// Epoch-tagged shipping sequence number.
    pub seq: u64,
    /// Capture-sample offset of the segment.
    pub start: u64,
    /// Segment length in samples — the quarantine-aware delivery oracle
    /// treats `[start, start + len)` as the window whose frames may be
    /// missing.
    pub len: usize,
    /// Per-attempt failure names, oldest first (`"panic"` or `"hung"`).
    pub attempts: Vec<&'static str>,
    /// FNV-1a hash of the shipped payload bytes, for matching the
    /// segment against a capture replay.
    pub payload_hash: u64,
    /// The decode-fault pattern seed in effect (the
    /// `GALIOT_DECODE_FAULTS` repro knob; 0 when injection was off).
    pub fault_seed: u64,
}

/// Counters accumulated over a run. Shared across pipeline threads via
/// [`SharedMetrics`].
///
/// `merge` and the `Display` impl both destructure the struct
/// exhaustively, so adding a field without extending them is a compile
/// error — and `tests::merge_with_default_is_identity` constructs a
/// fully-populated block (no `..Default::default()`) to keep the
/// semantic side honest.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Detections raised by the gateway.
    pub detections: usize,
    /// Segments extracted and considered for decode.
    pub segments: usize,
    /// Frames decoded at the edge.
    pub edge_decoded: usize,
    /// Segments shipped to the cloud.
    pub shipped_segments: usize,
    /// Bytes shipped over the backhaul.
    pub shipped_bytes: u64,
    /// Frames decoded at the cloud.
    pub cloud_decoded: usize,
    /// Of the cloud frames, how many needed a kill filter.
    pub kill_recovered: usize,
    /// Payload bits recovered, per technology.
    pub payload_bits: BTreeMap<TechId, u64>,
    /// Capture samples processed.
    pub samples_processed: u64,
    /// Cloud decode workers the streaming pipeline ran with
    /// (0 for the batch pipeline, which has no pool).
    pub cloud_workers: usize,
    /// Frames decoded by each cloud worker, by worker index.
    pub per_worker_decoded: BTreeMap<usize, usize>,
    /// Segments decoded by each cloud worker, by worker index.
    pub per_worker_segments: BTreeMap<usize, usize>,
    /// Deepest the gateway→cloud segment queue ever got.
    pub seg_queue_hwm: usize,
    /// Most out-of-order segment results the reassembly stage ever
    /// buffered while waiting for an earlier sequence number.
    pub reassembly_hwm: usize,
    /// Time the gateway thread spent in detection/extraction/edge
    /// decode, in nanoseconds.
    pub gateway_busy_ns: u64,
    /// Total time cloud workers spent decoding, in nanoseconds
    /// (summed across workers, so this can exceed wall-clock).
    pub cloud_busy_ns: u64,
    /// Segments whose decode panicked inside a worker (the pool
    /// survives these; see the failure-injection tests).
    pub decode_poisoned: usize,
    /// FFT plan-cache hits in the DSP engine over the run (process-wide
    /// counters sampled before/after, so concurrent runs can bleed into
    /// each other's numbers; treat as indicative, not exact).
    pub plan_cache_hits: u64,
    /// FFT plan-cache misses (plans actually constructed) over the run.
    pub plan_cache_misses: u64,
    /// Preamble template banks synthesized over the run.
    pub template_bank_builds: u64,
    /// Template-bank cache hits over the run.
    pub template_bank_hits: u64,
    /// Segments shipped with fewer compression bits than configured
    /// because the send queue crossed its high-water mark.
    pub segments_downgraded: usize,
    /// Segments shed (dropped before transmission) by the send queue's
    /// lowest-power-first overflow policy.
    pub segments_shed: usize,
    /// Deepest the transport send queue ever got.
    pub send_queue_hwm: usize,
    /// Segments shipped, keyed by the compression bits they actually
    /// used (the degradation ladder makes this non-uniform).
    pub shipped_by_bits: BTreeMap<u32, u64>,
    /// ARQ retransmissions performed by the uplink sender.
    pub arq_retransmits: usize,
    /// Segments acknowledged end-to-end by the ARQ.
    pub arq_acked: usize,
    /// Segments the ARQ declared lost after exhausting retries.
    pub arq_lost: usize,
    /// Datagrams offered to the (possibly faulty) wire, both
    /// directions, including retransmissions.
    pub wire_datagrams_sent: u64,
    /// Datagram copies that actually came out of the wire.
    pub wire_datagrams_delivered: u64,
    /// Datagrams the wire dropped.
    pub wire_dropped: u64,
    /// Datagrams the wire delivered with flipped bits.
    pub wire_corrupted: u64,
    /// Extra copies the wire duplicated.
    pub wire_duplicated: u64,
    /// Datagrams the wire delivered out of order.
    pub wire_reordered: u64,
    /// Payload bytes offered to the wire (pre-impairment, including
    /// retransmissions).
    pub wire_bytes_sent: u64,
    /// Received datagrams rejected by framing/CRC/header validation.
    pub wire_decode_errors: usize,
    /// Duplicate segments (same sequence number) the receiver dropped
    /// before they reached the decode pool.
    pub dup_segments_dropped: usize,
    /// Successful SIC rounds executed by the cloud tier (one per
    /// recovered frame; reconciles with the `sic_round` stage
    /// histogram).
    pub sic_rounds: u64,
    /// Kill-filter applications attempted by the cloud tier
    /// (reconciles with the `kill_filter` stage histogram).
    pub kill_applications: u64,
    /// Per-stage latency histograms folded in from a trace session
    /// (see [`Metrics::record_trace`]), keyed by stage name.
    pub stage_ns: BTreeMap<String, Histogram>,
    /// Gateway sessions the fleet ingest ran with (0 for the
    /// single-gateway pipelines, which have no fleet).
    pub fleet_gateways: usize,
    /// Routing shards the fleet ingest hashed (gateway, seq) onto
    /// (0 outside the fleet pipeline).
    pub ingest_shards: usize,
    /// Segments each fleet session pushed into the shared decode pool,
    /// keyed by gateway id.
    pub per_gateway_segments: BTreeMap<u16, usize>,
    /// Frames the shared pool decoded on behalf of each fleet session
    /// (pre-dedup), keyed by gateway id.
    pub per_gateway_decoded: BTreeMap<u16, usize>,
    /// Cross-gateway duplicate frames the fleet merge suppressed
    /// (kept the best-power copy, dropped the rest).
    pub dedup_suppressed: usize,
    /// Frames the fleet merge actually delivered (exactly-once, after
    /// dedup). `sum(per_gateway_decoded) == fleet_delivered +
    /// dedup_suppressed + crash_lost_frames` is asserted by
    /// `tests/fleet_conformance.rs` and `tests/failover_conformance.rs`.
    pub fleet_delivered: usize,
    /// Fleet gateway instances that hit an injected crash. (A session
    /// the liveness reaper declares dead shows up as `dead` in the
    /// registry snapshot instead — the reaper observes silence, not
    /// its cause.)
    pub sessions_crashed: usize,
    /// Crashed fleet sessions brought back up under a bumped epoch.
    pub sessions_restarted: usize,
    /// Segments attributed to a crashed session and dropped on its
    /// account: stale-epoch segments fenced at the ingest mux, plus
    /// results (including late gap notices) of a dead or superseded
    /// epoch discarded at the merge.
    pub crash_lost_segments: usize,
    /// Frames decoded on behalf of a crashed session but discarded
    /// because the session was already dead or superseded when they
    /// reported — the crash term closing the fleet delivery identity.
    pub crash_lost_frames: usize,
    /// Segment decode attempts the pool supervisor re-dispatched after
    /// a panic or lease expiry (one per `Retried` trace event).
    pub decode_retried: usize,
    /// Segments quarantined to a dead-letter record after exhausting
    /// `decode_retries` re-dispatches (one per `Quarantined` trace
    /// event; equals `quarantine_records.len()`).
    pub decode_quarantined: usize,
    /// Hung workers the supervisor abandoned and replaced with a
    /// fresh incarnation.
    pub workers_replaced: usize,
    /// Lease deadlines that expired — the supervisor declared the
    /// holding worker hung.
    pub decode_hung: usize,
    /// Frames decoded by late/stale attempts of already-quarantined
    /// segments: counted into `per_gateway_decoded` by the pool but
    /// never delivered, so they close the fleet identity
    /// `Σ per_gateway_decoded == fleet_delivered + dedup_suppressed +
    /// crash_lost_frames + quarantined_frames`.
    pub quarantined_frames: usize,
    /// Decode attempts that completed after their lease was already
    /// resolved (a replacement attempt won, or the segment was
    /// quarantined); their results were fenced off.
    pub decode_stale_results: usize,
    /// Dead-letter records, one per quarantined segment, in quarantine
    /// order.
    pub quarantine_records: Vec<QuarantineRecord>,
    /// Name of the SIMD kernel backend the DSP hot loops dispatched to
    /// (`scalar`, `sse4.1`, `avx2` or `fma` — see
    /// `galiot_dsp::kernels`), stamped whenever engine stats are
    /// recorded. Empty until a pipeline runs.
    pub dsp_backend: String,
}

impl Metrics {
    /// Records a decoded frame (either tier).
    pub fn record_frame(&mut self, frame: &DecodedFrame, at_edge: bool, via_kill: bool) {
        if at_edge {
            self.edge_decoded += 1;
        } else {
            self.cloud_decoded += 1;
            if via_kill {
                self.kill_recovered += 1;
            }
        }
        *self.payload_bits.entry(frame.tech).or_default() += frame.payload.len() as u64 * 8;
    }

    /// Total frames decoded across tiers.
    pub fn total_decoded(&self) -> usize {
        self.edge_decoded + self.cloud_decoded
    }

    /// Total payload bits recovered.
    pub fn total_payload_bits(&self) -> u64 {
        self.payload_bits.values().sum()
    }

    /// Goodput in bits per second of *capture time* (the Fig. 3(c)
    /// metric): recovered payload bits divided by the capture duration.
    pub fn goodput_bps(&self, fs: f64) -> f64 {
        if self.samples_processed == 0 {
            return 0.0;
        }
        let seconds = self.samples_processed as f64 / fs;
        self.total_payload_bits() as f64 / seconds
    }

    /// Fraction of capture samples shipped to the cloud, assuming
    /// `bits` per I/Q rail (2 rails) on the wire.
    pub fn shipped_fraction(&self, bits: u32) -> f64 {
        if self.samples_processed == 0 {
            return 0.0;
        }
        let shipped_samples = self.shipped_bytes as f64 * 8.0 / (2.0 * bits as f64);
        shipped_samples / self.samples_processed as f64
    }

    /// Merges another metrics block into this one. Counters add,
    /// high-water marks and the worker count take the max, maps merge
    /// key-wise. The exhaustive destructure means a newly added field
    /// fails compilation here until it is given merge semantics.
    pub fn merge(&mut self, other: &Metrics) {
        let Metrics {
            detections,
            segments,
            edge_decoded,
            shipped_segments,
            shipped_bytes,
            cloud_decoded,
            kill_recovered,
            payload_bits,
            samples_processed,
            cloud_workers,
            per_worker_decoded,
            per_worker_segments,
            seg_queue_hwm,
            reassembly_hwm,
            gateway_busy_ns,
            cloud_busy_ns,
            decode_poisoned,
            plan_cache_hits,
            plan_cache_misses,
            template_bank_builds,
            template_bank_hits,
            segments_downgraded,
            segments_shed,
            send_queue_hwm,
            shipped_by_bits,
            arq_retransmits,
            arq_acked,
            arq_lost,
            wire_datagrams_sent,
            wire_datagrams_delivered,
            wire_dropped,
            wire_corrupted,
            wire_duplicated,
            wire_reordered,
            wire_bytes_sent,
            wire_decode_errors,
            dup_segments_dropped,
            sic_rounds,
            kill_applications,
            stage_ns,
            fleet_gateways,
            ingest_shards,
            per_gateway_segments,
            per_gateway_decoded,
            dedup_suppressed,
            fleet_delivered,
            sessions_crashed,
            sessions_restarted,
            crash_lost_segments,
            crash_lost_frames,
            decode_retried,
            decode_quarantined,
            workers_replaced,
            decode_hung,
            quarantined_frames,
            decode_stale_results,
            quarantine_records,
            dsp_backend,
        } = other;
        self.detections += detections;
        self.segments += segments;
        self.edge_decoded += edge_decoded;
        self.shipped_segments += shipped_segments;
        self.shipped_bytes += shipped_bytes;
        self.cloud_decoded += cloud_decoded;
        self.kill_recovered += kill_recovered;
        self.samples_processed += samples_processed;
        for (k, v) in payload_bits {
            *self.payload_bits.entry(*k).or_default() += v;
        }
        self.cloud_workers = self.cloud_workers.max(*cloud_workers);
        for (k, v) in per_worker_decoded {
            *self.per_worker_decoded.entry(*k).or_default() += v;
        }
        for (k, v) in per_worker_segments {
            *self.per_worker_segments.entry(*k).or_default() += v;
        }
        self.seg_queue_hwm = self.seg_queue_hwm.max(*seg_queue_hwm);
        self.reassembly_hwm = self.reassembly_hwm.max(*reassembly_hwm);
        self.gateway_busy_ns += gateway_busy_ns;
        self.cloud_busy_ns += cloud_busy_ns;
        self.decode_poisoned += decode_poisoned;
        self.plan_cache_hits += plan_cache_hits;
        self.plan_cache_misses += plan_cache_misses;
        self.template_bank_builds += template_bank_builds;
        self.template_bank_hits += template_bank_hits;
        self.segments_downgraded += segments_downgraded;
        self.segments_shed += segments_shed;
        self.send_queue_hwm = self.send_queue_hwm.max(*send_queue_hwm);
        for (k, v) in shipped_by_bits {
            *self.shipped_by_bits.entry(*k).or_default() += v;
        }
        self.arq_retransmits += arq_retransmits;
        self.arq_acked += arq_acked;
        self.arq_lost += arq_lost;
        self.wire_datagrams_sent += wire_datagrams_sent;
        self.wire_datagrams_delivered += wire_datagrams_delivered;
        self.wire_dropped += wire_dropped;
        self.wire_corrupted += wire_corrupted;
        self.wire_duplicated += wire_duplicated;
        self.wire_reordered += wire_reordered;
        self.wire_bytes_sent += wire_bytes_sent;
        self.wire_decode_errors += wire_decode_errors;
        self.dup_segments_dropped += dup_segments_dropped;
        self.sic_rounds += sic_rounds;
        self.kill_applications += kill_applications;
        for (k, v) in stage_ns {
            self.stage_ns.entry(k.clone()).or_default().merge(v);
        }
        self.fleet_gateways = self.fleet_gateways.max(*fleet_gateways);
        self.ingest_shards = self.ingest_shards.max(*ingest_shards);
        for (k, v) in per_gateway_segments {
            *self.per_gateway_segments.entry(*k).or_default() += v;
        }
        for (k, v) in per_gateway_decoded {
            *self.per_gateway_decoded.entry(*k).or_default() += v;
        }
        self.dedup_suppressed += dedup_suppressed;
        self.fleet_delivered += fleet_delivered;
        self.sessions_crashed += sessions_crashed;
        self.sessions_restarted += sessions_restarted;
        self.crash_lost_segments += crash_lost_segments;
        self.crash_lost_frames += crash_lost_frames;
        self.decode_retried += decode_retried;
        self.decode_quarantined += decode_quarantined;
        self.workers_replaced += workers_replaced;
        self.decode_hung += decode_hung;
        self.quarantined_frames += quarantined_frames;
        self.decode_stale_results += decode_stale_results;
        self.quarantine_records
            .extend(quarantine_records.iter().cloned());
        // A tag, not a counter: take the other side's backend if this
        // side hasn't recorded one (backends agree within a process).
        if self.dsp_backend.is_empty() {
            self.dsp_backend.clone_from(dsp_backend);
        }
    }

    /// Folds a drained trace's per-stage latency histograms into
    /// `stage_ns` (stages with no samples are skipped).
    pub fn record_trace(&mut self, trace: &galiot_trace::Trace) {
        for (stage, h) in trace.stage_histograms() {
            if h.count() > 0 {
                self.stage_ns
                    .entry(stage.name().to_string())
                    .or_default()
                    .merge(h);
            }
        }
    }

    /// The full counter block plus per-stage latency summaries as a
    /// JSON object (the report the bench bins embed).
    pub fn stats_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"detections\":{},\"segments\":{},\"edge_decoded\":{},\
             \"shipped_segments\":{},\"shipped_bytes\":{},\"cloud_decoded\":{},\
             \"kill_recovered\":{},\"samples_processed\":{},\"cloud_workers\":{},\
             \"decode_poisoned\":{},\"segments_downgraded\":{},\"segments_shed\":{},\
             \"arq_retransmits\":{},\"arq_acked\":{},\"arq_lost\":{},\
             \"dup_segments_dropped\":{},\"sic_rounds\":{},\"kill_applications\":{},\
             \"fleet_gateways\":{},\"ingest_shards\":{},\"fleet_delivered\":{},\
             \"dedup_suppressed\":{},\"sessions_crashed\":{},\
             \"sessions_restarted\":{},\"crash_lost_segments\":{},\
             \"crash_lost_frames\":{},\"decode_retried\":{},\
             \"decode_quarantined\":{},\"workers_replaced\":{},\
             \"decode_hung\":{},\"quarantined_frames\":{},\
             \"decode_stale_results\":{},\"dsp_backend\":\"{}\",\
             \"quarantines\":{},\"stages\":{{",
            self.detections,
            self.segments,
            self.edge_decoded,
            self.shipped_segments,
            self.shipped_bytes,
            self.cloud_decoded,
            self.kill_recovered,
            self.samples_processed,
            self.cloud_workers,
            self.decode_poisoned,
            self.segments_downgraded,
            self.segments_shed,
            self.arq_retransmits,
            self.arq_acked,
            self.arq_lost,
            self.dup_segments_dropped,
            self.sic_rounds,
            self.kill_applications,
            self.fleet_gateways,
            self.ingest_shards,
            self.fleet_delivered,
            self.dedup_suppressed,
            self.sessions_crashed,
            self.sessions_restarted,
            self.crash_lost_segments,
            self.crash_lost_frames,
            self.decode_retried,
            self.decode_quarantined,
            self.workers_replaced,
            self.decode_hung,
            self.quarantined_frames,
            self.decode_stale_results,
            self.dsp_backend,
            quarantines_json(&self.quarantine_records),
        );
        let mut first = true;
        for (name, h) in &self.stage_ns {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&galiot_trace::export::summary_json(name, h));
        }
        out.push_str("}}");
        out
    }

    /// Folds a [`LinkStats`] block (one direction of a faulty link)
    /// into the wire counters.
    pub fn record_link_stats(&mut self, stats: &LinkStats) {
        self.wire_datagrams_sent += stats.sent;
        self.wire_datagrams_delivered += stats.delivered;
        self.wire_dropped += stats.dropped;
        self.wire_corrupted += stats.corrupted;
        self.wire_duplicated += stats.duplicated;
        self.wire_reordered += stats.reordered;
    }

    /// Fraction of FFT plan lookups served from the cache, or `None`
    /// when no lookups were recorded.
    pub fn plan_cache_hit_rate(&self) -> Option<f64> {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        (total > 0).then(|| self.plan_cache_hits as f64 / total as f64)
    }

    /// Copies the DSP engine counter deltas since `before` into this
    /// block (see [`galiot_dsp::engine::stats`]).
    pub fn record_engine_stats(&mut self, before: &galiot_dsp::engine::EngineStats) {
        self.dsp_backend = galiot_dsp::kernels::backend_name().to_string();
        let d = galiot_dsp::engine::stats().since(before);
        self.plan_cache_hits += d.plan_hits;
        self.plan_cache_misses += d.plan_misses;
        self.template_bank_builds += d.bank_builds;
        self.template_bank_hits += d.bank_hits;
    }

    /// Records a quarantine: bumps the counter and appends the
    /// dead-letter record so `decode_quarantined ==
    /// quarantine_records.len()` holds by construction.
    pub fn record_quarantine(&mut self, record: QuarantineRecord) {
        self.decode_quarantined += 1;
        self.quarantine_records.push(record);
    }

    /// Frames decoded across the worker pool, pre-deduplication — can
    /// exceed `cloud_decoded` when overlapping segment re-emissions
    /// decode the same frame twice and reassembly drops the repeat.
    pub fn pool_decoded(&self) -> usize {
        self.per_worker_decoded.values().sum()
    }
}

impl fmt::Display for Metrics {
    /// Human-readable run report. Destructures exhaustively so a new
    /// field fails compilation here until it is printed (or explicitly
    /// bound and dropped with a comment saying why).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let Metrics {
            detections,
            segments,
            edge_decoded,
            shipped_segments,
            shipped_bytes,
            cloud_decoded,
            kill_recovered,
            payload_bits,
            samples_processed,
            cloud_workers,
            per_worker_decoded,
            per_worker_segments,
            seg_queue_hwm,
            reassembly_hwm,
            gateway_busy_ns,
            cloud_busy_ns,
            decode_poisoned,
            plan_cache_hits,
            plan_cache_misses,
            template_bank_builds,
            template_bank_hits,
            segments_downgraded,
            segments_shed,
            send_queue_hwm,
            shipped_by_bits,
            arq_retransmits,
            arq_acked,
            arq_lost,
            wire_datagrams_sent,
            wire_datagrams_delivered,
            wire_dropped,
            wire_corrupted,
            wire_duplicated,
            wire_reordered,
            wire_bytes_sent,
            wire_decode_errors,
            dup_segments_dropped,
            sic_rounds,
            kill_applications,
            stage_ns,
            fleet_gateways,
            ingest_shards,
            per_gateway_segments,
            per_gateway_decoded,
            dedup_suppressed,
            fleet_delivered,
            sessions_crashed,
            sessions_restarted,
            crash_lost_segments,
            crash_lost_frames,
            decode_retried,
            decode_quarantined,
            workers_replaced,
            decode_hung,
            quarantined_frames,
            decode_stale_results,
            quarantine_records,
            dsp_backend,
        } = self;
        writeln!(
            f,
            "pipeline: detections={detections} segments={segments} \
             samples_processed={samples_processed}"
        )?;
        writeln!(
            f,
            "decode: edge_decoded={edge_decoded} cloud_decoded={cloud_decoded} \
             kill_recovered={kill_recovered} sic_rounds={sic_rounds} \
             kill_applications={kill_applications} decode_poisoned={decode_poisoned}"
        )?;
        writeln!(
            f,
            "ship: shipped_segments={shipped_segments} shipped_bytes={shipped_bytes} \
             segments_downgraded={segments_downgraded} segments_shed={segments_shed} \
             shipped_by_bits={shipped_by_bits:?}"
        )?;
        writeln!(
            f,
            "pool: cloud_workers={cloud_workers} per_worker_decoded={per_worker_decoded:?} \
             per_worker_segments={per_worker_segments:?} seg_queue_hwm={seg_queue_hwm} \
             reassembly_hwm={reassembly_hwm} send_queue_hwm={send_queue_hwm} \
             gateway_busy_ns={gateway_busy_ns} cloud_busy_ns={cloud_busy_ns}"
        )?;
        writeln!(
            f,
            "arq: arq_retransmits={arq_retransmits} arq_acked={arq_acked} arq_lost={arq_lost} \
             dup_segments_dropped={dup_segments_dropped}"
        )?;
        writeln!(
            f,
            "wire: wire_datagrams_sent={wire_datagrams_sent} \
             wire_datagrams_delivered={wire_datagrams_delivered} wire_dropped={wire_dropped} \
             wire_corrupted={wire_corrupted} wire_duplicated={wire_duplicated} \
             wire_reordered={wire_reordered} wire_bytes_sent={wire_bytes_sent} \
             wire_decode_errors={wire_decode_errors}"
        )?;
        writeln!(
            f,
            "engine: plan_cache_hits={plan_cache_hits} plan_cache_misses={plan_cache_misses} \
             template_bank_builds={template_bank_builds} template_bank_hits={template_bank_hits} \
             dsp_backend={dsp_backend}"
        )?;
        writeln!(
            f,
            "fleet: fleet_gateways={fleet_gateways} ingest_shards={ingest_shards} \
             fleet_delivered={fleet_delivered} dedup_suppressed={dedup_suppressed} \
             per_gateway_segments={per_gateway_segments:?} \
             per_gateway_decoded={per_gateway_decoded:?}"
        )?;
        writeln!(
            f,
            "failover: sessions_crashed={sessions_crashed} \
             sessions_restarted={sessions_restarted} \
             crash_lost_segments={crash_lost_segments} \
             crash_lost_frames={crash_lost_frames}"
        )?;
        writeln!(
            f,
            "supervision: decode_retried={decode_retried} \
             decode_quarantined={decode_quarantined} \
             workers_replaced={workers_replaced} decode_hung={decode_hung} \
             quarantined_frames={quarantined_frames} \
             decode_stale_results={decode_stale_results}"
        )?;
        for q in quarantine_records {
            writeln!(
                f,
                "  quarantine_records: gw={} seq={} start={} len={} \
                 attempts={:?} payload_hash={:#018x} fault_seed={}",
                q.gateway, q.seq, q.start, q.len, q.attempts, q.payload_hash, q.fault_seed
            )?;
        }
        writeln!(f, "payload_bits: {payload_bits:?}")?;
        if stage_ns.is_empty() {
            writeln!(f, "stage_ns: (no trace recorded)")?;
        } else {
            writeln!(f, "stage_ns (count p50/p95/p99/max ns):")?;
            for (name, h) in stage_ns {
                let s = h.summary();
                writeln!(
                    f,
                    "  {name:<18} n={:<8} {}/{}/{}/{}",
                    s.count, s.p50_ns, s.p95_ns, s.p99_ns, s.max_ns
                )?;
            }
        }
        Ok(())
    }
}

/// Renders the dead-letter records as a JSON array (for
/// [`Metrics::stats_json`]).
fn quarantines_json(records: &[QuarantineRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("[");
    for (i, q) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let attempts = q
            .attempts
            .iter()
            .map(|a| format!("\"{a}\""))
            .collect::<Vec<_>>()
            .join(",");
        let _ = write!(
            out,
            "{{\"gateway\":{},\"seq\":{},\"start\":{},\"len\":{},\
             \"attempts\":[{}],\"payload_hash\":{},\"fault_seed\":{}}}",
            q.gateway, q.seq, q.start, q.len, attempts, q.payload_hash, q.fault_seed
        );
    }
    out.push(']');
    out
}

/// Thread-shared metrics handle for the streaming pipeline.
#[derive(Clone, Default)]
pub struct SharedMetrics(Arc<Mutex<Metrics>>);

impl SharedMetrics {
    /// Creates an empty shared block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with the metrics locked.
    pub fn with<R>(&self, f: impl FnOnce(&mut Metrics) -> R) -> R {
        f(&mut self.0.lock())
    }

    /// Snapshots the current counters.
    pub fn snapshot(&self) -> Metrics {
        self.0.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tech: TechId, bytes: usize) -> DecodedFrame {
        DecodedFrame {
            tech,
            payload: vec![0; bytes],
            start: 0,
            len: 100,
        }
    }

    #[test]
    fn record_and_totals() {
        let mut m = Metrics::default();
        m.record_frame(&frame(TechId::LoRa, 10), true, false);
        m.record_frame(&frame(TechId::XBee, 5), false, true);
        assert_eq!(m.total_decoded(), 2);
        assert_eq!(m.edge_decoded, 1);
        assert_eq!(m.cloud_decoded, 1);
        assert_eq!(m.kill_recovered, 1);
        assert_eq!(m.total_payload_bits(), 120);
        assert_eq!(m.payload_bits[&TechId::LoRa], 80);
    }

    #[test]
    fn goodput_uses_capture_time() {
        let mut m = Metrics {
            samples_processed: 1_000_000,
            ..Default::default()
        }; // 1 s at 1 Msps
        m.record_frame(&frame(TechId::ZWave, 125), true, false);
        assert!((m.goodput_bps(1e6) - 1000.0).abs() < 1e-6);
        assert_eq!(Metrics::default().goodput_bps(1e6), 0.0);
    }

    #[test]
    fn shipped_fraction_math() {
        let m = Metrics {
            samples_processed: 1_000_000,
            shipped_bytes: 200_000, // 100k samples at 8+8 bits
            ..Default::default()
        };
        assert!((m.shipped_fraction(8) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn plan_cache_hit_rate_math() {
        assert_eq!(Metrics::default().plan_cache_hit_rate(), None);
        let m = Metrics {
            plan_cache_hits: 3,
            plan_cache_misses: 1,
            ..Default::default()
        };
        assert_eq!(m.plan_cache_hit_rate(), Some(0.75));
        let mut sum = Metrics::default();
        sum.merge(&m);
        sum.merge(&m);
        assert_eq!(sum.plan_cache_hits, 6);
        assert_eq!(sum.plan_cache_misses, 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Metrics {
            samples_processed: 10,
            ..Default::default()
        };
        a.record_frame(&frame(TechId::LoRa, 1), true, false);
        let mut b = Metrics {
            samples_processed: 20,
            ..Default::default()
        };
        b.record_frame(&frame(TechId::LoRa, 2), false, false);
        a.merge(&b);
        assert_eq!(a.total_decoded(), 2);
        assert_eq!(a.samples_processed, 30);
        assert_eq!(a.payload_bits[&TechId::LoRa], 24);
    }

    #[test]
    fn transport_counters_merge_and_fold_link_stats() {
        let mut a = Metrics {
            segments_shed: 1,
            arq_retransmits: 2,
            arq_lost: 1,
            send_queue_hwm: 3,
            wire_decode_errors: 4,
            ..Default::default()
        };
        a.shipped_by_bits.insert(8, 5);
        let mut b = Metrics {
            segments_downgraded: 2,
            arq_acked: 7,
            dup_segments_dropped: 1,
            send_queue_hwm: 2,
            ..Default::default()
        };
        b.shipped_by_bits.insert(8, 1);
        b.shipped_by_bits.insert(6, 2);
        b.record_link_stats(&LinkStats {
            sent: 10,
            delivered: 9,
            dropped: 1,
            corrupted: 2,
            duplicated: 1,
            reordered: 3,
        });
        a.merge(&b);
        assert_eq!(a.segments_shed, 1);
        assert_eq!(a.segments_downgraded, 2);
        assert_eq!(a.send_queue_hwm, 3, "hwm merges by max");
        assert_eq!(a.shipped_by_bits[&8], 6);
        assert_eq!(a.shipped_by_bits[&6], 2);
        assert_eq!(a.arq_retransmits, 2);
        assert_eq!(a.arq_acked, 7);
        assert_eq!(a.arq_lost, 1);
        assert_eq!(a.wire_datagrams_sent, 10);
        assert_eq!(a.wire_datagrams_delivered, 9);
        assert_eq!(a.wire_dropped, 1);
        assert_eq!(a.wire_corrupted, 2);
        assert_eq!(a.wire_duplicated, 1);
        assert_eq!(a.wire_reordered, 3);
        assert_eq!(a.wire_decode_errors, 4);
        assert_eq!(a.dup_segments_dropped, 1);
    }

    /// A metrics block with every field set to a distinctive non-default
    /// value. Written as a full struct literal — no `..Default::default()`
    /// — so adding a field breaks this test until it is populated.
    fn fully_populated() -> Metrics {
        let mut stage_hist = Histogram::new();
        stage_hist.record(1_500);
        stage_hist.record(40_000);
        Metrics {
            detections: 1,
            segments: 2,
            edge_decoded: 3,
            shipped_segments: 4,
            shipped_bytes: 5,
            cloud_decoded: 6,
            kill_recovered: 7,
            payload_bits: BTreeMap::from([(TechId::LoRa, 8u64)]),
            samples_processed: 9,
            cloud_workers: 10,
            per_worker_decoded: BTreeMap::from([(0usize, 11usize)]),
            per_worker_segments: BTreeMap::from([(0usize, 12usize)]),
            seg_queue_hwm: 13,
            reassembly_hwm: 14,
            gateway_busy_ns: 15,
            cloud_busy_ns: 16,
            decode_poisoned: 17,
            plan_cache_hits: 18,
            plan_cache_misses: 19,
            template_bank_builds: 20,
            template_bank_hits: 21,
            segments_downgraded: 22,
            segments_shed: 23,
            send_queue_hwm: 24,
            shipped_by_bits: BTreeMap::from([(8u32, 25u64)]),
            arq_retransmits: 26,
            arq_acked: 27,
            arq_lost: 28,
            wire_datagrams_sent: 29,
            wire_datagrams_delivered: 30,
            wire_dropped: 31,
            wire_corrupted: 32,
            wire_duplicated: 33,
            wire_reordered: 34,
            wire_bytes_sent: 35,
            wire_decode_errors: 36,
            dup_segments_dropped: 37,
            sic_rounds: 38,
            kill_applications: 39,
            stage_ns: BTreeMap::from([("worker_decode".to_string(), stage_hist)]),
            fleet_gateways: 40,
            ingest_shards: 41,
            per_gateway_segments: BTreeMap::from([(1u16, 42usize)]),
            per_gateway_decoded: BTreeMap::from([(1u16, 43usize)]),
            dedup_suppressed: 44,
            fleet_delivered: 45,
            sessions_crashed: 46,
            sessions_restarted: 47,
            crash_lost_segments: 48,
            crash_lost_frames: 49,
            decode_retried: 50,
            decode_quarantined: 51,
            workers_replaced: 52,
            decode_hung: 53,
            quarantined_frames: 54,
            decode_stale_results: 55,
            quarantine_records: vec![QuarantineRecord {
                gateway: 2,
                seq: 56,
                start: 57,
                len: 58,
                attempts: vec!["panic", "hung"],
                payload_hash: 59,
                fault_seed: 60,
            }],
            dsp_backend: "avx2".to_string(),
        }
    }

    #[test]
    fn merge_with_default_is_identity() {
        // Every counter adds, every hwm maxes, every map unions: merging
        // a fully-populated block into a default one must reproduce it
        // exactly, and merging a default into it must leave it unchanged.
        let full = fully_populated();
        let mut into_empty = Metrics::default();
        into_empty.merge(&full);
        assert_eq!(into_empty, full);
        let mut unchanged = full.clone();
        unchanged.merge(&Metrics::default());
        assert_eq!(unchanged, full);
    }

    #[test]
    fn merge_doubles_every_counter() {
        let full = fully_populated();
        let mut twice = full.clone();
        twice.merge(&full);
        assert_eq!(twice.detections, 2 * full.detections);
        assert_eq!(twice.sic_rounds, 2 * full.sic_rounds);
        assert_eq!(twice.kill_applications, 2 * full.kill_applications);
        assert_eq!(twice.dedup_suppressed, 2 * full.dedup_suppressed);
        assert_eq!(twice.fleet_delivered, 2 * full.fleet_delivered);
        assert_eq!(twice.sessions_crashed, 2 * full.sessions_crashed);
        assert_eq!(twice.sessions_restarted, 2 * full.sessions_restarted);
        assert_eq!(twice.crash_lost_segments, 2 * full.crash_lost_segments);
        assert_eq!(twice.crash_lost_frames, 2 * full.crash_lost_frames);
        assert_eq!(twice.decode_retried, 2 * full.decode_retried);
        assert_eq!(twice.decode_quarantined, 2 * full.decode_quarantined);
        assert_eq!(twice.workers_replaced, 2 * full.workers_replaced);
        assert_eq!(twice.decode_hung, 2 * full.decode_hung);
        assert_eq!(twice.quarantined_frames, 2 * full.quarantined_frames);
        assert_eq!(twice.decode_stale_results, 2 * full.decode_stale_results);
        // Dead-letter records merge by concatenation.
        assert_eq!(
            twice.quarantine_records.len(),
            2 * full.quarantine_records.len()
        );
        assert_eq!(
            twice.per_gateway_decoded[&1],
            2 * full.per_gateway_decoded[&1]
        );
        // hwm-style fields take the max, not the sum.
        assert_eq!(twice.seg_queue_hwm, full.seg_queue_hwm);
        assert_eq!(twice.send_queue_hwm, full.send_queue_hwm);
        assert_eq!(twice.cloud_workers, full.cloud_workers);
        assert_eq!(twice.fleet_gateways, full.fleet_gateways);
        assert_eq!(twice.ingest_shards, full.ingest_shards);
        // Histograms merge by concatenation.
        assert_eq!(
            twice.stage_ns["worker_decode"].count(),
            2 * full.stage_ns["worker_decode"].count()
        );
    }

    #[test]
    fn display_names_every_counter() {
        // The Display impl destructures exhaustively (compile-time
        // guard); this checks the rendered text actually carries each
        // counter's name so run reports stay greppable.
        let text = fully_populated().to_string();
        for label in [
            "detections",
            "segments",
            "edge_decoded",
            "cloud_decoded",
            "kill_recovered",
            "shipped_segments",
            "shipped_bytes",
            "samples_processed",
            "cloud_workers",
            "per_worker_decoded",
            "per_worker_segments",
            "seg_queue_hwm",
            "reassembly_hwm",
            "gateway_busy_ns",
            "cloud_busy_ns",
            "decode_poisoned",
            "plan_cache_hits",
            "plan_cache_misses",
            "template_bank_builds",
            "template_bank_hits",
            "segments_downgraded",
            "segments_shed",
            "send_queue_hwm",
            "shipped_by_bits",
            "arq_retransmits",
            "arq_acked",
            "arq_lost",
            "wire_datagrams_sent",
            "wire_datagrams_delivered",
            "wire_dropped",
            "wire_corrupted",
            "wire_duplicated",
            "wire_reordered",
            "wire_bytes_sent",
            "wire_decode_errors",
            "dup_segments_dropped",
            "sic_rounds",
            "kill_applications",
            "payload_bits",
            "stage_ns",
            "fleet_gateways",
            "ingest_shards",
            "per_gateway_segments",
            "per_gateway_decoded",
            "dedup_suppressed",
            "fleet_delivered",
            "sessions_crashed",
            "sessions_restarted",
            "crash_lost_segments",
            "crash_lost_frames",
            "decode_retried",
            "decode_quarantined",
            "workers_replaced",
            "decode_hung",
            "quarantined_frames",
            "decode_stale_results",
            "quarantine_records",
            "dsp_backend",
        ] {
            assert!(text.contains(label), "Display output missing {label:?}");
        }
        assert!(text.contains("worker_decode"), "stage table missing");
    }

    #[test]
    fn record_trace_folds_only_populated_stages() {
        let _guard = galiot_trace::TraceSession::start();
        {
            let _s = galiot_trace::span(galiot_trace::Stage::WorkerDecode, 7);
        }
        let trace = _guard.finish();
        let mut m = Metrics::default();
        m.record_trace(&trace);
        // Concurrent lib tests may record extra stages into the shared
        // session, so assert containment rather than exact cardinality.
        assert!(m.stage_ns["worker_decode"].count() >= 1);
        assert!(
            m.stage_ns.values().all(|h| h.count() > 0),
            "zero-count stage folded in: {:?}",
            m.stage_ns.keys()
        );
        let json = m.stats_json();
        assert!(json.contains("\"worker_decode\""), "{json}");
        assert!(json.contains("\"sic_rounds\":0"), "{json}");
    }

    #[test]
    fn quarantine_records_round_trip_to_json() {
        let mut m = Metrics::default();
        m.record_quarantine(QuarantineRecord {
            gateway: 3,
            seq: 9,
            start: 1024,
            len: 512,
            attempts: vec!["hung", "panic", "panic"],
            payload_hash: 0xDEAD,
            fault_seed: 77,
        });
        assert_eq!(m.decode_quarantined, m.quarantine_records.len());
        let json = m.stats_json();
        assert!(json.contains("\"quarantines\":[{\"gateway\":3"), "{json}");
        assert!(
            json.contains("\"attempts\":[\"hung\",\"panic\",\"panic\"]"),
            "{json}"
        );
        assert!(json.contains("\"decode_quarantined\":1"), "{json}");
        assert!(json.contains("\"decode_retried\":0"), "{json}");
        assert!(json.contains("\"workers_replaced\":0"), "{json}");
    }

    #[test]
    fn shared_metrics_across_clones() {
        let s = SharedMetrics::new();
        let s2 = s.clone();
        s.with(|m| m.detections += 3);
        s2.with(|m| m.detections += 4);
        assert_eq!(s.snapshot().detections, 7);
    }
}
