//! System metrics: what the experiments measure.
//!
//! Counters fall into four groups: detection/decode outcomes, the
//! streaming pool (per-worker counts, queue high-water marks, busy
//! time), the DSP engine caches, and — since the fault-tolerant
//! backhaul — the segment transport: the degradation ladder
//! (`segments_downgraded`, `segments_shed`, `shipped_by_bits`,
//! `send_queue_hwm`), the ARQ (`arq_retransmits`, `arq_acked`,
//! `arq_lost`), and the wire itself (`wire_*`,
//! `dup_segments_dropped`). The transport accounting invariant —
//! every shipped segment is decoded by exactly one worker, shed, or
//! declared lost — is asserted by `tests/transport_conformance.rs`.

use galiot_gateway::LinkStats;
use galiot_phy::{DecodedFrame, TechId};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Counters accumulated over a run. Shared across pipeline threads via
/// [`SharedMetrics`].
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Detections raised by the gateway.
    pub detections: usize,
    /// Segments extracted and considered for decode.
    pub segments: usize,
    /// Frames decoded at the edge.
    pub edge_decoded: usize,
    /// Segments shipped to the cloud.
    pub shipped_segments: usize,
    /// Bytes shipped over the backhaul.
    pub shipped_bytes: u64,
    /// Frames decoded at the cloud.
    pub cloud_decoded: usize,
    /// Of the cloud frames, how many needed a kill filter.
    pub kill_recovered: usize,
    /// Payload bits recovered, per technology.
    pub payload_bits: BTreeMap<TechId, u64>,
    /// Capture samples processed.
    pub samples_processed: u64,
    /// Cloud decode workers the streaming pipeline ran with
    /// (0 for the batch pipeline, which has no pool).
    pub cloud_workers: usize,
    /// Frames decoded by each cloud worker, by worker index.
    pub per_worker_decoded: BTreeMap<usize, usize>,
    /// Segments decoded by each cloud worker, by worker index.
    pub per_worker_segments: BTreeMap<usize, usize>,
    /// Deepest the gateway→cloud segment queue ever got.
    pub seg_queue_hwm: usize,
    /// Most out-of-order segment results the reassembly stage ever
    /// buffered while waiting for an earlier sequence number.
    pub reassembly_hwm: usize,
    /// Time the gateway thread spent in detection/extraction/edge
    /// decode, in nanoseconds.
    pub gateway_busy_ns: u64,
    /// Total time cloud workers spent decoding, in nanoseconds
    /// (summed across workers, so this can exceed wall-clock).
    pub cloud_busy_ns: u64,
    /// Segments whose decode panicked inside a worker (the pool
    /// survives these; see the failure-injection tests).
    pub decode_poisoned: usize,
    /// FFT plan-cache hits in the DSP engine over the run (process-wide
    /// counters sampled before/after, so concurrent runs can bleed into
    /// each other's numbers; treat as indicative, not exact).
    pub plan_cache_hits: u64,
    /// FFT plan-cache misses (plans actually constructed) over the run.
    pub plan_cache_misses: u64,
    /// Preamble template banks synthesized over the run.
    pub template_bank_builds: u64,
    /// Template-bank cache hits over the run.
    pub template_bank_hits: u64,
    /// Segments shipped with fewer compression bits than configured
    /// because the send queue crossed its high-water mark.
    pub segments_downgraded: usize,
    /// Segments shed (dropped before transmission) by the send queue's
    /// lowest-power-first overflow policy.
    pub segments_shed: usize,
    /// Deepest the transport send queue ever got.
    pub send_queue_hwm: usize,
    /// Segments shipped, keyed by the compression bits they actually
    /// used (the degradation ladder makes this non-uniform).
    pub shipped_by_bits: BTreeMap<u32, u64>,
    /// ARQ retransmissions performed by the uplink sender.
    pub arq_retransmits: usize,
    /// Segments acknowledged end-to-end by the ARQ.
    pub arq_acked: usize,
    /// Segments the ARQ declared lost after exhausting retries.
    pub arq_lost: usize,
    /// Datagrams offered to the (possibly faulty) wire, both
    /// directions, including retransmissions.
    pub wire_datagrams_sent: u64,
    /// Datagram copies that actually came out of the wire.
    pub wire_datagrams_delivered: u64,
    /// Datagrams the wire dropped.
    pub wire_dropped: u64,
    /// Datagrams the wire delivered with flipped bits.
    pub wire_corrupted: u64,
    /// Extra copies the wire duplicated.
    pub wire_duplicated: u64,
    /// Datagrams the wire delivered out of order.
    pub wire_reordered: u64,
    /// Payload bytes offered to the wire (pre-impairment, including
    /// retransmissions).
    pub wire_bytes_sent: u64,
    /// Received datagrams rejected by framing/CRC/header validation.
    pub wire_decode_errors: usize,
    /// Duplicate segments (same sequence number) the receiver dropped
    /// before they reached the decode pool.
    pub dup_segments_dropped: usize,
}

impl Metrics {
    /// Records a decoded frame (either tier).
    pub fn record_frame(&mut self, frame: &DecodedFrame, at_edge: bool, via_kill: bool) {
        if at_edge {
            self.edge_decoded += 1;
        } else {
            self.cloud_decoded += 1;
            if via_kill {
                self.kill_recovered += 1;
            }
        }
        *self.payload_bits.entry(frame.tech).or_default() += frame.payload.len() as u64 * 8;
    }

    /// Total frames decoded across tiers.
    pub fn total_decoded(&self) -> usize {
        self.edge_decoded + self.cloud_decoded
    }

    /// Total payload bits recovered.
    pub fn total_payload_bits(&self) -> u64 {
        self.payload_bits.values().sum()
    }

    /// Goodput in bits per second of *capture time* (the Fig. 3(c)
    /// metric): recovered payload bits divided by the capture duration.
    pub fn goodput_bps(&self, fs: f64) -> f64 {
        if self.samples_processed == 0 {
            return 0.0;
        }
        let seconds = self.samples_processed as f64 / fs;
        self.total_payload_bits() as f64 / seconds
    }

    /// Fraction of capture samples shipped to the cloud, assuming
    /// `bits` per I/Q rail (2 rails) on the wire.
    pub fn shipped_fraction(&self, bits: u32) -> f64 {
        if self.samples_processed == 0 {
            return 0.0;
        }
        let shipped_samples = self.shipped_bytes as f64 * 8.0 / (2.0 * bits as f64);
        shipped_samples / self.samples_processed as f64
    }

    /// Merges another metrics block into this one.
    pub fn merge(&mut self, other: &Metrics) {
        self.detections += other.detections;
        self.segments += other.segments;
        self.edge_decoded += other.edge_decoded;
        self.shipped_segments += other.shipped_segments;
        self.shipped_bytes += other.shipped_bytes;
        self.cloud_decoded += other.cloud_decoded;
        self.kill_recovered += other.kill_recovered;
        self.samples_processed += other.samples_processed;
        for (k, v) in &other.payload_bits {
            *self.payload_bits.entry(*k).or_default() += v;
        }
        self.cloud_workers = self.cloud_workers.max(other.cloud_workers);
        for (k, v) in &other.per_worker_decoded {
            *self.per_worker_decoded.entry(*k).or_default() += v;
        }
        for (k, v) in &other.per_worker_segments {
            *self.per_worker_segments.entry(*k).or_default() += v;
        }
        self.seg_queue_hwm = self.seg_queue_hwm.max(other.seg_queue_hwm);
        self.reassembly_hwm = self.reassembly_hwm.max(other.reassembly_hwm);
        self.gateway_busy_ns += other.gateway_busy_ns;
        self.cloud_busy_ns += other.cloud_busy_ns;
        self.decode_poisoned += other.decode_poisoned;
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
        self.template_bank_builds += other.template_bank_builds;
        self.template_bank_hits += other.template_bank_hits;
        self.segments_downgraded += other.segments_downgraded;
        self.segments_shed += other.segments_shed;
        self.send_queue_hwm = self.send_queue_hwm.max(other.send_queue_hwm);
        for (k, v) in &other.shipped_by_bits {
            *self.shipped_by_bits.entry(*k).or_default() += v;
        }
        self.arq_retransmits += other.arq_retransmits;
        self.arq_acked += other.arq_acked;
        self.arq_lost += other.arq_lost;
        self.wire_datagrams_sent += other.wire_datagrams_sent;
        self.wire_datagrams_delivered += other.wire_datagrams_delivered;
        self.wire_dropped += other.wire_dropped;
        self.wire_corrupted += other.wire_corrupted;
        self.wire_duplicated += other.wire_duplicated;
        self.wire_reordered += other.wire_reordered;
        self.wire_bytes_sent += other.wire_bytes_sent;
        self.wire_decode_errors += other.wire_decode_errors;
        self.dup_segments_dropped += other.dup_segments_dropped;
    }

    /// Folds a [`LinkStats`] block (one direction of a faulty link)
    /// into the wire counters.
    pub fn record_link_stats(&mut self, stats: &LinkStats) {
        self.wire_datagrams_sent += stats.sent;
        self.wire_datagrams_delivered += stats.delivered;
        self.wire_dropped += stats.dropped;
        self.wire_corrupted += stats.corrupted;
        self.wire_duplicated += stats.duplicated;
        self.wire_reordered += stats.reordered;
    }

    /// Fraction of FFT plan lookups served from the cache, or `None`
    /// when no lookups were recorded.
    pub fn plan_cache_hit_rate(&self) -> Option<f64> {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        (total > 0).then(|| self.plan_cache_hits as f64 / total as f64)
    }

    /// Copies the DSP engine counter deltas since `before` into this
    /// block (see [`galiot_dsp::engine::stats`]).
    pub fn record_engine_stats(&mut self, before: &galiot_dsp::engine::EngineStats) {
        let d = galiot_dsp::engine::stats().since(before);
        self.plan_cache_hits += d.plan_hits;
        self.plan_cache_misses += d.plan_misses;
        self.template_bank_builds += d.bank_builds;
        self.template_bank_hits += d.bank_hits;
    }

    /// Frames decoded across the worker pool, pre-deduplication — can
    /// exceed `cloud_decoded` when overlapping segment re-emissions
    /// decode the same frame twice and reassembly drops the repeat.
    pub fn pool_decoded(&self) -> usize {
        self.per_worker_decoded.values().sum()
    }
}

/// Thread-shared metrics handle for the streaming pipeline.
#[derive(Clone, Default)]
pub struct SharedMetrics(Arc<Mutex<Metrics>>);

impl SharedMetrics {
    /// Creates an empty shared block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with the metrics locked.
    pub fn with<R>(&self, f: impl FnOnce(&mut Metrics) -> R) -> R {
        f(&mut self.0.lock())
    }

    /// Snapshots the current counters.
    pub fn snapshot(&self) -> Metrics {
        self.0.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tech: TechId, bytes: usize) -> DecodedFrame {
        DecodedFrame {
            tech,
            payload: vec![0; bytes],
            start: 0,
            len: 100,
        }
    }

    #[test]
    fn record_and_totals() {
        let mut m = Metrics::default();
        m.record_frame(&frame(TechId::LoRa, 10), true, false);
        m.record_frame(&frame(TechId::XBee, 5), false, true);
        assert_eq!(m.total_decoded(), 2);
        assert_eq!(m.edge_decoded, 1);
        assert_eq!(m.cloud_decoded, 1);
        assert_eq!(m.kill_recovered, 1);
        assert_eq!(m.total_payload_bits(), 120);
        assert_eq!(m.payload_bits[&TechId::LoRa], 80);
    }

    #[test]
    fn goodput_uses_capture_time() {
        let mut m = Metrics {
            samples_processed: 1_000_000,
            ..Default::default()
        }; // 1 s at 1 Msps
        m.record_frame(&frame(TechId::ZWave, 125), true, false);
        assert!((m.goodput_bps(1e6) - 1000.0).abs() < 1e-6);
        assert_eq!(Metrics::default().goodput_bps(1e6), 0.0);
    }

    #[test]
    fn shipped_fraction_math() {
        let m = Metrics {
            samples_processed: 1_000_000,
            shipped_bytes: 200_000, // 100k samples at 8+8 bits
            ..Default::default()
        };
        assert!((m.shipped_fraction(8) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn plan_cache_hit_rate_math() {
        assert_eq!(Metrics::default().plan_cache_hit_rate(), None);
        let m = Metrics {
            plan_cache_hits: 3,
            plan_cache_misses: 1,
            ..Default::default()
        };
        assert_eq!(m.plan_cache_hit_rate(), Some(0.75));
        let mut sum = Metrics::default();
        sum.merge(&m);
        sum.merge(&m);
        assert_eq!(sum.plan_cache_hits, 6);
        assert_eq!(sum.plan_cache_misses, 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Metrics {
            samples_processed: 10,
            ..Default::default()
        };
        a.record_frame(&frame(TechId::LoRa, 1), true, false);
        let mut b = Metrics {
            samples_processed: 20,
            ..Default::default()
        };
        b.record_frame(&frame(TechId::LoRa, 2), false, false);
        a.merge(&b);
        assert_eq!(a.total_decoded(), 2);
        assert_eq!(a.samples_processed, 30);
        assert_eq!(a.payload_bits[&TechId::LoRa], 24);
    }

    #[test]
    fn transport_counters_merge_and_fold_link_stats() {
        let mut a = Metrics {
            segments_shed: 1,
            arq_retransmits: 2,
            arq_lost: 1,
            send_queue_hwm: 3,
            wire_decode_errors: 4,
            ..Default::default()
        };
        a.shipped_by_bits.insert(8, 5);
        let mut b = Metrics {
            segments_downgraded: 2,
            arq_acked: 7,
            dup_segments_dropped: 1,
            send_queue_hwm: 2,
            ..Default::default()
        };
        b.shipped_by_bits.insert(8, 1);
        b.shipped_by_bits.insert(6, 2);
        b.record_link_stats(&LinkStats {
            sent: 10,
            delivered: 9,
            dropped: 1,
            corrupted: 2,
            duplicated: 1,
            reordered: 3,
        });
        a.merge(&b);
        assert_eq!(a.segments_shed, 1);
        assert_eq!(a.segments_downgraded, 2);
        assert_eq!(a.send_queue_hwm, 3, "hwm merges by max");
        assert_eq!(a.shipped_by_bits[&8], 6);
        assert_eq!(a.shipped_by_bits[&6], 2);
        assert_eq!(a.arq_retransmits, 2);
        assert_eq!(a.arq_acked, 7);
        assert_eq!(a.arq_lost, 1);
        assert_eq!(a.wire_datagrams_sent, 10);
        assert_eq!(a.wire_datagrams_delivered, 9);
        assert_eq!(a.wire_dropped, 1);
        assert_eq!(a.wire_corrupted, 2);
        assert_eq!(a.wire_duplicated, 1);
        assert_eq!(a.wire_reordered, 3);
        assert_eq!(a.wire_decode_errors, 4);
        assert_eq!(a.dup_segments_dropped, 1);
    }

    #[test]
    fn shared_metrics_across_clones() {
        let s = SharedMetrics::new();
        let s2 = s.clone();
        s.with(|m| m.detections += 3);
        s2.with(|m| m.detections += 4);
        assert_eq!(s.snapshot().detections, 7);
    }
}
