//! Bounded-retry thread spawning.
//!
//! `std::thread::Builder::spawn` can fail transiently (`EAGAIN` under
//! pid/memory pressure); the pipeline used to `.expect(...)` at every
//! spawn site, turning a momentary resource blip into a process abort.
//! [`spawn_thread`] retries a handful of times with a short exponential
//! backoff and then surfaces a typed [`SpawnError`] so callers can
//! decide: top-level constructors still abort (with a message that says
//! *why*), while the decode-pool supervisor downgrades a failed worker
//! replacement to a retry instead of killing the run.

use std::fmt;
use std::io;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How many times [`spawn_thread`] asks the OS before giving up.
const SPAWN_ATTEMPTS: u32 = 5;

/// A thread could not be spawned even after [`SPAWN_ATTEMPTS`] tries.
#[derive(Debug)]
pub struct SpawnError {
    /// The name the thread would have carried.
    pub name: String,
    /// How many spawn attempts were made.
    pub attempts: u32,
    /// The error the final attempt returned.
    pub source: io::Error,
}

impl fmt::Display for SpawnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "failed to spawn thread `{}` after {} attempts: {}",
            self.name, self.attempts, self.source
        )
    }
}

impl std::error::Error for SpawnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Spawn a named thread, retrying transient failures with exponential
/// backoff (1, 2, 4, 8 ms between the five attempts). Returns the join
/// handle, or a [`SpawnError`] naming the thread and carrying the final
/// OS error once the retry budget is spent.
///
/// `Builder::spawn` consumes its closure even when it fails, so the
/// real closure lives in a shared slot and each attempt hands the OS a
/// cheap shim that takes it out; a failed attempt only drops the shim.
pub fn spawn_thread<F>(name: &str, f: F) -> Result<JoinHandle<()>, SpawnError>
where
    F: FnOnce() + Send + 'static,
{
    let slot = Arc::new(Mutex::new(Some(f)));
    let mut attempt = 0;
    loop {
        let shim_slot = Arc::clone(&slot);
        let shim = move || {
            let body = shim_slot
                .lock()
                .expect("spawn slot poisoned")
                .take()
                .expect("spawn closure run twice");
            body();
        };
        attempt += 1;
        match thread::Builder::new().name(name.to_string()).spawn(shim) {
            Ok(handle) => return Ok(handle),
            Err(_) if attempt < SPAWN_ATTEMPTS => {
                thread::sleep(Duration::from_millis(1 << (attempt - 1)));
            }
            Err(err) => {
                return Err(SpawnError {
                    name: name.to_string(),
                    attempts: attempt,
                    source: err,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn spawned_thread_runs_and_carries_its_name() {
        let ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&ran);
        let handle = spawn_thread("galiot-spawn-test", move || {
            assert_eq!(thread::current().name(), Some("galiot-spawn-test"));
            flag.store(true, Ordering::SeqCst);
        })
        .expect("spawn test thread");
        handle.join().expect("join test thread");
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn spawn_error_displays_name_attempts_and_source() {
        let err = SpawnError {
            name: "galiot-cloud-3.1".into(),
            attempts: SPAWN_ATTEMPTS,
            source: io::Error::from_raw_os_error(11),
        };
        let msg = err.to_string();
        assert!(msg.contains("galiot-cloud-3.1"), "{msg}");
        assert!(msg.contains("5 attempts"), "{msg}");
        use std::error::Error;
        assert!(err.source().is_some());
    }
}
