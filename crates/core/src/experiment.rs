//! Reusable experiment engines behind the paper's figures.
//!
//! The `galiot-bench` binaries are thin wrappers that sweep these
//! engines over parameters and print table rows; keeping the engines
//! here lets integration tests exercise the same code paths the
//! figures are generated from.

use galiot_channel::{compose, forced_collision, snr_to_noise_power, Capture, TxEvent};
use galiot_cloud::{sic_decode, CloudDecoder, SicParams};
use galiot_gateway::{
    score_detections, EnergyDetector, MatchedFilterBank, PacketDetector, RtlSdrFrontEnd,
    UniversalDetector,
};
use galiot_phy::registry::Registry;
use galiot_phy::TechId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::GaliotConfig;

/// Per-detector packet-detection counts for one SNR bin
/// (the data behind Figure 3(b)).
#[derive(Clone, Copy, Debug, Default)]
pub struct DetectionCounts {
    /// Packets transmitted.
    pub total: usize,
    /// Packets detected by energy thresholding.
    pub energy: usize,
    /// Packets detected by the universal preamble.
    pub universal: usize,
    /// Packets detected by the per-technology matched bank (optimal).
    pub matched: usize,
}

impl DetectionCounts {
    /// Detection ratios `(energy, universal, matched)`.
    pub fn ratios(&self) -> (f64, f64, f64) {
        let t = self.total.max(1) as f64;
        (
            self.energy as f64 / t,
            self.universal as f64 / t,
            self.matched as f64 / t,
        )
    }
}

/// Configuration for the detection experiment.
#[derive(Clone, Copy, Debug)]
pub struct DetectionConfig {
    /// Trials per SNR bin.
    pub trials: usize,
    /// Probability a trial is a collision (vs a single packet).
    pub collision_prob: f64,
    /// Scoring slack in samples.
    pub slack: usize,
    /// Energy detector threshold in dB over the noise floor.
    pub energy_threshold_db: f32,
    /// Matched-bank normalized-correlation threshold.
    pub matched_threshold: f32,
    /// Universal-preamble normalized-correlation threshold.
    pub universal_threshold: f32,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig {
            trials: 60,
            collision_prob: 0.4,
            slack: 2_048,
            energy_threshold_db: 6.0,
            // 0.0 = the analytic per-template noise threshold.
            matched_threshold: 0.0,
            universal_threshold: 0.0,
        }
    }
}

/// Builds one detection-trial capture: a single packet or a staggered
/// collision of 2-3 technologies, under AWGN at `snr_db`.
pub fn detection_capture(
    reg: &Registry,
    snr_db: f32,
    collision: bool,
    fs: f64,
    rng: &mut StdRng,
) -> Capture {
    let max_frame = reg.max_frame_samples_for(fs, 8);
    let total = 3 * max_frame + 40_000;
    let np = snr_to_noise_power(snr_db, 0.0);
    let events: Vec<TxEvent> = if collision {
        let n = rng.gen_range(2..=reg.len().min(3));
        let powers: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0..=2.0)).collect();
        let stagger = rng.gen_range(1_000..(max_frame / 4).max(1_001));
        forced_collision(reg, 8, &powers, stagger, 20_000, rng)
    } else {
        let tech = reg.techs()[rng.gen_range(0..reg.len())].clone();
        let start = rng.gen_range(10_000..total - max_frame - 1_000);
        vec![TxEvent::new(
            tech,
            galiot_channel::random_payload(8, rng),
            start,
        )]
    };
    compose(&events, total, fs, np, rng)
}

/// Runs the Figure 3(b) detection comparison for one SNR bin
/// `(lo_db, hi_db)`: the three detectors on identical captures through
/// the same 8-bit RTL-SDR front-end model.
pub fn detection_bin(
    reg: &Registry,
    lo_db: f32,
    hi_db: f32,
    cfg: &DetectionConfig,
    fs: f64,
    seed: u64,
) -> DetectionCounts {
    let mut rng = StdRng::seed_from_u64(seed);
    let front_end = RtlSdrFrontEnd::new(GaliotConfig::prototype().front_end);
    let energy = EnergyDetector {
        threshold_db: cfg.energy_threshold_db,
        ..EnergyDetector::default()
    };
    let matched = MatchedFilterBank::new(reg.clone(), cfg.matched_threshold);
    let universal = UniversalDetector::new(reg, fs, cfg.universal_threshold);

    let mut counts = DetectionCounts::default();
    for _ in 0..cfg.trials {
        let snr = rng.gen_range(lo_db..hi_db);
        let collision = rng.gen_bool(cfg.collision_prob);
        let cap = detection_capture(reg, snr, collision, fs, &mut rng);
        let digital = front_end.digitize(&cap.samples);
        let truth: Vec<(usize, usize)> = cap.truth.iter().map(|t| (t.start, t.len)).collect();
        counts.total += truth.len();
        for (det, tally) in [
            (energy.detect(&digital, fs), &mut counts.energy),
            (universal.detect(&digital, fs), &mut counts.universal),
            (matched.detect(&digital, fs), &mut counts.matched),
        ] {
            *tally += score_detections(&det, &truth, cfg.slack)
                .iter()
                .filter(|&&h| h)
                .count();
        }
    }
    counts
}

/// Calibrates the three detectors' thresholds to a common false-alarm
/// budget: the maximum detector statistic observed over `trials`
/// noise-only captures (so each detector fires on pure noise with
/// probability roughly `1/trials` per capture).
pub fn calibrate_thresholds(reg: &Registry, fs: f64, trials: usize, seed: u64) -> DetectionConfig {
    let mut rng = StdRng::seed_from_u64(seed);
    let front_end = RtlSdrFrontEnd::new(GaliotConfig::prototype().front_end);
    let matched = MatchedFilterBank::new(reg.clone(), 0.0);
    let universal = UniversalDetector::new(reg, fs, 0.0);
    let max_frame = reg.max_frame_samples_for(fs, 16);
    let len = 2 * max_frame;

    let mut max_energy_db = 0.0f32;
    let mut max_matched = 0.0f32;
    let mut max_universal = 0.0f32;
    for _ in 0..trials {
        let noise = galiot_channel::awgn(len, 1.0, &mut rng);
        let digital = front_end.digitize(&noise);
        // Energy statistic: strongest window over the noise floor, dB.
        let powers = galiot_dsp::power::sliding_power(&digital, 256);
        let floor = galiot_dsp::power::noise_floor(&digital, 256, 10).max(1e-30);
        let peak = powers.iter().copied().fold(0.0f32, f32::max);
        max_energy_db = max_energy_db.max(galiot_dsp::lin_to_db(peak / floor));
        // Correlation statistics: strongest peak scores.
        for d in matched.detect(&digital, fs) {
            max_matched = max_matched.max(d.score);
        }
        for d in universal.detect(&digital, fs) {
            max_universal = max_universal.max(d.score);
        }
    }
    DetectionConfig {
        energy_threshold_db: max_energy_db + 0.5,
        matched_threshold: max_matched * 1.05,
        universal_threshold: max_universal * 1.05,
        ..DetectionConfig::default()
    }
}

/// One Figure 3(c) data point: payload goodput of strict SIC vs GalioT
/// (Algorithm 1) on comparable-power collisions in an SNR regime.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThroughputPoint {
    /// Bits correctly recovered by strict SIC.
    pub sic_bits: usize,
    /// Bits correctly recovered by GalioT's CloudDecode.
    pub galiot_bits: usize,
    /// Bits transmitted (upper bound).
    pub offered_bits: usize,
    /// Total capture time simulated, seconds.
    pub seconds: f64,
}

impl ThroughputPoint {
    /// SIC goodput in bit/s.
    pub fn sic_bps(&self) -> f64 {
        self.sic_bits as f64 / self.seconds.max(1e-12)
    }

    /// GalioT goodput in bit/s.
    pub fn galiot_bps(&self) -> f64 {
        self.galiot_bits as f64 / self.seconds.max(1e-12)
    }

    /// Throughput gain of GalioT over SIC (linear factor).
    pub fn gain(&self) -> f64 {
        self.galiot_bits as f64 / (self.sic_bits.max(1)) as f64
    }
}

/// Runs the Figure 3(c) collision-decoding comparison for one SNR
/// regime `(lo_db, hi_db)`: comparable-power full-overlap collisions,
/// strict SIC vs Algorithm 1 on identical captures.
pub fn throughput_bin(
    reg: &Registry,
    lo_db: f32,
    hi_db: f32,
    trials: usize,
    fs: f64,
    seed: u64,
) -> ThroughputPoint {
    let mut rng = StdRng::seed_from_u64(seed);
    let decoder = CloudDecoder::new(reg.clone());
    let sic_params = SicParams::default();
    let mut point = ThroughputPoint::default();

    for _ in 0..trials {
        let snr = rng.gen_range(lo_db..hi_db);
        let n = rng.gen_range(2..=reg.len().min(3));
        // Comparable powers within 2 dB of each other, random order.
        let powers: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..=1.0)).collect();
        let stagger = rng.gen_range(2_000..30_000);
        let payload_len = rng.gen_range(8..=16);
        let events = forced_collision(reg, payload_len, &powers, stagger, 10_000, &mut rng);
        let truth: Vec<(TechId, Vec<u8>)> = events
            .iter()
            .map(|e| (e.tech.id(), e.payload.clone()))
            .collect();
        let max_frame = reg.max_frame_samples_for(fs, payload_len);
        let total = max_frame + 60_000;
        let np = snr_to_noise_power(snr, 0.0);
        let cap = compose(&events, total, fs, np, &mut rng);

        let correct_bits = |frames: Vec<(TechId, Vec<u8>)>| -> usize {
            frames
                .iter()
                .filter(|f| truth.contains(f))
                .map(|(_, p)| p.len() * 8)
                .sum()
        };

        let sic = sic_decode(&cap.samples, fs, reg, &sic_params);
        point.sic_bits += correct_bits(
            sic.frames
                .iter()
                .map(|f| (f.tech, f.payload.clone()))
                .collect(),
        );
        let gal = decoder.decode(&cap.samples, fs);
        point.galiot_bits += correct_bits(
            gal.frames
                .iter()
                .map(|(f, _)| (f.tech, f.payload.clone()))
                .collect(),
        );
        point.offered_bits += truth.iter().map(|(_, p)| p.len() * 8).sum::<usize>();
        point.seconds += total as f64 / fs;
    }
    point
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 1_000_000.0;

    #[test]
    fn detection_bin_orders_detectors_at_low_snr() {
        let reg = Registry::prototype();
        let cfg = DetectionConfig {
            trials: 6,
            ..Default::default()
        };
        let counts = detection_bin(&reg, -12.0, -8.0, &cfg, FS, 42);
        assert!(counts.total >= 6);
        // The paper's ordering below 0 dB: correlation >> energy.
        assert!(counts.universal > counts.energy, "{counts:?}");
        assert!(
            counts.matched >= counts.universal.saturating_sub(2),
            "{counts:?}"
        );
    }

    #[test]
    fn detection_bin_everyone_wins_at_high_snr() {
        let reg = Registry::prototype();
        let cfg = DetectionConfig {
            trials: 5,
            ..Default::default()
        };
        let counts = detection_bin(&reg, 15.0, 20.0, &cfg, FS, 43);
        let (e, u, m) = counts.ratios();
        assert!(e > 0.7, "energy {e}");
        assert!(u > 0.8, "universal {u}");
        assert!(m > 0.8, "matched {m}");
    }

    #[test]
    fn throughput_bin_shows_galiot_ahead() {
        let reg = Registry::prototype();
        let point = throughput_bin(&reg, 18.0, 25.0, 4, FS, 44);
        assert!(point.offered_bits > 0);
        assert!(
            point.galiot_bits >= point.sic_bits,
            "GalioT {} vs SIC {}",
            point.galiot_bits,
            point.sic_bits
        );
        assert!(point.galiot_bits > 0);
        assert!(point.galiot_bps() > 0.0);
    }

    #[test]
    fn calibration_produces_usable_thresholds() {
        let reg = Registry::prototype();
        let cfg = calibrate_thresholds(&reg, FS, 3, 45);
        assert!(cfg.energy_threshold_db > 0.0);
        assert!((0.0..1.0).contains(&cfg.matched_threshold));
        assert!((0.0..1.0).contains(&cfg.universal_threshold));
    }
}
