//! The streaming pipeline: gateway, a pool of cloud decode workers and
//! an order-preserving reassembly stage on separate OS threads,
//! connected by bounded crossbeam channels — "real-time streaming of
//! bit streams" in the paper's system figure, scaled out on the cloud
//! side.
//!
//! Per the project's networking guides, this CPU-bound signal path uses
//! plain threads and channels rather than an async runtime: each stage
//! is pure computation, and backpressure comes from the bounded
//! channels.
//!
//! # Topology
//!
//! ```text
//!                 chunks            segments (seq-tagged,
//!                (bounded)           compressed, bounded)
//!  push_chunk ──▶ gateway ─┬──────▶ worker 0 ─┐
//!                          │──────▶ worker 1 ─┤   results
//!                          │  ...             ├─▶ reassembly ─▶ frames
//!                          │──────▶ worker N ─┘   (seq order,
//!                          └─ edge decodes ──────▶  dedup)
//! ```
//!
//! The paper's bet is that "cloud computational resources are elastic":
//! the gateway stays dumb and cheap while the cloud absorbs the
//! expensive kill-filter/SIC work. That only pays off if the cloud tier
//! actually scales, so each worker owns a private [`CloudDecoder`] and
//! segments fan out over an MPMC channel. Decode order inside the pool
//! is nondeterministic; the reassembly stage restores gateway emission
//! order via per-segment sequence numbers before anything reaches the
//! output channel, so the observable frame stream is identical for any
//! worker count (the conformance tests pin this).
//!
//! # Parity with the batch pipeline
//!
//! The gateway half runs the same stages as [`crate::pipeline::Galiot`]
//! in the same order: digitize → universal detection → extraction →
//! edge-first decode → block-floating-point compression. Workers
//! decompress before decoding, so the cloud sees bit-identical samples
//! to the batch backhaul path. Segments are only emitted once the
//! rolling buffer extends far enough past them that extraction can no
//! longer grow them ("finalized"), which keeps streaming segmentation
//! equal to batch segmentation for captures whose collision clusters
//! fit within one flush window.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use galiot_cloud::{CloudDecoder, Recovery};
use galiot_dsp::Cf32;
use galiot_gateway::{
    extract, EdgeDecoder, EdgeOutcome, ExtractParams, GatewayId, PacketDetector, RtlSdrFrontEnd,
    ShippedSegment, UniversalDetector,
};
use galiot_phy::registry::Registry;
use galiot_phy::TechId;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;
use std::time::{Duration, Instant};

use crate::config::GaliotConfig;
use crate::metrics::SharedMetrics;
use crate::pipeline::PipelineFrame;
use crate::transport::{
    degraded_bits, spawn_arq_receiver, spawn_arq_sender, QueuedSegment, SendQueue, SendQueueTx,
};
use std::sync::Arc;

/// Compression block length, matching the batch pipeline's backhaul.
const COMPRESS_BLOCK: usize = 1024;

/// Start-offset slack when deduplicating frames re-decoded from
/// overlapping segment emissions. The fleet merge uses the same window
/// for cross-gateway suppression so single- and multi-gateway delivery
/// agree.
pub(crate) const DEDUP_SLACK: usize = 4_096;

/// One segment's decode outcome travelling to the reassembly stage (or
/// to the fleet merge in multi-gateway mode).
pub(crate) struct SegmentResult {
    /// Emitting session; `GatewayId(0)` in single-gateway mode.
    pub(crate) gateway: GatewayId,
    pub(crate) seq: u64,
    pub(crate) frames: Vec<PipelineFrame>,
    /// Capture start of the segment in absolute samples — the session
    /// watermark the fleet merge advances on. `None` means unknown
    /// (e.g. a lost-segment gap notice), which holds release back;
    /// `Some(0)` is genuine progress from a segment starting at
    /// capture sample 0 — the two must not share a sentinel.
    pub(crate) watermark: Option<u64>,
    /// Mean received power of the segment's samples — the fleet
    /// merge's best-copy criterion. 0.0 when no samples were decoded.
    pub(crate) power: f32,
}

/// What flows over the result channel: decode outcomes, plus fleet
/// control messages that must be ordered against them (crossbeam
/// channels are FIFO per sender, and the session supervisor emits the
/// control message before any of the new instance's traffic).
pub(crate) enum ResultMsg {
    /// One segment's decode outcome.
    Segment(SegmentResult),
    /// A crashed fleet session restarted under a bumped epoch; its
    /// new instance numbers segments from `seq_base`. Single-gateway
    /// reassembly never sees this.
    SessionRestarted { gateway: GatewayId, seq_base: u64 },
}

/// A segment in flight between ingest and a decode worker, carrying
/// the [`FairnessGate`](galiot_cloud::FairnessGate) credit its session
/// holds for it (fleet mode). The credit travels *with* the segment so
/// that whoever drops the segment — the worker after decode, a
/// panicked worker's unwind, or a torn-down queue — returns the credit
/// via the guard's `Drop`, closing every leak path.
pub(crate) struct PoolItem {
    pub(crate) seg: ShippedSegment,
    pub(crate) credit: Option<galiot_cloud::CreditGuard>,
}

impl From<ShippedSegment> for PoolItem {
    fn from(seg: ShippedSegment) -> Self {
        PoolItem { seg, credit: None }
    }
}

/// A running streaming GalioT instance.
///
/// Feed raw capture chunks with [`StreamingGaliot::push_chunk`], close
/// the intake with [`StreamingGaliot::finish`], and collect decoded
/// frames from the output receiver.
pub struct StreamingGaliot {
    chunk_tx: Option<Sender<Vec<Cf32>>>,
    frames_rx: Receiver<PipelineFrame>,
    gateway: Option<thread::JoinHandle<()>>,
    /// ARQ sender thread (transport mode only).
    uplink: Option<thread::JoinHandle<()>>,
    /// ARQ receiver thread (transport mode only).
    ingress: Option<thread::JoinHandle<()>>,
    /// Transport send queue, kept to fold its high-water mark into the
    /// metrics at join time (transport mode only).
    send_queue: Option<Arc<SendQueue>>,
    workers: Vec<thread::JoinHandle<()>>,
    reassembly: Option<thread::JoinHandle<()>>,
    metrics: SharedMetrics,
    /// DSP engine counters sampled at start; the delta is folded into
    /// the metrics when the pipeline joins.
    engine_before: Option<galiot_dsp::engine::EngineStats>,
}

impl StreamingGaliot {
    /// Spawns the gateway, `config.effective_cloud_workers()` cloud
    /// decode workers, and the reassembly stage.
    ///
    /// # Panics
    /// Panics if `config` fails [`GaliotConfig::validate`] — a
    /// silently-degenerate configuration must fail at construction,
    /// not hang a live pipeline.
    pub fn start(config: GaliotConfig, registry: Registry) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid GaliotConfig: {e}");
        }
        let fs = config.fs;
        let n_workers = config.effective_cloud_workers();
        let engine_before = galiot_dsp::engine::stats();
        let metrics = SharedMetrics::new();
        metrics.with(|m| m.cloud_workers = n_workers);

        let (chunk_tx, chunk_rx) = bounded::<Vec<Cf32>>(8);
        // Enough queue to keep every worker busy without unbounded
        // buffering of multi-hundred-kilobyte segments.
        let (seg_tx, seg_rx) = bounded::<PoolItem>(2 * n_workers.max(4));
        let (result_tx, result_rx) = unbounded::<ResultMsg>();
        // Unbounded on purpose: `finish`/`Drop` join the workers before
        // draining, so a bounded frame channel could deadlock a run
        // that decodes more frames than the bound.
        let (frames_tx, frames_rx) = unbounded::<PipelineFrame>();

        // Route the gateway→pool segment flow. Passthrough (perfect
        // links, no ARQ — the default) hands segments straight to the
        // worker channel exactly as before the transport existed.
        // Otherwise they go through the send queue → ARQ sender →
        // FaultyLink wire → ARQ receiver → worker channel.
        let transport = config.transport;
        let uplink_bps = config.emulate_backhaul.then_some(config.backhaul_bps);
        let mut uplink = None;
        let mut ingress = None;
        let mut send_queue = None;
        let shipper = if transport.is_passthrough() {
            Shipper {
                gateway: GatewayId(0),
                mode: ShipMode::Direct(seg_tx),
                base_bits: config.compression_bits,
                uplink_bps,
                metrics: metrics.clone(),
            }
        } else {
            let queue = SendQueue::new(transport.send_queue_cap);
            let (wire_tx, wire_rx) = bounded::<Vec<u8>>(64);
            let (ack_tx, ack_rx) = unbounded::<Vec<u8>>();
            let lost_tx = result_tx.clone();
            uplink = Some(spawn_arq_sender(
                queue.clone(),
                wire_tx,
                ack_rx,
                transport.arq,
                transport.data_faults,
                uplink_bps,
                metrics.clone(),
                // A declared-lost segment still needs its slot in the
                // in-order reassembly: an empty result models the gap
                // notice the sender would piggyback on later traffic.
                move |seq| {
                    galiot_trace::event(galiot_trace::EventKind::Lost, seq);
                    lost_tx
                        .send(ResultMsg::Segment(SegmentResult {
                            gateway: GatewayId(0),
                            seq,
                            frames: Vec::new(),
                            watermark: None,
                            power: 0.0,
                        }))
                        .is_ok()
                },
            ));
            ingress = Some(spawn_arq_receiver(
                wire_rx,
                ack_tx,
                seg_tx,
                transport.ack_faults,
                metrics.clone(),
            ));
            send_queue = Some(queue.clone());
            Shipper {
                gateway: GatewayId(0),
                mode: ShipMode::Transport {
                    tx: SendQueueTx::new(queue),
                    hwm: transport.degrade_hwm,
                    cap: transport.send_queue_cap,
                    min_bits: transport.min_bits,
                    result_tx: result_tx.clone(),
                },
                base_bits: config.compression_bits,
                // Serialization time is paid on the uplink thread in
                // transport mode, not in the gateway.
                uplink_bps: None,
                metrics: metrics.clone(),
            }
        };

        let gateway = spawn_gateway(
            &config,
            &registry,
            chunk_rx,
            shipper,
            result_tx.clone(),
            metrics.clone(),
        );

        let workers: Vec<thread::JoinHandle<()>> = (0..n_workers)
            .map(|wid| {
                spawn_worker(
                    wid,
                    registry.clone(),
                    &config,
                    fs,
                    seg_rx.clone(),
                    result_tx.clone(),
                    metrics.clone(),
                )
            })
            .collect();
        // Reassembly must observe disconnection once the gateway and
        // every worker are done — drop the original handles.
        drop(seg_rx);
        drop(result_tx);

        let reassembly = spawn_reassembly(result_rx, frames_tx, metrics.clone());

        StreamingGaliot {
            chunk_tx: Some(chunk_tx),
            frames_rx,
            gateway: Some(gateway),
            uplink,
            ingress,
            send_queue,
            workers,
            reassembly: Some(reassembly),
            metrics,
            engine_before: Some(engine_before),
        }
    }

    /// Feeds one capture chunk; blocks if the pipeline is saturated.
    pub fn push_chunk(&self, chunk: Vec<Cf32>) {
        if let Some(tx) = &self.chunk_tx {
            let _ = tx.send(chunk);
        }
    }

    /// The decoded-frame output channel. Frames arrive in gateway
    /// emission (capture) order regardless of the worker count.
    pub fn frames(&self) -> &Receiver<PipelineFrame> {
        &self.frames_rx
    }

    /// Shared metrics handle.
    pub fn metrics(&self) -> &SharedMetrics {
        &self.metrics
    }

    fn join_all(&mut self) {
        drop(self.chunk_tx.take());
        // Join order follows the data flow: the gateway closes the send
        // queue (via its `SendQueueTx`), which ends the uplink, whose
        // dropped wire sender ends the ingress, whose dropped segment
        // sender ends the workers, whose dropped result senders end the
        // reassembly.
        if let Some(g) = self.gateway.take() {
            let _ = g.join();
        }
        if let Some(u) = self.uplink.take() {
            let _ = u.join();
        }
        if let Some(i) = self.ingress.take() {
            let _ = i.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(r) = self.reassembly.take() {
            let _ = r.join();
        }
        if let Some(q) = self.send_queue.take() {
            self.metrics
                .with(|m| m.send_queue_hwm = m.send_queue_hwm.max(q.high_water_mark()));
        }
        if let Some(before) = self.engine_before.take() {
            self.metrics.with(|m| m.record_engine_stats(&before));
        }
    }

    /// Closes the intake, waits for the whole pipeline, and returns all
    /// remaining decoded frames (in capture order).
    pub fn finish(mut self) -> Vec<PipelineFrame> {
        self.join_all();
        self.frames_rx.try_iter().collect()
    }
}

impl Drop for StreamingGaliot {
    fn drop(&mut self) {
        self.join_all();
    }
}

/// Where a gateway instance begins: capture offset and sequence base
/// (both 0 for a first life; a restarted instance resumes at the
/// capture position its predecessor died at, numbering segments from
/// the new epoch's base), plus the fault-injection point.
pub(crate) struct SessionStart {
    /// Absolute capture index of the first sample this instance will
    /// receive from the chunk feed.
    pub(crate) capture_offset: usize,
    /// First sequence number this instance emits (`epoch <<
    /// EPOCH_SHIFT` in fleet failover mode).
    pub(crate) seq_base: u64,
    /// Fault injection: die immediately before emitting segment
    /// number `crash_after` (counted within this instance; 0 = silent
    /// from the first would-be segment). `None` runs to completion.
    pub(crate) crash_after: Option<u64>,
}

impl SessionStart {
    /// A first life with no fault injection.
    pub(crate) fn clean() -> Self {
        SessionStart {
            capture_offset: 0,
            seq_base: 0,
            crash_after: None,
        }
    }
}

/// How a gateway instance ended.
pub(crate) struct GatewayRun {
    /// The instance hit its injected crash point. Samples buffered but
    /// not yet flushed died with it — a rebooted radio loses its RAM.
    pub(crate) crashed: bool,
    /// Absolute capture index just past the last sample consumed from
    /// the chunk feed; a restarted instance resumes here.
    pub(crate) consumed: usize,
}

/// Why a flush stopped the gateway loop.
enum FlushStop {
    /// Downstream is gone; nothing more can be delivered.
    Downstream,
    /// The injected crash point was reached.
    Crashed,
}

/// Gateway loop body: digitize chunks into a rolling buffer, detect on
/// fixed, chunk-size-independent flush windows, edge-decode clean
/// segments and ship the rest compressed. Runs on the caller's thread
/// so a fleet session supervisor can run successive instances (crash →
/// restart) over one chunk feed.
pub(crate) fn run_gateway(
    config: &GaliotConfig,
    registry: &Registry,
    chunk_rx: &Receiver<Vec<Cf32>>,
    shipper: Shipper,
    result_tx: &Sender<ResultMsg>,
    metrics: &SharedMetrics,
    start: SessionStart,
) -> GatewayRun {
    let fs = config.fs;
    let front_end = RtlSdrFrontEnd::new(config.front_end);
    let detector = UniversalDetector::new(registry, fs, config.detect_threshold);
    let window = registry
        .max_frame_samples_for(fs, config.max_expected_payload)
        .max(1);
    let params = ExtractParams::paper(window);
    let edge = config.edge_decoding.then(|| {
        EdgeDecoder::new(registry.clone()).with_cluster_guard_s(config.edge_cluster_guard_s)
    });

    // A segment is "settled" once the buffer extends at least
    // this far past it: extraction can then neither lengthen it
    // (detections reach 2×window forward) nor merge it with a
    // later cluster (pre-guard reach). An unsettled segment is
    // deferred to the next flush — but only when its start
    // survives the drain; a cluster spanning the whole flush
    // window is emitted as-is rather than lost.
    let defer_guard = params.pre_guard + 64;
    let keep_len = 2 * window + 2 * params.pre_guard + 128;
    // Advance by two windows per flush: flush boundaries sit at
    // fixed capture offsets (multiples of the stride), so
    // segmentation is identical for any chunking of the same
    // capture.
    let stride = 2 * window;
    let flush_len = keep_len + stride;

    let mut buffer: Vec<Cf32> = Vec::new();
    let mut buffer_start = start.capture_offset; // capture index of buffer[0]
                                                 // Capture index up to which segment content has been
                                                 // emitted; a segment is emitted only when it ends past this
                                                 // line AND is finalized (or the capture is over).
    let mut emitted_until = start.capture_offset;
    let mut seq = start.seq_base;
    // Segments emitted by THIS instance (crash injection counts per
    // life, independent of the epoch folded into `seq`).
    let mut emitted_count = 0u64;

    let flush = |buffer: &[Cf32],
                 buffer_start: usize,
                 emitted_until: &mut usize,
                 seq: &mut u64,
                 emitted_count: &mut u64,
                 is_final: bool|
     -> Result<(), FlushStop> {
        let t0 = Instant::now();
        let digital = front_end.digitize(buffer);
        let detections = detector.detect(&digital, fs);
        metrics.with(|m| m.detections += detections.len());
        let buffer_end = buffer_start + buffer.len();
        for seg in extract(&digital, &detections, params) {
            let abs_start = buffer_start + seg.start;
            let abs_end = abs_start + seg.samples.len();
            if abs_end <= *emitted_until {
                continue; // fully covered by earlier output
            }
            // Defer an unsettled segment only if the next flush
            // will still contain its head — otherwise emit now.
            if !is_final
                && abs_end + defer_guard > buffer_end
                && abs_start >= buffer_start + stride + params.pre_guard
            {
                continue;
            }
            // Fault injection: the crash lands between finalizing a
            // segment and emitting it — the worst spot, since the
            // fleet can only learn of the loss through liveness.
            if start.crash_after == Some(*emitted_count) {
                metrics.with(|m| m.gateway_busy_ns += t0.elapsed().as_nanos() as u64);
                return Err(FlushStop::Crashed);
            }
            *emitted_until = abs_end;
            metrics.with(|m| m.segments += 1);
            let this_seq = *seq;
            *seq += 1;
            *emitted_count += 1;

            // Edge-first decode (paper, Sec. 4): handle clean
            // single packets locally, ship everything else.
            if let Some(edge) = &edge {
                let mut abs_seg = seg;
                abs_seg.start = abs_start;
                if let EdgeOutcome::DecodedLocally(frame) = edge.process(&abs_seg, fs) {
                    metrics.with(|m| m.gateway_busy_ns += t0.elapsed().as_nanos() as u64);
                    let power = abs_seg.samples.iter().map(|c| c.norm_sqr()).sum::<f32>()
                        / abs_seg.samples.len().max(1) as f32;
                    let ok = result_tx
                        .send(ResultMsg::Segment(SegmentResult {
                            gateway: shipper.gateway,
                            seq: this_seq,
                            frames: vec![PipelineFrame {
                                frame,
                                at_edge: true,
                                via_kill: false,
                            }],
                            watermark: Some(abs_start as u64),
                            power,
                        }))
                        .is_ok();
                    if !ok {
                        return Err(FlushStop::Downstream);
                    }
                    continue;
                }
                if !shipper.ship(this_seq, abs_start, &abs_seg.samples) {
                    return Err(FlushStop::Downstream);
                }
            } else if !shipper.ship(this_seq, abs_start, &seg.samples) {
                return Err(FlushStop::Downstream);
            }
        }
        metrics.with(|m| m.gateway_busy_ns += t0.elapsed().as_nanos() as u64);
        Ok(())
    };

    let mut consumed = start.capture_offset;
    while let Ok(chunk) = chunk_rx.recv() {
        metrics.with(|m| m.samples_processed += chunk.len() as u64);
        consumed += chunk.len();
        buffer.extend_from_slice(&chunk);
        while buffer.len() >= flush_len {
            match flush(
                &buffer[..flush_len],
                buffer_start,
                &mut emitted_until,
                &mut seq,
                &mut emitted_count,
                false,
            ) {
                Ok(()) => {}
                Err(stop) => {
                    return GatewayRun {
                        crashed: matches!(stop, FlushStop::Crashed),
                        consumed,
                    }
                }
            }
            buffer.drain(..stride);
            buffer_start += stride;
        }
    }
    if !buffer.is_empty() {
        let stopped = flush(
            &buffer,
            buffer_start,
            &mut emitted_until,
            &mut seq,
            &mut emitted_count,
            true,
        );
        if let Err(FlushStop::Crashed) = stopped {
            return GatewayRun {
                crashed: true,
                consumed,
            };
        }
    }
    GatewayRun {
        crashed: false,
        consumed,
    }
}

/// Gateway thread: [`run_gateway`] with a clean [`SessionStart`], for
/// the single-session streaming pipeline.
pub(crate) fn spawn_gateway(
    config: &GaliotConfig,
    registry: &Registry,
    chunk_rx: Receiver<Vec<Cf32>>,
    shipper: Shipper,
    result_tx: Sender<ResultMsg>,
    metrics: SharedMetrics,
) -> thread::JoinHandle<()> {
    let config = config.clone();
    let registry = registry.clone();
    thread::Builder::new()
        .name("galiot-gateway".into())
        .spawn(move || {
            run_gateway(
                &config,
                &registry,
                &chunk_rx,
                shipper,
                &result_tx,
                &metrics,
                SessionStart::clean(),
            );
        })
        .expect("spawn gateway thread")
}

/// Where the gateway's compressed segments go.
pub(crate) enum ShipMode {
    /// Straight into the worker-pool channel (perfect backhaul — the
    /// historical behavior).
    Direct(Sender<PoolItem>),
    /// Into the transport send queue, with the compression ladder and
    /// lowest-power shedding driven by queue depth. The owned
    /// [`SendQueueTx`] closes the queue when the gateway thread ends,
    /// however it ends.
    Transport {
        tx: SendQueueTx,
        hwm: usize,
        cap: usize,
        min_bits: u32,
        result_tx: Sender<ResultMsg>,
    },
}

/// The gateway's shipping policy: packs a finalized segment at the
/// right compression level and hands it to whichever path is active,
/// stamped with the session's [`GatewayId`].
pub(crate) struct Shipper {
    pub(crate) gateway: GatewayId,
    pub(crate) mode: ShipMode,
    pub(crate) base_bits: u32,
    pub(crate) uplink_bps: Option<f64>,
    pub(crate) metrics: SharedMetrics,
}

impl Shipper {
    /// Packs and ships one segment. Returns `false` when downstream is
    /// gone and the gateway should stop.
    fn ship(&self, seq: u64, abs_start: usize, samples: &[Cf32]) -> bool {
        match &self.mode {
            ShipMode::Direct(tx) => {
                let shipped =
                    ShippedSegment::pack(seq, abs_start, samples, self.base_bits, COMPRESS_BLOCK)
                        .with_gateway(self.gateway);
                let ok = ship(&shipped, tx, &self.metrics, self.uplink_bps);
                if ok {
                    self.metrics
                        .with(|m| *m.shipped_by_bits.entry(self.base_bits).or_default() += 1);
                }
                ok
            }
            ShipMode::Transport {
                tx,
                hwm,
                cap,
                min_bits,
                result_tx,
            } => {
                let depth = tx.queue().len();
                let bits = degraded_bits(self.base_bits, *min_bits, depth, *hwm, *cap);
                let shipped = ShippedSegment::pack(seq, abs_start, samples, bits, COMPRESS_BLOCK)
                    .with_gateway(self.gateway);
                let wire = shipped.wire_bytes() as u64;
                let power =
                    samples.iter().map(|c| c.norm_sqr()).sum::<f32>() / samples.len().max(1) as f32;
                self.metrics.with(|m| {
                    m.shipped_segments += 1;
                    m.shipped_bytes += wire;
                    *m.shipped_by_bits.entry(bits).or_default() += 1;
                    if bits < self.base_bits {
                        m.segments_downgraded += 1;
                    }
                });
                galiot_trace::event(
                    galiot_trace::EventKind::Ship,
                    galiot_trace::tag_seq(self.gateway.0, seq),
                );
                if let Some(victim) = tx.queue().push(QueuedSegment {
                    seg: shipped,
                    power,
                }) {
                    // The shed victim's sequence slot still needs a gap
                    // notice so reassembly can advance past it.
                    self.metrics.with(|m| m.segments_shed += 1);
                    galiot_trace::event(
                        galiot_trace::EventKind::Shed,
                        galiot_trace::tag_seq(victim.seg.gateway.0, victim.seg.seq),
                    );
                    if result_tx
                        .send(ResultMsg::Segment(SegmentResult {
                            gateway: victim.seg.gateway,
                            seq: victim.seg.seq,
                            frames: Vec::new(),
                            watermark: Some(victim.seg.start as u64),
                            power: 0.0,
                        }))
                        .is_err()
                    {
                        return false;
                    }
                }
                true
            }
        }
    }
}

/// Ships one compressed segment towards the worker pool, updating the
/// backhaul metrics and the queue high-water mark. Returns `false` when
/// the pool is gone.
///
/// With backhaul emulation on, blocks for the segment's serialization
/// time on the shared uplink — serialization cannot be parallelized
/// away, which is why it happens here on the single gateway thread.
fn ship(
    shipped: &ShippedSegment,
    seg_tx: &Sender<PoolItem>,
    metrics: &SharedMetrics,
    uplink_bps: Option<f64>,
) -> bool {
    let bytes = shipped.wire_bytes();
    if let Some(bps) = uplink_bps {
        thread::sleep(Duration::from_secs_f64(bytes as f64 * 8.0 / bps));
    }
    // Mark the handoff before the send so the ship event
    // happens-before everything the receiving worker records for this
    // seq (the trace-conformance journey check relies on the order).
    galiot_trace::event(
        galiot_trace::EventKind::Ship,
        galiot_trace::tag_seq(shipped.gateway.0, shipped.seq),
    );
    if seg_tx.send(PoolItem::from(shipped.clone())).is_err() {
        return false;
    }
    let depth = seg_tx.len();
    metrics.with(|m| {
        m.shipped_segments += 1;
        m.shipped_bytes += bytes as u64;
        m.seg_queue_hwm = m.seg_queue_hwm.max(depth);
    });
    true
}

/// One cloud decode worker: decompress, run Algorithm 1, forward the
/// result tagged with the segment's session and sequence number. A
/// panicking decode is contained — the worker reports an empty result
/// for that segment and keeps serving the pool.
///
/// In fleet mode the segment carries its session's in-flight credit as
/// a [`CreditGuard`](galiot_cloud::CreditGuard); the worker drops it
/// after the decode (whatever the outcome — including a panic, since
/// the guard lives on the worker's stack), so a poisoned decode can
/// never leak the emitting session's quota.
pub(crate) fn spawn_worker(
    wid: usize,
    registry: Registry,
    config: &GaliotConfig,
    fs: f64,
    seg_rx: Receiver<PoolItem>,
    result_tx: Sender<ResultMsg>,
    metrics: SharedMetrics,
) -> thread::JoinHandle<()> {
    let cloud_params = config.cloud;
    let hop_latency = config
        .emulate_backhaul
        .then(|| Duration::from_secs_f64(config.backhaul_latency_s));
    thread::Builder::new()
        .name(format!("galiot-cloud-{wid}"))
        .spawn(move || {
            let decoder = CloudDecoder::with_params(registry, cloud_params);
            while let Ok(PoolItem { seg, credit }) = seg_rx.recv() {
                // The hop to a remote elastic cloud instance: latency
                // is per segment and overlaps across workers — this is
                // the wait the pool exists to hide.
                if let Some(lat) = hop_latency {
                    thread::sleep(lat);
                }
                let tag = galiot_trace::tag_seq(seg.gateway.0, seg.seq);
                let t0 = Instant::now();
                let decode_span = galiot_trace::span(galiot_trace::Stage::WorkerDecode, tag);
                let decoded = catch_unwind(AssertUnwindSafe(|| {
                    let samples = seg.unpack();
                    let power = samples.iter().map(|c| c.norm_sqr()).sum::<f32>()
                        / samples.len().max(1) as f32;
                    (power, decoder.decode(&samples, fs))
                }));
                drop(decode_span);
                let busy = t0.elapsed().as_nanos() as u64;
                let (frames, power, rounds, kills) = match decoded {
                    Ok((power, result)) => {
                        let rounds = result.rounds as u64;
                        let kills = result.kills as u64;
                        let frames: Vec<PipelineFrame> = result
                            .frames
                            .into_iter()
                            .map(|(mut frame, how)| {
                                frame.start += seg.start;
                                let via_kill = matches!(how, Recovery::AfterKill { .. });
                                PipelineFrame {
                                    frame,
                                    at_edge: false,
                                    via_kill,
                                }
                            })
                            .collect();
                        (frames, power, rounds, kills)
                    }
                    Err(_) => {
                        metrics.with(|m| m.decode_poisoned += 1);
                        (Vec::new(), 0.0, 0, 0)
                    }
                };
                metrics.with(|m| {
                    m.cloud_busy_ns += busy;
                    m.sic_rounds += rounds;
                    m.kill_applications += kills;
                    *m.per_worker_segments.entry(wid).or_default() += 1;
                    *m.per_worker_decoded.entry(wid).or_default() += frames.len();
                });
                // Terminal mark: the segment's journey ends here even
                // when the decode yielded nothing (or panicked).
                galiot_trace::event(galiot_trace::EventKind::Decode, tag);
                // Send before returning the credit: the liveness
                // reaper exempts credit-holding sessions, so the
                // credit must cover the segment until its result is
                // queued at the merge.
                let sent = result_tx
                    .send(ResultMsg::Segment(SegmentResult {
                        gateway: seg.gateway,
                        seq: seg.seq,
                        frames,
                        watermark: Some(seg.start as u64),
                        power,
                    }))
                    .is_ok();
                drop(credit);
                if !sent {
                    return;
                }
            }
        })
        .expect("spawn cloud worker thread")
}

/// Reassembly stage: restore gateway emission order across workers,
/// drop duplicate frames decoded from overlapping segment emissions,
/// and record frame metrics exactly once.
fn spawn_reassembly(
    result_rx: Receiver<ResultMsg>,
    frames_tx: Sender<PipelineFrame>,
    metrics: SharedMetrics,
) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("galiot-reassembly".into())
        .spawn(move || {
            let mut pending: BTreeMap<u64, Vec<PipelineFrame>> = BTreeMap::new();
            let mut next_seq = 0u64;
            // Overlapping segment emissions can decode the same frame
            // twice; drop repeats by (tech, payload, ~start). Processing
            // strictly in seq order makes the surviving set independent
            // of worker count and scheduling.
            let mut seen: Vec<(TechId, Vec<u8>, usize)> = Vec::new();
            let mut emit = |mut frames: Vec<PipelineFrame>| -> bool {
                // Algorithm 1 yields a segment's frames in SIC power
                // order; re-sort by position so delivery is capture
                // order end to end (segments already arrive in
                // ascending-start order via `seq`).
                frames.sort_by_key(|pf| pf.frame.start);
                for pf in frames {
                    let dup = seen.iter().any(|(t, p, s)| {
                        *t == pf.frame.tech
                            && *p == pf.frame.payload
                            && s.abs_diff(pf.frame.start) < DEDUP_SLACK
                    });
                    if dup {
                        continue;
                    }
                    seen.push((pf.frame.tech, pf.frame.payload.clone(), pf.frame.start));
                    if seen.len() > 256 {
                        seen.remove(0);
                    }
                    metrics.with(|m| m.record_frame(&pf.frame, pf.at_edge, pf.via_kill));
                    if frames_tx.send(pf).is_err() {
                        return false;
                    }
                }
                true
            };
            while let Ok(msg) = result_rx.recv() {
                let result = match msg {
                    ResultMsg::Segment(r) => r,
                    // Session control traffic only concerns the fleet
                    // merge; the single-session reassembler never
                    // restarts anything.
                    ResultMsg::SessionRestarted { .. } => continue,
                };
                // A sequence number can report twice under the faulty
                // transport: a segment declared lost by the ARQ (empty
                // gap notice) can still be delivered late by a
                // reordering link and decoded. The first report wins;
                // anything at an already-emitted seq is dropped so the
                // final flush cannot replay it out of order.
                if result.seq < next_seq {
                    continue;
                }
                pending.entry(result.seq).or_insert(result.frames);
                metrics.with(|m| m.reassembly_hwm = m.reassembly_hwm.max(pending.len()));
                while let Some(frames) = pending.remove(&next_seq) {
                    let _span = galiot_trace::span(galiot_trace::Stage::Reassembly, next_seq);
                    next_seq += 1;
                    if !emit(frames) {
                        return;
                    }
                }
            }
            // Producers are gone; flush whatever remains in order.
            for (seq, frames) in std::mem::take(&mut pending) {
                let _span = galiot_trace::span(galiot_trace::Stage::Reassembly, seq);
                if !emit(frames) {
                    return;
                }
            }
        })
        .expect("spawn reassembly thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use galiot_channel::{compose, snr_to_noise_power, TxEvent};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FS: f64 = 1_000_000.0;

    #[test]
    fn streaming_decodes_packet_spanning_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let ev = TxEvent::new(xbee, vec![0xAB, 0xCD], 300_000);
        let np = snr_to_noise_power(15.0, 0.0);
        let cap = compose(&[ev], 1_200_000, FS, np, &mut rng);

        let sys = StreamingGaliot::start(GaliotConfig::prototype(), reg);
        for chunk in cap.samples.chunks(65_536) {
            sys.push_chunk(chunk.to_vec());
        }
        let frames = sys.finish();
        assert!(
            frames.iter().any(|f| f.frame.payload == vec![0xAB, 0xCD]),
            "frame not recovered: {} frames",
            frames.len()
        );
    }

    #[test]
    fn streaming_handles_multiple_packets() {
        let mut rng = StdRng::seed_from_u64(2);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let zwave = reg.get(TechId::ZWave).unwrap().clone();
        let events = vec![
            TxEvent::new(xbee, vec![1; 6], 100_000),
            TxEvent::new(zwave, vec![2; 6], 700_000),
        ];
        let np = snr_to_noise_power(18.0, 0.0);
        let cap = compose(&events, 1_500_000, FS, np, &mut rng);
        let sys = StreamingGaliot::start(GaliotConfig::prototype(), reg);
        for chunk in cap.samples.chunks(100_000) {
            sys.push_chunk(chunk.to_vec());
        }
        let frames = sys.finish();
        let techs: Vec<TechId> = frames.iter().map(|f| f.frame.tech).collect();
        assert!(techs.contains(&TechId::XBee), "{techs:?}");
        assert!(techs.contains(&TechId::ZWave), "{techs:?}");
        assert!(frames.len() >= 2);
    }

    #[test]
    fn finish_with_no_input_is_clean() {
        let sys = StreamingGaliot::start(GaliotConfig::prototype(), Registry::prototype());
        let frames = sys.finish();
        assert!(frames.is_empty());
    }

    #[test]
    fn frames_arrive_in_capture_order_with_many_workers() {
        let mut rng = StdRng::seed_from_u64(3);
        let reg = Registry::prototype();
        let zwave = reg.get(TechId::ZWave).unwrap().clone();
        // Well-separated packets → one segment each, in order.
        let events: Vec<TxEvent> = (0..4)
            .map(|i| TxEvent::new(zwave.clone(), vec![i as u8 + 1; 6], 150_000 + i * 600_000))
            .collect();
        let np = snr_to_noise_power(18.0, 0.0);
        let cap = compose(&events, 2_800_000, FS, np, &mut rng);
        let sys = StreamingGaliot::start(GaliotConfig::prototype().with_cloud_workers(4), reg);
        for chunk in cap.samples.chunks(50_000) {
            sys.push_chunk(chunk.to_vec());
        }
        let frames = sys.finish();
        let starts: Vec<usize> = frames.iter().map(|f| f.frame.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted, "frames out of capture order");
        assert_eq!(frames.len(), 4, "{starts:?}");
    }

    #[test]
    fn streaming_over_a_harsh_faulty_link_still_decodes() {
        use galiot_gateway::LinkFaults;
        let mut rng = StdRng::seed_from_u64(5);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let ev = TxEvent::new(xbee, vec![0x5A, 0xA5], 300_000);
        let np = snr_to_noise_power(15.0, 0.0);
        let cap = compose(&[ev], 1_200_000, FS, np, &mut rng);

        // 10% loss + corruption/duplication/reordering on both
        // directions; the ARQ must make the link transparent.
        let mut config = GaliotConfig::prototype().with_faulty_link(LinkFaults::harsh(0.1, 9));
        config.edge_decoding = false; // force everything over the wire
        let sys = StreamingGaliot::start(config, reg);
        for chunk in cap.samples.chunks(65_536) {
            sys.push_chunk(chunk.to_vec());
        }
        let metrics = sys.metrics().clone();
        let frames = sys.finish();
        assert!(
            frames.iter().any(|f| f.frame.payload == vec![0x5A, 0xA5]),
            "frame lost to the faulty link: {} frames",
            frames.len()
        );
        let m = metrics.snapshot();
        assert_eq!(m.arq_lost, 0, "{m:?}");
        assert_eq!(m.segments_shed, 0, "{m:?}");
        assert_eq!(m.arq_acked, m.shipped_segments, "{m:?}");
        assert!(m.wire_datagrams_sent > 0, "{m:?}");
        assert_eq!(
            m.shipped_segments,
            m.per_worker_segments.values().sum::<usize>(),
            "every shipped segment must reach exactly one worker: {m:?}"
        );
    }

    #[test]
    fn worker_metrics_are_populated() {
        let mut rng = StdRng::seed_from_u64(4);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let zwave = reg.get(TechId::ZWave).unwrap().clone();
        let events = vec![
            TxEvent::new(xbee, vec![7; 8], 100_000),
            TxEvent::new(zwave, vec![9; 8], 600_000),
        ];
        let np = snr_to_noise_power(25.0, 0.0);
        let cap = compose(&events, 1_200_000, FS, np, &mut rng);
        // Edge decoding off → every segment must flow through the pool.
        let mut config = GaliotConfig::prototype().with_cloud_workers(2);
        config.edge_decoding = false;
        let sys = StreamingGaliot::start(config, reg);
        for chunk in cap.samples.chunks(65_536) {
            sys.push_chunk(chunk.to_vec());
        }
        let metrics = sys.metrics().clone();
        let frames = sys.finish();
        let m = metrics.snapshot();
        assert!(!frames.is_empty());
        assert_eq!(m.cloud_workers, 2);
        assert!(m.shipped_segments >= 1, "{m:?}");
        assert!(m.pool_decoded() >= 1, "{m:?}");
        assert!(m.per_worker_segments.values().sum::<usize>() >= 1);
        assert!(m.cloud_busy_ns > 0);
        assert!(m.gateway_busy_ns > 0);
    }
}
