//! The streaming pipeline: gateway and cloud on separate OS threads,
//! connected by bounded crossbeam channels — "real-time streaming of
//! bit streams" in the paper's system figure.
//!
//! Per the project's networking guides, this CPU-bound signal path uses
//! plain threads and channels rather than an async runtime: each stage
//! is pure computation, and backpressure comes from the bounded
//! channels.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use galiot_cloud::{CloudDecoder, Recovery};
use galiot_dsp::Cf32;
use galiot_gateway::{extract, ExtractParams, PacketDetector, RtlSdrFrontEnd, UniversalDetector};
use galiot_phy::registry::Registry;
use std::thread;

use crate::config::GaliotConfig;
use crate::metrics::SharedMetrics;
use crate::pipeline::PipelineFrame;

/// A segment travelling from gateway thread to cloud thread.
struct ShippedSegment {
    start: usize,
    samples: Vec<Cf32>,
}

/// A running streaming GalioT instance.
///
/// Feed raw capture chunks with [`StreamingGaliot::push_chunk`], close
/// the intake with [`StreamingGaliot::finish`], and collect decoded
/// frames from the output receiver.
pub struct StreamingGaliot {
    chunk_tx: Option<Sender<Vec<Cf32>>>,
    frames_rx: Receiver<PipelineFrame>,
    gateway: Option<thread::JoinHandle<()>>,
    cloud: Option<thread::JoinHandle<()>>,
    metrics: SharedMetrics,
}

impl StreamingGaliot {
    /// Spawns the gateway and cloud workers.
    pub fn start(config: GaliotConfig, registry: Registry) -> Self {
        let fs = config.fs;
        let metrics = SharedMetrics::new();
        let (chunk_tx, chunk_rx) = bounded::<Vec<Cf32>>(8);
        let (seg_tx, seg_rx) = bounded::<ShippedSegment>(8);
        // Unbounded on purpose: `finish`/`Drop` join the workers before
        // draining, so a bounded frame channel could deadlock a run
        // that decodes more frames than the bound.
        let (frames_tx, frames_rx) = unbounded::<PipelineFrame>();

        // Gateway thread: digitize each chunk into a rolling buffer and
        // run detection on overlapping windows so frames split across
        // chunk boundaries are still found.
        let window = registry
            .max_frame_samples_for(fs, config.max_expected_payload)
            .max(1);
        let overlap = window * 2;
        let gw_metrics = metrics.clone();
        let gw_registry = registry.clone();
        let gw_config = config.clone();
        let gateway = thread::Builder::new()
            .name("galiot-gateway".into())
            .spawn(move || {
                let front_end = RtlSdrFrontEnd::new(gw_config.front_end);
                let detector =
                    UniversalDetector::new(&gw_registry, fs, gw_config.detect_threshold);
                let params = ExtractParams::paper(
                    gw_registry
                        .max_frame_samples_for(fs, gw_config.max_expected_payload)
                        .max(1),
                );
                let mut buffer: Vec<Cf32> = Vec::new();
                let mut buffer_start = 0usize; // capture index of buffer[0]
                // Capture index up to which segment content has been
                // emitted. A segment is (re-)emitted whenever it ends
                // past this line, so nothing is lost at flush
                // boundaries; frames decoded twice from overlapping
                // segments are deduplicated by the cloud worker.
                let mut emitted_until = 0usize;
                let flush = |buffer: &[Cf32],
                             buffer_start: usize,
                             emitted_until: &mut usize| {
                    let digital = front_end.digitize(buffer);
                    let detections = detector.detect(&digital, fs);
                    gw_metrics.with(|m| m.detections += detections.len());
                    for seg in extract(&digital, &detections, params) {
                        let abs_start = buffer_start + seg.start;
                        let abs_end = abs_start + seg.samples.len();
                        if abs_end <= *emitted_until {
                            continue; // fully covered by earlier output
                        }
                        *emitted_until = abs_end;
                        gw_metrics.with(|m| {
                            m.segments += 1;
                            m.shipped_segments += 1;
                            m.shipped_bytes += (seg.samples.len() * 2) as u64;
                        });
                        if seg_tx
                            .send(ShippedSegment { start: abs_start, samples: seg.samples })
                            .is_err()
                        {
                            return;
                        }
                    }
                };
                while let Ok(chunk) = chunk_rx.recv() {
                    gw_metrics.with(|m| m.samples_processed += chunk.len() as u64);
                    buffer.extend_from_slice(&chunk);
                    if buffer.len() >= 2 * overlap {
                        flush(&buffer, buffer_start, &mut emitted_until);
                        // Keep the trailing overlap for boundary frames.
                        let keep_from = buffer.len() - overlap;
                        buffer.drain(..keep_from);
                        buffer_start += keep_from;
                    }
                }
                if !buffer.is_empty() {
                    flush(&buffer, buffer_start, &mut emitted_until);
                }
            })
            .expect("spawn gateway thread");

        // Cloud thread: Algorithm 1 per shipped segment.
        let cl_metrics = metrics.clone();
        let cloud = thread::Builder::new()
            .name("galiot-cloud".into())
            .spawn(move || {
                let decoder = CloudDecoder::with_params(registry, config.cloud);
                // Overlapping segments can decode the same frame twice;
                // drop repeats by (tech, payload, ~start).
                let mut seen: Vec<(galiot_phy::TechId, Vec<u8>, usize)> = Vec::new();
                while let Ok(seg) = seg_rx.recv() {
                    let result = decoder.decode(&seg.samples, fs);
                    for (mut frame, how) in result.frames {
                        frame.start += seg.start;
                        let dup = seen.iter().any(|(t, p, s)| {
                            *t == frame.tech
                                && *p == frame.payload
                                && s.abs_diff(frame.start) < 4_096
                        });
                        if dup {
                            continue;
                        }
                        seen.push((frame.tech, frame.payload.clone(), frame.start));
                        if seen.len() > 256 {
                            seen.remove(0);
                        }
                        let via_kill = matches!(how, Recovery::AfterKill { .. });
                        cl_metrics.with(|m| m.record_frame(&frame, false, via_kill));
                        if frames_tx
                            .send(PipelineFrame { frame, at_edge: false, via_kill })
                            .is_err()
                        {
                            return;
                        }
                    }
                }
            })
            .expect("spawn cloud thread");

        StreamingGaliot {
            chunk_tx: Some(chunk_tx),
            frames_rx,
            gateway: Some(gateway),
            cloud: Some(cloud),
            metrics,
        }
    }

    /// Feeds one capture chunk; blocks if the pipeline is saturated.
    pub fn push_chunk(&self, chunk: Vec<Cf32>) {
        if let Some(tx) = &self.chunk_tx {
            let _ = tx.send(chunk);
        }
    }

    /// The decoded-frame output channel.
    pub fn frames(&self) -> &Receiver<PipelineFrame> {
        &self.frames_rx
    }

    /// Shared metrics handle.
    pub fn metrics(&self) -> &SharedMetrics {
        &self.metrics
    }

    /// Closes the intake, waits for both workers, and returns all
    /// remaining decoded frames.
    pub fn finish(mut self) -> Vec<PipelineFrame> {
        drop(self.chunk_tx.take());
        if let Some(g) = self.gateway.take() {
            let _ = g.join();
        }
        if let Some(c) = self.cloud.take() {
            let _ = c.join();
        }
        self.frames_rx.try_iter().collect()
    }
}

impl Drop for StreamingGaliot {
    fn drop(&mut self) {
        drop(self.chunk_tx.take());
        if let Some(g) = self.gateway.take() {
            let _ = g.join();
        }
        if let Some(c) = self.cloud.take() {
            let _ = c.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galiot_channel::{compose, snr_to_noise_power, TxEvent};
    use galiot_phy::TechId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FS: f64 = 1_000_000.0;

    #[test]
    fn streaming_decodes_packet_spanning_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let ev = TxEvent::new(xbee, vec![0xAB, 0xCD], 300_000);
        let np = snr_to_noise_power(15.0, 0.0);
        let cap = compose(&[ev], 1_200_000, FS, np, &mut rng);

        let sys = StreamingGaliot::start(GaliotConfig::prototype(), reg);
        for chunk in cap.samples.chunks(65_536) {
            sys.push_chunk(chunk.to_vec());
        }
        let frames = sys.finish();
        assert!(
            frames.iter().any(|f| f.frame.payload == vec![0xAB, 0xCD]),
            "frame not recovered: {} frames",
            frames.len()
        );
    }

    #[test]
    fn streaming_handles_multiple_packets() {
        let mut rng = StdRng::seed_from_u64(2);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let zwave = reg.get(TechId::ZWave).unwrap().clone();
        let events = vec![
            TxEvent::new(xbee, vec![1; 6], 100_000),
            TxEvent::new(zwave, vec![2; 6], 700_000),
        ];
        let np = snr_to_noise_power(18.0, 0.0);
        let cap = compose(&events, 1_500_000, FS, np, &mut rng);
        let sys = StreamingGaliot::start(GaliotConfig::prototype(), reg);
        for chunk in cap.samples.chunks(100_000) {
            sys.push_chunk(chunk.to_vec());
        }
        let frames = sys.finish();
        let techs: Vec<TechId> = frames.iter().map(|f| f.frame.tech).collect();
        assert!(techs.contains(&TechId::XBee), "{techs:?}");
        assert!(techs.contains(&TechId::ZWave), "{techs:?}");
        let m = sys_metrics_total(&frames);
        assert!(m >= 2);
    }

    fn sys_metrics_total(frames: &[PipelineFrame]) -> usize {
        frames.len()
    }

    #[test]
    fn finish_with_no_input_is_clean() {
        let sys = StreamingGaliot::start(GaliotConfig::prototype(), Registry::prototype());
        let frames = sys.finish();
        assert!(frames.is_empty());
    }
}
