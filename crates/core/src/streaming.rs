//! The streaming pipeline: gateway, a pool of cloud decode workers and
//! an order-preserving reassembly stage on separate OS threads,
//! connected by bounded crossbeam channels — "real-time streaming of
//! bit streams" in the paper's system figure, scaled out on the cloud
//! side.
//!
//! Per the project's networking guides, this CPU-bound signal path uses
//! plain threads and channels rather than an async runtime: each stage
//! is pure computation, and backpressure comes from the bounded
//! channels.
//!
//! # Topology
//!
//! ```text
//!                 chunks            segments (seq-tagged,
//!                (bounded)           compressed, bounded)
//!  push_chunk ──▶ gateway ─┬──▶ supervisor ─▶ worker 0 ─┐
//!                          │     (leases,  ─▶ worker 1 ─┤   results
//!                          │      retries,    ...       ├─▶ reassembly
//!                          │      deadlines) ─▶ worker N ┘   ─▶ frames
//!                          └─ edge decodes ──────────────▶ (seq order,
//!                                                            dedup)
//! ```
//!
//! The paper's bet is that "cloud computational resources are elastic":
//! the gateway stays dumb and cheap while the cloud absorbs the
//! expensive kill-filter/SIC work. That only pays off if the cloud tier
//! actually scales, so each worker owns a private [`CloudDecoder`] and
//! segments fan out across the pool. Decode order inside the pool is
//! nondeterministic; the reassembly stage restores gateway emission
//! order via per-segment sequence numbers before anything reaches the
//! output channel, so the observable frame stream is identical for any
//! worker count (the conformance tests pin this).
//!
//! # The supervised pool
//!
//! Workers are not trusted to come back: every dispatched segment
//! holds a *lease* whose deadline is [`GaliotConfig::decode_deadline_s`].
//! The supervisor (DESIGN.md §17) detects a hung worker when its lease
//! expires, abandons and replaces the thread (same `wid` lineage,
//! bumped incarnation in the thread name), and re-dispatches the
//! segment to a healthy worker; panicked decodes are re-dispatched
//! too. After `decode_retries` re-dispatches fail, the segment is
//! quarantined to a dead-letter [`QuarantineRecord`] and an empty
//! result carrying its watermark is synthesized, so in-order delivery
//! (and the fleet's liveness reaper) never stalls behind a poison
//! segment.
//!
//! # Parity with the batch pipeline
//!
//! The gateway half runs the same stages as [`crate::pipeline::Galiot`]
//! in the same order: digitize → universal detection → extraction →
//! edge-first decode → block-floating-point compression. Workers
//! decompress before decoding, so the cloud sees bit-identical samples
//! to the batch backhaul path. Segments are only emitted once the
//! rolling buffer extends far enough past them that extraction can no
//! longer grow them ("finalized"), which keeps streaming segmentation
//! equal to batch segmentation for captures whose collision clusters
//! fit within one flush window.

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use galiot_channel::{DecodeFaultKind, DecodeFaultSpec};
use galiot_cloud::{shard_for, CloudDecoder, CloudParams, Recovery};
use galiot_dsp::Cf32;
use galiot_gateway::{
    extract, EdgeDecoder, EdgeOutcome, ExtractParams, GatewayId, PacketDetector, RtlSdrFrontEnd,
    ShippedSegment, UniversalDetector,
};
use galiot_phy::registry::Registry;
use galiot_phy::TechId;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use crate::config::GaliotConfig;
use crate::metrics::{QuarantineRecord, SharedMetrics};
use crate::pipeline::PipelineFrame;
use crate::spawn::{spawn_thread, SpawnError};
use crate::transport::{
    degraded_bits, spawn_arq_receiver, spawn_arq_sender, QueuedSegment, SendQueue, SendQueueTx,
};
use std::sync::Arc;

/// Compression block length, matching the batch pipeline's backhaul.
const COMPRESS_BLOCK: usize = 1024;

/// Start-offset slack when deduplicating frames re-decoded from
/// overlapping segment emissions. The fleet merge uses the same window
/// for cross-gateway suppression so single- and multi-gateway delivery
/// agree.
pub(crate) const DEDUP_SLACK: usize = 4_096;

/// One segment's decode outcome travelling to the reassembly stage (or
/// to the fleet merge in multi-gateway mode).
pub(crate) struct SegmentResult {
    /// Emitting session; `GatewayId(0)` in single-gateway mode.
    pub(crate) gateway: GatewayId,
    pub(crate) seq: u64,
    pub(crate) frames: Vec<PipelineFrame>,
    /// Capture start of the segment in absolute samples — the session
    /// watermark the fleet merge advances on. `None` means unknown
    /// (e.g. a lost-segment gap notice), which holds release back;
    /// `Some(0)` is genuine progress from a segment starting at
    /// capture sample 0 — the two must not share a sentinel.
    pub(crate) watermark: Option<u64>,
    /// Mean received power of the segment's samples — the fleet
    /// merge's best-copy criterion. 0.0 when no samples were decoded.
    pub(crate) power: f32,
}

/// What flows over the result channel: decode outcomes, plus fleet
/// control messages that must be ordered against them (crossbeam
/// channels are FIFO per sender, and the session supervisor emits the
/// control message before any of the new instance's traffic).
pub(crate) enum ResultMsg {
    /// One segment's decode outcome.
    Segment(SegmentResult),
    /// A crashed fleet session restarted under a bumped epoch; its
    /// new instance numbers segments from `seq_base`. Single-gateway
    /// reassembly never sees this.
    SessionRestarted { gateway: GatewayId, seq_base: u64 },
}

/// A segment in flight between ingest and a decode worker, carrying
/// the [`FairnessGate`](galiot_cloud::FairnessGate) credit its session
/// holds for it (fleet mode). The credit travels *with* the segment so
/// that whoever drops the segment — the worker after decode, a
/// panicked worker's unwind, or a torn-down queue — returns the credit
/// via the guard's `Drop`, closing every leak path.
pub(crate) struct PoolItem {
    pub(crate) seg: ShippedSegment,
    pub(crate) credit: Option<galiot_cloud::CreditGuard>,
}

impl From<ShippedSegment> for PoolItem {
    fn from(seg: ShippedSegment) -> Self {
        PoolItem { seg, credit: None }
    }
}

/// A running streaming GalioT instance.
///
/// Feed raw capture chunks with [`StreamingGaliot::push_chunk`], close
/// the intake with [`StreamingGaliot::finish`], and collect decoded
/// frames from the output receiver.
pub struct StreamingGaliot {
    chunk_tx: Option<Sender<Vec<Cf32>>>,
    frames_rx: Receiver<PipelineFrame>,
    gateway: Option<thread::JoinHandle<()>>,
    /// ARQ sender thread (transport mode only).
    uplink: Option<thread::JoinHandle<()>>,
    /// ARQ receiver thread (transport mode only).
    ingress: Option<thread::JoinHandle<()>>,
    /// Transport send queue, kept to fold its high-water mark into the
    /// metrics at join time (transport mode only).
    send_queue: Option<Arc<SendQueue>>,
    workers: Vec<thread::JoinHandle<()>>,
    reassembly: Option<thread::JoinHandle<()>>,
    metrics: SharedMetrics,
    /// DSP engine counters sampled at start; the delta is folded into
    /// the metrics when the pipeline joins.
    engine_before: Option<galiot_dsp::engine::EngineStats>,
}

impl StreamingGaliot {
    /// Spawns the gateway, `config.effective_cloud_workers()` cloud
    /// decode workers, and the reassembly stage.
    ///
    /// # Panics
    /// Panics if `config` fails [`GaliotConfig::validate`] — a
    /// silently-degenerate configuration must fail at construction,
    /// not hang a live pipeline.
    pub fn start(config: GaliotConfig, registry: Registry) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid GaliotConfig: {e}");
        }
        let n_workers = config.effective_cloud_workers();
        let engine_before = galiot_dsp::engine::stats();
        let metrics = SharedMetrics::new();
        metrics.with(|m| m.cloud_workers = n_workers);

        let (chunk_tx, chunk_rx) = bounded::<Vec<Cf32>>(8);
        let (result_tx, result_rx) = unbounded::<ResultMsg>();
        // Unbounded on purpose: `finish`/`Drop` join the workers before
        // draining, so a bounded frame channel could deadlock a run
        // that decodes more frames than the bound.
        let (frames_tx, frames_rx) = unbounded::<PipelineFrame>();

        // The supervised decode pool: its intake replaces the old
        // direct worker channel (same capacity — enough queue to keep
        // every worker busy without unbounded buffering of
        // multi-hundred-kilobyte segments). `n_shards == 0`: a single
        // gateway has no affinity to preserve, any idle worker serves.
        let pool = spawn_supervised_pool(
            &config,
            registry.clone(),
            n_workers,
            2 * n_workers.max(4),
            0,
            result_tx.clone(),
            metrics.clone(),
        );
        let seg_tx = pool.intake;

        // Route the gateway→pool segment flow. Passthrough (perfect
        // links, no ARQ — the default) hands segments straight to the
        // worker channel exactly as before the transport existed.
        // Otherwise they go through the send queue → ARQ sender →
        // FaultyLink wire → ARQ receiver → worker channel.
        let transport = config.transport;
        let uplink_bps = config.emulate_backhaul.then_some(config.backhaul_bps);
        let mut uplink = None;
        let mut ingress = None;
        let mut send_queue = None;
        let shipper = if transport.is_passthrough() {
            Shipper {
                gateway: GatewayId(0),
                mode: ShipMode::Direct(seg_tx),
                base_bits: config.compression_bits,
                uplink_bps,
                metrics: metrics.clone(),
            }
        } else {
            let queue = SendQueue::new(transport.send_queue_cap);
            let (wire_tx, wire_rx) = bounded::<Vec<u8>>(64);
            let (ack_tx, ack_rx) = unbounded::<Vec<u8>>();
            let lost_tx = result_tx.clone();
            uplink = Some(spawn_arq_sender(
                queue.clone(),
                wire_tx,
                ack_rx,
                transport.arq,
                transport.data_faults,
                uplink_bps,
                metrics.clone(),
                // A declared-lost segment still needs its slot in the
                // in-order reassembly: an empty result models the gap
                // notice the sender would piggyback on later traffic.
                move |seq| {
                    galiot_trace::event(galiot_trace::EventKind::Lost, seq);
                    lost_tx
                        .send(ResultMsg::Segment(SegmentResult {
                            gateway: GatewayId(0),
                            seq,
                            frames: Vec::new(),
                            watermark: None,
                            power: 0.0,
                        }))
                        .is_ok()
                },
            ));
            ingress = Some(spawn_arq_receiver(
                wire_rx,
                ack_tx,
                seg_tx,
                transport.ack_faults,
                metrics.clone(),
            ));
            send_queue = Some(queue.clone());
            Shipper {
                gateway: GatewayId(0),
                mode: ShipMode::Transport {
                    tx: SendQueueTx::new(queue),
                    hwm: transport.degrade_hwm,
                    cap: transport.send_queue_cap,
                    min_bits: transport.min_bits,
                    result_tx: result_tx.clone(),
                },
                base_bits: config.compression_bits,
                // Serialization time is paid on the uplink thread in
                // transport mode, not in the gateway.
                uplink_bps: None,
                metrics: metrics.clone(),
            }
        };

        let gateway = spawn_gateway(
            &config,
            &registry,
            chunk_rx,
            shipper,
            result_tx.clone(),
            metrics.clone(),
        );

        // The supervisor thread stands in for the worker handles: it
        // joins its own workers on shutdown. Reassembly must observe
        // disconnection once the gateway and the pool are done — drop
        // the original result handle.
        let workers: Vec<thread::JoinHandle<()>> = vec![pool.supervisor];
        drop(result_tx);

        let reassembly = spawn_reassembly(result_rx, frames_tx, metrics.clone());

        StreamingGaliot {
            chunk_tx: Some(chunk_tx),
            frames_rx,
            gateway: Some(gateway),
            uplink,
            ingress,
            send_queue,
            workers,
            reassembly: Some(reassembly),
            metrics,
            engine_before: Some(engine_before),
        }
    }

    /// Feeds one capture chunk; blocks if the pipeline is saturated.
    pub fn push_chunk(&self, chunk: Vec<Cf32>) {
        if let Some(tx) = &self.chunk_tx {
            let _ = tx.send(chunk);
        }
    }

    /// The decoded-frame output channel. Frames arrive in gateway
    /// emission (capture) order regardless of the worker count.
    pub fn frames(&self) -> &Receiver<PipelineFrame> {
        &self.frames_rx
    }

    /// Shared metrics handle.
    pub fn metrics(&self) -> &SharedMetrics {
        &self.metrics
    }

    fn join_all(&mut self) {
        drop(self.chunk_tx.take());
        // Join order follows the data flow: the gateway closes the send
        // queue (via its `SendQueueTx`), which ends the uplink, whose
        // dropped wire sender ends the ingress, whose dropped segment
        // sender ends the workers, whose dropped result senders end the
        // reassembly.
        if let Some(g) = self.gateway.take() {
            let _ = g.join();
        }
        if let Some(u) = self.uplink.take() {
            let _ = u.join();
        }
        if let Some(i) = self.ingress.take() {
            let _ = i.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(r) = self.reassembly.take() {
            let _ = r.join();
        }
        if let Some(q) = self.send_queue.take() {
            self.metrics
                .with(|m| m.send_queue_hwm = m.send_queue_hwm.max(q.high_water_mark()));
        }
        if let Some(before) = self.engine_before.take() {
            self.metrics.with(|m| m.record_engine_stats(&before));
        }
    }

    /// Closes the intake, waits for the whole pipeline, and returns all
    /// remaining decoded frames (in capture order).
    pub fn finish(mut self) -> Vec<PipelineFrame> {
        self.join_all();
        self.frames_rx.try_iter().collect()
    }
}

impl Drop for StreamingGaliot {
    fn drop(&mut self) {
        self.join_all();
    }
}

/// Where a gateway instance begins: capture offset and sequence base
/// (both 0 for a first life; a restarted instance resumes at the
/// capture position its predecessor died at, numbering segments from
/// the new epoch's base), plus the fault-injection point.
pub(crate) struct SessionStart {
    /// Absolute capture index of the first sample this instance will
    /// receive from the chunk feed.
    pub(crate) capture_offset: usize,
    /// First sequence number this instance emits (`epoch <<
    /// EPOCH_SHIFT` in fleet failover mode).
    pub(crate) seq_base: u64,
    /// Fault injection: die immediately before emitting segment
    /// number `crash_after` (counted within this instance; 0 = silent
    /// from the first would-be segment). `None` runs to completion.
    pub(crate) crash_after: Option<u64>,
}

impl SessionStart {
    /// A first life with no fault injection.
    pub(crate) fn clean() -> Self {
        SessionStart {
            capture_offset: 0,
            seq_base: 0,
            crash_after: None,
        }
    }
}

/// How a gateway instance ended.
pub(crate) struct GatewayRun {
    /// The instance hit its injected crash point. Samples buffered but
    /// not yet flushed died with it — a rebooted radio loses its RAM.
    pub(crate) crashed: bool,
    /// Absolute capture index just past the last sample consumed from
    /// the chunk feed; a restarted instance resumes here.
    pub(crate) consumed: usize,
}

/// Why a flush stopped the gateway loop.
enum FlushStop {
    /// Downstream is gone; nothing more can be delivered.
    Downstream,
    /// The injected crash point was reached.
    Crashed,
}

/// Gateway loop body: digitize chunks into a rolling buffer, detect on
/// fixed, chunk-size-independent flush windows, edge-decode clean
/// segments and ship the rest compressed. Runs on the caller's thread
/// so a fleet session supervisor can run successive instances (crash →
/// restart) over one chunk feed.
pub(crate) fn run_gateway(
    config: &GaliotConfig,
    registry: &Registry,
    chunk_rx: &Receiver<Vec<Cf32>>,
    shipper: Shipper,
    result_tx: &Sender<ResultMsg>,
    metrics: &SharedMetrics,
    start: SessionStart,
) -> GatewayRun {
    let fs = config.fs;
    let front_end = RtlSdrFrontEnd::new(config.front_end);
    let detector = UniversalDetector::new(registry, fs, config.detect_threshold);
    let window = registry
        .max_frame_samples_for(fs, config.max_expected_payload)
        .max(1);
    let params = ExtractParams::paper(window);
    let edge = config.edge_decoding.then(|| {
        EdgeDecoder::new(registry.clone()).with_cluster_guard_s(config.edge_cluster_guard_s)
    });

    // A segment is "settled" once the buffer extends at least
    // this far past it: extraction can then neither lengthen it
    // (detections reach 2×window forward) nor merge it with a
    // later cluster (pre-guard reach). An unsettled segment is
    // deferred to the next flush — but only when its start
    // survives the drain; a cluster spanning the whole flush
    // window is emitted as-is rather than lost.
    let defer_guard = params.pre_guard + 64;
    let keep_len = 2 * window + 2 * params.pre_guard + 128;
    // Advance by two windows per flush: flush boundaries sit at
    // fixed capture offsets (multiples of the stride), so
    // segmentation is identical for any chunking of the same
    // capture.
    let stride = 2 * window;
    let flush_len = keep_len + stride;

    let mut buffer: Vec<Cf32> = Vec::new();
    let mut buffer_start = start.capture_offset; // capture index of buffer[0]
                                                 // Capture index up to which segment content has been
                                                 // emitted; a segment is emitted only when it ends past this
                                                 // line AND is finalized (or the capture is over).
    let mut emitted_until = start.capture_offset;
    let mut seq = start.seq_base;
    // Segments emitted by THIS instance (crash injection counts per
    // life, independent of the epoch folded into `seq`).
    let mut emitted_count = 0u64;

    let flush = |buffer: &[Cf32],
                 buffer_start: usize,
                 emitted_until: &mut usize,
                 seq: &mut u64,
                 emitted_count: &mut u64,
                 is_final: bool|
     -> Result<(), FlushStop> {
        let t0 = Instant::now();
        let digital = front_end.digitize(buffer);
        let detections = detector.detect(&digital, fs);
        metrics.with(|m| m.detections += detections.len());
        let buffer_end = buffer_start + buffer.len();
        for seg in extract(&digital, &detections, params) {
            let abs_start = buffer_start + seg.start;
            let abs_end = abs_start + seg.samples.len();
            if abs_end <= *emitted_until {
                continue; // fully covered by earlier output
            }
            // Defer an unsettled segment only if the next flush
            // will still contain its head — otherwise emit now.
            if !is_final
                && abs_end + defer_guard > buffer_end
                && abs_start >= buffer_start + stride + params.pre_guard
            {
                continue;
            }
            // Fault injection: the crash lands between finalizing a
            // segment and emitting it — the worst spot, since the
            // fleet can only learn of the loss through liveness.
            if start.crash_after == Some(*emitted_count) {
                metrics.with(|m| m.gateway_busy_ns += t0.elapsed().as_nanos() as u64);
                return Err(FlushStop::Crashed);
            }
            *emitted_until = abs_end;
            metrics.with(|m| m.segments += 1);
            let this_seq = *seq;
            *seq += 1;
            *emitted_count += 1;

            // Edge-first decode (paper, Sec. 4): handle clean
            // single packets locally, ship everything else.
            if let Some(edge) = &edge {
                let mut abs_seg = seg;
                abs_seg.start = abs_start;
                if let EdgeOutcome::DecodedLocally(frame) = edge.process(&abs_seg, fs) {
                    metrics.with(|m| m.gateway_busy_ns += t0.elapsed().as_nanos() as u64);
                    let power = abs_seg.samples.iter().map(|c| c.norm_sqr()).sum::<f32>()
                        / abs_seg.samples.len().max(1) as f32;
                    let ok = result_tx
                        .send(ResultMsg::Segment(SegmentResult {
                            gateway: shipper.gateway,
                            seq: this_seq,
                            frames: vec![PipelineFrame {
                                frame,
                                at_edge: true,
                                via_kill: false,
                            }],
                            watermark: Some(abs_start as u64),
                            power,
                        }))
                        .is_ok();
                    if !ok {
                        return Err(FlushStop::Downstream);
                    }
                    continue;
                }
                if !shipper.ship(this_seq, abs_start, &abs_seg.samples) {
                    return Err(FlushStop::Downstream);
                }
            } else if !shipper.ship(this_seq, abs_start, &seg.samples) {
                return Err(FlushStop::Downstream);
            }
        }
        metrics.with(|m| m.gateway_busy_ns += t0.elapsed().as_nanos() as u64);
        Ok(())
    };

    let mut consumed = start.capture_offset;
    while let Ok(chunk) = chunk_rx.recv() {
        metrics.with(|m| m.samples_processed += chunk.len() as u64);
        consumed += chunk.len();
        buffer.extend_from_slice(&chunk);
        while buffer.len() >= flush_len {
            match flush(
                &buffer[..flush_len],
                buffer_start,
                &mut emitted_until,
                &mut seq,
                &mut emitted_count,
                false,
            ) {
                Ok(()) => {}
                Err(stop) => {
                    return GatewayRun {
                        crashed: matches!(stop, FlushStop::Crashed),
                        consumed,
                    }
                }
            }
            buffer.drain(..stride);
            buffer_start += stride;
        }
    }
    if !buffer.is_empty() {
        let stopped = flush(
            &buffer,
            buffer_start,
            &mut emitted_until,
            &mut seq,
            &mut emitted_count,
            true,
        );
        if let Err(FlushStop::Crashed) = stopped {
            return GatewayRun {
                crashed: true,
                consumed,
            };
        }
    }
    GatewayRun {
        crashed: false,
        consumed,
    }
}

/// Gateway thread: [`run_gateway`] with a clean [`SessionStart`], for
/// the single-session streaming pipeline.
pub(crate) fn spawn_gateway(
    config: &GaliotConfig,
    registry: &Registry,
    chunk_rx: Receiver<Vec<Cf32>>,
    shipper: Shipper,
    result_tx: Sender<ResultMsg>,
    metrics: SharedMetrics,
) -> thread::JoinHandle<()> {
    let config = config.clone();
    let registry = registry.clone();
    spawn_thread("galiot-gateway", move || {
        run_gateway(
            &config,
            &registry,
            &chunk_rx,
            shipper,
            &result_tx,
            &metrics,
            SessionStart::clean(),
        );
    })
    .unwrap_or_else(|e| panic!("gateway startup: {e}"))
}

/// Where the gateway's compressed segments go.
pub(crate) enum ShipMode {
    /// Straight into the worker-pool channel (perfect backhaul — the
    /// historical behavior).
    Direct(Sender<PoolItem>),
    /// Into the transport send queue, with the compression ladder and
    /// lowest-power shedding driven by queue depth. The owned
    /// [`SendQueueTx`] closes the queue when the gateway thread ends,
    /// however it ends.
    Transport {
        tx: SendQueueTx,
        hwm: usize,
        cap: usize,
        min_bits: u32,
        result_tx: Sender<ResultMsg>,
    },
}

/// The gateway's shipping policy: packs a finalized segment at the
/// right compression level and hands it to whichever path is active,
/// stamped with the session's [`GatewayId`].
pub(crate) struct Shipper {
    pub(crate) gateway: GatewayId,
    pub(crate) mode: ShipMode,
    pub(crate) base_bits: u32,
    pub(crate) uplink_bps: Option<f64>,
    pub(crate) metrics: SharedMetrics,
}

impl Shipper {
    /// Packs and ships one segment. Returns `false` when downstream is
    /// gone and the gateway should stop.
    fn ship(&self, seq: u64, abs_start: usize, samples: &[Cf32]) -> bool {
        match &self.mode {
            ShipMode::Direct(tx) => {
                let shipped =
                    ShippedSegment::pack(seq, abs_start, samples, self.base_bits, COMPRESS_BLOCK)
                        .with_gateway(self.gateway);
                let ok = ship(&shipped, tx, &self.metrics, self.uplink_bps);
                if ok {
                    self.metrics
                        .with(|m| *m.shipped_by_bits.entry(self.base_bits).or_default() += 1);
                }
                ok
            }
            ShipMode::Transport {
                tx,
                hwm,
                cap,
                min_bits,
                result_tx,
            } => {
                let depth = tx.queue().len();
                let bits = degraded_bits(self.base_bits, *min_bits, depth, *hwm, *cap);
                let shipped = ShippedSegment::pack(seq, abs_start, samples, bits, COMPRESS_BLOCK)
                    .with_gateway(self.gateway);
                let wire = shipped.wire_bytes() as u64;
                let power =
                    samples.iter().map(|c| c.norm_sqr()).sum::<f32>() / samples.len().max(1) as f32;
                self.metrics.with(|m| {
                    m.shipped_segments += 1;
                    m.shipped_bytes += wire;
                    *m.shipped_by_bits.entry(bits).or_default() += 1;
                    if bits < self.base_bits {
                        m.segments_downgraded += 1;
                    }
                });
                galiot_trace::event(
                    galiot_trace::EventKind::Ship,
                    galiot_trace::tag_seq(self.gateway.0, seq),
                );
                if let Some(victim) = tx.queue().push(QueuedSegment {
                    seg: shipped,
                    power,
                }) {
                    // The shed victim's sequence slot still needs a gap
                    // notice so reassembly can advance past it.
                    self.metrics.with(|m| m.segments_shed += 1);
                    galiot_trace::event(
                        galiot_trace::EventKind::Shed,
                        galiot_trace::tag_seq(victim.seg.gateway.0, victim.seg.seq),
                    );
                    if result_tx
                        .send(ResultMsg::Segment(SegmentResult {
                            gateway: victim.seg.gateway,
                            seq: victim.seg.seq,
                            frames: Vec::new(),
                            watermark: Some(victim.seg.start as u64),
                            power: 0.0,
                        }))
                        .is_err()
                    {
                        return false;
                    }
                }
                true
            }
        }
    }
}

/// Ships one compressed segment towards the worker pool, updating the
/// backhaul metrics and the queue high-water mark. Returns `false` when
/// the pool is gone.
///
/// With backhaul emulation on, blocks for the segment's serialization
/// time on the shared uplink — serialization cannot be parallelized
/// away, which is why it happens here on the single gateway thread.
fn ship(
    shipped: &ShippedSegment,
    seg_tx: &Sender<PoolItem>,
    metrics: &SharedMetrics,
    uplink_bps: Option<f64>,
) -> bool {
    let bytes = shipped.wire_bytes();
    if let Some(bps) = uplink_bps {
        thread::sleep(Duration::from_secs_f64(bytes as f64 * 8.0 / bps));
    }
    // Mark the handoff before the send so the ship event
    // happens-before everything the receiving worker records for this
    // seq (the trace-conformance journey check relies on the order).
    galiot_trace::event(
        galiot_trace::EventKind::Ship,
        galiot_trace::tag_seq(shipped.gateway.0, shipped.seq),
    );
    if seg_tx.send(PoolItem::from(shipped.clone())).is_err() {
        return false;
    }
    let depth = seg_tx.len();
    metrics.with(|m| {
        m.shipped_segments += 1;
        m.shipped_bytes += bytes as u64;
        m.seg_queue_hwm = m.seg_queue_hwm.max(depth);
    });
    true
}

// ---------------------------------------------------------------------
// The supervised decode pool (DESIGN.md §17)
// ---------------------------------------------------------------------

/// Attempt-history names recorded in lease histories and dead-letter
/// records.
const FAIL_PANIC: &str = "panic";
const FAIL_HUNG: &str = "hung";

/// One dispatch of a segment lease to a worker incarnation.
struct Attempt {
    lease: u64,
    attempt: u32,
    seg: ShippedSegment,
}

/// What a completed decode attempt produced.
enum Outcome {
    Decoded {
        frames: Vec<PipelineFrame>,
        power: f32,
        rounds: u64,
        kills: u64,
    },
    Panicked,
}

/// A worker's report for one *completed* attempt. A hung attempt never
/// reports — the supervisor's lease deadline is the only recovery.
struct Done {
    wid: usize,
    incarnation: u64,
    lease: u64,
    attempt: u32,
    outcome: Outcome,
    busy_ns: u64,
}

/// Supervisor-side state for one worker slot: a `wid` lineage whose
/// thread is replaced (incarnation bumped) when it wedges.
struct WorkerSlot {
    incarnation: u64,
    tx: Sender<Attempt>,
    /// Set when the supervisor abandons this incarnation; an injected
    /// hang polls it so abandoned fault threads exit instead of
    /// leaking.
    abandoned: Arc<AtomicBool>,
    /// Lease currently dispatched to this incarnation, with its decode
    /// deadline.
    busy: Option<(u64, Instant)>,
    handle: Option<thread::JoinHandle<()>>,
}

/// An in-flight segment lease: the segment (kept for re-dispatch), its
/// fairness credit, and the retry ladder's position.
struct Lease {
    seg: ShippedSegment,
    credit: Option<galiot_cloud::CreditGuard>,
    /// 0-based attempt currently dispatched (or queued for dispatch).
    attempt: u32,
    /// Failure names of every spent attempt, oldest first.
    history: Vec<&'static str>,
}

/// Terminal fate of a resolved lease, kept to fence the results of
/// attempts that were still running when the lease resolved.
struct ResolvedLease {
    gateway: u16,
    quarantined: bool,
}

/// A running supervised decode pool: ship [`PoolItem`]s into `intake`;
/// results (including synthesized quarantine gap notices) come out on
/// the `result_tx` the pool was built with. Dropping every intake
/// sender drains and stops the pool.
pub(crate) struct SupervisedPool {
    pub(crate) intake: Sender<PoolItem>,
    pub(crate) supervisor: thread::JoinHandle<()>,
}

/// Spawns the decode-pool supervisor and its initial workers.
///
/// The supervisor owns dispatch: workers get private rendezvous
/// channels and only ever hold one attempt, so every in-flight decode
/// has a lease with a deadline (`config.decode_deadline_s`). On lease
/// expiry the holding worker is declared hung, abandoned, and replaced
/// (same `wid`, bumped incarnation in the thread name); the segment is
/// re-dispatched — as are panicked decodes — up to
/// `config.decode_retries` times before it is quarantined to a
/// dead-letter record and replaced by an empty result carrying its
/// watermark, so capture-order delivery never stalls.
///
/// `n_shards == 0` disables shard affinity (single-gateway streaming:
/// any idle worker takes the next segment); with shards, first
/// attempts keep the fleet's deterministic `(gateway, seq) → shard →
/// worker` mapping and only retries roam.
pub(crate) fn spawn_supervised_pool(
    config: &GaliotConfig,
    registry: Registry,
    n_workers: usize,
    intake_cap: usize,
    n_shards: usize,
    result_tx: Sender<ResultMsg>,
    metrics: SharedMetrics,
) -> SupervisedPool {
    let (intake_tx, intake_rx) = bounded::<PoolItem>(intake_cap);
    let (done_tx, done_rx) = unbounded::<Done>();
    let n_workers = n_workers.max(1);
    let sup = Supervisor {
        deadline: Duration::from_secs_f64(config.decode_deadline_s),
        retries: config.decode_retries,
        faults: config.decode_faults,
        fs: config.fs,
        cloud_params: config.cloud,
        hop_latency: config
            .emulate_backhaul
            .then(|| Duration::from_secs_f64(config.backhaul_latency_s)),
        registry,
        n_shards,
        n_workers,
        intake_cap: intake_cap.max(1),
        result_tx,
        metrics,
        done_tx,
        done_rx,
        slots: Vec::with_capacity(n_workers),
        runq: VecDeque::new(),
        prefq: (0..n_workers).map(|_| VecDeque::new()).collect(),
        leases: HashMap::new(),
        resolved: HashMap::new(),
        next_lease: 0,
    };
    let supervisor = spawn_thread("galiot-pool-supervisor", move || sup.run(intake_rx))
        .unwrap_or_else(|e| panic!("decode pool startup: {e}"));
    SupervisedPool {
        intake: intake_tx,
        supervisor,
    }
}

/// The decode-pool supervisor: owns the worker slots, the lease table,
/// and the retry/quarantine ladder. Runs on its own thread.
struct Supervisor {
    deadline: Duration,
    retries: usize,
    faults: DecodeFaultSpec,
    fs: f64,
    cloud_params: CloudParams,
    hop_latency: Option<Duration>,
    registry: Registry,
    n_shards: usize,
    n_workers: usize,
    intake_cap: usize,
    result_tx: Sender<ResultMsg>,
    metrics: SharedMetrics,
    /// Kept so `done_rx` never disconnects while slots churn.
    done_tx: Sender<Done>,
    done_rx: Receiver<Done>,
    /// Indexed by `wid`; `None` once a slot's replacement failed for
    /// good (the pool then runs degraded).
    slots: Vec<Option<WorkerSlot>>,
    /// Leases awaiting (re-)dispatch to any idle worker.
    runq: VecDeque<u64>,
    /// Shard-affine first attempts awaiting their preferred worker.
    prefq: Vec<VecDeque<u64>>,
    leases: HashMap<u64, Lease>,
    resolved: HashMap<u64, ResolvedLease>,
    next_lease: u64,
}

impl Supervisor {
    fn run(mut self, intake_rx: Receiver<PoolItem>) {
        for wid in 0..self.n_workers {
            match self.spawn_slot(wid, 0) {
                Ok(slot) => self.slots.push(Some(slot)),
                // A machine that cannot spawn one worker cannot run.
                Err(e) => panic!("decode pool startup: {e}"),
            }
        }
        let mut intake_open = true;
        loop {
            self.dispatch();
            if !intake_open && self.leases.is_empty() && self.queued() == 0 {
                break;
            }
            // One blocking wait per iteration, on whichever channel is
            // actionable. With an idle worker and queue room the next
            // useful event is an intake arrival; otherwise only worker
            // completions (or a lease deadline) can make progress.
            let accepting = intake_open && self.queued() < self.intake_cap;
            let idle_any = self.slots.iter().flatten().any(|s| s.busy.is_none());
            let busy_any = self.slots.iter().flatten().any(|s| s.busy.is_some());
            let timeout = self.next_timeout();
            if accepting && idle_any {
                // While decodes are also in flight, tick fast so their
                // completions (drained below) free workers promptly.
                let wait = if busy_any {
                    timeout.min(Duration::from_millis(25))
                } else {
                    timeout
                };
                match intake_rx.recv_timeout(wait) {
                    Ok(item) => self.admit(item),
                    Err(RecvTimeoutError::Disconnected) => intake_open = false,
                    Err(RecvTimeoutError::Timeout) => {}
                }
            } else {
                // Timeout and (unreachable — the supervisor holds a
                // done sender) disconnect both just fall through to
                // the deadline check.
                if let Ok(done) = self.done_rx.recv_timeout(timeout) {
                    self.on_done(done);
                }
            }
            // Drain completions before judging deadlines, so an
            // attempt that finished inside its lease is never declared
            // hung however late the supervisor wakes.
            while let Ok(done) = self.done_rx.try_recv() {
                self.on_done(done);
            }
            self.check_deadlines();
        }
        // Retire the current incarnations: dropping the attempt
        // senders ends their recv loops; all are idle here.
        for slot in std::mem::take(&mut self.slots).into_iter().flatten() {
            drop(slot.tx);
            if let Some(h) = slot.handle {
                let _ = h.join();
            }
        }
    }

    /// Segments queued but not yet dispatched — the admission gate
    /// mirrors the bounded worker channel the pool replaced.
    fn queued(&self) -> usize {
        self.runq.len() + self.prefq.iter().map(VecDeque::len).sum::<usize>()
    }

    /// Sleep until the earliest in-flight lease deadline (min 1 ms so
    /// an already-late deadline still yields to channel traffic), or a
    /// coarse idle tick.
    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        self.slots
            .iter()
            .flatten()
            .filter_map(|s| s.busy.map(|(_, d)| d))
            .min()
            .map(|d| {
                d.saturating_duration_since(now)
                    .max(Duration::from_millis(1))
            })
            .unwrap_or(Duration::from_millis(200))
    }

    /// Opens a lease for an admitted segment and queues its first
    /// attempt (shard-affine in fleet mode).
    fn admit(&mut self, item: PoolItem) {
        let PoolItem { seg, credit } = item;
        let id = self.next_lease;
        self.next_lease += 1;
        let pref = (self.n_shards > 0)
            .then(|| shard_for(seg.gateway, seg.seq, self.n_shards) % self.n_workers)
            .filter(|&w| self.slots[w].is_some());
        self.leases.insert(
            id,
            Lease {
                seg,
                credit,
                attempt: 0,
                history: Vec::new(),
            },
        );
        match pref {
            Some(w) => self.prefq[w].push_back(id),
            None => self.runq.push_back(id),
        }
    }

    /// Hands queued leases to idle workers: each slot serves its
    /// affinity queue first, then the global (retry) queue.
    fn dispatch(&mut self) {
        for wid in 0..self.slots.len() {
            let idle = matches!(&self.slots[wid], Some(s) if s.busy.is_none());
            if !idle {
                continue;
            }
            let Some(id) = self.prefq[wid]
                .pop_front()
                .or_else(|| self.runq.pop_front())
            else {
                continue;
            };
            self.dispatch_to(wid, id);
        }
    }

    fn dispatch_to(&mut self, wid: usize, id: u64) {
        let (attempt_no, seg) = {
            let lease = self.leases.get(&id).expect("queued lease exists");
            (lease.attempt, lease.seg.clone())
        };
        let sent = self.slots[wid]
            .as_ref()
            .expect("dispatch to a live slot")
            .tx
            .send(Attempt {
                lease: id,
                attempt: attempt_no,
                seg,
            })
            .is_ok();
        if !sent {
            // The worker died outside a decode (its channel closed
            // without a Done) — requeue and replace the incarnation.
            self.runq.push_front(id);
            self.replace_worker(wid);
            return;
        }
        let deadline = Instant::now() + self.deadline;
        self.slots[wid].as_mut().expect("slot just used").busy = Some((id, deadline));
    }

    /// Declares workers whose lease deadline has passed hung: abandon
    /// and replace the thread, then walk the lease down the retry
    /// ladder (unless a stale attempt already resolved it).
    fn check_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<(usize, u64)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(wid, s)| {
                let (id, deadline) = s.as_ref()?.busy?;
                (deadline <= now).then_some((wid, id))
            })
            .collect();
        for (wid, id) in expired {
            self.metrics.with(|m| m.decode_hung += 1);
            self.replace_worker(wid);
            if self.leases.contains_key(&id) {
                self.fail_attempt(id, FAIL_HUNG);
            }
            // else: a stale attempt of an already-resolved lease hung;
            // replacing the worker is the whole remedy.
        }
    }

    /// Abandons a slot's current incarnation and spawns its successor.
    /// The wedged thread is parked detached — the abandoned flag tells
    /// an *injected* hang to exit; a genuinely wedged decode can never
    /// be joined anyway.
    fn replace_worker(&mut self, wid: usize) {
        let Some(old) = self.slots[wid].take() else {
            return;
        };
        old.abandoned.store(true, Ordering::Release);
        drop(old.tx);
        drop(old.handle);
        match self.spawn_slot(wid, old.incarnation + 1) {
            Ok(slot) => {
                self.slots[wid] = Some(slot);
                self.metrics.with(|m| m.workers_replaced += 1);
            }
            Err(e) => {
                // Degraded but alive: the lineage ends, its affinity
                // queue drains to the survivors.
                let orphans = std::mem::take(&mut self.prefq[wid]);
                self.runq.extend(orphans);
                if self.slots.iter().all(Option::is_none) {
                    panic!("decode pool lost every worker: {e}");
                }
            }
        }
    }

    fn spawn_slot(&self, wid: usize, incarnation: u64) -> Result<WorkerSlot, SpawnError> {
        // Rendezvous-sized: the supervisor only dispatches to idle
        // incarnations, so this send never blocks and a worker never
        // buffers a second segment it could wedge on.
        let (tx, rx) = bounded::<Attempt>(1);
        let abandoned = Arc::new(AtomicBool::new(false));
        let flag = abandoned.clone();
        let done_tx = self.done_tx.clone();
        let registry = self.registry.clone();
        let cloud_params = self.cloud_params;
        let fs = self.fs;
        let hop_latency = self.hop_latency;
        let faults = self.faults;
        let deadline = self.deadline;
        let handle = spawn_thread(&format!("galiot-cloud-{wid}.{incarnation}"), move || {
            run_pool_worker(
                wid,
                incarnation,
                registry,
                cloud_params,
                fs,
                hop_latency,
                faults,
                deadline,
                rx,
                done_tx,
                flag,
            )
        })?;
        Ok(WorkerSlot {
            incarnation,
            tx,
            abandoned,
            busy: None,
            handle: Some(handle),
        })
    }

    fn on_done(&mut self, done: Done) {
        // Per-attempt accounting first: every completed attempt is one
        // pool segment whatever its fate, so the WorkerDecode span
        // histogram, per_worker_segments, and the SIC/kill counters
        // reconcile even for stale and poisoned attempts.
        let (rounds, kills) = match &done.outcome {
            Outcome::Decoded { rounds, kills, .. } => (*rounds, *kills),
            Outcome::Panicked => (0, 0),
        };
        self.metrics.with(|m| {
            *m.per_worker_segments.entry(done.wid).or_default() += 1;
            m.cloud_busy_ns += done.busy_ns;
            m.sic_rounds += rounds;
            m.kill_applications += kills;
        });
        // Free the slot — only if the report is from its current
        // incarnation (a replaced worker's late Done must not clear
        // its successor's lease).
        if let Some(slot) = self.slots[done.wid].as_mut() {
            if slot.incarnation == done.incarnation
                && slot.busy.map(|(id, _)| id) == Some(done.lease)
            {
                slot.busy = None;
            }
        }
        match done.outcome {
            Outcome::Panicked => {
                self.metrics.with(|m| m.decode_poisoned += 1);
                // Only the current attempt of a live lease drives the
                // ladder; a stale panic is already accounted against
                // the attempt that superseded it.
                let current = self
                    .leases
                    .get(&done.lease)
                    .is_some_and(|l| l.attempt == done.attempt);
                if current {
                    self.fail_attempt(done.lease, FAIL_PANIC);
                }
            }
            Outcome::Decoded { frames, power, .. } => {
                if self.leases.contains_key(&done.lease) {
                    // First success wins, whatever its attempt number
                    // (a slow attempt may beat its own replacement).
                    self.win(done.lease, done.wid, frames, power);
                } else {
                    self.stale_success(done.lease, frames.len());
                }
            }
        }
    }

    /// Terminal success: emit the `Decode` trace terminal, deliver the
    /// result, then release the fairness credit (the liveness reaper
    /// exempts credit-holding sessions, so the credit must cover the
    /// segment until its result is queued at the merge).
    fn win(&mut self, id: u64, wid: usize, frames: Vec<PipelineFrame>, power: f32) {
        let Lease { seg, credit, .. } = self.leases.remove(&id).expect("winning lease exists");
        galiot_trace::event(
            galiot_trace::EventKind::Decode,
            galiot_trace::tag_seq(seg.gateway.0, seg.seq),
        );
        self.metrics
            .with(|m| *m.per_worker_decoded.entry(wid).or_default() += frames.len());
        let _ = self.result_tx.send(ResultMsg::Segment(SegmentResult {
            gateway: seg.gateway,
            seq: seg.seq,
            frames,
            watermark: Some(seg.start as u64),
            power,
        }));
        self.resolved.insert(
            id,
            ResolvedLease {
                gateway: seg.gateway.0,
                quarantined: false,
            },
        );
        drop(credit);
    }

    /// One attempt failed (panic or hang): re-dispatch while the
    /// ladder has rungs, else quarantine.
    fn fail_attempt(&mut self, id: u64, how: &'static str) {
        let exhausted = {
            let lease = self.leases.get_mut(&id).expect("failing a live lease");
            lease.history.push(how);
            lease.attempt += 1;
            lease.attempt as usize > self.retries
        };
        if exhausted {
            self.quarantine(id);
            return;
        }
        let lease = &self.leases[&id];
        galiot_trace::event(
            galiot_trace::EventKind::Retried,
            galiot_trace::tag_seq(lease.seg.gateway.0, lease.seg.seq),
        );
        self.metrics.with(|m| m.decode_retried += 1);
        // Retries go to whoever frees up first — the preferred worker
        // may be the very one that wedged on it.
        self.runq.push_back(id);
    }

    /// Dead-letters a lease after its last attempt failed and
    /// synthesizes the empty result that keeps capture-order delivery
    /// (and the fleet liveness reaper) moving past it.
    fn quarantine(&mut self, id: u64) {
        let Lease {
            seg,
            credit,
            history,
            ..
        } = self.leases.remove(&id).expect("quarantining a live lease");
        galiot_trace::event(
            galiot_trace::EventKind::Quarantined,
            galiot_trace::tag_seq(seg.gateway.0, seg.seq),
        );
        self.metrics.with(|m| {
            m.record_quarantine(QuarantineRecord {
                gateway: seg.gateway.0,
                seq: seg.seq,
                start: seg.start as u64,
                len: seg.compressed.len,
                attempts: history,
                payload_hash: fnv1a(&seg.compressed.data),
                fault_seed: if self.faults.enabled() {
                    self.faults.seed
                } else {
                    0
                },
            });
        });
        let _ = self.result_tx.send(ResultMsg::Segment(SegmentResult {
            gateway: seg.gateway,
            seq: seg.seq,
            frames: Vec::new(),
            watermark: Some(seg.start as u64),
            power: 0.0,
        }));
        self.resolved.insert(
            id,
            ResolvedLease {
                gateway: seg.gateway.0,
                quarantined: true,
            },
        );
        drop(credit);
    }

    /// A completed attempt of an already-resolved lease. Its frames
    /// were decoded but go nowhere; if the lease was quarantined they
    /// are accounted into both `per_gateway_decoded` and
    /// `quarantined_frames` (mirroring the merge's dead-lane
    /// crash-loss arm) so the fleet identity stays closed.
    fn stale_success(&mut self, id: u64, n_frames: usize) {
        self.metrics.with(|m| m.decode_stale_results += 1);
        let Some(r) = self.resolved.get(&id) else {
            return;
        };
        if r.quarantined && n_frames > 0 {
            let gw = r.gateway;
            self.metrics.with(|m| {
                *m.per_gateway_decoded.entry(gw).or_default() += n_frames;
                m.quarantined_frames += n_frames;
            });
        }
    }
}

/// One cloud decode worker incarnation: decompress, run Algorithm 1,
/// report the outcome to the supervisor. A panicking decode is
/// contained and reported as [`Outcome::Panicked`]; an injected hang
/// reports nothing and waits (parked) to be abandoned.
#[allow(clippy::too_many_arguments)]
fn run_pool_worker(
    wid: usize,
    incarnation: u64,
    registry: Registry,
    cloud_params: CloudParams,
    fs: f64,
    hop_latency: Option<Duration>,
    faults: DecodeFaultSpec,
    deadline: Duration,
    attempt_rx: Receiver<Attempt>,
    done_tx: Sender<Done>,
    abandoned: Arc<AtomicBool>,
) {
    let decoder = CloudDecoder::with_params(registry, cloud_params);
    while let Ok(Attempt {
        lease,
        attempt,
        seg,
    }) = attempt_rx.recv()
    {
        // The hop to a remote elastic cloud instance: latency is per
        // segment and overlaps across workers — this is the wait the
        // pool exists to hide.
        if let Some(lat) = hop_latency {
            thread::sleep(lat);
        }
        let strike = faults.strikes(seg.gateway.0, seg.seq, attempt);
        if strike && faults.kind == DecodeFaultKind::Hang {
            // A wedged decode: no span, no Done — the supervisor can
            // only learn of it through the lease deadline. The thread
            // exits once abandoned so test processes don't leak it.
            while !abandoned.load(Ordering::Acquire) {
                thread::park_timeout(Duration::from_millis(5));
            }
            return;
        }
        if strike && faults.kind == DecodeFaultKind::Slow {
            // Pathologically slow: sleep well past the lease deadline.
            // By wake-up the supervisor has (almost) always declared
            // this incarnation hung and abandoned it — exit silently
            // then, before writing a span or Done that would race the
            // replacement's accounting and a drained trace. In the
            // rare schedule where the deadline check hasn't fired yet,
            // fall through and decode: the lease is still live, so the
            // late result simply wins.
            thread::sleep(deadline * 2);
            if abandoned.load(Ordering::Acquire) {
                return;
            }
        }
        let tag = galiot_trace::tag_seq(seg.gateway.0, seg.seq);
        let t0 = Instant::now();
        let decode_span = galiot_trace::span(galiot_trace::Stage::WorkerDecode, tag);
        let decoded = catch_unwind(AssertUnwindSafe(|| {
            if strike && faults.kind == DecodeFaultKind::Panic {
                panic!("injected decode fault");
            }
            let samples = seg.unpack();
            let power =
                samples.iter().map(|c| c.norm_sqr()).sum::<f32>() / samples.len().max(1) as f32;
            (power, decoder.decode(&samples, fs))
        }));
        drop(decode_span);
        let busy_ns = t0.elapsed().as_nanos() as u64;
        let outcome = match decoded {
            Ok((power, result)) => {
                let rounds = result.rounds as u64;
                let kills = result.kills as u64;
                let frames: Vec<PipelineFrame> = result
                    .frames
                    .into_iter()
                    .map(|(mut frame, how)| {
                        frame.start += seg.start;
                        let via_kill = matches!(how, Recovery::AfterKill { .. });
                        PipelineFrame {
                            frame,
                            at_edge: false,
                            via_kill,
                        }
                    })
                    .collect();
                Outcome::Decoded {
                    frames,
                    power,
                    rounds,
                    kills,
                }
            }
            Err(_) => Outcome::Panicked,
        };
        if done_tx
            .send(Done {
                wid,
                incarnation,
                lease,
                attempt,
                outcome,
                busy_ns,
            })
            .is_err()
        {
            return;
        }
    }
}

/// FNV-1a over the compressed payload bytes, for dead-letter records.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Reassembly stage: restore gateway emission order across workers,
/// drop duplicate frames decoded from overlapping segment emissions,
/// and record frame metrics exactly once.
fn spawn_reassembly(
    result_rx: Receiver<ResultMsg>,
    frames_tx: Sender<PipelineFrame>,
    metrics: SharedMetrics,
) -> thread::JoinHandle<()> {
    spawn_thread("galiot-reassembly", move || {
        let mut pending: BTreeMap<u64, Vec<PipelineFrame>> = BTreeMap::new();
        let mut next_seq = 0u64;
        // Overlapping segment emissions can decode the same frame
        // twice; drop repeats by (tech, payload, ~start). Processing
        // strictly in seq order makes the surviving set independent
        // of worker count and scheduling.
        let mut seen: Vec<(TechId, Vec<u8>, usize)> = Vec::new();
        let mut emit = |mut frames: Vec<PipelineFrame>| -> bool {
            // Algorithm 1 yields a segment's frames in SIC power
            // order; re-sort by position so delivery is capture
            // order end to end (segments already arrive in
            // ascending-start order via `seq`).
            frames.sort_by_key(|pf| pf.frame.start);
            for pf in frames {
                let dup = seen.iter().any(|(t, p, s)| {
                    *t == pf.frame.tech
                        && *p == pf.frame.payload
                        && s.abs_diff(pf.frame.start) < DEDUP_SLACK
                });
                if dup {
                    continue;
                }
                seen.push((pf.frame.tech, pf.frame.payload.clone(), pf.frame.start));
                if seen.len() > 256 {
                    seen.remove(0);
                }
                metrics.with(|m| m.record_frame(&pf.frame, pf.at_edge, pf.via_kill));
                if frames_tx.send(pf).is_err() {
                    return false;
                }
            }
            true
        };
        while let Ok(msg) = result_rx.recv() {
            let result = match msg {
                ResultMsg::Segment(r) => r,
                // Session control traffic only concerns the fleet
                // merge; the single-session reassembler never
                // restarts anything.
                ResultMsg::SessionRestarted { .. } => continue,
            };
            // A sequence number can report twice under the faulty
            // transport: a segment declared lost by the ARQ (empty
            // gap notice) can still be delivered late by a
            // reordering link and decoded. The first report wins;
            // anything at an already-emitted seq is dropped so the
            // final flush cannot replay it out of order.
            if result.seq < next_seq {
                continue;
            }
            pending.entry(result.seq).or_insert(result.frames);
            metrics.with(|m| m.reassembly_hwm = m.reassembly_hwm.max(pending.len()));
            while let Some(frames) = pending.remove(&next_seq) {
                let _span = galiot_trace::span(galiot_trace::Stage::Reassembly, next_seq);
                next_seq += 1;
                if !emit(frames) {
                    return;
                }
            }
        }
        // Producers are gone; flush whatever remains in order.
        for (seq, frames) in std::mem::take(&mut pending) {
            let _span = galiot_trace::span(galiot_trace::Stage::Reassembly, seq);
            if !emit(frames) {
                return;
            }
        }
    })
    .unwrap_or_else(|e| panic!("reassembly startup: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use galiot_channel::{compose, snr_to_noise_power, TxEvent};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FS: f64 = 1_000_000.0;

    #[test]
    fn streaming_decodes_packet_spanning_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let ev = TxEvent::new(xbee, vec![0xAB, 0xCD], 300_000);
        let np = snr_to_noise_power(15.0, 0.0);
        let cap = compose(&[ev], 1_200_000, FS, np, &mut rng);

        let sys = StreamingGaliot::start(GaliotConfig::prototype(), reg);
        for chunk in cap.samples.chunks(65_536) {
            sys.push_chunk(chunk.to_vec());
        }
        let frames = sys.finish();
        assert!(
            frames.iter().any(|f| f.frame.payload == vec![0xAB, 0xCD]),
            "frame not recovered: {} frames",
            frames.len()
        );
    }

    #[test]
    fn streaming_handles_multiple_packets() {
        let mut rng = StdRng::seed_from_u64(2);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let zwave = reg.get(TechId::ZWave).unwrap().clone();
        let events = vec![
            TxEvent::new(xbee, vec![1; 6], 100_000),
            TxEvent::new(zwave, vec![2; 6], 700_000),
        ];
        let np = snr_to_noise_power(18.0, 0.0);
        let cap = compose(&events, 1_500_000, FS, np, &mut rng);
        let sys = StreamingGaliot::start(GaliotConfig::prototype(), reg);
        for chunk in cap.samples.chunks(100_000) {
            sys.push_chunk(chunk.to_vec());
        }
        let frames = sys.finish();
        let techs: Vec<TechId> = frames.iter().map(|f| f.frame.tech).collect();
        assert!(techs.contains(&TechId::XBee), "{techs:?}");
        assert!(techs.contains(&TechId::ZWave), "{techs:?}");
        assert!(frames.len() >= 2);
    }

    #[test]
    fn finish_with_no_input_is_clean() {
        let sys = StreamingGaliot::start(GaliotConfig::prototype(), Registry::prototype());
        let frames = sys.finish();
        assert!(frames.is_empty());
    }

    #[test]
    fn frames_arrive_in_capture_order_with_many_workers() {
        let mut rng = StdRng::seed_from_u64(3);
        let reg = Registry::prototype();
        let zwave = reg.get(TechId::ZWave).unwrap().clone();
        // Well-separated packets → one segment each, in order.
        let events: Vec<TxEvent> = (0..4)
            .map(|i| TxEvent::new(zwave.clone(), vec![i as u8 + 1; 6], 150_000 + i * 600_000))
            .collect();
        let np = snr_to_noise_power(18.0, 0.0);
        let cap = compose(&events, 2_800_000, FS, np, &mut rng);
        let sys = StreamingGaliot::start(GaliotConfig::prototype().with_cloud_workers(4), reg);
        for chunk in cap.samples.chunks(50_000) {
            sys.push_chunk(chunk.to_vec());
        }
        let frames = sys.finish();
        let starts: Vec<usize> = frames.iter().map(|f| f.frame.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted, "frames out of capture order");
        assert_eq!(frames.len(), 4, "{starts:?}");
    }

    #[test]
    fn streaming_over_a_harsh_faulty_link_still_decodes() {
        use galiot_gateway::LinkFaults;
        let mut rng = StdRng::seed_from_u64(5);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let ev = TxEvent::new(xbee, vec![0x5A, 0xA5], 300_000);
        let np = snr_to_noise_power(15.0, 0.0);
        let cap = compose(&[ev], 1_200_000, FS, np, &mut rng);

        // 10% loss + corruption/duplication/reordering on both
        // directions; the ARQ must make the link transparent.
        let mut config = GaliotConfig::prototype().with_faulty_link(LinkFaults::harsh(0.1, 9));
        config.edge_decoding = false; // force everything over the wire
        let sys = StreamingGaliot::start(config, reg);
        for chunk in cap.samples.chunks(65_536) {
            sys.push_chunk(chunk.to_vec());
        }
        let metrics = sys.metrics().clone();
        let frames = sys.finish();
        assert!(
            frames.iter().any(|f| f.frame.payload == vec![0x5A, 0xA5]),
            "frame lost to the faulty link: {} frames",
            frames.len()
        );
        let m = metrics.snapshot();
        assert_eq!(m.arq_lost, 0, "{m:?}");
        assert_eq!(m.segments_shed, 0, "{m:?}");
        assert_eq!(m.arq_acked, m.shipped_segments, "{m:?}");
        assert!(m.wire_datagrams_sent > 0, "{m:?}");
        assert_eq!(
            m.shipped_segments,
            m.per_worker_segments.values().sum::<usize>(),
            "every shipped segment must reach exactly one worker: {m:?}"
        );
    }

    #[test]
    fn worker_metrics_are_populated() {
        let mut rng = StdRng::seed_from_u64(4);
        let reg = Registry::prototype();
        let xbee = reg.get(TechId::XBee).unwrap().clone();
        let zwave = reg.get(TechId::ZWave).unwrap().clone();
        let events = vec![
            TxEvent::new(xbee, vec![7; 8], 100_000),
            TxEvent::new(zwave, vec![9; 8], 600_000),
        ];
        let np = snr_to_noise_power(25.0, 0.0);
        let cap = compose(&events, 1_200_000, FS, np, &mut rng);
        // Edge decoding off → every segment must flow through the pool.
        let mut config = GaliotConfig::prototype().with_cloud_workers(2);
        config.edge_decoding = false;
        let sys = StreamingGaliot::start(config, reg);
        for chunk in cap.samples.chunks(65_536) {
            sys.push_chunk(chunk.to_vec());
        }
        let metrics = sys.metrics().clone();
        let frames = sys.finish();
        let m = metrics.snapshot();
        assert!(!frames.is_empty());
        assert_eq!(m.cloud_workers, 2);
        assert!(m.shipped_segments >= 1, "{m:?}");
        assert!(m.pool_decoded() >= 1, "{m:?}");
        assert!(m.per_worker_segments.values().sum::<usize>() >= 1);
        assert!(m.cloud_busy_ns > 0);
        assert!(m.gateway_busy_ns > 0);
    }
}
