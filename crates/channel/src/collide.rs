//! The collision composer: lays any number of transmissions — across
//! technologies, powers, offsets and impairments — onto one capture
//! buffer, exactly the "wake up and transmit" air the paper's gateway
//! listens to.

use galiot_dsp::{db_to_lin, Cf32};
use galiot_phy::registry::TechHandle;
use galiot_phy::TechId;
use rand::Rng;

use crate::impair::Impairments;
use crate::noise::add_awgn;

/// One scheduled transmission.
#[derive(Clone)]
pub struct TxEvent {
    /// The transmitting technology.
    pub tech: TechHandle,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Sample index at which the frame starts in the capture.
    pub start: usize,
    /// Received power relative to the 0 dB reference, in dB.
    pub power_db: f32,
    /// Channel impairments for this transmission.
    pub impairments: Impairments,
}

impl TxEvent {
    /// A transmission with a clean channel at reference power.
    pub fn new(tech: TechHandle, payload: Vec<u8>, start: usize) -> Self {
        TxEvent {
            tech,
            payload,
            start,
            power_db: 0.0,
            impairments: Impairments::clean(),
        }
    }

    /// Sets the relative received power in dB.
    pub fn with_power_db(mut self, db: f32) -> Self {
        self.power_db = db;
        self
    }

    /// Sets the channel impairments.
    pub fn with_impairments(mut self, imp: Impairments) -> Self {
        self.impairments = imp;
        self
    }
}

/// Ground truth for one composed transmission, kept for scoring.
#[derive(Clone, Debug)]
pub struct TruthRecord {
    /// The technology that transmitted.
    pub tech: TechId,
    /// The payload that was sent.
    pub payload: Vec<u8>,
    /// First sample of the frame in the capture.
    pub start: usize,
    /// Number of samples the frame occupies.
    pub len: usize,
    /// Received power relative to reference, dB.
    pub power_db: f32,
}

/// A composed capture plus its ground truth.
#[derive(Clone, Debug)]
pub struct Capture {
    /// The complex baseband samples at the gateway rate.
    pub samples: Vec<Cf32>,
    /// Sample rate in Hz.
    pub fs: f64,
    /// What was actually transmitted (for scoring).
    pub truth: Vec<TruthRecord>,
    /// The AWGN power added (total I+Q), linear.
    pub noise_power: f32,
}

impl Capture {
    /// Whether two or more transmissions overlap in time anywhere.
    pub fn has_collision(&self) -> bool {
        for (i, a) in self.truth.iter().enumerate() {
            for b in &self.truth[i + 1..] {
                if a.start < b.start + b.len && b.start < a.start + a.len {
                    return true;
                }
            }
        }
        false
    }
}

/// Composes transmissions into a capture of `total_len` samples at
/// rate `fs`, then adds AWGN of power `noise_power` (use
/// [`snr_to_noise_power`] to derive it from a target SNR).
///
/// # Panics
/// Panics if an event's frame would run past `total_len` (the caller
/// controls scheduling; silent truncation would corrupt ground truth).
pub fn compose<R: Rng + ?Sized>(
    events: &[TxEvent],
    total_len: usize,
    fs: f64,
    noise_power: f32,
    rng: &mut R,
) -> Capture {
    let mut samples = vec![Cf32::ZERO; total_len];
    let mut truth = Vec::with_capacity(events.len());
    for ev in events {
        let mut sig = ev.tech.modulate(&ev.payload, fs);
        ev.impairments.apply(&mut sig, fs);
        let gain = db_to_lin(ev.power_db).sqrt();
        assert!(
            ev.start + sig.len() <= total_len,
            "event at {} ({} samples) exceeds capture of {total_len}",
            ev.start,
            sig.len()
        );
        for (k, &s) in sig.iter().enumerate() {
            samples[ev.start + k] += s * gain;
        }
        truth.push(TruthRecord {
            tech: ev.tech.id(),
            payload: ev.payload.clone(),
            start: ev.start,
            len: sig.len(),
            power_db: ev.power_db + -ev.impairments.attenuation_db,
        });
    }
    if noise_power > 0.0 {
        add_awgn(&mut samples, noise_power, rng);
    }
    Capture {
        samples,
        fs,
        truth,
        noise_power,
    }
}

/// Noise power that realizes `snr_db` for a unit-power signal at
/// relative power `power_db` (signals from [`TxEvent`] are unit power
/// before the dB gain).
pub fn snr_to_noise_power(snr_db: f32, power_db: f32) -> f32 {
    db_to_lin(power_db) / db_to_lin(snr_db)
}

/// Generates a random payload of `len` bytes.
pub fn random_payload<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Vec<u8> {
    (0..len).map(|_| rng.gen()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use galiot_dsp::power::mean_power;
    use galiot_phy::lora::{LoraParams, LoraPhy};
    use galiot_phy::xbee::{XbeeParams, XbeePhy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    const FS: f64 = 1_000_000.0;

    fn lora() -> TechHandle {
        Arc::new(LoraPhy::new(LoraParams::default()))
    }

    fn xbee() -> TechHandle {
        Arc::new(XbeePhy::new(XbeeParams::default()))
    }

    #[test]
    fn single_event_composes_and_decodes() {
        let mut rng = StdRng::seed_from_u64(1);
        let ev = TxEvent::new(xbee(), vec![1, 2, 3], 5_000);
        let cap = compose(&[ev], 40_000, FS, 0.0, &mut rng);
        assert!(!cap.has_collision());
        assert_eq!(cap.truth.len(), 1);
        let frame = xbee().demodulate(&cap.samples, FS).expect("decode");
        assert_eq!(frame.payload, vec![1, 2, 3]);
        assert!(frame.start.abs_diff(5_000) <= 2);
    }

    #[test]
    fn power_scaling_is_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let ev = TxEvent::new(xbee(), vec![0xAA; 10], 0).with_power_db(-20.0);
        let cap = compose(&[ev], 30_000, FS, 0.0, &mut rng);
        let truth = &cap.truth[0];
        let p = mean_power(&cap.samples[truth.start..truth.start + truth.len]);
        assert!((p - 0.01).abs() < 0.002, "power {p}");
    }

    #[test]
    fn overlap_detection() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = TxEvent::new(xbee(), vec![1], 0);
        let b = TxEvent::new(lora(), vec![2], 1_000);
        let cap = compose(&[a, b], 200_000, FS, 0.0, &mut rng);
        assert!(cap.has_collision());

        let a = TxEvent::new(xbee(), vec![1], 0);
        let far = 150_000;
        let b = TxEvent::new(xbee(), vec![2], far);
        let cap = compose(&[a, b], 200_000, FS, 0.0, &mut rng);
        assert!(!cap.has_collision());
    }

    #[test]
    fn noise_power_is_added() {
        let mut rng = StdRng::seed_from_u64(4);
        let cap = compose(&[], 100_000, FS, 0.5, &mut rng);
        assert!((mean_power(&cap.samples) - 0.5).abs() < 0.02);
    }

    #[test]
    fn snr_noise_power_formula() {
        // 0 dB signal at 10 dB SNR -> noise 0.1.
        assert!((snr_to_noise_power(10.0, 0.0) - 0.1).abs() < 1e-6);
        // -10 dB signal at 0 dB SNR -> noise 0.1.
        assert!((snr_to_noise_power(0.0, -10.0) - 0.1).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "exceeds capture")]
    fn overrun_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let ev = TxEvent::new(xbee(), vec![0; 50], 1_000);
        let _ = compose(&[ev], 2_000, FS, 0.0, &mut rng);
    }

    #[test]
    fn random_payload_has_len() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(random_payload(17, &mut rng).len(), 17);
    }
}
