//! Traffic generation: "wake up and transmit" arrival processes.
//!
//! Low-power IoT nodes transmit intermittently without carrier sensing
//! (paper, Sec. 1), so arrivals across technologies are independent
//! Poisson processes — which is exactly what produces the
//! cross-technology collisions GalioT exists to decode.

use galiot_phy::registry::Registry;
use rand::Rng;

use crate::collide::{random_payload, TxEvent};
use crate::impair::Impairments;

/// Per-technology traffic parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrafficParams {
    /// Mean transmissions per second per node (Poisson rate).
    pub rate_hz: f64,
    /// Payload length range in bytes (inclusive).
    pub payload_len: (usize, usize),
    /// Received power range in dB (uniform).
    pub power_db: (f32, f32),
    /// Transmitter crystal error range in ppm (uniform, symmetric).
    pub max_ppm: f64,
    /// Nominal carrier for converting ppm to Hz (868 MHz band).
    pub carrier_hz: f64,
}

impl Default for TrafficParams {
    fn default() -> Self {
        TrafficParams {
            rate_hz: 2.0,
            payload_len: (4, 16),
            power_db: (0.0, 0.0),
            max_ppm: 0.5,
            carrier_hz: 868e6,
        }
    }
}

/// Draws an exponential inter-arrival time with rate `rate_hz`.
pub fn exponential_interarrival<R: Rng + ?Sized>(rate_hz: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate_hz
}

/// Generates Poisson traffic for every technology in `reg` over
/// `duration_s` seconds of capture at rate `fs`, dropping any frame
/// that would run past the capture end.
///
/// Returns events sorted by start sample. With several technologies
/// transmitting independently, time-overlapping events — collisions —
/// arise naturally at realistic rates.
pub fn generate<R: Rng + ?Sized>(
    reg: &Registry,
    params: &TrafficParams,
    duration_s: f64,
    fs: f64,
    rng: &mut R,
) -> Vec<TxEvent> {
    let total = (duration_s * fs) as usize;
    let mut events = Vec::new();
    for tech in reg.techs() {
        let mut t = exponential_interarrival(params.rate_hz, rng);
        while t < duration_s {
            let start = (t * fs) as usize;
            let len = rng
                .gen_range(params.payload_len.0..=params.payload_len.1)
                .min(tech.max_payload_len());
            let payload = random_payload(len, rng);
            let frame_len = tech.modulate(&payload, fs).len();
            if start + frame_len <= total {
                let power = if params.power_db.0 < params.power_db.1 {
                    rng.gen_range(params.power_db.0..=params.power_db.1)
                } else {
                    params.power_db.0
                };
                let ppm = rng.gen_range(-params.max_ppm..=params.max_ppm);
                let mut imp = Impairments::crystal(ppm, params.carrier_hz);
                imp.phase = rng.gen_range(0.0..std::f32::consts::TAU);
                events.push(
                    TxEvent::new(tech.clone(), payload, start)
                        .with_power_db(power)
                        .with_impairments(imp),
                );
            }
            t += exponential_interarrival(params.rate_hz, rng);
        }
    }
    events.sort_by_key(|e| e.start);
    events
}

/// Forces a deliberate collision: `n` technologies from the registry
/// transmitting with full time overlap, each at `power_db[i]` dB.
/// Starts are staggered by `stagger` samples so preambles do not align
/// exactly (the worst realistic case the paper decodes).
pub fn forced_collision<R: Rng + ?Sized>(
    reg: &Registry,
    payload_len: usize,
    power_db: &[f32],
    stagger: usize,
    base_start: usize,
    rng: &mut R,
) -> Vec<TxEvent> {
    reg.techs()
        .iter()
        .take(power_db.len())
        .enumerate()
        .map(|(i, tech)| {
            let payload = random_payload(payload_len.min(tech.max_payload_len()), rng);
            TxEvent::new(tech.clone(), payload, base_start + i * stagger).with_power_db(power_db[i])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use galiot_phy::registry::Registry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn interarrival_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| exponential_interarrival(4.0, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn generate_produces_sorted_in_bounds_events() {
        let mut rng = StdRng::seed_from_u64(2);
        let reg = Registry::prototype();
        let fs = 1e6;
        let dur = 0.5;
        let events = generate(&reg, &TrafficParams::default(), dur, fs, &mut rng);
        assert!(!events.is_empty());
        let total = (dur * fs) as usize;
        let mut last = 0;
        for ev in &events {
            assert!(ev.start >= last);
            last = ev.start;
            assert!(ev.start < total);
        }
    }

    #[test]
    fn high_rate_traffic_produces_collisions() {
        let mut rng = StdRng::seed_from_u64(3);
        let reg = Registry::prototype();
        let fs = 1e6;
        let params = TrafficParams {
            rate_hz: 8.0,
            ..Default::default()
        };
        let events = generate(&reg, &params, 1.0, fs, &mut rng);
        let cap = crate::collide::compose(&events, 1_000_000, fs, 0.0, &mut rng);
        assert!(cap.has_collision(), "expected at least one collision");
    }

    #[test]
    fn forced_collision_overlaps_fully() {
        let mut rng = StdRng::seed_from_u64(4);
        let reg = Registry::prototype();
        let events = forced_collision(&reg, 8, &[0.0, -3.0, -6.0], 500, 1_000, &mut rng);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].start, 1_000);
        assert_eq!(events[2].start, 2_000);
        assert_eq!(events[1].power_db, -3.0);
    }

    #[test]
    fn zero_width_power_range_is_constant() {
        let mut rng = StdRng::seed_from_u64(5);
        let reg = Registry::prototype();
        let params = TrafficParams {
            rate_hz: 10.0,
            power_db: (-5.0, -5.0),
            ..Default::default()
        };
        let events = generate(&reg, &params, 0.3, 1e6, &mut rng);
        assert!(events.iter().all(|e| e.power_db == -5.0));
    }
}
