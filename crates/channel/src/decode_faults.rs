//! Deterministic decode-fault injection for the cloud worker pool.
//!
//! The supervised decode pool (DESIGN.md §17) needs a way to *provoke*
//! the failures it recovers from — panicking, hanging, and pathologically
//! slow decodes — without giving up determinism. A [`DecodeFaultSpec`]
//! picks victim segments as a pure function of `(seed, gateway, seq)`,
//! so the same spec strikes the same segments on every machine and under
//! every worker interleaving, and the `GALIOT_DECODE_FAULTS` environment
//! knob sweeps the pattern with the same XOR rule as the other seed
//! knobs (see EXPERIMENTS.md).

/// What an injected decode fault does to the worker attempt it strikes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeFaultKind {
    /// The decode panics ("poison"): caught by the worker, reported as
    /// a failed attempt immediately.
    Panic,
    /// The decode wedges and never returns on its own: only the
    /// supervisor's lease deadline can recover the segment.
    Hang,
    /// The decode completes, but only after sleeping well past the
    /// lease deadline — exercising the stale-result fencing path.
    Slow,
}

impl DecodeFaultKind {
    /// Stable lower-case name (used in reports and repro bundles).
    pub fn name(self) -> &'static str {
        match self {
            DecodeFaultKind::Panic => "panic",
            DecodeFaultKind::Hang => "hang",
            DecodeFaultKind::Slow => "slow",
        }
    }
}

/// A deterministic decode-fault pattern: roughly one in [`period`]
/// segments is struck, and the first [`sticky_attempts`] decode
/// attempts of a struck segment fault before it decodes cleanly.
///
/// With `sticky_attempts <= decode_retries` a struck segment is
/// eventually delivered through the retry ladder; with
/// `sticky_attempts > decode_retries` it is quarantined. `period == 0`
/// disables injection entirely (the default configuration).
///
/// [`period`]: DecodeFaultSpec::period
/// [`sticky_attempts`]: DecodeFaultSpec::sticky_attempts
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeFaultSpec {
    /// The failure mode injected into struck attempts.
    pub kind: DecodeFaultKind,
    /// Strike density: segments whose keyed hash is `0 mod period`
    /// fault. 1 strikes every segment; 0 disables injection.
    pub period: u64,
    /// How many leading attempts of a struck segment fault before the
    /// segment decodes cleanly (min 1 for an enabled spec).
    pub sticky_attempts: u32,
    /// Pattern seed. Fold test defaults through [`decode_fault_seed`]
    /// so `GALIOT_DECODE_FAULTS` sweeps the pattern.
    pub seed: u64,
}

impl DecodeFaultSpec {
    /// The no-op spec: never strikes anything.
    pub const fn disabled() -> Self {
        DecodeFaultSpec {
            kind: DecodeFaultKind::Panic,
            period: 0,
            sticky_attempts: 1,
            seed: 0,
        }
    }

    /// Whether this spec injects anything at all.
    pub fn enabled(&self) -> bool {
        self.period > 0
    }

    /// Whether attempt number `attempt` (0-based) at decoding segment
    /// `(gateway, seq)` faults. Pure: independent of worker identity,
    /// dispatch order, and wall-clock time.
    pub fn strikes(&self, gateway: u16, seq: u64, attempt: u32) -> bool {
        if self.period == 0 || attempt >= self.sticky_attempts {
            return false;
        }
        let key = self
            .seed
            .wrapping_add((gateway as u64) << 48 ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        mix(key).is_multiple_of(self.period)
    }
}

impl Default for DecodeFaultSpec {
    fn default() -> Self {
        DecodeFaultSpec::disabled()
    }
}

/// SplitMix64 finalizer: a full-avalanche bijection, so consecutive
/// seqs land on decorrelated residues.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spec_never_strikes() {
        let s = DecodeFaultSpec::disabled();
        assert!(!s.enabled());
        for seq in 0..100 {
            assert!(!s.strikes(1, seq, 0));
        }
    }

    #[test]
    fn strikes_are_deterministic_and_sticky() {
        let s = DecodeFaultSpec {
            kind: DecodeFaultKind::Panic,
            period: 3,
            sticky_attempts: 2,
            seed: 42,
        };
        for seq in 0..200 {
            for attempt in 0..4 {
                assert_eq!(s.strikes(2, seq, attempt), s.strikes(2, seq, attempt));
                // Past the sticky window the segment decodes cleanly.
                if attempt >= 2 {
                    assert!(!s.strikes(2, seq, attempt));
                }
            }
            // Stickiness: the strike decision is per-segment, shared by
            // every attempt inside the window.
            assert_eq!(s.strikes(2, seq, 0), s.strikes(2, seq, 1));
        }
    }

    #[test]
    fn period_one_strikes_everything_and_density_tracks_period() {
        let all = DecodeFaultSpec {
            kind: DecodeFaultKind::Hang,
            period: 1,
            sticky_attempts: 1,
            seed: 7,
        };
        assert!((0..50).all(|seq| all.strikes(1, seq, 0)));

        let sparse = DecodeFaultSpec { period: 4, ..all };
        let hits = (0..4000).filter(|&seq| sparse.strikes(1, seq, 0)).count();
        // ~1000 expected; allow generous slack for hash variance.
        assert!((600..1400).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn pattern_depends_on_seed_and_gateway() {
        let a = DecodeFaultSpec {
            kind: DecodeFaultKind::Slow,
            period: 2,
            sticky_attempts: 1,
            seed: 1,
        };
        let b = DecodeFaultSpec { seed: 2, ..a };
        let differs = (0..200).any(|seq| a.strikes(1, seq, 0) != b.strikes(1, seq, 0));
        assert!(differs, "seed does not shape the pattern");
        let differs = (0..200).any(|seq| a.strikes(1, seq, 0) != a.strikes(2, seq, 0));
        assert!(differs, "gateway does not shape the pattern");
    }
}
