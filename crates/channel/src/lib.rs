//! # galiot-channel — the simulated air between IoT nodes and gateway
//!
//! The paper's prototype received real 868 MHz transmissions through an
//! RTL-SDR; this crate is the substitution (see DESIGN.md): calibrated
//! AWGN ([`noise`]), per-transmitter impairments — CFO, phase,
//! attenuation, multipath ([`impair`]) — a collision composer with
//! ground-truth records ([`collide`]), and Poisson "wake up and
//! transmit" traffic generation ([`traffic`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collide;
pub mod decode_faults;
pub mod impair;
pub mod noise;
pub mod traffic;

pub use collide::{compose, random_payload, snr_to_noise_power, Capture, TruthRecord, TxEvent};
pub use decode_faults::{DecodeFaultKind, DecodeFaultSpec};
pub use impair::Impairments;
pub use noise::{add_awgn, add_awgn_snr, awgn};
pub use traffic::{forced_collision, generate, TrafficParams};

/// The seed a test scenario should use: its fixed `default`, unless
/// `GALIOT_TEST_SEED` is set — in which case the override is
/// XOR-combined with the default, so a single environment value sweeps
/// every scenario while distinct scenarios stay distinct.
///
/// Companion to `GALIOT_FAULT_SEED` (which sweeps link-impairment
/// patterns only); both are documented in EXPERIMENTS.md. Golden-vector
/// tests deliberately do *not* use this — their seeds are pinned.
pub fn scenario_seed(default: u64) -> u64 {
    sweep_seed("GALIOT_TEST_SEED", default)
}

/// The seed a link-impairment pattern should use: its fixed `default`,
/// unless `GALIOT_FAULT_SEED` is set — XOR-combined exactly like
/// [`scenario_seed`], so one environment value sweeps every fault
/// pattern while distinct links stay decorrelated. Used by the
/// transport/fleet/failover conformance suites and `galiot-sim`; see
/// EXPERIMENTS.md.
pub fn fault_seed(default: u64) -> u64 {
    sweep_seed("GALIOT_FAULT_SEED", default)
}

/// The seed a decode-fault pattern ([`DecodeFaultSpec`]) should use:
/// its fixed `default`, unless `GALIOT_DECODE_FAULTS` is set — XOR
/// combined exactly like [`scenario_seed`], so one environment value
/// sweeps every injected panic/hang/slow pattern while distinct specs
/// stay decorrelated. Used by the failure-injection suite and
/// `galiot-sim`; see EXPERIMENTS.md.
pub fn decode_fault_seed(default: u64) -> u64 {
    sweep_seed("GALIOT_DECODE_FAULTS", default)
}

/// Shared sweep rule for the seed knobs: an unset (or unparseable)
/// variable leaves the default untouched; a set one is XORed in.
fn sweep_seed(var: &str, default: u64) -> u64 {
    match std::env::var(var).ok().and_then(|s| s.parse::<u64>().ok()) {
        Some(sweep) => sweep ^ default,
        None => default,
    }
}
