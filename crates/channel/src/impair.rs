//! Deterministic channel impairments: carrier-frequency offset, phase,
//! attenuation and multipath.
//!
//! Low-power IoT transmitters run on cheap crystals (tens of ppm) and
//! are completely asynchronous to the gateway, so every arriving packet
//! carries its own CFO, phase and power — the impairments the paper's
//! demodulators must survive.

use galiot_dsp::mix::mix_in_place;
use galiot_dsp::{db_to_lin, Cf32};

/// Impairments applied to one transmission on its way to the gateway.
#[derive(Clone, Debug)]
pub struct Impairments {
    /// Carrier frequency offset, Hz (transmitter crystal error).
    pub cfo_hz: f64,
    /// Random carrier phase, radians.
    pub phase: f32,
    /// Path attenuation in dB (>= 0 attenuates).
    pub attenuation_db: f32,
    /// Multipath: complex tap gains at 1-sample spacing; empty or
    /// `[1.0]` means a pure line-of-sight channel.
    pub multipath: Vec<Cf32>,
}

impl Default for Impairments {
    fn default() -> Self {
        Impairments {
            cfo_hz: 0.0,
            phase: 0.0,
            attenuation_db: 0.0,
            multipath: Vec::new(),
        }
    }
}

impl Impairments {
    /// A clean channel (no impairments).
    pub fn clean() -> Self {
        Self::default()
    }

    /// A typical low-cost transmitter: `ppm` crystal error at carrier
    /// `carrier_hz`, random-looking fixed phase.
    pub fn crystal(ppm: f64, carrier_hz: f64) -> Self {
        Impairments {
            cfo_hz: ppm * 1e-6 * carrier_hz,
            phase: 2.4,
            ..Default::default()
        }
    }

    /// Applies the impairments to a signal in place (sample rate `fs`).
    pub fn apply(&self, signal: &mut Vec<Cf32>, fs: f64) {
        if !self.multipath.is_empty() && self.multipath != [Cf32::ONE] {
            let taps = &self.multipath;
            let n = signal.len();
            let mut out = vec![Cf32::ZERO; n];
            for (d, &g) in taps.iter().enumerate() {
                if g == Cf32::ZERO {
                    continue;
                }
                for i in d..n {
                    out[i] += signal[i - d] * g;
                }
            }
            *signal = out;
        }
        let gain = db_to_lin(-self.attenuation_db).sqrt();
        if self.cfo_hz != 0.0 || self.phase != 0.0 {
            mix_in_place(signal, self.cfo_hz, fs, self.phase as f64);
        }
        if (gain - 1.0).abs() > 1e-9 {
            for z in signal.iter_mut() {
                *z *= gain;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galiot_dsp::mix::estimate_tone_freq;
    use galiot_dsp::power::mean_power;

    fn tone(n: usize) -> Vec<Cf32> {
        (0..n).map(|i| Cf32::cis(i as f32 * 0.1)).collect()
    }

    #[test]
    fn clean_is_identity() {
        let mut sig = tone(256);
        let orig = sig.clone();
        Impairments::clean().apply(&mut sig, 1e6);
        assert_eq!(sig, orig);
    }

    #[test]
    fn attenuation_scales_power() {
        let mut sig = tone(1000);
        Impairments {
            attenuation_db: 20.0,
            ..Default::default()
        }
        .apply(&mut sig, 1e6);
        assert!((mean_power(&sig) - 0.01).abs() < 1e-4);
    }

    #[test]
    fn cfo_shifts_frequency() {
        let fs = 1e6;
        let mut sig = vec![Cf32::ONE; 4096];
        Impairments {
            cfo_hz: 12_345.0,
            ..Default::default()
        }
        .apply(&mut sig, fs);
        let est = estimate_tone_freq(&sig, fs);
        assert!((est - 12_345.0).abs() < 100.0, "estimated {est}");
    }

    #[test]
    fn phase_rotates_samples() {
        let mut sig = vec![Cf32::ONE; 4];
        Impairments {
            phase: std::f32::consts::FRAC_PI_2,
            ..Default::default()
        }
        .apply(&mut sig, 1e6);
        for z in &sig {
            assert!(z.re.abs() < 1e-5 && (z.im - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn crystal_cfo_scales_with_ppm() {
        let imp = Impairments::crystal(20.0, 868e6);
        assert!((imp.cfo_hz - 17_360.0).abs() < 1.0);
    }

    #[test]
    fn multipath_spreads_impulse() {
        let mut sig = vec![Cf32::ZERO; 16];
        sig[4] = Cf32::ONE;
        Impairments {
            multipath: vec![Cf32::ONE, Cf32::ZERO, Cf32::from_re(0.5)],
            ..Default::default()
        }
        .apply(&mut sig, 1e6);
        assert!((sig[4].re - 1.0).abs() < 1e-6);
        assert!((sig[6].re - 0.5).abs() < 1e-6);
        assert!(sig[5].abs() < 1e-6);
    }
}
