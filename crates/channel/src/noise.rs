//! Additive white Gaussian noise, calibrated by SNR.
//!
//! The paper's evaluation stresses GalioT "in the presence of additive
//! white Gaussian noise ... with received SNRs from -30dB to 20dB"
//! (Sec. 7); this module is that knob. `rand` ships no Gaussian
//! distribution, so the Box-Muller transform is implemented here.

use galiot_dsp::{db_to_lin, Cf32};
use rand::Rng;

/// Draws one standard-normal variate via Box-Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Guard against log(0).
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Generates `len` samples of complex AWGN with total (I+Q) mean power
/// `power`.
pub fn awgn<R: Rng + ?Sized>(len: usize, power: f32, rng: &mut R) -> Vec<Cf32> {
    assert!(power >= 0.0, "noise power must be non-negative");
    let sigma = (power / 2.0).sqrt(); // per quadrature
    (0..len)
        .map(|_| Cf32::new(sigma * standard_normal(rng), sigma * standard_normal(rng)))
        .collect()
}

/// Adds complex AWGN of mean power `power` to `signal` in place.
pub fn add_awgn<R: Rng + ?Sized>(signal: &mut [Cf32], power: f32, rng: &mut R) {
    let sigma = (power / 2.0).sqrt();
    for z in signal {
        *z += Cf32::new(sigma * standard_normal(rng), sigma * standard_normal(rng));
    }
}

/// Adds AWGN such that the resulting SNR (mean signal power over noise
/// power) is `snr_db`, measuring the signal power over `active` — the
/// sample range actually occupied by signal. Returns the noise power
/// used.
///
/// Measuring over the active range matters: a mostly-silent capture
/// with one short packet would otherwise get far less noise than the
/// stated per-packet SNR implies.
pub fn add_awgn_snr<R: Rng + ?Sized>(
    signal: &mut [Cf32],
    snr_db: f32,
    active: std::ops::Range<usize>,
    rng: &mut R,
) -> f32 {
    let range = &signal[active.start.min(signal.len())..active.end.min(signal.len())];
    let sp = galiot_dsp::power::mean_power(range);
    let np = if sp > 0.0 {
        sp / db_to_lin(snr_db)
    } else {
        0.0
    };
    add_awgn(signal, np, rng);
    np
}

#[cfg(test)]
mod tests {
    use super::*;
    use galiot_dsp::power::mean_power;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn awgn_power_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(7);
        for &p in &[0.1f32, 1.0, 25.0] {
            let n = awgn(200_000, p, &mut rng);
            let measured = mean_power(&n);
            assert!(
                (measured - p).abs() / p < 0.03,
                "target {p} measured {measured}"
            );
        }
    }

    #[test]
    fn awgn_is_zero_mean_and_circular() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = awgn(200_000, 1.0, &mut rng);
        let mean: Cf32 = n.iter().copied().sum::<Cf32>() / n.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean:?}");
        let pi: f32 = n.iter().map(|z| z.re * z.re).sum::<f32>() / n.len() as f32;
        let pq: f32 = n.iter().map(|z| z.im * z.im).sum::<f32>() / n.len() as f32;
        assert!((pi - pq).abs() < 0.02, "I {pi} Q {pq}");
    }

    #[test]
    fn snr_calibration_over_active_range() {
        let mut rng = StdRng::seed_from_u64(9);
        // Packet occupies 10% of the capture.
        let mut sig = vec![Cf32::ZERO; 100_000];
        for (i, z) in sig.iter_mut().enumerate().take(55_000).skip(45_000) {
            *z = Cf32::cis(i as f32 * 0.3);
        }
        let np = add_awgn_snr(&mut sig, 10.0, 45_000..55_000, &mut rng);
        // Noise power must be 10 dB below the unit packet power.
        assert!((np - 0.1).abs() < 0.01, "noise power {np}");
    }

    #[test]
    fn zero_power_noise_is_noop() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut sig = vec![Cf32::ONE; 100];
        add_awgn(&mut sig, 0.0, &mut rng);
        assert!(sig.iter().all(|z| (*z - Cf32::ONE).abs() < 1e-9));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<f32> = (0..200_000).map(|_| standard_normal(&mut rng)).collect();
        let mean: f32 = xs.iter().sum::<f32>() / xs.len() as f32;
        let var: f32 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }
}
