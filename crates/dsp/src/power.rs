//! Power, energy and SNR measurement.
//!
//! Used to calibrate AWGN in the channel simulator, by the gateway's
//! energy detector, and by the cloud's power-ordered SIC scheduler.

use crate::num::{lin_to_db, Cf32};

/// Mean power (energy per sample) of a complex signal.
///
/// The f64 energy reduction runs on the active [`crate::kernels`]
/// backend (ULP-bounded across backends).
pub fn mean_power(signal: &[Cf32]) -> f32 {
    if signal.is_empty() {
        return 0.0;
    }
    (crate::kernels::energy_f64(signal) / signal.len() as f64) as f32
}

/// Total energy of a complex signal.
pub fn energy(signal: &[Cf32]) -> f32 {
    crate::kernels::energy_f64(signal) as f32
}

/// Peak instantaneous power (bit-exact across [`crate::kernels`]
/// backends for finite inputs).
pub fn peak_power(signal: &[Cf32]) -> f32 {
    crate::kernels::max_norm_sqr(signal)
}

/// Scales a signal in place so its mean power becomes `target`.
/// A silent signal is left untouched.
pub fn normalize_power(signal: &mut [Cf32], target: f32) {
    let p = mean_power(signal);
    if p <= 0.0 {
        return;
    }
    let k = (target / p).sqrt();
    for z in signal {
        *z *= k;
    }
}

/// Signal-to-noise ratio in dB given mean signal and noise powers.
#[inline]
pub fn snr_db(signal_power: f32, noise_power: f32) -> f32 {
    lin_to_db(signal_power / noise_power)
}

/// Sliding mean power over windows of `len` samples, output length
/// `signal.len() - len + 1`. Computed with prefix sums in f64.
pub fn sliding_power(signal: &[Cf32], len: usize) -> Vec<f32> {
    if len == 0 || signal.len() < len {
        return Vec::new();
    }
    // |z|^2 on the SIMD backend (bit-exact), then the same sequential
    // f64 prefix accumulation as ever so windows are backend-invariant.
    let mut sq = vec![0.0f32; signal.len()];
    crate::kernels::norm_sqr_into(signal, &mut sq);
    let mut prefix = Vec::with_capacity(signal.len() + 1);
    prefix.push(0.0f64);
    let mut acc = 0.0f64;
    for &v in &sq {
        acc += v as f64;
        prefix.push(acc);
    }
    (0..signal.len() - len + 1)
        .map(|i| ((prefix[i + len] - prefix[i]) / len as f64) as f32)
        .collect()
}

/// Estimates the noise floor as a low percentile of sliding window
/// powers — robust to a few packets being present in the capture.
///
/// `percentile` is in `0..=100`; the gateway uses 10.
pub fn noise_floor(signal: &[Cf32], window: usize, percentile: usize) -> f32 {
    let mut powers = sliding_power(signal, window.max(1));
    if powers.is_empty() {
        return 0.0;
    }
    let idx = (powers.len().saturating_sub(1)) * percentile.min(100) / 100;
    powers.sort_by(f32::total_cmp);
    powers[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, amp: f32) -> Vec<Cf32> {
        (0..n).map(|i| Cf32::cis(i as f32 * 0.3) * amp).collect()
    }

    #[test]
    fn mean_power_of_unit_tone_is_one() {
        assert!((mean_power(&tone(1000, 1.0)) - 1.0).abs() < 1e-4);
        assert!((mean_power(&tone(1000, 2.0)) - 4.0).abs() < 1e-3);
    }

    #[test]
    fn energy_is_power_times_len() {
        let s = tone(500, 1.5);
        assert!((energy(&s) - mean_power(&s) * 500.0).abs() < 1e-2);
    }

    #[test]
    fn normalize_hits_target() {
        let mut s = tone(256, 3.7);
        normalize_power(&mut s, 0.25);
        assert!((mean_power(&s) - 0.25).abs() < 1e-4);
    }

    #[test]
    fn normalize_ignores_silence() {
        let mut s = vec![Cf32::ZERO; 64];
        normalize_power(&mut s, 1.0);
        assert!(s.iter().all(|z| *z == Cf32::ZERO));
    }

    #[test]
    fn snr_db_values() {
        assert!((snr_db(10.0, 1.0) - 10.0).abs() < 1e-5);
        assert!((snr_db(1.0, 1.0)).abs() < 1e-5);
        assert!((snr_db(0.1, 1.0) + 10.0).abs() < 1e-5);
    }

    #[test]
    fn sliding_power_detects_burst() {
        let mut s = vec![Cf32::ZERO; 300];
        for z in s.iter_mut().take(200).skip(100) {
            *z = Cf32::ONE;
        }
        let p = sliding_power(&s, 50);
        assert!(p[0] < 1e-6);
        assert!((p[125] - 1.0).abs() < 1e-6); // window fully inside the burst
        assert!(p[240] < 0.25);
    }

    #[test]
    fn noise_floor_ignores_sparse_packets() {
        // 90% silence-ish noise at power ~0.01, one strong burst.
        let mut s: Vec<Cf32> = (0..1000).map(|i| Cf32::cis(i as f32) * 0.1).collect();
        for i in 0..50 {
            s[400 + i] = Cf32::cis(i as f32) * 10.0;
        }
        let nf = noise_floor(&s, 32, 10);
        assert!((nf - 0.01).abs() < 0.005, "floor {nf}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean_power(&[]), 0.0);
        assert!(sliding_power(&tone(5, 1.0), 10).is_empty());
        assert!(sliding_power(&tone(5, 1.0), 0).is_empty());
        assert_eq!(noise_floor(&[], 8, 10), 0.0);
    }

    #[test]
    fn peak_power_finds_max() {
        let mut s = tone(100, 1.0);
        s[42] = Cf32::new(3.0, 4.0); // |z|^2 = 25
        assert!((peak_power(&s) - 25.0).abs() < 1e-4);
    }
}
