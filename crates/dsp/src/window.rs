//! Window functions for FIR design and spectral analysis.

/// The supported window shapes.
///
/// `Kaiser(beta)` trades main-lobe width against side-lobe level via
/// its shape parameter; the fixed windows are the classic textbook
/// choices used by [`crate::fir`] for windowed-sinc design.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Window {
    /// All-ones window (no tapering).
    Rect,
    /// Hann (raised cosine) window: -31 dB first side lobe.
    Hann,
    /// Hamming window: -41 dB first side lobe.
    Hamming,
    /// Blackman window: -58 dB first side lobe.
    Blackman,
    /// Kaiser window with shape parameter beta.
    Kaiser(f32),
}

impl Window {
    /// Evaluates the window at tap `i` of an `n`-tap filter
    /// (symmetric, `i` in `0..n`).
    pub fn value(self, i: usize, n: usize) -> f32 {
        if n <= 1 {
            return 1.0;
        }
        let x = i as f32 / (n - 1) as f32; // 0..=1
        let tau = 2.0 * std::f32::consts::PI;
        match self {
            Window::Rect => 1.0,
            Window::Hann => 0.5 - 0.5 * (tau * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (tau * x).cos(),
            Window::Blackman => 0.42 - 0.5 * (tau * x).cos() + 0.08 * (2.0 * tau * x).cos(),
            Window::Kaiser(beta) => {
                let t = 2.0 * x - 1.0; // -1..=1
                bessel_i0(beta * (1.0 - t * t).max(0.0).sqrt()) / bessel_i0(beta)
            }
        }
    }

    /// Generates the full `n`-tap window.
    pub fn taps(self, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.value(i, n)).collect()
    }
}

/// Modified Bessel function of the first kind, order zero, via its
/// power series. Converges quickly for the argument range Kaiser
/// windows use (beta <= ~20).
pub fn bessel_i0(x: f32) -> f32 {
    let y = (x as f64 / 2.0) * (x as f64 / 2.0);
    let mut term = 1.0f64;
    let mut sum = 1.0f64;
    for k in 1..32 {
        term *= y / (k as f64 * k as f64);
        sum += term;
        if term < sum * 1e-12 {
            break;
        }
    }
    sum as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_symmetric() {
        let n = 65;
        for w in [
            Window::Rect,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::Kaiser(8.6),
        ] {
            let taps = w.taps(n);
            for i in 0..n {
                assert!(
                    (taps[i] - taps[n - 1 - i]).abs() < 1e-5,
                    "{w:?} asymmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn windows_peak_at_center() {
        let n = 65;
        for w in [
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::Kaiser(6.0),
        ] {
            let taps = w.taps(n);
            let mid = taps[n / 2];
            assert!((mid - 1.0).abs() < 1e-4, "{w:?} center {mid}");
            for &t in &taps {
                assert!(t <= mid + 1e-5);
                assert!(t >= -1e-6);
            }
        }
    }

    #[test]
    fn hann_endpoints_are_zero() {
        let taps = Window::Hann.taps(33);
        assert!(taps[0].abs() < 1e-6);
        assert!(taps[32].abs() < 1e-6);
    }

    #[test]
    fn rect_is_flat() {
        assert!(Window::Rect.taps(10).iter().all(|&t| t == 1.0));
    }

    #[test]
    fn kaiser_beta_zero_is_rect() {
        let taps = Window::Kaiser(0.0).taps(17);
        for &t in &taps {
            assert!((t - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn bessel_i0_known_values() {
        // I0(0) = 1, I0(1) ~ 1.2660658, I0(2) ~ 2.2795853
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-6);
        assert!((bessel_i0(1.0) - 1.266_066).abs() < 1e-4);
        assert!((bessel_i0(2.0) - 2.279_585_3).abs() < 1e-4);
    }

    #[test]
    fn degenerate_lengths() {
        assert_eq!(Window::Hann.taps(0).len(), 0);
        assert_eq!(Window::Hann.taps(1), vec![1.0]);
    }
}
