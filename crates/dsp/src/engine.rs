//! The correlation engine: cached FFT plans, precomputed correlation
//! templates, and an overlap-save streaming correlator with reusable
//! scratch buffers.
//!
//! Packet detection and SIC are correlation-bound: the gateway runs
//! one universal-preamble correlation over every capture block, and
//! the cloud runs correlation-heavy classification and kill filters on
//! every shipped segment. Before this module existed, each of those
//! calls re-planned an FFT (recomputing twiddles and bit-reversal
//! tables) and re-synthesized its template from scratch. The engine
//! memoizes both:
//!
//! * [`plan`] — a process-wide, thread-safe cache of [`Fft`] plans by
//!   size. Plans are immutable after construction (`&self` methods
//!   only), so a single `Arc<Fft>` per size is shared by every thread,
//!   including the cloud worker pool.
//! * [`Template`] — a correlation template with its forward FFT
//!   precomputed at a fixed engine block size, correlated against
//!   arbitrary-length signals by overlap-save with per-thread scratch
//!   buffers (zero steady-state allocation beyond the output).
//! * [`TemplateBank`] — an indexed set of templates, built once per
//!   registry-and-sample-rate pair by the PHY layer.
//! * [`FsCache`] — a tiny sample-rate-keyed memo used by callers that
//!   receive `fs` at call time rather than construction time.
//!
//! Hit/miss counters ([`stats`]) make the caching observable; the core
//! crate surfaces them in its `Metrics`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::fft::{next_pow2, Fft};
use crate::num::Cf32;

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

static PLAN_CACHE: OnceLock<Mutex<HashMap<usize, Arc<Fft>>>> = OnceLock::new();
static PLAN_HITS: AtomicU64 = AtomicU64::new(0);
static PLAN_MISSES: AtomicU64 = AtomicU64::new(0);
static BANK_BUILDS: AtomicU64 = AtomicU64::new(0);
static BANK_HITS: AtomicU64 = AtomicU64::new(0);

/// Returns the shared FFT plan of size `n`, planning it on first use.
///
/// Subsequent calls for the same size — from any thread — return the
/// same `Arc`, so twiddle and bit-reversal tables are computed once per
/// process rather than once per correlation.
///
/// # Panics
/// Panics if `n` is zero or not a power of two (same contract as
/// [`Fft::new`]).
pub fn plan(n: usize) -> Arc<Fft> {
    let cache = PLAN_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    {
        let map = cache.lock().expect("plan cache poisoned");
        if let Some(p) = map.get(&n) {
            PLAN_HITS.fetch_add(1, Ordering::Relaxed);
            return p.clone();
        }
    }
    // Plan outside the lock: planning a large FFT is exactly the cost
    // this cache exists to hide, and other sizes should not wait on it.
    let fresh = Arc::new(Fft::new(n));
    let mut map = cache.lock().expect("plan cache poisoned");
    let entry = map.entry(n).or_insert_with(|| fresh);
    PLAN_MISSES.fetch_add(1, Ordering::Relaxed);
    entry.clone()
}

/// A snapshot of the engine's cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Plan-cache lookups that found an existing plan.
    pub plan_hits: u64,
    /// Plan-cache lookups that had to plan a new FFT.
    pub plan_misses: u64,
    /// Template banks synthesized from scratch.
    pub bank_builds: u64,
    /// Template-bank lookups served from a cache.
    pub bank_hits: u64,
}

impl EngineStats {
    /// Counter-wise difference `self - earlier` (saturating), for
    /// attributing cache activity to one pipeline run.
    pub fn since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            plan_hits: self.plan_hits.saturating_sub(earlier.plan_hits),
            plan_misses: self.plan_misses.saturating_sub(earlier.plan_misses),
            bank_builds: self.bank_builds.saturating_sub(earlier.bank_builds),
            bank_hits: self.bank_hits.saturating_sub(earlier.bank_hits),
        }
    }
}

/// Snapshots the process-wide cache counters.
pub fn stats() -> EngineStats {
    EngineStats {
        plan_hits: PLAN_HITS.load(Ordering::Relaxed),
        plan_misses: PLAN_MISSES.load(Ordering::Relaxed),
        bank_builds: BANK_BUILDS.load(Ordering::Relaxed),
        bank_hits: BANK_HITS.load(Ordering::Relaxed),
    }
}

/// Records one template-bank build (called by bank caches).
pub fn note_bank_build() {
    BANK_BUILDS.fetch_add(1, Ordering::Relaxed);
}

/// Records one template-bank cache hit (called by bank caches).
pub fn note_bank_hit() {
    BANK_HITS.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Per-thread scratch
// ---------------------------------------------------------------------------

/// Reusable per-thread work buffers for the overlap-save correlator.
#[derive(Default)]
struct Scratch {
    /// FFT work block (signal block in, correlation block out).
    block: Vec<Cf32>,
    /// Raw correlation output for normalized variants.
    raw: Vec<Cf32>,
    /// Per-sample `|z|^2` staging for the prefix-sum pass.
    sq: Vec<f32>,
    /// Prefix sums for sliding-window energy.
    prefix: Vec<f64>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

// ---------------------------------------------------------------------------
// Templates
// ---------------------------------------------------------------------------

/// A correlation template with a precomputed conjugated spectrum.
///
/// Correlating against a `Template` runs overlap-save at the
/// template's block size: the template's forward FFT is computed once
/// at construction, and each correlation call only transforms signal
/// blocks (two cached-plan FFTs per block, no allocation beyond the
/// output vector).
#[derive(Clone, Debug)]
pub struct Template {
    waveform: Vec<Cf32>,
    /// `sum |h|^2` — reused by normalized correlation.
    energy: f32,
    /// Overlap-save FFT size (power of two, `>= waveform.len()`).
    fft_len: usize,
    /// `conj(FFT(h zero-padded to fft_len))`.
    spectrum_conj: Vec<Cf32>,
}

/// Picks the engine's default overlap-save block for a template of
/// `m` samples: small enough that short captures don't pay for a
/// giant transform, large enough that the per-block overlap (`m - 1`
/// wasted samples) stays a minor fraction.
fn default_block(m: usize) -> usize {
    next_pow2(4 * m.max(1)).max(256)
}

impl Template {
    /// Builds a template with the engine's default block size.
    pub fn new(h: &[Cf32]) -> Self {
        Self::with_block(h, default_block(h.len()))
    }

    /// Builds a template with an explicit overlap-save FFT size.
    ///
    /// # Panics
    /// Panics if `fft_len` is not a power of two at least as large as
    /// the template (unless the template is empty).
    pub fn with_block(h: &[Cf32], fft_len: usize) -> Self {
        if h.is_empty() {
            return Template {
                waveform: Vec::new(),
                energy: 0.0,
                fft_len: 1,
                spectrum_conj: Vec::new(),
            };
        }
        assert!(
            fft_len.is_power_of_two() && fft_len >= h.len(),
            "block size {fft_len} invalid for template of {} samples",
            h.len()
        );
        let mut spectrum = vec![Cf32::ZERO; fft_len];
        spectrum[..h.len()].copy_from_slice(h);
        plan(fft_len).forward(&mut spectrum);
        for z in spectrum.iter_mut() {
            *z = z.conj();
        }
        Template {
            waveform: h.to_vec(),
            energy: h.iter().map(|z| z.norm_sqr()).sum(),
            fft_len,
            spectrum_conj: spectrum,
        }
    }

    /// The template waveform.
    pub fn waveform(&self) -> &[Cf32] {
        &self.waveform
    }

    /// Template length in samples.
    pub fn len(&self) -> usize {
        self.waveform.len()
    }

    /// Whether the template is empty.
    pub fn is_empty(&self) -> bool {
        self.waveform.is_empty()
    }

    /// Template energy `sum |h|^2`.
    pub fn energy(&self) -> f32 {
        self.energy
    }

    /// Sliding cross-correlation of `x` against this template
    /// (identical semantics to [`crate::corr::xcorr_fft`]): overlap-save
    /// with the cached plan, writing into `out`.
    pub fn xcorr_into(&self, x: &[Cf32], out: &mut Vec<Cf32>) {
        out.clear();
        SCRATCH.with(|s| {
            let scratch = &mut *s.borrow_mut();
            self.xcorr_scratch(x, &mut scratch.block, out);
        });
    }

    /// [`Template::xcorr_into`], returning a fresh vector.
    pub fn xcorr(&self, x: &[Cf32]) -> Vec<Cf32> {
        let mut out = Vec::new();
        self.xcorr_into(x, &mut out);
        out
    }

    /// Overlap-save core against a caller-supplied block buffer.
    fn xcorr_scratch(&self, x: &[Cf32], block: &mut Vec<Cf32>, out: &mut Vec<Cf32>) {
        let m = self.waveform.len();
        if m == 0 || x.len() < m {
            return;
        }
        let out_len = x.len() - m + 1;
        out.reserve(out_len);
        let n = self.fft_len;
        let step = n - m + 1;
        let plan = plan(n);
        block.resize(n, Cf32::ZERO);
        let mut pos = 0usize;
        while pos < out_len {
            let take = (x.len() - pos).min(n);
            block[..take].copy_from_slice(&x[pos..pos + take]);
            for z in block[take..].iter_mut() {
                *z = Cf32::ZERO;
            }
            plan.forward(block);
            // Correlation theorem: corr = IFFT(FFT(x) * conj(FFT(h))).
            // Pointwise spectral multiply on the SIMD backend — bit-
            // exact across backends, so detection output is too.
            crate::kernels::mul_in_place(block, &self.spectrum_conj);
            plan.inverse(block);
            // Outputs 0..step of a block are full-overlap correlations;
            // later ones wrap circularly and belong to the next block.
            let emit = step.min(out_len - pos);
            out.extend_from_slice(&block[..emit]);
            pos += emit;
        }
    }

    /// Normalized sliding correlation magnitude in `[0, 1]` (identical
    /// semantics to [`crate::corr::xcorr_normalized`]), using the
    /// precomputed template energy and per-thread scratch.
    pub fn xcorr_normalized(&self, x: &[Cf32]) -> Vec<f32> {
        let m = self.waveform.len();
        if m == 0 || x.len() < m {
            return Vec::new();
        }
        SCRATCH.with(|s| {
            let scratch = &mut *s.borrow_mut();
            let Scratch {
                block,
                raw,
                sq,
                prefix,
            } = scratch;
            raw.clear();
            self.xcorr_scratch(x, block, raw);
            // Sliding window energy of x via prefix sums: |z|^2 on the
            // SIMD backend (bit-exact), then the same sequential f64
            // accumulation as ever (f64 to avoid drift).
            sq.resize(x.len(), 0.0);
            crate::kernels::norm_sqr_into(x, sq);
            prefix.clear();
            prefix.reserve(x.len() + 1);
            prefix.push(0.0f64);
            let mut acc = 0.0f64;
            for &v in sq.iter() {
                acc += v as f64;
                prefix.push(acc);
            }
            let mut out = Vec::with_capacity(raw.len());
            let max_win = (0..raw.len())
                .map(|i| prefix[i + m] - prefix[i])
                .fold(0.0f64, f64::max);
            let floor = (max_win * 1e-9).max(1e-30);
            for (i, r) in raw.iter().enumerate() {
                let win = prefix[i + m] - prefix[i];
                if win <= floor {
                    out.push(0.0);
                } else {
                    let denom = (win * self.energy as f64).sqrt() as f32;
                    out.push((r.abs() / denom).min(1.0));
                }
            }
            out
        })
    }
}

/// One-shot cached-plan correlation for callers without a persistent
/// [`Template`] (the engine-backed implementation of
/// [`crate::corr::xcorr_fft`]).
///
/// The template spectrum is still computed per call (there is nothing
/// to memoize it against), but the FFT plans come from the cache and
/// the signal side runs overlap-save, so long captures use a few small
/// transforms instead of one enormous freshly-planned one.
pub fn xcorr_cached(x: &[Cf32], h: &[Cf32]) -> Vec<Cf32> {
    if h.is_empty() || x.len() < h.len() {
        return Vec::new();
    }
    // For short signals a single block the size of the whole problem
    // beats overlap-save's per-block overhead.
    let single = next_pow2(x.len() + h.len());
    let block = default_block(h.len()).min(single);
    Template::with_block(h, block).xcorr(x)
}

// ---------------------------------------------------------------------------
// Template banks
// ---------------------------------------------------------------------------

/// An indexed set of [`Template`]s sharing one sample rate.
///
/// The PHY registry builds one bank per `(registry, fs)` pair — every
/// technology's preamble synthesized and FFT'd exactly once — and the
/// gateway detectors, edge decoder and cloud classifier all correlate
/// through it. Entries are in the caller's insertion order with a
/// caller-chosen `u32` key (the technology id).
#[derive(Clone, Debug)]
pub struct TemplateBank {
    fs: f64,
    keys: Vec<u32>,
    templates: Vec<Template>,
}

impl TemplateBank {
    /// Builds a bank from `(key, waveform)` pairs at sample rate `fs`.
    pub fn build(fs: f64, items: impl IntoIterator<Item = (u32, Vec<Cf32>)>) -> Self {
        let mut keys = Vec::new();
        let mut templates = Vec::new();
        for (key, wf) in items {
            keys.push(key);
            templates.push(Template::new(&wf));
        }
        TemplateBank {
            fs,
            keys,
            templates,
        }
    }

    /// The sample rate the bank's waveforms were synthesized for.
    pub fn fs(&self) -> f64 {
        self.fs
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// The caller-assigned key of entry `i`.
    pub fn key(&self, i: usize) -> u32 {
        self.keys[i]
    }

    /// The template at index `i`.
    pub fn template(&self, i: usize) -> &Template {
        &self.templates[i]
    }

    /// The waveform of entry `i`.
    pub fn waveform(&self, i: usize) -> &[Cf32] {
        self.templates[i].waveform()
    }
}

// ---------------------------------------------------------------------------
// Sample-rate-keyed cache
// ---------------------------------------------------------------------------

/// A tiny thread-safe memo keyed by sample rate.
///
/// Detectors receive `fs` per call rather than at construction, so
/// they cannot precompute at build time; an `FsCache` lets them build
/// once per distinct rate (deployments use one, tests a handful).
/// Clones share the underlying cache — a registry cloned into the
/// gateway, edge and cloud components therefore builds its template
/// bank once for all three.
#[derive(Debug)]
pub struct FsCache<T>(Arc<Mutex<FsEntries<T>>>);

/// The entries of an [`FsCache`]: `(fs.to_bits(), value)` pairs.
type FsEntries<T> = Vec<(u64, Arc<T>)>;

impl<T> Clone for FsCache<T> {
    fn clone(&self) -> Self {
        FsCache(self.0.clone())
    }
}

impl<T> Default for FsCache<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FsCache<T> {
    /// An empty cache.
    pub fn new() -> Self {
        FsCache(Arc::new(Mutex::new(Vec::new())))
    }

    /// Returns the cached value for `fs`, building it with `make` on
    /// first use. Records bank hit/build counters.
    pub fn get_or(&self, fs: f64, make: impl FnOnce() -> T) -> Arc<T> {
        let key = fs.to_bits();
        {
            let slots = self.0.lock().expect("fs cache poisoned");
            if let Some((_, v)) = slots.iter().find(|(k, _)| *k == key) {
                note_bank_hit();
                return v.clone();
            }
        }
        // Build outside the lock; racing builders agree on the result
        // (construction is deterministic), first insert wins.
        note_bank_build();
        let fresh = Arc::new(make());
        let mut slots = self.0.lock().expect("fs cache poisoned");
        if let Some((_, v)) = slots.iter().find(|(k, _)| *k == key) {
            return v.clone();
        }
        slots.push((key, fresh.clone()));
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corr::xcorr_direct;

    fn wave(n: usize, f: f32) -> Vec<Cf32> {
        (0..n).map(|i| Cf32::cis(i as f32 * f)).collect()
    }

    #[test]
    fn plans_are_shared_and_counted() {
        let before = stats();
        let a = plan(1 << 14);
        let b = plan(1 << 14);
        assert!(Arc::ptr_eq(&a, &b));
        let after = stats().since(&before);
        assert!(after.plan_hits >= 1);
    }

    #[test]
    fn template_xcorr_matches_direct() {
        let x = wave(1000, 0.7);
        let h = wave(37, 1.3);
        let t = Template::new(&h);
        let a = xcorr_direct(&x, &h);
        let b = t.xcorr(&x);
        assert_eq!(a.len(), b.len());
        for (p, q) in a.iter().zip(b.iter()) {
            assert!((*p - *q).abs() < 2e-3, "{p:?} vs {q:?}");
        }
    }

    #[test]
    fn overlap_save_spans_many_blocks() {
        // Force several overlap-save blocks: template 33, block 256.
        let x = wave(5_000, 0.31);
        let h = wave(33, 0.9);
        let t = Template::with_block(&h, 256);
        let a = xcorr_direct(&x, &h);
        let b = t.xcorr(&x);
        assert_eq!(a.len(), b.len());
        for (p, q) in a.iter().zip(b.iter()) {
            assert!((*p - *q).abs() < 2e-3);
        }
    }

    #[test]
    fn template_normalized_finds_embedded_copy() {
        let h = wave(64, 0.37);
        let mut x = vec![Cf32::ZERO; 700];
        for (k, &v) in h.iter().enumerate() {
            x[300 + k] = v * 2.0;
        }
        let t = Template::new(&h);
        let ncc = t.xcorr_normalized(&x);
        let (idx, val) = ncc
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &v)| (i, v))
            .unwrap();
        assert_eq!(idx, 300);
        assert!(val > 0.999);
    }

    #[test]
    fn degenerate_templates_are_safe() {
        let t = Template::new(&[]);
        assert!(t.is_empty());
        assert!(t.xcorr(&wave(10, 0.5)).is_empty());
        assert!(t.xcorr_normalized(&wave(10, 0.5)).is_empty());
        // Signal shorter than template.
        let t = Template::new(&wave(8, 0.5));
        assert!(t.xcorr(&wave(4, 0.5)).is_empty());
        // Signal exactly template-length: one output, the dot product.
        let h = wave(16, 0.23);
        let one = Template::new(&h).xcorr(&h);
        assert_eq!(one.len(), 1);
        assert!((one[0].abs() - 16.0).abs() < 1e-2);
    }

    #[test]
    fn bank_preserves_order_and_keys() {
        let bank = TemplateBank::build(1e6, vec![(7u32, wave(10, 0.1)), (9u32, wave(20, 0.2))]);
        assert_eq!(bank.len(), 2);
        assert_eq!(bank.key(0), 7);
        assert_eq!(bank.key(1), 9);
        assert_eq!(bank.waveform(1).len(), 20);
        assert_eq!(bank.fs(), 1e6);
    }

    #[test]
    fn fs_cache_builds_once_per_rate() {
        let cache: FsCache<usize> = FsCache::new();
        let mut builds = 0usize;
        for &fs in &[1e6, 1e6, 2e6, 1e6] {
            let _ = cache.get_or(fs, || {
                builds += 1;
                builds
            });
        }
        assert_eq!(builds, 2, "one build per distinct rate");
        // Clones share the cache.
        let clone = cache.clone();
        let v = clone.get_or(1e6, || unreachable!("must be cached"));
        assert_eq!(*v, 1);
    }
}
