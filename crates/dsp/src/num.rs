//! Complex arithmetic and decibel helpers.
//!
//! GalioT operates on complex baseband I/Q samples throughout. Rather
//! than pulling in an external numerics crate, the substrate defines a
//! minimal, `Copy`, `#[repr(C)]` single-precision complex type with
//! exactly the operations the rest of the workspace needs. Keeping the
//! type local also lets buffers of samples be reinterpreted as `[f32]`
//! pairs when quantising for the RTL-SDR front-end model.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A single-precision complex number: one baseband I/Q sample.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Cf32 {
    /// In-phase (real) component.
    pub re: f32,
    /// Quadrature (imaginary) component.
    pub im: f32,
}

impl Cf32 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Cf32 = Cf32 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Cf32 = Cf32 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Cf32 = Cf32 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Cf32 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f32) -> Self {
        Cf32 { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r * e^{i theta}`.
    #[inline]
    pub fn from_polar(r: f32, theta: f32) -> Self {
        let (s, c) = theta.sin_cos();
        Cf32 {
            re: r * c,
            im: r * s,
        }
    }

    /// `e^{i theta}`: a unit phasor at angle `theta` radians.
    #[inline]
    pub fn cis(theta: f32) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Cf32 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|^2 = re^2 + im^2`.
    ///
    /// Prefer this over [`Cf32::abs`] in hot loops and power sums: it
    /// avoids the square root.
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f32 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f32) -> Self {
        Cf32 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns `true` if either component is NaN or infinite.
    #[inline]
    pub fn is_degenerate(self) -> bool {
        !self.re.is_finite() || !self.im.is_finite()
    }
}

impl fmt::Debug for Cf32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl fmt::Display for Cf32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for Cf32 {
    type Output = Cf32;
    #[inline]
    fn add(self, rhs: Cf32) -> Cf32 {
        Cf32 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Cf32 {
    type Output = Cf32;
    #[inline]
    fn sub(self, rhs: Cf32) -> Cf32 {
        Cf32 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Cf32 {
    type Output = Cf32;
    #[inline]
    fn mul(self, rhs: Cf32) -> Cf32 {
        Cf32 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for Cf32 {
    type Output = Cf32;
    #[inline]
    fn div(self, rhs: Cf32) -> Cf32 {
        let d = rhs.norm_sqr();
        Cf32 {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Cf32 {
    type Output = Cf32;
    #[inline]
    fn neg(self) -> Cf32 {
        Cf32 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Mul<f32> for Cf32 {
    type Output = Cf32;
    #[inline]
    fn mul(self, k: f32) -> Cf32 {
        self.scale(k)
    }
}

impl Mul<Cf32> for f32 {
    type Output = Cf32;
    #[inline]
    fn mul(self, z: Cf32) -> Cf32 {
        z.scale(self)
    }
}

impl Div<f32> for Cf32 {
    type Output = Cf32;
    #[inline]
    fn div(self, k: f32) -> Cf32 {
        Cf32 {
            re: self.re / k,
            im: self.im / k,
        }
    }
}

impl AddAssign for Cf32 {
    #[inline]
    fn add_assign(&mut self, rhs: Cf32) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Cf32 {
    #[inline]
    fn sub_assign(&mut self, rhs: Cf32) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Cf32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Cf32) {
        *self = *self * rhs;
    }
}

impl MulAssign<f32> for Cf32 {
    #[inline]
    fn mul_assign(&mut self, k: f32) {
        self.re *= k;
        self.im *= k;
    }
}

impl DivAssign<f32> for Cf32 {
    #[inline]
    fn div_assign(&mut self, k: f32) {
        self.re /= k;
        self.im /= k;
    }
}

impl Sum for Cf32 {
    fn sum<I: Iterator<Item = Cf32>>(iter: I) -> Cf32 {
        iter.fold(Cf32::ZERO, |a, b| a + b)
    }
}

impl From<f32> for Cf32 {
    #[inline]
    fn from(re: f32) -> Cf32 {
        Cf32::from_re(re)
    }
}

/// Converts a linear power ratio to decibels: `10 log10(x)`.
///
/// Returns `f32::NEG_INFINITY` for non-positive input, which composes
/// correctly with comparisons against thresholds.
#[inline]
pub fn lin_to_db(x: f32) -> f32 {
    if x > 0.0 {
        10.0 * x.log10()
    } else {
        f32::NEG_INFINITY
    }
}

/// Converts decibels to a linear power ratio: `10^{x/10}`.
#[inline]
pub fn db_to_lin(db: f32) -> f32 {
    10f32.powf(db / 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Cf32::new(1.5, -2.25);
        let b = Cf32::new(-0.5, 4.0);
        assert_eq!(a + b - b, a);
    }

    #[test]
    fn mul_matches_hand_computation() {
        // (1+2i)(3+4i) = 3 + 4i + 6i + 8i^2 = -5 + 10i
        let p = Cf32::new(1.0, 2.0) * Cf32::new(3.0, 4.0);
        assert!(close(p.re, -5.0) && close(p.im, 10.0));
    }

    #[test]
    fn div_is_mul_inverse() {
        let a = Cf32::new(2.0, -3.0);
        let b = Cf32::new(0.5, 1.5);
        let q = (a * b) / b;
        assert!(close(q.re, a.re) && close(q.im, a.im));
    }

    #[test]
    fn conj_mul_is_norm_sqr() {
        let z = Cf32::new(3.0, -4.0);
        let p = z * z.conj();
        assert!(close(p.re, 25.0) && close(p.im, 0.0));
        assert!(close(z.norm_sqr(), 25.0));
        assert!(close(z.abs(), 5.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Cf32::from_polar(2.0, 0.7);
        assert!(close(z.abs(), 2.0));
        assert!(close(z.arg(), 0.7));
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let z = Cf32::cis(k as f32 * 0.5);
            assert!(close(z.abs(), 1.0));
        }
    }

    #[test]
    fn db_conversions_roundtrip() {
        assert!(close(lin_to_db(db_to_lin(-13.0)), -13.0));
        assert!(close(db_to_lin(0.0), 1.0));
        assert!(close(lin_to_db(100.0), 20.0));
        assert_eq!(lin_to_db(0.0), f32::NEG_INFINITY);
    }

    #[test]
    fn sum_accumulates() {
        let s: Cf32 = (0..4).map(|k| Cf32::new(k as f32, 1.0)).sum();
        assert_eq!(s, Cf32::new(6.0, 4.0));
    }

    #[test]
    fn degenerate_detection() {
        assert!(Cf32::new(f32::NAN, 0.0).is_degenerate());
        assert!(Cf32::new(0.0, f32::INFINITY).is_degenerate());
        assert!(!Cf32::new(1.0, -1.0).is_degenerate());
    }
}
