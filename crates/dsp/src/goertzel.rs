//! Goertzel single-bin DFT.
//!
//! The FSK demodulators compare energy at the mark and space tones for
//! each symbol window; Goertzel evaluates those two bins directly at a
//! fraction of a full FFT's cost and — unlike an FFT — at arbitrary
//! (non-bin-aligned) frequencies.

use crate::num::Cf32;

/// Complex Goertzel: evaluates the DTFT of `window` at `freq_hz`
/// (positive or negative) for sample rate `fs`, returning the complex
/// correlation `sum_n x[n] e^{-i 2 pi f n / fs}`.
pub fn goertzel(window: &[Cf32], freq_hz: f64, fs: f64) -> Cf32 {
    let w = 2.0 * std::f64::consts::PI * freq_hz / fs;
    let coeff = 2.0 * w.cos();
    let (mut s_prev, mut s_prev2) = (Cf32::ZERO, Cf32::ZERO);
    for &x in window {
        let s = x + s_prev * coeff as f32 - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    // Finalization: selecting the e^{+jw} pole of the resonator gives
    // y[N-1] = s1 - e^{-jw} s2 = e^{jw(N-1)} X(w); the trailing rotation
    // restores absolute phase, which cancellation relies on.
    let x = s_prev - s_prev2 * Cf32::cis(-w as f32);
    let n = window.len() as f64;
    x * Cf32::cis((-w * (n - 1.0)) as f32)
}

/// Energy (squared magnitude) of the DTFT of `window` at `freq_hz`.
pub fn goertzel_power(window: &[Cf32], freq_hz: f64, fs: f64) -> f32 {
    goertzel(window, freq_hz, fs).norm_sqr()
}

/// Binary FSK decision for one symbol window: returns `true` (mark /
/// bit 1) if the tone at `f_mark` carries more energy than `f_space`.
pub fn fsk_decide(window: &[Cf32], f_mark: f64, f_space: f64, fs: f64) -> bool {
    goertzel_power(window, f_mark, fs) >= goertzel_power(window, f_space, fs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::mix;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<Cf32> {
        mix(&vec![Cf32::ONE; n], freq, fs)
    }

    #[test]
    fn detects_matching_tone() {
        let fs = 1e6;
        let sig = tone(25e3, fs, 256);
        let on = goertzel_power(&sig, 25e3, fs);
        let off = goertzel_power(&sig, -25e3, fs);
        assert!(on > 100.0 * off, "on {on} off {off}");
    }

    #[test]
    fn magnitude_matches_direct_dtft() {
        let fs = 1e6;
        let f = 37_500.0;
        let sig: Vec<Cf32> = (0..200)
            .map(|i| Cf32::new((i as f32 * 0.21).sin(), (i as f32 * 0.13).cos()))
            .collect();
        let direct: Cf32 = sig
            .iter()
            .enumerate()
            .map(|(n, &x)| x * Cf32::cis((-2.0 * std::f64::consts::PI * f * n as f64 / fs) as f32))
            .sum();
        let g = goertzel(&sig, f, fs);
        assert!((g.abs() - direct.abs()).abs() < 1e-2 * direct.abs().max(1.0));
        // Phase must match too (within numeric tolerance).
        assert!(
            (g - direct).abs() < 1e-2 * direct.abs().max(1.0),
            "{g:?} vs {direct:?}"
        );
    }

    #[test]
    fn works_at_negative_frequency() {
        let fs = 1e6;
        let sig = tone(-40e3, fs, 512);
        assert!(goertzel_power(&sig, -40e3, fs) > 50.0 * goertzel_power(&sig, 40e3, fs));
    }

    #[test]
    fn fsk_decision_separates_tones() {
        let fs = 200e3;
        let mark = tone(20e3, fs, 100);
        let space = tone(-20e3, fs, 100);
        assert!(fsk_decide(&mark, 20e3, -20e3, fs));
        assert!(!fsk_decide(&space, 20e3, -20e3, fs));
    }

    #[test]
    fn empty_window_is_zero() {
        assert_eq!(goertzel(&[], 1e3, 1e6), Cf32::ZERO);
    }
}
