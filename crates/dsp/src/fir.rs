//! FIR filter design (windowed sinc) and application.
//!
//! The gateway channelizer, the GFSK pulse shapers and the
//! KILL-FREQUENCY band filters are all linear-phase FIR filters
//! designed here. Filters have real taps and are applied to complex
//! baseband with group-delay compensation so that filtered output
//! stays time-aligned with the input — an alignment the cloud's
//! interference-cancellation subtraction depends on.

use crate::num::Cf32;
use crate::window::Window;

/// Normalized sinc: `sin(pi x) / (pi x)` with `sinc(0) = 1`.
#[inline]
pub fn sinc(x: f32) -> f32 {
    if x.abs() < 1e-6 {
        1.0
    } else {
        let px = std::f32::consts::PI * x;
        px.sin() / px
    }
}

/// A linear-phase FIR filter with real taps.
#[derive(Clone, Debug)]
pub struct Fir {
    taps: Vec<f32>,
}

impl Fir {
    /// Wraps an explicit tap vector.
    ///
    /// # Panics
    /// Panics if `taps` is empty.
    pub fn from_taps(taps: Vec<f32>) -> Self {
        assert!(!taps.is_empty(), "FIR filter needs at least one tap");
        Fir { taps }
    }

    /// Designs a windowed-sinc low-pass filter.
    ///
    /// * `cutoff_hz` — one-sided cutoff frequency.
    /// * `fs` — sample rate; `cutoff_hz` must be below `fs / 2`.
    /// * `ntaps` — forced odd so the filter has integer group delay.
    pub fn lowpass(cutoff_hz: f64, fs: f64, ntaps: usize, window: Window) -> Self {
        assert!(
            cutoff_hz > 0.0 && cutoff_hz < fs / 2.0,
            "cutoff must be in (0, fs/2)"
        );
        let n = make_odd(ntaps);
        let fc = (cutoff_hz / fs) as f32; // normalized cutoff (cycles/sample)
        let mid = (n / 2) as isize;
        let mut taps: Vec<f32> = (0..n)
            .map(|i| {
                let m = i as isize - mid;
                2.0 * fc * sinc(2.0 * fc * m as f32) * window.value(i, n)
            })
            .collect();
        // Normalize for unity DC gain.
        let sum: f32 = taps.iter().sum();
        for t in &mut taps {
            *t /= sum;
        }
        Fir { taps }
    }

    /// Designs a windowed-sinc high-pass filter by spectral inversion
    /// of the corresponding low-pass.
    pub fn highpass(cutoff_hz: f64, fs: f64, ntaps: usize, window: Window) -> Self {
        let lp = Self::lowpass(cutoff_hz, fs, ntaps, window);
        let n = lp.taps.len();
        let mid = n / 2;
        let taps: Vec<f32> = lp
            .taps
            .iter()
            .enumerate()
            .map(|(i, &t)| if i == mid { 1.0 - t } else { -t })
            .collect();
        Fir { taps }
    }

    /// Designs a band-pass filter passing `lo_hz..hi_hz`.
    pub fn bandpass(lo_hz: f64, hi_hz: f64, fs: f64, ntaps: usize, window: Window) -> Self {
        assert!(lo_hz < hi_hz, "band edges out of order");
        let hi = Self::lowpass(hi_hz, fs, ntaps, window);
        let lo = Self::lowpass(lo_hz, fs, ntaps, window);
        let taps: Vec<f32> = hi
            .taps
            .iter()
            .zip(lo.taps.iter())
            .map(|(&h, &l)| h - l)
            .collect();
        Fir { taps }
    }

    /// Designs a band-stop (notch-band) filter rejecting `lo_hz..hi_hz`.
    ///
    /// This is the building block of the KILL-FREQUENCY filter: it
    /// carves the FSK tone bands out of a collision while passing the
    /// rest of the capture through with linear phase.
    pub fn bandstop(lo_hz: f64, hi_hz: f64, fs: f64, ntaps: usize, window: Window) -> Self {
        let bp = Self::bandpass(lo_hz, hi_hz, fs, ntaps, window);
        let n = bp.taps.len();
        let mid = n / 2;
        let taps: Vec<f32> = bp
            .taps
            .iter()
            .enumerate()
            .map(|(i, &t)| if i == mid { 1.0 - t } else { -t })
            .collect();
        Fir { taps }
    }

    /// The filter taps.
    #[inline]
    pub fn taps(&self) -> &[f32] {
        &self.taps
    }

    /// Number of taps.
    #[inline]
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// Always `false`: construction rejects empty tap vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Group delay in samples (`(ntaps - 1) / 2` for linear phase).
    #[inline]
    pub fn group_delay(&self) -> usize {
        (self.taps.len() - 1) / 2
    }

    /// Filters a complex signal, returning output the same length as
    /// the input with the group delay compensated ("same" mode): output
    /// sample `i` corresponds to input sample `i`.
    ///
    /// Runs on the active [`crate::kernels`] backend; all backends are
    /// bit-exact for this operation (output-parallel vectorization, no
    /// FMA contraction), so filtered waveforms are byte-identical
    /// however the filter is dispatched.
    pub fn filter(&self, input: &[Cf32]) -> Vec<Cf32> {
        let mut out = vec![Cf32::ZERO; input.len()];
        crate::kernels::fir_same(&self.taps, input, &mut out);
        out
    }

    /// Filters a real-valued signal ("same" mode, delay compensated).
    ///
    /// Bit-exact across [`crate::kernels`] backends, like
    /// [`Fir::filter`].
    pub fn filter_real(&self, input: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; input.len()];
        crate::kernels::fir_same_real(&self.taps, input, &mut out);
        out
    }

    /// Magnitude response of the filter at frequency `f_hz` for sample
    /// rate `fs`, evaluated directly from the taps.
    pub fn response_at(&self, f_hz: f64, fs: f64) -> f32 {
        let w = 2.0 * std::f64::consts::PI * f_hz / fs;
        let mut acc_re = 0.0f64;
        let mut acc_im = 0.0f64;
        for (k, &t) in self.taps.iter().enumerate() {
            let ph = w * k as f64;
            acc_re += t as f64 * ph.cos();
            acc_im -= t as f64 * ph.sin();
        }
        ((acc_re * acc_re + acc_im * acc_im).sqrt()) as f32
    }
}

fn make_odd(n: usize) -> usize {
    let n = n.max(3);
    if n.is_multiple_of(2) {
        n + 1
    } else {
        n
    }
}

/// Decimates by an integer factor after anti-alias low-pass filtering.
///
/// The filter cutoff is placed at 80% of the post-decimation Nyquist.
pub fn decimate(input: &[Cf32], factor: usize, fs: f64) -> Vec<Cf32> {
    assert!(factor >= 1, "decimation factor must be >= 1");
    if factor == 1 {
        return input.to_vec();
    }
    let cutoff = 0.4 * fs / factor as f64; // 80% of new Nyquist (fs/2/factor)
    let ntaps = (8 * factor + 1).max(33);
    let fir = Fir::lowpass(cutoff, fs, ntaps, Window::Hamming);
    let filtered = fir.filter(input);
    filtered.iter().step_by(factor).copied().collect()
}

/// Upsamples by an integer factor: zero-stuffing followed by an
/// interpolation low-pass with gain `factor`.
pub fn interpolate(input: &[Cf32], factor: usize, fs_in: f64) -> Vec<Cf32> {
    assert!(factor >= 1, "interpolation factor must be >= 1");
    if factor == 1 {
        return input.to_vec();
    }
    let fs_out = fs_in * factor as f64;
    let mut stuffed = vec![Cf32::ZERO; input.len() * factor];
    for (i, &s) in input.iter().enumerate() {
        stuffed[i * factor] = s;
    }
    let cutoff = 0.4 * fs_in;
    let ntaps = (8 * factor + 1).max(33);
    let fir = Fir::lowpass(cutoff, fs_out, ntaps, Window::Hamming);
    let mut out = fir.filter(&stuffed);
    for z in &mut out {
        *z *= factor as f32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<Cf32> {
        (0..n)
            .map(|i| Cf32::cis((2.0 * std::f64::consts::PI * freq * i as f64 / fs) as f32))
            .collect()
    }

    fn power(sig: &[Cf32]) -> f32 {
        sig.iter().map(|z| z.norm_sqr()).sum::<f32>() / sig.len() as f32
    }

    #[test]
    fn lowpass_passes_dc_blocks_high() {
        let fir = Fir::lowpass(100e3, 1e6, 101, Window::Hamming);
        assert!((fir.response_at(0.0, 1e6) - 1.0).abs() < 1e-3);
        assert!(fir.response_at(400e3, 1e6) < 0.01);
    }

    #[test]
    fn lowpass_attenuates_out_of_band_tone() {
        let fs = 1e6;
        let fir = Fir::lowpass(50e3, fs, 129, Window::Blackman);
        let inband = fir.filter(&tone(20e3, fs, 4096));
        let outband = fir.filter(&tone(300e3, fs, 4096));
        // Ignore filter edges.
        assert!(power(&inband[200..3800]) > 0.9);
        assert!(power(&outband[200..3800]) < 1e-4);
    }

    #[test]
    fn highpass_blocks_dc() {
        let fir = Fir::highpass(100e3, 1e6, 101, Window::Hamming);
        assert!(fir.response_at(0.0, 1e6) < 1e-3);
        assert!((fir.response_at(400e3, 1e6) - 1.0).abs() < 0.02);
    }

    #[test]
    fn bandpass_selects_band() {
        let fir = Fir::bandpass(80e3, 120e3, 1e6, 201, Window::Blackman);
        assert!((fir.response_at(100e3, 1e6) - 1.0).abs() < 0.02);
        assert!(fir.response_at(0.0, 1e6) < 0.01);
        assert!(fir.response_at(300e3, 1e6) < 0.01);
    }

    #[test]
    fn bandstop_rejects_band_passes_rest() {
        let fir = Fir::bandstop(80e3, 120e3, 1e6, 201, Window::Blackman);
        assert!(fir.response_at(100e3, 1e6) < 0.02);
        assert!((fir.response_at(0.0, 1e6) - 1.0).abs() < 0.02);
        assert!((fir.response_at(300e3, 1e6) - 1.0).abs() < 0.02);
    }

    #[test]
    fn filter_output_is_time_aligned() {
        // An impulse through a delay-compensated filter must peak at
        // the impulse position, not at position + group delay.
        let fir = Fir::lowpass(100e3, 1e6, 65, Window::Hamming);
        let mut sig = vec![Cf32::ZERO; 256];
        sig[100] = Cf32::ONE;
        let out = fir.filter(&sig);
        let peak = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm_sqr().total_cmp(&b.1.norm_sqr()))
            .unwrap()
            .0;
        assert_eq!(peak, 100);
    }

    #[test]
    fn decimate_preserves_inband_tone_frequency() {
        let fs = 1e6;
        let f = 30e3;
        let sig = tone(f, fs, 8192);
        let dec = decimate(&sig, 4, fs);
        assert_eq!(dec.len(), 2048);
        // Measure frequency via phase increments in the steady-state middle.
        let mid = &dec[512..1536];
        let mut dph = 0.0f64;
        for w in mid.windows(2) {
            dph += (w[1] * w[0].conj()).arg() as f64;
        }
        let est = dph / (mid.len() - 1) as f64 * (fs / 4.0) / (2.0 * std::f64::consts::PI);
        assert!((est - f).abs() < 500.0, "estimated {est}");
    }

    #[test]
    fn interpolate_then_decimate_roundtrips() {
        let fs = 250e3;
        let sig = tone(10e3, fs, 1024);
        let up = interpolate(&sig, 4, fs);
        assert_eq!(up.len(), 4096);
        let down = decimate(&up, 4, fs * 4.0);
        let a = power(&sig[100..900]);
        let b = power(&down[100..900]);
        assert!((a - b).abs() / a < 0.05, "power {a} vs {b}");
    }

    #[test]
    fn filter_real_matches_complex_on_real_input() {
        let fir = Fir::lowpass(50e3, 1e6, 33, Window::Hann);
        let re: Vec<f32> = (0..256).map(|i| (i as f32 * 0.3).sin()).collect();
        let cx: Vec<Cf32> = re.iter().map(|&r| Cf32::from_re(r)).collect();
        let out_r = fir.filter_real(&re);
        let out_c = fir.filter(&cx);
        for (a, b) in out_r.iter().zip(out_c.iter()) {
            assert!((a - b.re).abs() < 1e-4);
            assert!(b.im.abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn rejects_cutoff_above_nyquist() {
        let _ = Fir::lowpass(600e3, 1e6, 65, Window::Hamming);
    }

    #[test]
    fn sinc_values() {
        assert_eq!(sinc(0.0), 1.0);
        assert!(sinc(1.0).abs() < 1e-6);
        assert!(sinc(0.5) - 2.0 / std::f32::consts::PI < 1e-5);
    }
}
