//! # galiot-dsp — the DSP substrate for GalioT
//!
//! Everything in the GalioT reproduction — the IoT PHY layers, the
//! channel simulator, the gateway's universal-preamble detector and the
//! cloud's kill filters — is built on the primitives in this crate:
//!
//! * [`num`] — a minimal complex sample type ([`Cf32`]) and dB helpers;
//! * [`fft`] — a planned radix-2 FFT;
//! * [`window`] / [`fir`] — window functions and windowed-sinc FIR
//!   design (low/high/band-pass, band-stop), decimation, interpolation;
//! * [`corr`] — direct and FFT cross-correlation, normalized matched
//!   filtering and peak picking (the heart of packet detection);
//! * [`engine`] — the correlation engine: a process-wide FFT plan
//!   cache, precomputed correlation templates ([`engine::Template`],
//!   [`engine::TemplateBank`]) and an overlap-save streaming
//!   correlator with per-thread scratch buffers;
//! * [`chirp`] — CSS up/down chirps and symbol chirps (LoRa, KILL-CSS);
//! * [`mix`] — NCO, frequency translation and tone estimation;
//! * [`goertzel`] — single-bin DFT for FSK tone decisions;
//! * [`pulse`] — Gaussian (GFSK), half-sine (O-QPSK) and RRC shaping;
//! * [`power`] — power/energy/SNR measurement and noise-floor
//!   estimation;
//! * [`psd`] — Welch PSD estimation and spectral peak-band finding;
//! * [`spectral`] — whole-block FFT band masks, the primitive behind
//!   the KILL-FREQUENCY and KILL-CSS interference filters.
//! * [`kernels`] — runtime-dispatched SIMD kernels (scalar / SSE4.1 /
//!   AVX2 / FMA) behind every hot inner loop above, differentially
//!   verified against the always-compiled scalar reference.
//!
//! The crate is dependency-free and purely CPU-bound — per the
//! project's networking guides, no async runtime is involved anywhere
//! in the signal path. `unsafe` is denied crate-wide except for the
//! `#[target_feature]` vector bodies in [`kernels`], which are only
//! reachable through the feature-checking dispatcher.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chirp;
pub mod corr;
pub mod engine;
pub mod fft;
pub mod fir;
pub mod goertzel;
pub mod kernels;
pub mod mix;
pub mod num;
pub mod power;
pub mod psd;
pub mod pulse;
pub mod spectral;
pub mod window;

pub use num::{db_to_lin, lin_to_db, Cf32};
