//! Chirp generation for chirp-spread-spectrum (CSS) signals.
//!
//! LoRa encodes each symbol as a cyclic shift of an elementary up-chirp
//! sweeping the full bandwidth; the cloud's KILL-CSS filter multiplies
//! a capture by the matching down-chirp so LoRa energy collapses to
//! narrowband tones. Both waveforms come from here.

use crate::num::Cf32;

/// Generates one elementary chirp of `n` samples sweeping linearly from
/// `f0` to `f1` Hz at sample rate `fs`.
///
/// The instantaneous frequency at sample `t` is
/// `f0 + (f1 - f0) * t / n`; phase is the integral of that, computed in
/// f64 so long chirps stay coherent.
pub fn chirp(f0: f64, f1: f64, n: usize, fs: f64) -> Vec<Cf32> {
    let k = (f1 - f0) / (n as f64 / fs); // sweep rate Hz/s
    (0..n)
        .map(|i| {
            let t = i as f64 / fs;
            let phase = 2.0 * std::f64::consts::PI * (f0 * t + 0.5 * k * t * t);
            Cf32::cis((phase % std::f64::consts::TAU) as f32)
        })
        .collect()
}

/// The LoRa elementary up-chirp: sweeps `-bw/2 .. +bw/2` over
/// `samples_per_symbol` samples.
pub fn upchirp(bw: f64, samples_per_symbol: usize, fs: f64) -> Vec<Cf32> {
    chirp(-bw / 2.0, bw / 2.0, samples_per_symbol, fs)
}

/// The LoRa elementary down-chirp (conjugate sweep, `+bw/2 .. -bw/2`).
pub fn downchirp(bw: f64, samples_per_symbol: usize, fs: f64) -> Vec<Cf32> {
    chirp(bw / 2.0, -bw / 2.0, samples_per_symbol, fs)
}

/// A cyclically shifted up-chirp encoding CSS symbol `value` out of
/// `2^sf` possible values over `samples_per_symbol` samples.
///
/// Symbol `s` starts its sweep at frequency
/// `-bw/2 + s * bw / 2^sf` and wraps at `+bw/2`.
pub fn symbol_chirp(value: u32, sf: u32, bw: f64, samples_per_symbol: usize, fs: f64) -> Vec<Cf32> {
    let m = 1u32 << sf;
    assert!(value < m, "symbol {value} out of range for SF{sf}");
    let base = upchirp(bw, samples_per_symbol, fs);
    // A cyclic shift in time of the elementary chirp realizes the
    // frequency offset: shift left by value/m of a symbol.
    let shift = (value as usize * samples_per_symbol) / m as usize;
    let mut out = Vec::with_capacity(samples_per_symbol);
    out.extend_from_slice(&base[shift..]);
    out.extend_from_slice(&base[..shift]);
    out
}

/// Dechirps a symbol-aligned window: multiplies by the conjugate
/// elementary chirp so symbol energy lands on a single tone whose
/// frequency encodes the symbol value.
pub fn dechirp(window: &[Cf32], down: &[Cf32]) -> Vec<Cf32> {
    let n = window.len().min(down.len());
    let mut out = window[..n].to_vec();
    crate::kernels::mul_in_place(&mut out, &down[..n]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::{fft, peak_bin};

    const FS: f64 = 125_000.0;
    const BW: f64 = 125_000.0;
    const SF: u32 = 7;
    const SPS: usize = 128; // 2^7 at fs == bw

    #[test]
    fn chirps_have_unit_magnitude() {
        for z in upchirp(BW, SPS, FS) {
            assert!((z.abs() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn up_times_down_is_dc() {
        let up = upchirp(BW, SPS, FS);
        let down = downchirp(BW, SPS, FS);
        let mut prod = dechirp(&up, &down);
        fft(&mut prod);
        assert_eq!(peak_bin(&prod), 0);
    }

    #[test]
    fn symbol_value_maps_to_fft_bin() {
        let down = downchirp(BW, SPS, FS);
        for &sym in &[0u32, 1, 17, 64, 100, 127] {
            let sig = symbol_chirp(sym, SF, BW, SPS, FS);
            let mut de = dechirp(&sig, &down);
            fft(&mut de);
            let bin = peak_bin(&de) as u32;
            assert_eq!(bin, sym, "symbol {sym} decoded as {bin}");
        }
    }

    #[test]
    fn oversampled_symbol_still_decodes() {
        // fs = 4x bw, as seen by a 1 Msps gateway watching a 125 kHz LoRa.
        let fs = 500_000.0;
        let sps = 512;
        let down = downchirp(BW, sps, fs);
        let sig = symbol_chirp(42, SF, BW, sps, fs);
        let mut de = dechirp(&sig, &down);
        fft(&mut de);
        // With fs = os * bw and sps = os * 2^sf the dechirped tone for
        // symbol s sits at s * bw / 2^sf = s * fs / sps, i.e. exactly
        // bin s; the wrapped tail aliases to a high negative-frequency
        // bin but carries less energy for s < 2^(sf-1).
        assert_eq!(peak_bin(&de), 42);
    }

    #[test]
    fn distinct_symbols_are_near_orthogonal() {
        let a = symbol_chirp(10, SF, BW, SPS, FS);
        let b = symbol_chirp(90, SF, BW, SPS, FS);
        let dot: f32 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| *x * y.conj())
            .sum::<Cf32>()
            .abs();
        assert!(dot < 0.1 * SPS as f32, "cross-energy {dot}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn symbol_out_of_range_panics() {
        let _ = symbol_chirp(128, 7, BW, SPS, FS);
    }

    #[test]
    fn chirp_sweeps_expected_band() {
        // Check instantaneous frequency at start and end thirds.
        let n = 4096;
        let fs = 1e6;
        let c = chirp(-100e3, 100e3, n, fs);
        let f_start = crate::mix::estimate_tone_freq(&c[0..64], fs);
        let f_end = crate::mix::estimate_tone_freq(&c[n - 64..], fs);
        assert!((f_start + 100e3).abs() < 5e3, "start {f_start}");
        assert!((f_end - 100e3).abs() < 10e3, "end {f_end}");
    }
}
