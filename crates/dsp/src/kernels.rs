//! Runtime-dispatched SIMD kernels for the DSP hot loops.
//!
//! Every compute-bound inner loop in the workspace — the complex
//! dot products behind correlation and SIC gain estimation, the FIR
//! convolution, the pointwise spectral/dechirp multiplies, and the
//! magnitude/energy reductions — funnels through this module. A
//! [`Backend`] is selected once per process from CPU feature detection
//! (overridable with the `GALIOT_DSP_BACKEND` environment variable or
//! [`set_backend`]), and each kernel dispatches to that backend's
//! implementation.
//!
//! # Exactness policy
//!
//! The backends are *not* all bit-identical on every operation —
//! vectorizing a reduction reassociates floating-point addition. The
//! kernels therefore split into two contracts, chosen so that every
//! waveform a modulator synthesizes (and therefore every golden
//! fingerprint and every conformance frame set) is byte-identical
//! across backends:
//!
//! * **Bit-exact in every backend** — element-wise operations whose
//!   per-element rounding sequence is preserved lane-for-lane:
//!   [`mul_in_place`], [`sub_scaled`], [`norm_sqr_into`],
//!   [`max_norm_sqr`], and the FIR kernels [`fir_same`] /
//!   [`fir_same_real`] (vectorized across *outputs*, so each output
//!   accumulates taps in the exact scalar order, with no FMA
//!   contraction even in the [`Backend::Fma`] backend). These are the
//!   operations on the waveform-synthesis path (GFSK pulse shaping,
//!   channelizers, mixers, dechirpers).
//! * **ULP-bounded reductions** — [`dot_conj`], [`energy_f32`] and
//!   [`energy_f64`] split the sum across lanes, so vector results
//!   differ from the scalar reference by accumulated rounding only
//!   (relative error on the order of `n * 2^-24` for f32 paths). They
//!   feed *decisions* — peak picking, SIC gains, classification
//!   metrics — which are robust to last-bit noise; the differential
//!   suite (`tests/kernel_diff.rs`) bounds the error against an f64
//!   reference.
//!
//! # Safety
//!
//! The vector paths are `unsafe` `#[target_feature]` functions inside
//! the private `x86` submodule — the only `unsafe` code in the crate.
//! They are reachable exclusively through [`Backend`] methods, and
//! every method first clamps `self` to a CPU-supported backend
//! (falling back to [`Backend::Scalar`]), so the `target_feature`
//! contract — "only call this if the CPU has the feature" — is
//! enforced at the dispatch site and the public API stays safe even
//! for a hand-constructed unsupported `Backend` value.

// The one module where `unsafe` is permitted: `#[target_feature]`
// bodies and the feature-guarded dispatch calls into them. See the
// module docs' safety section for the argument.
#![allow(unsafe_code)]

use crate::num::Cf32;
use std::sync::atomic::{AtomicU8, Ordering};

/// A kernel implementation tier.
///
/// Variants are ordered from the always-available scalar reference to
/// the widest vector path; [`Backend::detect`] returns the best one
/// the running CPU supports. On non-x86_64 targets every variant
/// exists but only [`Backend::Scalar`] is supported, and the others
/// clamp to it at dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Backend {
    /// Portable scalar reference — the semantics all other backends
    /// are verified against.
    Scalar,
    /// 128-bit SSE4.1 path (2 complex / 4 real lanes).
    Sse41,
    /// 256-bit AVX2 path (4 complex / 8 real lanes).
    Avx2,
    /// AVX2 with fused multiply-add in the *reduction* kernels only;
    /// element-wise and FIR kernels reuse the unfused AVX2 bodies so
    /// they stay bit-exact with the scalar reference.
    Fma,
    /// 512-bit AVX-512F path (8 complex / 16 real lanes) for the
    /// element-wise multiply/subtract kernels, which stay bit-exact
    /// (masked add/sub preserves the per-lane rounding sequence); the
    /// remaining kernels reuse the AVX2/FMA bodies.
    Avx512,
}

impl Backend {
    /// All backends, scalar first.
    pub const ALL: [Backend; 5] = [
        Backend::Scalar,
        Backend::Sse41,
        Backend::Avx2,
        Backend::Fma,
        Backend::Avx512,
    ];

    /// The backend's canonical name (the `GALIOT_DSP_BACKEND` value
    /// that selects it).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse41 => "sse4.1",
            Backend::Avx2 => "avx2",
            Backend::Fma => "fma",
            Backend::Avx512 => "avx512",
        }
    }

    /// Parses a backend name (`"sse41"` is accepted for `"sse4.1"`).
    /// Returns `None` for unknown names, including `"auto"`.
    pub fn from_name(name: &str) -> Option<Backend> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(Backend::Scalar),
            "sse4.1" | "sse41" => Some(Backend::Sse41),
            "avx2" => Some(Backend::Avx2),
            "fma" => Some(Backend::Fma),
            "avx512" | "avx512f" => Some(Backend::Avx512),
            _ => None,
        }
    }

    /// Whether the running CPU can execute this backend.
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Sse41 => std::arch::is_x86_feature_detected!("sse4.1"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Backend::Fma => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// The best backend the running CPU supports.
    pub fn detect() -> Backend {
        for b in [Backend::Avx512, Backend::Fma, Backend::Avx2, Backend::Sse41] {
            if b.is_supported() {
                return b;
            }
        }
        Backend::Scalar
    }

    /// Clamps to a backend that is safe to execute here: `self` if the
    /// CPU supports it, the scalar reference otherwise. Every kernel
    /// method routes through this, which is what makes the dispatch
    /// safe for arbitrary `Backend` values.
    #[inline]
    fn effective(self) -> Backend {
        if self.is_supported() {
            self
        } else {
            Backend::Scalar
        }
    }

    /// Complex correlation dot product `sum_i x[i] * conj(h[i])` over
    /// the common prefix of the two slices (empty input sums to zero).
    ///
    /// ULP-bounded reduction: vector backends split the sum across
    /// lanes (and [`Backend::Fma`] fuses the multiply-adds).
    pub fn dot_conj(self, x: &[Cf32], h: &[Cf32]) -> Cf32 {
        let n = x.len().min(h.len());
        let (x, h) = (&x[..n], &h[..n]);
        match self.effective() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `effective()` returned this backend, so the CPU
            // supports the target features the callee was compiled for.
            Backend::Sse41 => unsafe { x86::dot_conj_sse41(x, h) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            Backend::Avx2 => unsafe { x86::dot_conj_avx2(x, h) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above. Avx512 implies avx2+fma support, and
            // the reduction is ULP-bounded either way.
            Backend::Fma | Backend::Avx512 => unsafe { x86::dot_conj_fma(x, h) },
            _ => scalar::dot_conj(x, h),
        }
    }

    /// Signal energy `sum |x[i]|^2` accumulated in f32 (the form the
    /// per-block SIC gain denominators and FFT-bin quality metrics
    /// use). ULP-bounded reduction.
    pub fn energy_f32(self, x: &[Cf32]) -> f32 {
        match self.effective() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `effective()` guarantees CPU support.
            Backend::Sse41 => unsafe { x86::energy_f32_sse41(x) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            Backend::Avx2 => unsafe { x86::energy_f32_avx2(x) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above. Avx512 implies avx2+fma support.
            Backend::Fma | Backend::Avx512 => unsafe { x86::energy_f32_fma(x) },
            _ => scalar::energy_f32(x),
        }
    }

    /// Signal energy `sum |x[i]|^2` accumulated in f64 (the form the
    /// power/energy measurements use to avoid drift over long
    /// captures). ULP-bounded reduction: vector backends square in
    /// f64 where the scalar reference squares in f32 then widens, so
    /// the vector result is the (slightly) more accurate one.
    pub fn energy_f64(self, x: &[Cf32]) -> f64 {
        match self.effective() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `effective()` guarantees CPU support.
            Backend::Sse41 => unsafe { x86::energy_f64_sse41(x) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            Backend::Avx2 => unsafe { x86::energy_f64_avx2(x) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above. Avx512 implies avx2+fma support.
            Backend::Fma | Backend::Avx512 => unsafe { x86::energy_f64_fma(x) },
            _ => scalar::energy_f64(x),
        }
    }

    /// Peak instantaneous power `max_i |x[i]|^2` (0 for empty input).
    ///
    /// Bit-exact across backends for finite inputs: each `|z|^2` is
    /// the same two-product one-add sequence as the scalar reference,
    /// and `max` is exact. NaN samples are not part of the contract
    /// (the scalar fold drops them; vector `max` semantics differ).
    pub fn max_norm_sqr(self, x: &[Cf32]) -> f32 {
        match self.effective() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `effective()` guarantees CPU support.
            Backend::Sse41 => unsafe { x86::max_norm_sqr_sse41(x) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above. Fma/Avx512 share the AVX2 body (no
            // fusable op; 512-bit widening buys nothing for max).
            Backend::Avx2 | Backend::Fma | Backend::Avx512 => unsafe { x86::max_norm_sqr_avx2(x) },
            _ => scalar::max_norm_sqr(x),
        }
    }

    /// Writes `|x[i]|^2` into `out[i]` element-wise. Bit-exact across
    /// backends: one rounding per square, one per add, exactly as the
    /// scalar reference.
    ///
    /// # Panics
    /// Panics if `out.len() != x.len()`.
    pub fn norm_sqr_into(self, x: &[Cf32], out: &mut [f32]) {
        assert_eq!(x.len(), out.len(), "norm_sqr_into length mismatch");
        match self.effective() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `effective()` guarantees CPU support.
            Backend::Sse41 => unsafe { x86::norm_sqr_into_sse41(x, out) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above. Fma/Avx512 share the AVX2 body (no
            // fusable op).
            Backend::Avx2 | Backend::Fma | Backend::Avx512 => unsafe {
                x86::norm_sqr_into_avx2(x, out)
            },
            _ => scalar::norm_sqr_into(x, out),
        }
    }

    /// Pointwise complex multiply `a[i] *= b[i]` over the common
    /// prefix. Bit-exact across backends (the element-wise rounding
    /// sequence of [`Cf32`]'s `Mul` is preserved per lane) — this is
    /// the kernel on the spectral-correlation, mixer and dechirp
    /// paths, all of which feed pinned waveforms.
    pub fn mul_in_place(self, a: &mut [Cf32], b: &[Cf32]) {
        let n = a.len().min(b.len());
        let (a, b) = (&mut a[..n], &b[..n]);
        match self.effective() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `effective()` guarantees CPU support.
            Backend::Sse41 => unsafe { x86::mul_in_place_sse41(a, b) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above. Fma shares the AVX2 body (fusing would
            // break bit-exactness).
            Backend::Avx2 | Backend::Fma => unsafe { x86::mul_in_place_avx2(a, b) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above. Masked add/sub keeps the per-lane
            // rounding sequence, so 512-bit lanes stay bit-exact.
            Backend::Avx512 => unsafe { x86::mul_in_place_avx512(a, b) },
            _ => scalar::mul_in_place(a, b),
        }
    }

    /// Scaled subtraction `x[i] -= y[i] * g` over the common prefix —
    /// the interference-cancellation inner loop. Bit-exact across
    /// backends.
    pub fn sub_scaled(self, x: &mut [Cf32], y: &[Cf32], g: Cf32) {
        let n = x.len().min(y.len());
        let (x, y) = (&mut x[..n], &y[..n]);
        match self.effective() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `effective()` guarantees CPU support.
            Backend::Sse41 => unsafe { x86::sub_scaled_sse41(x, y, g) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above. Fma shares the AVX2 body.
            Backend::Avx2 | Backend::Fma => unsafe { x86::sub_scaled_avx2(x, y, g) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above; bit-exact per lane as for mul_in_place.
            Backend::Avx512 => unsafe { x86::sub_scaled_avx512(x, y, g) },
            _ => scalar::sub_scaled(x, y, g),
        }
    }

    /// "Same"-mode real-tap FIR over complex input with group-delay
    /// compensation: `out[i] = sum_k taps[k] * input[i + delay - k]`
    /// over in-bounds indices, `delay = (taps.len() - 1) / 2`.
    ///
    /// Bit-exact across backends: vector paths parallelize across
    /// *outputs*, so every output accumulates taps in ascending-`k`
    /// scalar order with unfused multiply-adds. Empty `taps` zeroes
    /// the output.
    ///
    /// # Panics
    /// Panics if `out.len() != input.len()`.
    pub fn fir_same(self, taps: &[f32], input: &[Cf32], out: &mut [Cf32]) {
        assert_eq!(input.len(), out.len(), "fir_same length mismatch");
        if taps.is_empty() {
            out.fill(Cf32::ZERO);
            return;
        }
        match self.effective() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `effective()` guarantees CPU support.
            Backend::Sse41 => unsafe { x86::fir_same_sse41(taps, input, out) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above. Fma/Avx512 share the AVX2 body (no
            // fusing on the synthesis path).
            Backend::Avx2 | Backend::Fma | Backend::Avx512 => unsafe {
                x86::fir_same_avx2(taps, input, out)
            },
            _ => scalar::fir_same(taps, input, out),
        }
    }

    /// "Same"-mode real-tap FIR over real input — the GFSK pulse
    /// shaper's kernel. Same contract as [`Backend::fir_same`].
    ///
    /// # Panics
    /// Panics if `out.len() != input.len()`.
    pub fn fir_same_real(self, taps: &[f32], input: &[f32], out: &mut [f32]) {
        assert_eq!(input.len(), out.len(), "fir_same_real length mismatch");
        if taps.is_empty() {
            out.fill(0.0);
            return;
        }
        match self.effective() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `effective()` guarantees CPU support.
            Backend::Sse41 => unsafe { x86::fir_same_real_sse41(taps, input, out) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above. Fma/Avx512 share the AVX2 body.
            Backend::Avx2 | Backend::Fma | Backend::Avx512 => unsafe {
                x86::fir_same_real_avx2(taps, input, out)
            },
            _ => scalar::fir_same_real(taps, input, out),
        }
    }
}

// ---------------------------------------------------------------------------
// Process-wide backend selection
// ---------------------------------------------------------------------------

/// 0 = not yet resolved; otherwise `Backend` discriminant + 1.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn to_code(b: Backend) -> u8 {
    match b {
        Backend::Scalar => 1,
        Backend::Sse41 => 2,
        Backend::Avx2 => 3,
        Backend::Fma => 4,
        Backend::Avx512 => 5,
    }
}

fn from_code(c: u8) -> Backend {
    match c {
        1 => Backend::Scalar,
        2 => Backend::Sse41,
        3 => Backend::Avx2,
        4 => Backend::Fma,
        _ => Backend::Avx512,
    }
}

/// The backend `GALIOT_DSP_BACKEND` currently requests, if any:
/// `None` when the variable is unset, empty, or `auto`;
/// `Some(Err(value))` when it is set to an unknown name;
/// `Some(Ok(backend))` otherwise (whether or not the CPU supports it).
///
/// This reads the environment on every call — unlike [`active`], which
/// resolves once per process — so the seed-knob plumbing tests and
/// `galiot-sim`'s repro bundles can report what the environment *asks
/// for* next to what the process actually runs.
pub fn env_request() -> Option<Result<Backend, String>> {
    match std::env::var("GALIOT_DSP_BACKEND") {
        Ok(v) if !v.is_empty() && !v.eq_ignore_ascii_case("auto") => match Backend::from_name(&v) {
            Some(req) => Some(Ok(req)),
            None => Some(Err(v)),
        },
        _ => None,
    }
}

fn resolve_from_env() -> Backend {
    match std::env::var("GALIOT_DSP_BACKEND") {
        Ok(v) if !v.is_empty() && !v.eq_ignore_ascii_case("auto") => match Backend::from_name(&v) {
            Some(req) if req.is_supported() => req,
            Some(req) => {
                let fallback = Backend::detect();
                eprintln!(
                    "galiot-dsp: GALIOT_DSP_BACKEND={v} requests the {} backend but the \
                     CPU does not support it; using {}",
                    req.name(),
                    fallback.name()
                );
                fallback
            }
            None => {
                let fallback = Backend::detect();
                eprintln!(
                    "galiot-dsp: unknown GALIOT_DSP_BACKEND={v:?} \
                     (expected scalar|sse4.1|avx2|fma|avx512|auto); using {}",
                    fallback.name()
                );
                fallback
            }
        },
        _ => Backend::detect(),
    }
}

/// The process-wide active backend every free kernel function
/// dispatches to.
///
/// Resolved once on first use: `GALIOT_DSP_BACKEND` if set (`scalar`,
/// `sse4.1`, `avx2`, `fma`, `avx512`, or `auto`; an unsupported or unknown
/// request falls back to detection with a warning on stderr),
/// otherwise the best backend [`Backend::detect`] finds.
pub fn active() -> Backend {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => {
            // Benign race: resolution is deterministic for a given
            // environment, so concurrent first callers agree.
            let b = resolve_from_env();
            ACTIVE.store(to_code(b), Ordering::Relaxed);
            b
        }
        c => from_code(c),
    }
}

/// The active backend's name — the `dsp_backend` tag metrics and
/// benches record.
pub fn backend_name() -> &'static str {
    active().name()
}

/// Overrides the process-wide backend (clamped to
/// [`Backend::Scalar`] if the CPU does not support the request) and
/// returns the previously active one.
///
/// This is the in-process test/bench knob behind the differential and
/// force-scalar conformance suites; production selection goes through
/// `GALIOT_DSP_BACKEND` / detection instead. Takes effect for
/// subsequent kernel calls in all threads.
pub fn set_backend(b: Backend) -> Backend {
    let prev = active();
    let clamped = if b.is_supported() { b } else { Backend::Scalar };
    ACTIVE.store(to_code(clamped), Ordering::Relaxed);
    prev
}

// ---------------------------------------------------------------------------
// Free functions: the call-site API (dispatch on the active backend)
// ---------------------------------------------------------------------------

/// [`Backend::dot_conj`] on the [`active`] backend.
#[inline]
pub fn dot_conj(x: &[Cf32], h: &[Cf32]) -> Cf32 {
    active().dot_conj(x, h)
}

/// [`Backend::energy_f32`] on the [`active`] backend.
#[inline]
pub fn energy_f32(x: &[Cf32]) -> f32 {
    active().energy_f32(x)
}

/// [`Backend::energy_f64`] on the [`active`] backend.
#[inline]
pub fn energy_f64(x: &[Cf32]) -> f64 {
    active().energy_f64(x)
}

/// [`Backend::max_norm_sqr`] on the [`active`] backend.
#[inline]
pub fn max_norm_sqr(x: &[Cf32]) -> f32 {
    active().max_norm_sqr(x)
}

/// [`Backend::norm_sqr_into`] on the [`active`] backend.
#[inline]
pub fn norm_sqr_into(x: &[Cf32], out: &mut [f32]) {
    active().norm_sqr_into(x, out)
}

/// [`Backend::mul_in_place`] on the [`active`] backend.
#[inline]
pub fn mul_in_place(a: &mut [Cf32], b: &[Cf32]) {
    active().mul_in_place(a, b)
}

/// [`Backend::sub_scaled`] on the [`active`] backend.
#[inline]
pub fn sub_scaled(x: &mut [Cf32], y: &[Cf32], g: Cf32) {
    active().sub_scaled(x, y, g)
}

/// [`Backend::fir_same`] on the [`active`] backend.
#[inline]
pub fn fir_same(taps: &[f32], input: &[Cf32], out: &mut [Cf32]) {
    active().fir_same(taps, input, out)
}

/// [`Backend::fir_same_real`] on the [`active`] backend.
#[inline]
pub fn fir_same_real(taps: &[f32], input: &[f32], out: &mut [f32]) {
    active().fir_same_real(taps, input, out)
}

// ---------------------------------------------------------------------------
// Scalar reference implementations
// ---------------------------------------------------------------------------

/// The always-compiled scalar reference bodies. Every other backend
/// is differentially tested against these, and these in turn preserve
/// the exact summation orders of the pre-kernel inline loops (so the
/// golden waveform fingerprints pinned before this module existed
/// still hold).
mod scalar {
    use crate::num::Cf32;

    pub fn dot_conj(x: &[Cf32], h: &[Cf32]) -> Cf32 {
        let mut acc = Cf32::ZERO;
        for (&a, &b) in x.iter().zip(h.iter()) {
            acc += a * b.conj();
        }
        acc
    }

    pub fn energy_f32(x: &[Cf32]) -> f32 {
        let mut acc = 0.0f32;
        for z in x {
            acc += z.norm_sqr();
        }
        acc
    }

    pub fn energy_f64(x: &[Cf32]) -> f64 {
        let mut acc = 0.0f64;
        for z in x {
            acc += z.norm_sqr() as f64;
        }
        acc
    }

    pub fn max_norm_sqr(x: &[Cf32]) -> f32 {
        x.iter().map(|z| z.norm_sqr()).fold(0.0, f32::max)
    }

    pub fn norm_sqr_into(x: &[Cf32], out: &mut [f32]) {
        for (o, z) in out.iter_mut().zip(x.iter()) {
            *o = z.norm_sqr();
        }
    }

    pub fn mul_in_place(a: &mut [Cf32], b: &[Cf32]) {
        for (x, &y) in a.iter_mut().zip(b.iter()) {
            *x *= y;
        }
    }

    pub fn sub_scaled(x: &mut [Cf32], y: &[Cf32], g: Cf32) {
        for (a, &b) in x.iter_mut().zip(y.iter()) {
            *a -= b * g;
        }
    }

    pub fn fir_same(taps: &[f32], input: &[Cf32], out: &mut [Cf32]) {
        let n = input.len();
        let delay = (taps.len() - 1) / 2;
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = Cf32::ZERO;
            for (k, &t) in taps.iter().enumerate() {
                let idx = i as isize + delay as isize - k as isize;
                if idx >= 0 && (idx as usize) < n {
                    acc += input[idx as usize] * t;
                }
            }
            *o = acc;
        }
    }

    pub fn fir_same_real(taps: &[f32], input: &[f32], out: &mut [f32]) {
        let n = input.len();
        let delay = (taps.len() - 1) / 2;
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (k, &t) in taps.iter().enumerate() {
                let idx = i as isize + delay as isize - k as isize;
                if idx >= 0 && (idx as usize) < n {
                    acc += input[idx as usize] * t;
                }
            }
            *o = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// x86-64 vector implementations
// ---------------------------------------------------------------------------

/// The `unsafe` `#[target_feature]` vector bodies. Reachable only
/// through [`Backend`]'s dispatch methods, which guarantee the CPU
/// supports the required features before calling in.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use super::scalar;
    use crate::num::Cf32;
    use std::arch::x86_64::*;

    /// Views interleaved complex samples as their raw `re, im, re, im`
    /// float stream. Sound because `Cf32` is `#[repr(C)]` over two
    /// `f32` fields with no padding.
    #[inline]
    fn floats(x: &[Cf32]) -> &[f32] {
        // SAFETY: see above; length doubles, alignment only shrinks.
        unsafe { std::slice::from_raw_parts(x.as_ptr().cast::<f32>(), x.len() * 2) }
    }

    /// Mutable variant of [`floats`].
    #[inline]
    fn floats_mut(x: &mut [Cf32]) -> &mut [f32] {
        // SAFETY: as in `floats`; exclusive borrow is carried over.
        unsafe { std::slice::from_raw_parts_mut(x.as_mut_ptr().cast::<f32>(), x.len() * 2) }
    }

    // -- dot_conj ----------------------------------------------------------
    //
    // With interleaved lanes a = [xr, xi, ...] and b = [hr, hi, ...]:
    //   acc1 += a * b        accumulates [xr*hr, xi*hi, ...]  (re terms)
    //   acc2 += a * swap(b)  accumulates [xr*hi, xi*hr, ...]  (im terms)
    // re = sum(acc1 lanes); im = sum(odd acc2 lanes) - sum(even).

    macro_rules! dot_conj_256 {
        ($name:ident, $feat:literal ; $acc:ident, $a:ident, $b:ident => $step1:expr, $bs:ident => $step2:expr) => {
            #[target_feature(enable = $feat)]
            pub unsafe fn $name(x: &[Cf32], h: &[Cf32]) -> Cf32 {
                let xf = floats(x);
                let hf = floats(h);
                let lim = xf.len();
                let mut acc1 = _mm256_setzero_ps();
                let mut acc2 = _mm256_setzero_ps();
                let mut i = 0usize;
                while i + 8 <= lim {
                    let $a = _mm256_loadu_ps(xf.as_ptr().add(i));
                    let $b = _mm256_loadu_ps(hf.as_ptr().add(i));
                    let $bs = _mm256_permute_ps($b, 0b1011_0001);
                    let $acc = acc1;
                    acc1 = $step1;
                    let $acc = acc2;
                    let ($a, $b) = ($a, $bs);
                    acc2 = $step2;
                    i += 8;
                }
                let mut t1 = [0f32; 8];
                let mut t2 = [0f32; 8];
                _mm256_storeu_ps(t1.as_mut_ptr(), acc1);
                _mm256_storeu_ps(t2.as_mut_ptr(), acc2);
                let mut re = t1.iter().sum::<f32>();
                let mut im = (t2[1] + t2[3] + t2[5] + t2[7]) - (t2[0] + t2[2] + t2[4] + t2[6]);
                // Scalar tail over the remaining (< 4) complex samples.
                let tail = scalar::dot_conj(&x[i / 2..], &h[i / 2..]);
                re += tail.re;
                im += tail.im;
                Cf32 { re, im }
            }
        };
    }

    dot_conj_256!(dot_conj_avx2, "avx2" ;
        acc, a, b => _mm256_add_ps(acc, _mm256_mul_ps(a, b)),
        bs => _mm256_add_ps(acc, _mm256_mul_ps(a, b)));
    dot_conj_256!(dot_conj_fma, "avx2,fma" ;
        acc, a, b => _mm256_fmadd_ps(a, b, acc),
        bs => _mm256_fmadd_ps(a, b, acc));

    #[target_feature(enable = "sse4.1")]
    pub unsafe fn dot_conj_sse41(x: &[Cf32], h: &[Cf32]) -> Cf32 {
        let xf = floats(x);
        let hf = floats(h);
        let lim = xf.len();
        let mut acc1 = _mm_setzero_ps();
        let mut acc2 = _mm_setzero_ps();
        let mut i = 0usize;
        while i + 4 <= lim {
            let a = _mm_loadu_ps(xf.as_ptr().add(i));
            let b = _mm_loadu_ps(hf.as_ptr().add(i));
            let bs = _mm_shuffle_ps(b, b, 0b1011_0001);
            acc1 = _mm_add_ps(acc1, _mm_mul_ps(a, b));
            acc2 = _mm_add_ps(acc2, _mm_mul_ps(a, bs));
            i += 4;
        }
        let mut t1 = [0f32; 4];
        let mut t2 = [0f32; 4];
        _mm_storeu_ps(t1.as_mut_ptr(), acc1);
        _mm_storeu_ps(t2.as_mut_ptr(), acc2);
        let mut re = t1.iter().sum::<f32>();
        let mut im = (t2[1] + t2[3]) - (t2[0] + t2[2]);
        let tail = scalar::dot_conj(&x[i / 2..], &h[i / 2..]);
        re += tail.re;
        im += tail.im;
        Cf32 { re, im }
    }

    // -- energy ------------------------------------------------------------

    macro_rules! energy_f32_256 {
        ($name:ident, $feat:literal ; $acc:ident, $v:ident => $step:expr) => {
            #[target_feature(enable = $feat)]
            pub unsafe fn $name(x: &[Cf32]) -> f32 {
                let xf = floats(x);
                let lim = xf.len();
                let mut acc = _mm256_setzero_ps();
                let mut i = 0usize;
                while i + 8 <= lim {
                    let $v = _mm256_loadu_ps(xf.as_ptr().add(i));
                    let $acc = acc;
                    acc = $step;
                    i += 8;
                }
                let mut t = [0f32; 8];
                _mm256_storeu_ps(t.as_mut_ptr(), acc);
                let mut total = t.iter().sum::<f32>();
                while i < lim {
                    total += xf[i] * xf[i];
                    i += 1;
                }
                total
            }
        };
    }

    energy_f32_256!(energy_f32_avx2, "avx2" ;
        acc, v => _mm256_add_ps(acc, _mm256_mul_ps(v, v)));
    energy_f32_256!(energy_f32_fma, "avx2,fma" ;
        acc, v => _mm256_fmadd_ps(v, v, acc));

    #[target_feature(enable = "sse4.1")]
    pub unsafe fn energy_f32_sse41(x: &[Cf32]) -> f32 {
        let xf = floats(x);
        let lim = xf.len();
        let mut acc = _mm_setzero_ps();
        let mut i = 0usize;
        while i + 4 <= lim {
            let v = _mm_loadu_ps(xf.as_ptr().add(i));
            acc = _mm_add_ps(acc, _mm_mul_ps(v, v));
            i += 4;
        }
        let mut t = [0f32; 4];
        _mm_storeu_ps(t.as_mut_ptr(), acc);
        let mut total = t.iter().sum::<f32>();
        while i < lim {
            total += xf[i] * xf[i];
            i += 1;
        }
        total
    }

    macro_rules! energy_f64_256 {
        ($name:ident, $feat:literal ; $acc:ident, $d:ident => $step:expr) => {
            #[target_feature(enable = $feat)]
            pub unsafe fn $name(x: &[Cf32]) -> f64 {
                let xf = floats(x);
                let lim = xf.len();
                let mut acc = _mm256_setzero_pd();
                let mut i = 0usize;
                while i + 4 <= lim {
                    let $d = _mm256_cvtps_pd(_mm_loadu_ps(xf.as_ptr().add(i)));
                    let $acc = acc;
                    acc = $step;
                    i += 4;
                }
                let mut t = [0f64; 4];
                _mm256_storeu_pd(t.as_mut_ptr(), acc);
                let mut total = t.iter().sum::<f64>();
                while i < lim {
                    let v = xf[i] as f64;
                    total += v * v;
                    i += 1;
                }
                total
            }
        };
    }

    energy_f64_256!(energy_f64_avx2, "avx2" ;
        acc, d => _mm256_add_pd(acc, _mm256_mul_pd(d, d)));
    energy_f64_256!(energy_f64_fma, "avx2,fma" ;
        acc, d => _mm256_fmadd_pd(d, d, acc));

    #[target_feature(enable = "sse4.1")]
    pub unsafe fn energy_f64_sse41(x: &[Cf32]) -> f64 {
        let xf = floats(x);
        let lim = xf.len();
        let mut acc = _mm_setzero_pd();
        let mut i = 0usize;
        while i + 2 <= lim {
            let d = _mm_cvtps_pd(_mm_castsi128_ps(_mm_loadl_epi64(
                xf.as_ptr().add(i).cast::<__m128i>(),
            )));
            acc = _mm_add_pd(acc, _mm_mul_pd(d, d));
            i += 2;
        }
        let mut t = [0f64; 2];
        _mm_storeu_pd(t.as_mut_ptr(), acc);
        let mut total = t[0] + t[1];
        while i < lim {
            let v = xf[i] as f64;
            total += v * v;
            i += 1;
        }
        total
    }

    // -- max_norm_sqr ------------------------------------------------------

    #[target_feature(enable = "avx2")]
    pub unsafe fn max_norm_sqr_avx2(x: &[Cf32]) -> f32 {
        let xf = floats(x);
        let lim = xf.len();
        let mut macc = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 8 <= lim {
            let v = _mm256_loadu_ps(xf.as_ptr().add(i));
            let sq = _mm256_mul_ps(v, v);
            // Pairwise re^2 + im^2 (duplicated across the pair, which
            // max ignores): one add of the two rounded squares, the
            // scalar sequence exactly.
            let sums = _mm256_add_ps(sq, _mm256_permute_ps(sq, 0b1011_0001));
            macc = _mm256_max_ps(macc, sums);
            i += 8;
        }
        let mut t = [0f32; 8];
        _mm256_storeu_ps(t.as_mut_ptr(), macc);
        let mut best = t.iter().fold(0.0f32, |a, &b| a.max(b));
        for z in &x[i / 2..] {
            best = best.max(z.norm_sqr());
        }
        best
    }

    #[target_feature(enable = "sse4.1")]
    pub unsafe fn max_norm_sqr_sse41(x: &[Cf32]) -> f32 {
        let xf = floats(x);
        let lim = xf.len();
        let mut macc = _mm_setzero_ps();
        let mut i = 0usize;
        while i + 4 <= lim {
            let v = _mm_loadu_ps(xf.as_ptr().add(i));
            let sq = _mm_mul_ps(v, v);
            let sums = _mm_add_ps(sq, _mm_shuffle_ps(sq, sq, 0b1011_0001));
            macc = _mm_max_ps(macc, sums);
            i += 4;
        }
        let mut t = [0f32; 4];
        _mm_storeu_ps(t.as_mut_ptr(), macc);
        let mut best = t.iter().fold(0.0f32, |a, &b| a.max(b));
        for z in &x[i / 2..] {
            best = best.max(z.norm_sqr());
        }
        best
    }

    // -- norm_sqr_into -----------------------------------------------------

    #[target_feature(enable = "avx2")]
    pub unsafe fn norm_sqr_into_avx2(x: &[Cf32], out: &mut [f32]) {
        let xf = floats(x);
        let n = x.len();
        let mut i = 0usize; // complex index
                            // 8 complex samples per iteration: two squared vectors, hadd
                            // pairs them ([s0 s1 s4 s5 | s2 s3 s6 s7]), permute restores
                            // order. Each s is one add of two rounded squares — bit-exact.
        while i + 8 <= n {
            let va = _mm256_loadu_ps(xf.as_ptr().add(2 * i));
            let vb = _mm256_loadu_ps(xf.as_ptr().add(2 * i + 8));
            let ha = _mm256_hadd_ps(_mm256_mul_ps(va, va), _mm256_mul_ps(vb, vb));
            let ordered =
                _mm256_castpd_ps(_mm256_permute4x64_pd(_mm256_castps_pd(ha), 0b1101_1000));
            _mm256_storeu_ps(out.as_mut_ptr().add(i), ordered);
            i += 8;
        }
        for (o, z) in out[i..].iter_mut().zip(&x[i..]) {
            *o = z.norm_sqr();
        }
    }

    #[target_feature(enable = "sse4.1")]
    pub unsafe fn norm_sqr_into_sse41(x: &[Cf32], out: &mut [f32]) {
        let xf = floats(x);
        let n = x.len();
        let mut i = 0usize;
        while i + 4 <= n {
            let va = _mm_loadu_ps(xf.as_ptr().add(2 * i));
            let vb = _mm_loadu_ps(xf.as_ptr().add(2 * i + 4));
            let h = _mm_hadd_ps(_mm_mul_ps(va, va), _mm_mul_ps(vb, vb));
            _mm_storeu_ps(out.as_mut_ptr().add(i), h);
            i += 4;
        }
        for (o, z) in out[i..].iter_mut().zip(&x[i..]) {
            *o = z.norm_sqr();
        }
    }

    // -- mul_in_place ------------------------------------------------------
    //
    // Standard interleaved complex multiply:
    //   t1 = a * dup_re(b)        = [ar*br, ai*br, ...]
    //   t2 = swap(a) * dup_im(b)  = [ai*bi, ar*bi, ...]
    //   addsub(t1, t2)            = [ar*br - ai*bi, ai*br + ar*bi, ...]
    // Each output component is one add/sub of two rounded products —
    // the exact rounding sequence of Cf32's scalar Mul.

    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_in_place_avx2(a: &mut [Cf32], b: &[Cf32]) {
        // Peel scalar elements until the in-place operand sits on a 32B
        // boundary: allocations only guarantee 16B, and misaligned 32B
        // accesses split cache lines on every other address. The split
        // point cannot change element-wise results. An odd-float base
        // can never reach 32B alignment; run unaligned throughout then.
        let head = (a.as_ptr() as usize).wrapping_neg() % 32 / 4;
        let peel = if head.is_multiple_of(2) {
            (head / 2).min(a.len())
        } else {
            0
        };
        scalar::mul_in_place(&mut a[..peel], &b[..peel]);
        let bf = floats(b);
        let af = floats_mut(a);
        let lim = af.len();
        let mut i = peel * 2;
        // Two independent 4-complex lanes per iteration: element-wise
        // results are identical at any unroll factor, and the second
        // lane hides the shuffle-port latency of the first. The store
        // (and one load) are 32B-aligned after the peel whenever the
        // base pointer is float-even, which `Vec<Cf32>` guarantees.
        while i + 16 <= lim {
            let va0 = _mm256_loadu_ps(af.as_ptr().add(i));
            let vb0 = _mm256_loadu_ps(bf.as_ptr().add(i));
            let va1 = _mm256_loadu_ps(af.as_ptr().add(i + 8));
            let vb1 = _mm256_loadu_ps(bf.as_ptr().add(i + 8));
            let t1 = _mm256_mul_ps(va0, _mm256_moveldup_ps(vb0));
            let t2 = _mm256_mul_ps(_mm256_permute_ps(va0, 0b1011_0001), _mm256_movehdup_ps(vb0));
            let u1 = _mm256_mul_ps(va1, _mm256_moveldup_ps(vb1));
            let u2 = _mm256_mul_ps(_mm256_permute_ps(va1, 0b1011_0001), _mm256_movehdup_ps(vb1));
            _mm256_storeu_ps(af.as_mut_ptr().add(i), _mm256_addsub_ps(t1, t2));
            _mm256_storeu_ps(af.as_mut_ptr().add(i + 8), _mm256_addsub_ps(u1, u2));
            i += 16;
        }
        while i + 8 <= lim {
            let va = _mm256_loadu_ps(af.as_ptr().add(i));
            let vb = _mm256_loadu_ps(bf.as_ptr().add(i));
            let t1 = _mm256_mul_ps(va, _mm256_moveldup_ps(vb));
            let t2 = _mm256_mul_ps(_mm256_permute_ps(va, 0b1011_0001), _mm256_movehdup_ps(vb));
            _mm256_storeu_ps(af.as_mut_ptr().add(i), _mm256_addsub_ps(t1, t2));
            i += 8;
        }
        let done = i / 2;
        scalar::mul_in_place(&mut a[done..], &b[done..]);
    }

    #[target_feature(enable = "sse4.1")]
    pub unsafe fn mul_in_place_sse41(a: &mut [Cf32], b: &[Cf32]) {
        let bf = floats(b);
        let af = floats_mut(a);
        let lim = af.len();
        let mut i = 0usize;
        while i + 4 <= lim {
            let va = _mm_loadu_ps(af.as_ptr().add(i));
            let vb = _mm_loadu_ps(bf.as_ptr().add(i));
            let t1 = _mm_mul_ps(va, _mm_moveldup_ps(vb));
            let t2 = _mm_mul_ps(_mm_shuffle_ps(va, va, 0b1011_0001), _mm_movehdup_ps(vb));
            _mm_storeu_ps(af.as_mut_ptr().add(i), _mm_addsub_ps(t1, t2));
            i += 4;
        }
        let done = i / 2;
        scalar::mul_in_place(&mut a[done..], &b[done..]);
    }

    // AVX-512 has no addsub; an even-lane-masked subtract over the
    // full-width add reproduces it: each lane still computes exactly
    // one add or one sub of the same two rounded products, so the
    // result stays bit-exact with the scalar reference.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn mul_in_place_avx512(a: &mut [Cf32], b: &[Cf32]) {
        // Peel to a 64B boundary (see mul_in_place_avx2; allocations
        // only guarantee 16B and split-line accesses cost double).
        let head = (a.as_ptr() as usize).wrapping_neg() % 64 / 4;
        let peel = if head.is_multiple_of(2) {
            (head / 2).min(a.len())
        } else {
            0
        };
        scalar::mul_in_place(&mut a[..peel], &b[..peel]);
        let bf = floats(b);
        let af = floats_mut(a);
        let lim = af.len();
        let mut i = peel * 2;
        const RE_LANES: u16 = 0x5555;
        while i + 32 <= lim {
            let va0 = _mm512_loadu_ps(af.as_ptr().add(i));
            let vb0 = _mm512_loadu_ps(bf.as_ptr().add(i));
            let va1 = _mm512_loadu_ps(af.as_ptr().add(i + 16));
            let vb1 = _mm512_loadu_ps(bf.as_ptr().add(i + 16));
            let t1 = _mm512_mul_ps(va0, _mm512_moveldup_ps(vb0));
            let t2 = _mm512_mul_ps(_mm512_permute_ps(va0, 0b1011_0001), _mm512_movehdup_ps(vb0));
            let u1 = _mm512_mul_ps(va1, _mm512_moveldup_ps(vb1));
            let u2 = _mm512_mul_ps(_mm512_permute_ps(va1, 0b1011_0001), _mm512_movehdup_ps(vb1));
            let r0 = _mm512_mask_sub_ps(_mm512_add_ps(t1, t2), RE_LANES, t1, t2);
            let r1 = _mm512_mask_sub_ps(_mm512_add_ps(u1, u2), RE_LANES, u1, u2);
            _mm512_storeu_ps(af.as_mut_ptr().add(i), r0);
            _mm512_storeu_ps(af.as_mut_ptr().add(i + 16), r1);
            i += 32;
        }
        while i + 16 <= lim {
            let va = _mm512_loadu_ps(af.as_ptr().add(i));
            let vb = _mm512_loadu_ps(bf.as_ptr().add(i));
            let t1 = _mm512_mul_ps(va, _mm512_moveldup_ps(vb));
            let t2 = _mm512_mul_ps(_mm512_permute_ps(va, 0b1011_0001), _mm512_movehdup_ps(vb));
            let r = _mm512_mask_sub_ps(_mm512_add_ps(t1, t2), RE_LANES, t1, t2);
            _mm512_storeu_ps(af.as_mut_ptr().add(i), r);
            i += 16;
        }
        let done = i / 2;
        scalar::mul_in_place(&mut a[done..], &b[done..]);
    }

    // -- sub_scaled --------------------------------------------------------
    //
    // y * g with broadcast g, then subtract from x. Product lanes:
    //   t1 = y * set1(g.re)       = [yr*gr, yi*gr, ...]
    //   t2 = swap(y) * set1(g.im) = [yi*gi, yr*gi, ...]
    //   p  = addsub(t1, t2)       = [yr*gr - yi*gi, yi*gr + yr*gi, ...]
    // matching Cf32 Mul's rounding, then x - p elementwise.

    #[target_feature(enable = "avx2")]
    pub unsafe fn sub_scaled_avx2(x: &mut [Cf32], y: &[Cf32], g: Cf32) {
        let yf = floats(y);
        let xf = floats_mut(x);
        let lim = xf.len();
        let gr = _mm256_set1_ps(g.re);
        let gi = _mm256_set1_ps(g.im);
        let mut i = 0usize;
        while i + 8 <= lim {
            let vy = _mm256_loadu_ps(yf.as_ptr().add(i));
            let t1 = _mm256_mul_ps(vy, gr);
            let t2 = _mm256_mul_ps(_mm256_permute_ps(vy, 0b1011_0001), gi);
            let p = _mm256_addsub_ps(t1, t2);
            let vx = _mm256_loadu_ps(xf.as_ptr().add(i));
            _mm256_storeu_ps(xf.as_mut_ptr().add(i), _mm256_sub_ps(vx, p));
            i += 8;
        }
        let done = i / 2;
        scalar::sub_scaled(&mut x[done..], &y[done..], g);
    }

    #[target_feature(enable = "sse4.1")]
    pub unsafe fn sub_scaled_sse41(x: &mut [Cf32], y: &[Cf32], g: Cf32) {
        let yf = floats(y);
        let xf = floats_mut(x);
        let lim = xf.len();
        let gr = _mm_set1_ps(g.re);
        let gi = _mm_set1_ps(g.im);
        let mut i = 0usize;
        while i + 4 <= lim {
            let vy = _mm_loadu_ps(yf.as_ptr().add(i));
            let t1 = _mm_mul_ps(vy, gr);
            let t2 = _mm_mul_ps(_mm_shuffle_ps(vy, vy, 0b1011_0001), gi);
            let p = _mm_addsub_ps(t1, t2);
            let vx = _mm_loadu_ps(xf.as_ptr().add(i));
            _mm_storeu_ps(xf.as_mut_ptr().add(i), _mm_sub_ps(vx, p));
            i += 4;
        }
        let done = i / 2;
        scalar::sub_scaled(&mut x[done..], &y[done..], g);
    }

    // Same masked-subtract addsub replacement as mul_in_place_avx512;
    // bit-exact per lane.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn sub_scaled_avx512(x: &mut [Cf32], y: &[Cf32], g: Cf32) {
        let yf = floats(y);
        let xf = floats_mut(x);
        let lim = xf.len();
        let gr = _mm512_set1_ps(g.re);
        let gi = _mm512_set1_ps(g.im);
        const RE_LANES: u16 = 0x5555;
        let mut i = 0usize;
        while i + 16 <= lim {
            let vy = _mm512_loadu_ps(yf.as_ptr().add(i));
            let t1 = _mm512_mul_ps(vy, gr);
            let t2 = _mm512_mul_ps(_mm512_permute_ps(vy, 0b1011_0001), gi);
            let p = _mm512_mask_sub_ps(_mm512_add_ps(t1, t2), RE_LANES, t1, t2);
            let vx = _mm512_loadu_ps(xf.as_ptr().add(i));
            _mm512_storeu_ps(xf.as_mut_ptr().add(i), _mm512_sub_ps(vx, p));
            i += 16;
        }
        let done = i / 2;
        scalar::sub_scaled(&mut x[done..], &y[done..], g);
    }

    // -- FIR ---------------------------------------------------------------
    //
    // Vectorized across consecutive *outputs*: a block of outputs
    // accumulates `input[i + delay - k] * taps[k]` for ascending k with
    // unfused mul+add, which is lane-for-lane the scalar reference's
    // rounding sequence. Only fully-in-bounds blocks take the vector
    // path; edge outputs run the scalar bounds-checked loop.

    #[target_feature(enable = "avx2")]
    pub unsafe fn fir_same_avx2(taps: &[f32], input: &[Cf32], out: &mut [Cf32]) {
        let n = input.len();
        let nt = taps.len();
        let delay = (nt - 1) / 2;
        // A 4-output block at i is interior when every (lane, tap)
        // index is in bounds: i >= nt-1-delay and i+3+delay <= n-1.
        let lo = (nt - 1).saturating_sub(delay);
        let inf = floats(input);
        let outf = floats_mut(out);
        let mut i = lo;
        while i + 4 + delay <= n {
            let mut acc = _mm256_setzero_ps();
            for (k, &t) in taps.iter().enumerate() {
                let base = i + delay - k;
                let v = _mm256_loadu_ps(inf.as_ptr().add(2 * base));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(v, _mm256_set1_ps(t)));
            }
            _mm256_storeu_ps(outf.as_mut_ptr().add(2 * i), acc);
            i += 4;
        }
        let edge = lo.min(out.len());
        scalar::fir_same(taps, input, &mut out[..edge]);
        scalar_fir_range(taps, input, out, i, n);
    }

    #[target_feature(enable = "sse4.1")]
    pub unsafe fn fir_same_sse41(taps: &[f32], input: &[Cf32], out: &mut [Cf32]) {
        let n = input.len();
        let nt = taps.len();
        let delay = (nt - 1) / 2;
        let lo = (nt - 1).saturating_sub(delay);
        let inf = floats(input);
        let outf = floats_mut(out);
        let mut i = lo;
        while i + 2 + delay <= n {
            let mut acc = _mm_setzero_ps();
            for (k, &t) in taps.iter().enumerate() {
                let base = i + delay - k;
                let v = _mm_loadu_ps(inf.as_ptr().add(2 * base));
                acc = _mm_add_ps(acc, _mm_mul_ps(v, _mm_set1_ps(t)));
            }
            _mm_storeu_ps(outf.as_mut_ptr().add(2 * i), acc);
            i += 2;
        }
        let edge = lo.min(out.len());
        scalar::fir_same(taps, input, &mut out[..edge]);
        scalar_fir_range(taps, input, out, i, n);
    }

    /// Scalar FIR over output range `[from, to)` (tail/edge outputs).
    fn scalar_fir_range(taps: &[f32], input: &[Cf32], out: &mut [Cf32], from: usize, to: usize) {
        let n = input.len();
        let delay = (taps.len() - 1) / 2;
        for (i, o) in out.iter_mut().enumerate().take(to).skip(from) {
            let mut acc = Cf32::ZERO;
            for (k, &t) in taps.iter().enumerate() {
                let idx = i as isize + delay as isize - k as isize;
                if idx >= 0 && (idx as usize) < n {
                    acc += input[idx as usize] * t;
                }
            }
            *o = acc;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn fir_same_real_avx2(taps: &[f32], input: &[f32], out: &mut [f32]) {
        let n = input.len();
        let nt = taps.len();
        let delay = (nt - 1) / 2;
        let lo = (nt - 1).saturating_sub(delay);
        let mut i = lo;
        while i + 8 + delay <= n {
            let mut acc = _mm256_setzero_ps();
            for (k, &t) in taps.iter().enumerate() {
                let v = _mm256_loadu_ps(input.as_ptr().add(i + delay - k));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(v, _mm256_set1_ps(t)));
            }
            _mm256_storeu_ps(out.as_mut_ptr().add(i), acc);
            i += 8;
        }
        let edge = lo.min(out.len());
        scalar::fir_same_real(taps, input, &mut out[..edge]);
        scalar_fir_real_range(taps, input, out, i, n);
    }

    #[target_feature(enable = "sse4.1")]
    pub unsafe fn fir_same_real_sse41(taps: &[f32], input: &[f32], out: &mut [f32]) {
        let n = input.len();
        let nt = taps.len();
        let delay = (nt - 1) / 2;
        let lo = (nt - 1).saturating_sub(delay);
        let mut i = lo;
        while i + 4 + delay <= n {
            let mut acc = _mm_setzero_ps();
            for (k, &t) in taps.iter().enumerate() {
                let v = _mm_loadu_ps(input.as_ptr().add(i + delay - k));
                acc = _mm_add_ps(acc, _mm_mul_ps(v, _mm_set1_ps(t)));
            }
            _mm_storeu_ps(out.as_mut_ptr().add(i), acc);
            i += 4;
        }
        let edge = lo.min(out.len());
        scalar::fir_same_real(taps, input, &mut out[..edge]);
        scalar_fir_real_range(taps, input, out, i, n);
    }

    /// Scalar real FIR over output range `[from, to)`.
    fn scalar_fir_real_range(taps: &[f32], input: &[f32], out: &mut [f32], from: usize, to: usize) {
        let n = input.len();
        let delay = (taps.len() - 1) / 2;
        for (i, o) in out.iter_mut().enumerate().take(to).skip(from) {
            let mut acc = 0.0f32;
            for (k, &t) in taps.iter().enumerate() {
                let idx = i as isize + delay as isize - k as isize;
                if idx >= 0 && (idx as usize) < n {
                    acc += input[idx as usize] * t;
                }
            }
            *o = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n: usize) -> Vec<Cf32> {
        (0..n)
            .map(|i| Cf32::new((i as f32 * 0.37).sin(), (i as f32 * 0.71).cos()))
            .collect()
    }

    #[test]
    fn backend_names_roundtrip() {
        for b in Backend::ALL {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name("sse41"), Some(Backend::Sse41));
        assert_eq!(Backend::from_name("AVX2"), Some(Backend::Avx2));
        assert_eq!(Backend::from_name("auto"), None);
        assert_eq!(Backend::from_name("neon"), None);
    }

    #[test]
    fn detect_is_supported_and_scalar_always_is() {
        assert!(Backend::detect().is_supported());
        assert!(Backend::Scalar.is_supported());
    }

    #[test]
    fn unsupported_backend_clamps_to_scalar_semantics() {
        // Whatever the CPU, every backend value must be callable and
        // agree with scalar on a bit-exact kernel.
        let x = wave(33);
        let b = wave(33);
        for backend in Backend::ALL {
            let mut a = x.clone();
            backend.mul_in_place(&mut a, &b);
            let mut r = x.clone();
            Backend::Scalar.mul_in_place(&mut r, &b);
            assert_eq!(a, r, "{backend:?}");
        }
    }

    /// The dispatcher contract on degenerate lengths: defined results,
    /// no panics, no NaN, for every backend.
    #[test]
    fn degenerate_lengths_are_defined() {
        for backend in Backend::ALL {
            assert_eq!(backend.dot_conj(&[], &[]), Cf32::ZERO);
            assert_eq!(backend.dot_conj(&wave(3), &[]), Cf32::ZERO);
            assert_eq!(backend.energy_f32(&[]), 0.0);
            assert_eq!(backend.energy_f64(&[]), 0.0);
            assert_eq!(backend.max_norm_sqr(&[]), 0.0);
            backend.norm_sqr_into(&[], &mut []);
            backend.mul_in_place(&mut [], &wave(2));
            backend.sub_scaled(&mut [], &[], Cf32::ONE);
            let mut out: Vec<Cf32> = Vec::new();
            backend.fir_same(&[1.0, 2.0, 1.0], &[], &mut out);
            // Single-element inputs.
            let one = wave(1);
            let d = backend.dot_conj(&one, &one);
            assert!((d.re - one[0].norm_sqr()).abs() < 1e-6);
            let mut o1 = vec![Cf32::ZERO; 1];
            backend.fir_same(&[0.5], &one, &mut o1);
            assert_eq!(o1[0], one[0] * 0.5);
            // Empty taps zero the output.
            let mut oz = wave(4);
            backend.fir_same(&[], &wave(4), &mut oz);
            assert!(oz.iter().all(|z| *z == Cf32::ZERO));
            // More taps than input: bounds-checked, finite.
            let mut short = vec![Cf32::ZERO; 3];
            backend.fir_same(&[0.1; 33], &wave(3), &mut short);
            assert!(short.iter().all(|z| !z.is_degenerate()));
        }
    }

    #[test]
    fn dot_conj_of_self_is_energy() {
        let x = wave(257);
        for backend in Backend::ALL {
            let d = backend.dot_conj(&x, &x);
            let e = backend.energy_f32(&x);
            assert!((d.re - e).abs() < 1e-3 * e.abs().max(1.0), "{backend:?}");
            assert!(d.im.abs() < 1e-3 * e.abs().max(1.0), "{backend:?}");
        }
    }

    #[test]
    fn set_backend_overrides_and_restores() {
        let prev = set_backend(Backend::Scalar);
        assert_eq!(active(), Backend::Scalar);
        assert_eq!(backend_name(), "scalar");
        set_backend(prev);
        assert_eq!(active(), prev);
    }
}
