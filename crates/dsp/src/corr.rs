//! Cross-correlation and matched filtering.
//!
//! Packet detection — both the per-technology matched-filter bank the
//! paper calls "optimal" and GalioT's universal-preamble detector — is
//! sliding cross-correlation of the capture against a template. Both a
//! direct form (for short templates / tests) and an FFT overlap form
//! (for the streaming detectors) are provided, along with normalized
//! correlation and peak picking.

use crate::num::Cf32;

/// Sliding cross-correlation, direct form.
///
/// `out[i] = sum_k x[i + k] * conj(h[k])` for every full overlap
/// (`out.len() == x.len() - h.len() + 1`). Returns an empty vector if
/// the template is longer than the signal. Each lag is a
/// [`crate::kernels::dot_conj`] reduction on the active SIMD backend.
pub fn xcorr_direct(x: &[Cf32], h: &[Cf32]) -> Vec<Cf32> {
    if h.is_empty() || x.len() < h.len() {
        return Vec::new();
    }
    let backend = crate::kernels::active();
    let n = x.len() - h.len() + 1;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(backend.dot_conj(&x[i..i + h.len()], h));
    }
    out
}

/// Sliding cross-correlation via FFT, identical output to
/// [`xcorr_direct`] (to floating-point tolerance).
///
/// Cost is `O((N+M) log M)` instead of `O(N M)`; the detectors use
/// this form on every capture block. Since the correlation-engine
/// rewrite this delegates to [`crate::engine::xcorr_cached`]: FFT
/// plans come from the process-wide cache and long signals run
/// overlap-save on a template-sized block, so no call re-plans
/// twiddles or transforms at capture size. Hold a
/// [`crate::engine::Template`] instead when correlating the same
/// template repeatedly — that also memoizes the template's spectrum.
pub fn xcorr_fft(x: &[Cf32], h: &[Cf32]) -> Vec<Cf32> {
    crate::engine::xcorr_cached(x, h)
}

/// Normalized sliding cross-correlation magnitude in `[0, 1]`.
///
/// `out[i] = |<x_i, h>| / (|x_i| |h|)` where `x_i` is the window of
/// `x` starting at `i`. Windows with negligible energy (relative to
/// the strongest window) return 0 rather than amplifying noise.
pub fn xcorr_normalized(x: &[Cf32], h: &[Cf32]) -> Vec<f32> {
    if h.is_empty() || x.len() < h.len() {
        return Vec::new();
    }
    let raw = xcorr_fft(x, h);
    let h_energy: f32 = h.iter().map(|z| z.norm_sqr()).sum();
    // Sliding window energy of x via prefix sums: per-sample |z|^2 on
    // the SIMD backend (bit-exact), then the same sequential f64
    // accumulation as ever so the prefix is backend-independent.
    let mut sq = vec![0.0f32; x.len()];
    crate::kernels::norm_sqr_into(x, &mut sq);
    let mut prefix = Vec::with_capacity(x.len() + 1);
    prefix.push(0.0f64);
    let mut acc = 0.0f64;
    for &s in &sq {
        acc += s as f64;
        prefix.push(acc);
    }
    let m = h.len();
    let mut out = Vec::with_capacity(raw.len());
    let max_win = (0..raw.len())
        .map(|i| prefix[i + m] - prefix[i])
        .fold(0.0f64, f64::max);
    let floor = (max_win * 1e-9).max(1e-30);
    for (i, r) in raw.iter().enumerate() {
        let win = prefix[i + m] - prefix[i];
        if win <= floor {
            out.push(0.0);
        } else {
            let denom = (win * h_energy as f64).sqrt() as f32;
            out.push((r.abs() / denom).min(1.0));
        }
    }
    out
}

/// A detected correlation peak.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Peak {
    /// Sample index of the peak (start-of-template alignment).
    pub index: usize,
    /// Peak value (normalized correlation or raw magnitude, per caller).
    pub value: f32,
}

/// Finds local maxima above `threshold`, suppressing any later peak
/// closer than `min_distance` samples to a previously accepted,
/// stronger peak. Peaks are returned in index order.
///
/// Only true *interior* maxima qualify: the first and last sample are
/// never peaks, because a monotone ramp cut off at a segment or chunk
/// boundary would otherwise register a phantom detection there (the
/// real peak lies in the neighbouring block, which will report it).
pub fn find_peaks(corr: &[f32], threshold: f32, min_distance: usize) -> Vec<Peak> {
    let mut candidates: Vec<Peak> = corr
        .iter()
        .enumerate()
        .filter(|&(i, &v)| {
            v >= threshold && i > 0 && i + 1 < corr.len() && corr[i - 1] <= v && corr[i + 1] < v
        })
        .map(|(i, &v)| Peak { index: i, value: v })
        .collect();
    // Greedy non-maximum suppression, strongest first.
    candidates.sort_by(|a, b| b.value.total_cmp(&a.value));
    let mut accepted: Vec<Peak> = Vec::new();
    for c in candidates {
        if accepted
            .iter()
            .all(|a| a.index.abs_diff(c.index) >= min_distance)
        {
            accepted.push(c);
        }
    }
    accepted.sort_by_key(|p| p.index);
    accepted
}

/// Zero-mean normalized cross-correlation (NCC) of real sequences,
/// in `[-1, 1]`.
///
/// `out[i] = <x_i - mean(x_i), h - mean(h)> / (||x_i - mean|| ||h - mean||)`
/// over windows `x_i` of `x`. Subtracting the window mean makes the
/// statistic immune to any constant offset in `x` — which is how FSK
/// bit-sync on a frequency-discriminator output stays robust to
/// carrier-frequency offset (CFO shows up there as a DC shift).
///
/// Computed with one FFT correlation plus prefix sums, `O(N log N)`.
pub fn ncc_real(x: &[f32], h: &[f32]) -> Vec<f32> {
    if h.len() < 2 || x.len() < h.len() {
        return Vec::new();
    }
    let m = h.len();
    let mean_h: f32 = h.iter().sum::<f32>() / m as f32;
    let hz: Vec<Cf32> = h.iter().map(|&v| Cf32::from_re(v - mean_h)).collect();
    let h_norm: f32 = hz.iter().map(|z| z.re * z.re).sum::<f32>().sqrt();
    if h_norm <= 0.0 {
        return vec![0.0; x.len() - m + 1];
    }
    let xz: Vec<Cf32> = x.iter().map(|&v| Cf32::from_re(v)).collect();
    // <x_i, h - mean_h> == <x_i - mean_i, h - mean_h> since h is zero-mean.
    let raw = xcorr_fft(&xz, &hz);
    // Sliding sums for window mean and variance (f64 prefix sums).
    let mut p1 = Vec::with_capacity(x.len() + 1);
    let mut p2 = Vec::with_capacity(x.len() + 1);
    p1.push(0.0f64);
    p2.push(0.0f64);
    let (mut a1, mut a2) = (0.0f64, 0.0f64);
    for &v in x {
        a1 += v as f64;
        a2 += (v as f64) * (v as f64);
        p1.push(a1);
        p2.push(a2);
    }
    let mut out = Vec::with_capacity(raw.len());
    for (i, r) in raw.iter().enumerate() {
        let s1 = p1[i + m] - p1[i];
        let s2 = p2[i + m] - p2[i];
        let var = (s2 - s1 * s1 / m as f64).max(0.0);
        let x_norm = (var as f32).sqrt();
        if x_norm <= 1e-12 {
            out.push(0.0);
        } else {
            out.push((r.re / (x_norm * h_norm)).clamp(-1.0, 1.0));
        }
    }
    out
}

/// Index and magnitude of the largest-magnitude correlation sample.
/// Returns `None` for an empty slice.
pub fn argmax_abs(corr: &[Cf32]) -> Option<(usize, f32)> {
    corr.iter()
        .enumerate()
        .map(|(i, z)| (i, z.abs()))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(v: &[f32]) -> Vec<Cf32> {
        v.iter().map(|&r| Cf32::from_re(r)).collect()
    }

    #[test]
    fn direct_matches_hand_computation() {
        let x = seq(&[1.0, 2.0, 3.0, 4.0]);
        let h = seq(&[1.0, 1.0]);
        let out = xcorr_direct(&x, &h);
        assert_eq!(out.len(), 3);
        assert!((out[0].re - 3.0).abs() < 1e-5);
        assert!((out[1].re - 5.0).abs() < 1e-5);
        assert!((out[2].re - 7.0).abs() < 1e-5);
    }

    #[test]
    fn fft_matches_direct() {
        let x: Vec<Cf32> = (0..200)
            .map(|i| Cf32::new((i as f32 * 0.7).sin(), (i as f32 * 0.31).cos()))
            .collect();
        let h: Vec<Cf32> = (0..31)
            .map(|i| Cf32::new((i as f32 * 1.3).cos(), -(i as f32 * 0.11).sin()))
            .collect();
        let a = xcorr_direct(&x, &h);
        let b = xcorr_fft(&x, &h);
        assert_eq!(a.len(), b.len());
        for (p, q) in a.iter().zip(b.iter()) {
            assert!((*p - *q).abs() < 1e-3, "{p:?} vs {q:?}");
        }
    }

    #[test]
    fn template_found_at_embedded_offset() {
        let h: Vec<Cf32> = (0..32).map(|i| Cf32::cis(i as f32 * 0.9)).collect();
        let mut x = vec![Cf32::ZERO; 300];
        for (k, &hv) in h.iter().enumerate() {
            x[137 + k] = hv;
        }
        let corr = xcorr_fft(&x, &h);
        let (idx, _) = argmax_abs(&corr).unwrap();
        assert_eq!(idx, 137);
    }

    #[test]
    fn normalized_peak_is_one_for_exact_match() {
        let h: Vec<Cf32> = (0..64).map(|i| Cf32::cis(i as f32 * 0.37)).collect();
        let mut x = vec![Cf32::ZERO; 256];
        for (k, &hv) in h.iter().enumerate() {
            x[90 + k] = hv * 3.0; // scaled copy: normalization removes gain
        }
        let norm = xcorr_normalized(&x, &h);
        let peak = norm
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert_eq!(peak.0, 90);
        assert!(*peak.1 > 0.999);
    }

    #[test]
    fn normalized_is_bounded() {
        let h: Vec<Cf32> = (0..16).map(|i| Cf32::cis(i as f32)).collect();
        let x: Vec<Cf32> = (0..200).map(|i| Cf32::cis(i as f32 * 1.7) * 2.0).collect();
        for v in xcorr_normalized(&x, &h) {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn find_peaks_respects_threshold_and_distance() {
        let mut corr = vec![0.0f32; 100];
        corr[10] = 0.9;
        corr[12] = 0.8; // within min_distance of the stronger 10
        corr[50] = 0.7;
        corr[90] = 0.3; // below threshold
        let peaks = find_peaks(&corr, 0.5, 5);
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].index, 10);
        assert_eq!(peaks[1].index, 50);
    }

    #[test]
    fn find_peaks_keeps_separated_equal_peaks() {
        let mut corr = vec![0.0f32; 100];
        corr[20] = 0.8;
        corr[70] = 0.8;
        let peaks = find_peaks(&corr, 0.5, 10);
        assert_eq!(peaks.len(), 2);
    }

    #[test]
    fn find_peaks_rejects_boundary_ramps() {
        // A monotone edge ramp — what a correlation looks like when a
        // packet's peak falls just past a segment/chunk boundary — must
        // not produce a phantom peak at either end.
        let rising: Vec<f32> = (0..50).map(|i| i as f32 / 49.0).collect();
        assert!(find_peaks(&rising, 0.1, 4).is_empty(), "phantom at tail");
        let falling: Vec<f32> = rising.iter().rev().copied().collect();
        assert!(find_peaks(&falling, 0.1, 4).is_empty(), "phantom at head");
        // An interior peak on the same data is still found.
        let mut bump = rising;
        bump[25] = 2.0;
        let peaks = find_peaks(&bump, 0.1, 4);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 25);
        // Degenerate lengths cannot host an interior maximum.
        assert!(find_peaks(&[1.0], 0.1, 1).is_empty());
        assert!(find_peaks(&[1.0, 2.0], 0.1, 1).is_empty());
    }

    #[test]
    fn ncc_finds_pattern_under_dc_offset() {
        // Template: a +1/-1 pattern; signal: the pattern + a large DC
        // shift (models CFO on a discriminator output).
        let h: Vec<f32> = [1.0f32, 1.0, -1.0, 1.0, -1.0, -1.0, 1.0, -1.0]
            .iter()
            .flat_map(|&b| std::iter::repeat_n(b, 10))
            .collect();
        let mut x = vec![5.0f32; 400]; // constant region, zero variance handled
        for (k, &v) in h.iter().enumerate() {
            x[200 + k] = v + 5.0;
        }
        let ncc = ncc_real(&x, &h);
        let (idx, val) = ncc
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert_eq!(idx, 200);
        assert!(*val > 0.999, "peak {val}");
    }

    #[test]
    fn ncc_is_bounded_and_sign_sensitive() {
        let h = vec![1.0f32, -1.0, 1.0, -1.0, 1.0, -1.0];
        let x: Vec<f32> = (0..100).map(|i| ((i % 2) as f32) * 2.0 - 1.0).collect();
        let ncc = ncc_real(&x, &h);
        for v in &ncc {
            assert!((-1.0..=1.0).contains(v));
        }
        // Alternating signal correlates at +-1 depending on parity.
        assert!(ncc.iter().any(|&v| v > 0.999));
        assert!(ncc.iter().any(|&v| v < -0.999));
    }

    #[test]
    fn ncc_degenerate_inputs() {
        assert!(ncc_real(&[1.0], &[1.0, 2.0]).is_empty());
        assert!(ncc_real(&[1.0, 2.0, 3.0], &[]).is_empty());
        // Constant template has zero norm -> all zeros.
        let out = ncc_real(&[1.0, 2.0, 3.0, 4.0], &[2.0, 2.0]);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        let h: Vec<Cf32> = seq(&[1.0, 2.0, 3.0]);
        assert!(xcorr_direct(&seq(&[1.0]), &h).is_empty());
        assert!(xcorr_fft(&seq(&[1.0, 2.0]), &h).is_empty());
        assert!(xcorr_normalized(&[], &h).is_empty());
        assert!(argmax_abs(&[]).is_none());
    }
}
