//! Frequency translation: numerically controlled oscillator and mixers.
//!
//! Gateways tune one wide front-end across a band of narrower IoT
//! channels; every per-technology decode therefore starts by mixing the
//! capture so the technology of interest sits at DC. The same mixer
//! applies simulated carrier-frequency offsets in the channel model.

use crate::num::Cf32;

/// A numerically controlled oscillator producing `e^{i(2 pi f t + phi)}`
/// one sample at a time with phase continuity across calls.
#[derive(Clone, Debug)]
pub struct Nco {
    phase: f64,
    step: f64,
}

impl Nco {
    /// Creates an NCO at `freq_hz` for sample rate `fs`, starting at
    /// phase `phase` radians.
    pub fn new(freq_hz: f64, fs: f64, phase: f64) -> Self {
        Nco {
            phase,
            step: 2.0 * std::f64::consts::PI * freq_hz / fs,
        }
    }

    /// Retunes the oscillator without a phase discontinuity.
    pub fn set_freq(&mut self, freq_hz: f64, fs: f64) {
        self.step = 2.0 * std::f64::consts::PI * freq_hz / fs;
    }

    /// Returns the next oscillator sample and advances the phase.
    #[inline]
    pub fn next_sample(&mut self) -> Cf32 {
        let s = Cf32::cis(self.phase as f32);
        self.phase += self.step;
        // Keep the accumulator bounded so f64 precision never degrades,
        // even over arbitrarily long streams.
        if self.phase > std::f64::consts::TAU {
            self.phase -= std::f64::consts::TAU;
        } else if self.phase < -std::f64::consts::TAU {
            self.phase += std::f64::consts::TAU;
        }
        s
    }

    /// Fills a buffer with consecutive oscillator samples.
    pub fn fill(&mut self, out: &mut [Cf32]) {
        for z in out {
            *z = self.next_sample();
        }
    }
}

/// Phasor staging buffer size for the mixers: large enough to amortize
/// the SIMD kernel call, small enough to stay cache-resident.
const MIX_CHUNK: usize = 4096;

/// Returns `signal` multiplied by `e^{i 2 pi f t}` — i.e. the spectrum
/// shifted *up* by `freq_hz` (use a negative frequency to shift down).
pub fn mix(signal: &[Cf32], freq_hz: f64, fs: f64) -> Vec<Cf32> {
    let mut out = signal.to_vec();
    mix_in_place(&mut out, freq_hz, fs, 0.0);
    out
}

/// In-place variant of [`mix`], with a starting phase.
///
/// Phasor generation stays scalar (it is `sin_cos`-bound, with f64
/// phase continuity in the [`Nco`]); the per-sample complex multiply
/// runs chunked through the bit-exact [`crate::kernels::mul_in_place`]
/// kernel, so mixed waveforms are byte-identical across backends.
pub fn mix_in_place(signal: &mut [Cf32], freq_hz: f64, fs: f64, phase: f64) {
    let mut nco = Nco::new(freq_hz, fs, phase);
    let mut phasors = vec![Cf32::ZERO; signal.len().min(MIX_CHUNK)];
    for chunk in signal.chunks_mut(MIX_CHUNK) {
        let p = &mut phasors[..chunk.len()];
        nco.fill(p);
        crate::kernels::mul_in_place(chunk, p);
    }
}

/// Applies a constant phase rotation to every sample.
pub fn rotate(signal: &mut [Cf32], phase: f32) {
    let r = Cf32::cis(phase);
    let phasors = vec![r; signal.len().min(MIX_CHUNK)];
    for chunk in signal.chunks_mut(MIX_CHUNK) {
        let n = chunk.len();
        crate::kernels::mul_in_place(chunk, &phasors[..n]);
    }
}

/// Estimates the dominant frequency of a (roughly) single-tone complex
/// signal from its mean per-sample phase increment. Robust to noise via
/// the vector average of `x[n+1] x[n]^*`.
pub fn estimate_tone_freq(signal: &[Cf32], fs: f64) -> f64 {
    if signal.len() < 2 {
        return 0.0;
    }
    let mut acc = Cf32::ZERO;
    for w in signal.windows(2) {
        acc += w[1] * w[0].conj();
    }
    acc.arg() as f64 * fs / (2.0 * std::f64::consts::PI)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<Cf32> {
        mix(&vec![Cf32::ONE; n], freq, fs)
    }

    #[test]
    fn nco_produces_unit_magnitude() {
        let mut nco = Nco::new(123e3, 1e6, 0.3);
        for _ in 0..1000 {
            assert!((nco.next_sample().abs() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn mix_shifts_tone() {
        let fs = 1e6;
        let sig = tone(50e3, fs, 4096);
        let shifted = mix(&sig, 30e3, fs);
        let est = estimate_tone_freq(&shifted[100..4000], fs);
        assert!((est - 80e3).abs() < 200.0, "estimated {est}");
    }

    #[test]
    fn mix_down_to_dc() {
        let fs = 1e6;
        let sig = tone(200e3, fs, 4096);
        let base = mix(&sig, -200e3, fs);
        let est = estimate_tone_freq(&base[10..4000], fs);
        assert!(est.abs() < 100.0, "estimated {est}");
    }

    #[test]
    fn estimate_handles_negative_freq() {
        let fs = 1e6;
        let sig = tone(-75e3, fs, 2048);
        let est = estimate_tone_freq(&sig, fs);
        assert!((est + 75e3).abs() < 200.0, "estimated {est}");
    }

    #[test]
    fn phase_stays_bounded_over_long_stream() {
        let mut nco = Nco::new(499e3, 1e6, 0.0);
        let mut buf = vec![Cf32::ZERO; 1 << 18];
        nco.fill(&mut buf);
        // The final samples must still be unit phasors.
        for z in &buf[buf.len() - 16..] {
            assert!((z.abs() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn rotate_applies_constant_phase() {
        let mut sig = vec![Cf32::ONE; 8];
        rotate(&mut sig, std::f32::consts::FRAC_PI_2);
        for z in &sig {
            assert!((z.re).abs() < 1e-6);
            assert!((z.im - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn estimate_on_short_input_is_zero() {
        assert_eq!(estimate_tone_freq(&[], 1e6), 0.0);
        assert_eq!(estimate_tone_freq(&[Cf32::ONE], 1e6), 0.0);
    }
}
