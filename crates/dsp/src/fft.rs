//! Radix-2 fast Fourier transform.
//!
//! An iterative, in-place Cooley-Tukey FFT with a cached twiddle-factor
//! table. Sizes must be powers of two; callers that need other lengths
//! zero-pad (see [`next_pow2`]). This is the workhorse behind LoRa
//! dechirp demodulation, FFT-based correlation in the universal
//! preamble detector, and spectral kill filters at the cloud.

use crate::num::Cf32;

/// Returns the smallest power of two `>= n` (and `>= 1`).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// A planned FFT of a fixed power-of-two size.
///
/// Construction precomputes the bit-reversal permutation and the
/// twiddle factors; [`Fft::forward`] and [`Fft::inverse`] then run with
/// no allocation. Plans are cheap to clone and safe to reuse across
/// threads (`&self` methods only).
#[derive(Clone)]
pub struct Fft {
    n: usize,
    // Bit-reversed index for each position; rev[i] < i entries are swapped once.
    rev: Vec<u32>,
    // Twiddles for the forward transform: e^{-2 pi i k / n} for k in 0..n/2.
    twiddles: Vec<Cf32>,
}

impl Fft {
    /// Plans an FFT of size `n`.
    ///
    /// # Panics
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "FFT size must be a power of two, got {n}"
        );
        let bits = n.trailing_zeros();
        let rev: Vec<u32> = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .collect();
        let twiddles: Vec<Cf32> = (0..n / 2)
            .map(|k| Cf32::cis(-2.0 * std::f32::consts::PI * k as f32 / n as f32))
            .collect();
        Fft { n, rev, twiddles }
    }

    /// The transform size.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the degenerate size-1 plan.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// In-place forward DFT: `X[k] = sum_n x[n] e^{-2 pi i k n / N}`.
    ///
    /// # Panics
    /// Panics if `buf.len()` differs from the planned size.
    pub fn forward(&self, buf: &mut [Cf32]) {
        assert_eq!(buf.len(), self.n, "buffer length must equal FFT size");
        self.transform(buf, false);
    }

    /// In-place inverse DFT, normalized by `1/N` so that
    /// `inverse(forward(x)) == x`.
    ///
    /// # Panics
    /// Panics if `buf.len()` differs from the planned size.
    pub fn inverse(&self, buf: &mut [Cf32]) {
        assert_eq!(buf.len(), self.n, "buffer length must equal FFT size");
        self.transform(buf, true);
        let k = 1.0 / self.n as f32;
        for z in buf.iter_mut() {
            *z *= k;
        }
    }

    fn transform(&self, buf: &mut [Cf32], inverse: bool) {
        let n = self.n;
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        // Iterative butterflies.
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len; // stride into the n/2-long twiddle table
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * step];
                    if inverse {
                        w = w.conj();
                    }
                    let a = buf[start + k];
                    let b = buf[start + k + half] * w;
                    buf[start + k] = a + b;
                    buf[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
    }
}

/// One-shot forward FFT of a power-of-two-length slice.
///
/// Convenience wrapper over the shared plan cache
/// ([`crate::engine::plan`]); repeated calls at the same size reuse
/// one plan.
pub fn fft(buf: &mut [Cf32]) {
    crate::engine::plan(buf.len()).forward(buf);
}

/// One-shot normalized inverse FFT of a power-of-two-length slice.
pub fn ifft(buf: &mut [Cf32]) {
    crate::engine::plan(buf.len()).inverse(buf);
}

/// Returns the index of the maximum-magnitude bin of a spectrum.
///
/// Ties resolve to the lowest index. Returns 0 for an empty slice.
pub fn peak_bin(spectrum: &[Cf32]) -> usize {
    let mut best = 0usize;
    let mut best_mag = f32::MIN;
    for (i, z) in spectrum.iter().enumerate() {
        let m = z.norm_sqr();
        if m > best_mag {
            best_mag = m;
            best = i;
        }
    }
    best
}

/// Maps an FFT bin index to its frequency in Hz given the sample rate,
/// treating bins above `n/2` as negative frequencies.
#[inline]
pub fn bin_to_freq(bin: usize, n: usize, fs: f64) -> f64 {
    let b = if bin <= n / 2 {
        bin as f64
    } else {
        bin as f64 - n as f64
    };
    b * fs / n as f64
}

/// Maps a frequency in Hz (positive or negative) to the nearest FFT bin
/// index in `0..n`.
#[inline]
pub fn freq_to_bin(freq: f64, n: usize, fs: f64) -> usize {
    let raw = (freq * n as f64 / fs).round() as i64;
    raw.rem_euclid(n as i64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::Cf32;

    fn assert_close(a: Cf32, b: Cf32, tol: f32) {
        assert!((a - b).abs() < tol, "expected {b:?}, got {a:?} (tol {tol})");
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let mut buf = vec![Cf32::ONE; 8];
        fft(&mut buf);
        assert_close(buf[0], Cf32::from_re(8.0), 1e-4);
        for z in &buf[1..] {
            assert!(z.abs() < 1e-4);
        }
    }

    #[test]
    fn single_tone_lands_in_expected_bin() {
        let n = 64;
        let k = 5;
        let mut buf: Vec<Cf32> = (0..n)
            .map(|i| Cf32::cis(2.0 * std::f32::consts::PI * k as f32 * i as f32 / n as f32))
            .collect();
        fft(&mut buf);
        assert_eq!(peak_bin(&buf), k);
        assert!(buf[k].abs() > 0.99 * n as f32);
    }

    #[test]
    fn negative_tone_lands_in_high_bin() {
        let n = 32;
        let mut buf: Vec<Cf32> = (0..n)
            .map(|i| Cf32::cis(-2.0 * std::f32::consts::PI * 3.0 * i as f32 / n as f32))
            .collect();
        fft(&mut buf);
        assert_eq!(peak_bin(&buf), n - 3);
    }

    #[test]
    fn inverse_roundtrips() {
        let n = 128;
        let orig: Vec<Cf32> = (0..n)
            .map(|i| Cf32::new((i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()))
            .collect();
        let mut buf = orig.clone();
        let plan = Fft::new(n);
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(orig.iter()) {
            assert_close(*a, *b, 1e-4);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 256;
        let sig: Vec<Cf32> = (0..n)
            .map(|i| Cf32::new((i as f32 * 1.7).sin(), (i as f32 * 0.3).sin()))
            .collect();
        let time_energy: f32 = sig.iter().map(|z| z.norm_sqr()).sum();
        let mut buf = sig;
        fft(&mut buf);
        let freq_energy: f32 = buf.iter().map(|z| z.norm_sqr()).sum::<f32>() / n as f32;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-4);
    }

    #[test]
    fn size_one_is_identity() {
        let mut buf = vec![Cf32::new(2.0, -1.0)];
        fft(&mut buf);
        assert_eq!(buf[0], Cf32::new(2.0, -1.0));
        ifft(&mut buf);
        assert_eq!(buf[0], Cf32::new(2.0, -1.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        let _ = Fft::new(12);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1000), 1024);
        assert_eq!(next_pow2(1024), 1024);
    }

    #[test]
    fn bin_freq_mapping_roundtrips() {
        let n = 1024;
        let fs = 1_000_000.0;
        for &f in &[0.0, 125_000.0, -40_000.0, 488_281.25] {
            let b = freq_to_bin(f, n, fs);
            let back = bin_to_freq(b, n, fs);
            assert!((back - f).abs() <= fs / n as f64 / 2.0 + 1e-6);
        }
    }

    #[test]
    fn linearity() {
        let n = 64;
        let x: Vec<Cf32> = (0..n).map(|i| Cf32::new(i as f32, -(i as f32))).collect();
        let y: Vec<Cf32> = (0..n).map(|i| Cf32::new((i as f32).cos(), 0.5)).collect();
        let plan = Fft::new(n);
        let mut fx = x.clone();
        let mut fy = y.clone();
        plan.forward(&mut fx);
        plan.forward(&mut fy);
        let mut fxy: Vec<Cf32> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        plan.forward(&mut fxy);
        for i in 0..n {
            assert_close(fxy[i], fx[i] + fy[i], 1e-2);
        }
    }
}
