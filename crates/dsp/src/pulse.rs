//! Pulse shaping for the FSK/PSK modulators.
//!
//! GFSK technologies (XBee, Z-Wave R2+, BLE) shape their frequency
//! pulse with a Gaussian filter characterized by its bandwidth-time
//! product BT; 802.15.4 O-QPSK uses half-sine chip shaping. Both
//! shapes, plus root-raised-cosine for completeness, live here.

use crate::fir::Fir;

/// Gaussian frequency-pulse filter taps for GFSK.
///
/// * `bt` — bandwidth-time product (0.3 for BLE, 0.5 for 802.15.4g).
/// * `sps` — samples per symbol.
/// * `span` — filter length in symbols (typically 2-4).
///
/// Taps are normalized to unit sum so the shaped NRZ stream keeps its
/// nominal deviation.
pub fn gaussian_taps(bt: f32, sps: usize, span: usize) -> Vec<f32> {
    assert!(bt > 0.0, "BT product must be positive");
    assert!(sps >= 1 && span >= 1, "sps and span must be >= 1");
    let n = sps * span + 1;
    let mid = (n - 1) as f32 / 2.0;
    // Standard GMSK Gaussian pulse: h(t) ~ exp(-2 pi^2 B^2 t^2 / ln 2),
    // with t in symbol periods and B = BT.
    let ln2 = std::f32::consts::LN_2;
    let k = 2.0 * std::f32::consts::PI * std::f32::consts::PI * bt * bt / ln2;
    let mut taps: Vec<f32> = (0..n)
        .map(|i| {
            let t = (i as f32 - mid) / sps as f32;
            (-k * t * t).exp()
        })
        .collect();
    let sum: f32 = taps.iter().sum();
    for t in &mut taps {
        *t /= sum;
    }
    taps
}

/// A Gaussian pulse-shaping filter ready to apply to an NRZ frequency
/// stream (one `+1`/`-1` value per sample).
pub fn gaussian_filter(bt: f32, sps: usize, span: usize) -> Fir {
    Fir::from_taps(gaussian_taps(bt, sps, span))
}

/// Half-sine chip pulse of `sps` samples, peak 1.0, as used by
/// IEEE 802.15.4 O-QPSK chip shaping.
pub fn half_sine(sps: usize) -> Vec<f32> {
    (0..sps)
        .map(|i| (std::f32::consts::PI * i as f32 / sps as f32).sin())
        .collect()
}

/// Root-raised-cosine filter taps.
///
/// * `beta` — roll-off in `(0, 1]`.
/// * `sps` — samples per symbol.
/// * `span` — length in symbols.
pub fn rrc_taps(beta: f32, sps: usize, span: usize) -> Vec<f32> {
    assert!(beta > 0.0 && beta <= 1.0, "roll-off must be in (0, 1]");
    let n = sps * span + 1;
    let mid = (n - 1) as f32 / 2.0;
    let pi = std::f32::consts::PI;
    let mut taps: Vec<f32> = (0..n)
        .map(|i| {
            let t = (i as f32 - mid) / sps as f32;
            if t.abs() < 1e-6 {
                1.0 - beta + 4.0 * beta / pi
            } else if (t.abs() - 1.0 / (4.0 * beta)).abs() < 1e-4 {
                // Singularity at t = +-1/(4 beta).
                (beta / 2f32.sqrt())
                    * ((1.0 + 2.0 / pi) * (pi / (4.0 * beta)).sin()
                        + (1.0 - 2.0 / pi) * (pi / (4.0 * beta)).cos())
            } else {
                let num =
                    (pi * t * (1.0 - beta)).sin() + 4.0 * beta * t * (pi * t * (1.0 + beta)).cos();
                let den = pi * t * (1.0 - (4.0 * beta * t) * (4.0 * beta * t));
                num / den
            }
        })
        .collect();
    // Normalize to unit energy.
    let e: f32 = taps.iter().map(|t| t * t).sum();
    let k = e.sqrt();
    for t in &mut taps {
        *t /= k;
    }
    taps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_taps_sum_to_one() {
        for &(bt, sps, span) in &[(0.3f32, 8usize, 3usize), (0.5, 4, 2), (1.0, 16, 4)] {
            let taps = gaussian_taps(bt, sps, span);
            let sum: f32 = taps.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "bt={bt} sum={sum}");
        }
    }

    #[test]
    fn gaussian_is_symmetric_and_peaked() {
        let taps = gaussian_taps(0.5, 8, 3);
        let n = taps.len();
        for i in 0..n {
            assert!((taps[i] - taps[n - 1 - i]).abs() < 1e-6);
        }
        let mid = n / 2;
        assert!(taps.iter().all(|&t| t <= taps[mid]));
    }

    #[test]
    fn smaller_bt_is_wider_pulse() {
        // Lower BT spreads energy further from center.
        let tight = gaussian_taps(1.0, 8, 4);
        let wide = gaussian_taps(0.3, 8, 4);
        let edge = 4; // samples from each edge
        let tight_edge: f32 = tight[..edge]
            .iter()
            .chain(&tight[tight.len() - edge..])
            .sum();
        let wide_edge: f32 = wide[..edge].iter().chain(&wide[wide.len() - edge..]).sum();
        assert!(wide_edge > tight_edge);
    }

    #[test]
    fn gaussian_smooths_nrz_transitions() {
        let fir = gaussian_filter(0.5, 8, 3);
        // NRZ stream: 4 symbols +1, 4 symbols -1, at 8 sps.
        let mut nrz = vec![1.0f32; 32];
        nrz.extend(std::iter::repeat_n(-1.0, 32));
        let shaped = fir.filter_real(&nrz);
        // The shaped signal must pass through intermediate values.
        assert!(shaped.iter().any(|&v| v.abs() < 0.5));
        // And settle to +-1 in steady state.
        assert!((shaped[16] - 1.0).abs() < 0.01);
        assert!((shaped[48] + 1.0).abs() < 0.01);
    }

    #[test]
    fn half_sine_shape() {
        let p = half_sine(16);
        assert_eq!(p.len(), 16);
        assert!(p[0].abs() < 1e-6);
        assert!((p[8] - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn rrc_has_unit_energy_and_symmetry() {
        let taps = rrc_taps(0.35, 8, 6);
        let e: f32 = taps.iter().map(|t| t * t).sum();
        assert!((e - 1.0).abs() < 1e-4);
        let n = taps.len();
        for i in 0..n {
            assert!((taps[i] - taps[n - 1 - i]).abs() < 1e-4);
        }
    }

    #[test]
    fn rrc_cascade_is_nyquist() {
        // RRC * RRC sampled at symbol instants ~ impulse (zero ISI).
        let sps = 8;
        let taps = rrc_taps(0.5, sps, 8);
        // Full convolution of taps with itself.
        let m = taps.len();
        let mut rc = vec![0.0f32; 2 * m - 1];
        for i in 0..m {
            for j in 0..m {
                rc[i + j] += taps[i] * taps[j];
            }
        }
        let center = m - 1;
        let peak = rc[center];
        for k in 1..4 {
            let v = rc[center + k * sps].abs();
            assert!(v < 0.02 * peak, "ISI at +{k} symbols: {v} vs peak {peak}");
        }
    }

    #[test]
    #[should_panic(expected = "BT")]
    fn gaussian_rejects_bad_bt() {
        let _ = gaussian_taps(0.0, 8, 3);
    }
}
