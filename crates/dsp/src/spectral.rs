//! Spectral band masking.
//!
//! The cloud's kill filters need surgical removal of energy in known
//! frequency bands from a finite capture. Band masks are applied
//! through a short-time Fourier transform with 50 %-overlapped
//! sqrt-Hann analysis/synthesis windows (a constant-overlap-add pair,
//! so an all-pass mask reconstructs the input exactly). The Hann taper
//! keeps spectral leakage of non-bin-aligned interferers out of the
//! passband — a whole-block rectangular FFT mask would smear several
//! percent of a mid-bin tone's energy across the spectrum, poisoning
//! the interference-cancellation subtraction downstream.
//!
//! [`suppress_bins`] is the separate whole-block primitive used by
//! KILL-CSS, whose caller works on symbol-aligned power-of-two windows
//! where the dechirped tones are exactly bin-aligned.

use crate::engine;
use crate::fft::{freq_to_bin, next_pow2};
use crate::num::Cf32;

/// A frequency band in Hz, `lo <= hi`, interpreted at complex baseband
/// (so both bounds may be negative).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Band {
    /// Lower edge in Hz.
    pub lo: f64,
    /// Upper edge in Hz.
    pub hi: f64,
}

impl Band {
    /// Creates a band, normalizing edge order.
    pub fn new(lo: f64, hi: f64) -> Self {
        if lo <= hi {
            Band { lo, hi }
        } else {
            Band { lo: hi, hi: lo }
        }
    }

    /// A band of `width` Hz centered on `center` Hz.
    pub fn centered(center: f64, width: f64) -> Self {
        Band::new(center - width / 2.0, center + width / 2.0)
    }

    /// Band width in Hz.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `f` lies inside the band (inclusive).
    pub fn contains(&self, f: f64) -> bool {
        (self.lo..=self.hi).contains(&f)
    }
}

/// Picks an STFT frame size for a capture: long enough for sharp band
/// edges, short enough to track per-symbol structure.
fn stft_frame(len: usize) -> usize {
    next_pow2(len / 8).clamp(256, 4096)
}

/// Applies `gain(f_hz) -> f32` to every STFT bin and resynthesizes.
fn stft_apply(signal: &[Cf32], fs: f64, gain: impl Fn(f64) -> f32) -> Vec<Cf32> {
    if signal.is_empty() {
        return Vec::new();
    }
    let n = stft_frame(signal.len());
    let hop = n / 2;
    let plan = engine::plan(n);
    // sqrt-Hann analysis and synthesis windows: their product is Hann,
    // which sums to 1 at 50 % overlap (COLA).
    let win: Vec<f32> = (0..n)
        .map(|i| {
            let h = 0.5 - 0.5 * (2.0 * std::f32::consts::PI * i as f32 / n as f32).cos();
            h.sqrt()
        })
        .collect();
    // Precompute the per-bin gains once.
    let gains: Vec<f32> = (0..n)
        .map(|bin| gain(crate::fft::bin_to_freq(bin, n, fs)))
        .collect();

    // Pad with a frame of silence each side so every input sample is
    // covered by a full complement of overlapping windows.
    let padded_len = signal.len() + 2 * n;
    let mut out = vec![Cf32::ZERO; padded_len];
    let mut frame = vec![Cf32::ZERO; n];
    let mut start = 0usize;
    while start + n <= padded_len {
        for (i, f) in frame.iter_mut().enumerate() {
            let src = start + i;
            let s = if src >= n && src - n < signal.len() {
                signal[src - n]
            } else {
                Cf32::ZERO
            };
            *f = s * win[i];
        }
        plan.forward(&mut frame);
        for (z, &g) in frame.iter_mut().zip(&gains) {
            *z *= g;
        }
        plan.inverse(&mut frame);
        for (i, &f) in frame.iter().enumerate() {
            out[start + i] += f * win[i];
        }
        start += hop;
    }
    out[n..n + signal.len()].to_vec()
}

/// Zeroes all spectral content of `signal` inside `bands`
/// (a "kill" mask). The returned vector has the original length.
pub fn suppress_bands(signal: &[Cf32], fs: f64, bands: &[Band]) -> Vec<Cf32> {
    stft_apply(signal, fs, |f| {
        if bands.iter().any(|b| b.contains(f)) {
            0.0
        } else {
            1.0
        }
    })
}

/// Zeroes all spectral content of `signal` *outside* `bands`
/// (a band-select mask).
pub fn select_bands(signal: &[Cf32], fs: f64, bands: &[Band]) -> Vec<Cf32> {
    stft_apply(signal, fs, |f| {
        if bands.iter().any(|b| b.contains(f)) {
            1.0
        } else {
            0.0
        }
    })
}

/// Scales spectral content inside `bands` by `gain` (0 = kill,
/// 1 = identity), leaving the rest untouched.
pub fn apply_mask(signal: &[Cf32], fs: f64, bands: &[Band], gain: f32) -> Vec<Cf32> {
    stft_apply(signal, fs, |f| {
        if bands.iter().any(|b| b.contains(f)) {
            gain
        } else {
            1.0
        }
    })
}

/// Zeroes a set of individual FFT *bins* (by index, on the padded-size
/// grid of `n = next_pow2(len)`) in a single whole-block transform —
/// the primitive behind KILL-CSS, which works on symbol-aligned
/// power-of-two windows where dechirped tones are exactly bin-aligned.
pub fn suppress_bins(signal: &[Cf32], bins: &[usize]) -> Vec<Cf32> {
    if signal.is_empty() {
        return Vec::new();
    }
    let n = next_pow2(signal.len());
    let plan = engine::plan(n);
    let mut buf = vec![Cf32::ZERO; n];
    buf[..signal.len()].copy_from_slice(signal);
    plan.forward(&mut buf);
    for &b in bins {
        if b < n {
            buf[b] = Cf32::ZERO;
        }
    }
    plan.inverse(&mut buf);
    buf.truncate(signal.len());
    buf
}

/// Fraction of total signal energy lying inside `bands` (0..=1),
/// measured on a whole-block transform.
pub fn band_energy_fraction(signal: &[Cf32], fs: f64, bands: &[Band]) -> f32 {
    if signal.is_empty() {
        return 0.0;
    }
    let n = next_pow2(signal.len());
    let plan = engine::plan(n);
    let mut buf = vec![Cf32::ZERO; n];
    buf[..signal.len()].copy_from_slice(signal);
    plan.forward(&mut buf);
    let mut inside = 0.0f64;
    let mut total = 0.0f64;
    for (bin, z) in buf.iter().enumerate() {
        let e = z.norm_sqr() as f64;
        total += e;
        let f = crate::fft::bin_to_freq(bin, n, fs);
        if bands.iter().any(|b| b.contains(f)) {
            inside += e;
        }
    }
    if total <= 0.0 {
        0.0
    } else {
        (inside / total) as f32
    }
}

/// Convenience: the padded-grid bin index of `freq_hz` for a signal of
/// `len` samples at rate `fs` (the grid [`suppress_bins`] uses).
pub fn padded_bin(freq_hz: f64, len: usize, fs: f64) -> usize {
    freq_to_bin(freq_hz, next_pow2(len), fs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::mix;
    use crate::power::mean_power;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<Cf32> {
        mix(&vec![Cf32::ONE; n], freq, fs)
    }

    #[test]
    fn band_basics() {
        let b = Band::new(10.0, -10.0);
        assert_eq!(b.lo, -10.0);
        assert_eq!(b.hi, 10.0);
        assert_eq!(b.width(), 20.0);
        assert!(b.contains(0.0));
        assert!(!b.contains(11.0));
        let c = Band::centered(-50.0, 20.0);
        assert_eq!(c.lo, -60.0);
        assert_eq!(c.hi, -40.0);
    }

    #[test]
    fn allpass_mask_is_identity() {
        // COLA property: gain-1 everywhere must reconstruct the input.
        let fs = 1e6;
        let sig: Vec<Cf32> = (0..3000)
            .map(|i| Cf32::new((i as f32 * 0.17).sin(), (i as f32 * 0.05).cos()))
            .collect();
        let out = apply_mask(&sig, fs, &[], 0.0);
        for (a, b) in out.iter().zip(&sig) {
            assert!((*a - *b).abs() < 1e-3, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn suppress_kills_inband_tone() {
        let fs = 1e6;
        // Deliberately non-bin-aligned tone to exercise leakage.
        let sig = tone(100_300.0, fs, 4096);
        let out = suppress_bands(&sig, fs, &[Band::centered(100e3, 10e3)]);
        let residual = mean_power(&out[200..3800]) / mean_power(&sig);
        assert!(residual < 5e-3, "residual {residual}");
    }

    #[test]
    fn suppress_preserves_outofband_tone() {
        let fs = 1e6;
        let sig = tone(-200e3, fs, 4096);
        let out = suppress_bands(&sig, fs, &[Band::centered(100e3, 10e3)]);
        let ratio = mean_power(&out[200..3800]) / mean_power(&sig);
        assert!((ratio - 1.0).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn suppress_separates_two_tones() {
        let fs = 1e6;
        let n = 4096;
        let a = tone(50e3, fs, n);
        let b = tone(-150e3, fs, n);
        let sum: Vec<Cf32> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let out = suppress_bands(&sum, fs, &[Band::centered(50e3, 8e3)]);
        // Interior residual should match tone b.
        let err: f32 = out[200..n - 200]
            .iter()
            .zip(&b[200..n - 200])
            .map(|(x, y)| (*x - *y).norm_sqr())
            .sum::<f32>()
            / (n - 400) as f32;
        assert!(err < 0.01, "residual error {err}");
    }

    #[test]
    fn select_keeps_only_band() {
        let fs = 1e6;
        let n = 4096;
        let a = tone(50e3, fs, n);
        let b = tone(-150e3, fs, n);
        let sum: Vec<Cf32> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let out = select_bands(&sum, fs, &[Band::centered(50e3, 8e3)]);
        let err: f32 = out[200..n - 200]
            .iter()
            .zip(&a[200..n - 200])
            .map(|(x, y)| (*x - *y).norm_sqr())
            .sum::<f32>()
            / (n - 400) as f32;
        assert!(err < 0.01, "residual error {err}");
    }

    #[test]
    fn gain_one_mask_is_identity_in_band() {
        let fs = 1e6;
        let sig = tone(75e3, fs, 2048);
        let out = apply_mask(&sig, fs, &[Band::centered(75e3, 50e3)], 1.0);
        for (a, b) in out[100..1900].iter().zip(&sig[100..1900]) {
            assert!((*a - *b).abs() < 1e-3);
        }
    }

    #[test]
    fn suppress_bins_removes_exact_bin() {
        let fs = 1e6;
        let n = 1024; // already pow2: bins are exact
        let k = 100;
        let f = k as f64 * fs / n as f64;
        let sig = tone(f, fs, n);
        let out = suppress_bins(&sig, &[k]);
        assert!(mean_power(&out) < 1e-4);
    }

    #[test]
    fn suppress_bins_ignores_out_of_range() {
        let sig = tone(1e3, 1e6, 64);
        let out = suppress_bins(&sig, &[usize::MAX, 9999]);
        let err: f32 = out
            .iter()
            .zip(&sig)
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum();
        assert!(err < 1e-6);
    }

    #[test]
    fn band_energy_fraction_sums_correctly() {
        let fs = 1e6;
        let n = 2048;
        let a = tone(50e3, fs, n);
        let b = tone(-150e3, fs, n);
        let sum: Vec<Cf32> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let frac = band_energy_fraction(&sum, fs, &[Band::centered(50e3, 8e3)]);
        assert!((frac - 0.5).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn empty_signal_handled() {
        assert!(suppress_bands(&[], 1e6, &[Band::new(0.0, 1.0)]).is_empty());
        assert!(select_bands(&[], 1e6, &[]).is_empty());
        assert!(suppress_bins(&[], &[1]).is_empty());
        assert_eq!(band_energy_fraction(&[], 1e6, &[]), 0.0);
    }

    #[test]
    fn padded_bin_matches_grid() {
        // len 1000 pads to 1024; 250 kHz at 1 Msps -> bin 256.
        assert_eq!(padded_bin(250e3, 1000, 1e6), 256);
        assert_eq!(padded_bin(-250e3, 1000, 1e6), 768);
    }
}
