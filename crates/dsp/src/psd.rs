//! Power spectral density estimation (Welch's method) and spectral
//! peak-band finding.
//!
//! The cloud's adaptive KILL-FREQUENCY variant uses these to *learn*
//! where an interferer concentrates its energy instead of relying on a
//! registry recipe — the paper's "generalized set of filters" direction
//! (Sec. 5).

use crate::engine;
use crate::num::Cf32;
use crate::spectral::Band;

/// A Welch PSD estimate.
#[derive(Clone, Debug)]
pub struct Psd {
    /// Power per bin (linear), bins in FFT order (DC first, negative
    /// frequencies in the upper half).
    pub power: Vec<f32>,
    /// Sample rate the estimate was computed at.
    pub fs: f64,
}

impl Psd {
    /// Number of bins.
    pub fn len(&self) -> usize {
        self.power.len()
    }

    /// Whether the estimate is empty.
    pub fn is_empty(&self) -> bool {
        self.power.is_empty()
    }

    /// Frequency of bin `i` in Hz (negative for the upper half).
    pub fn freq(&self, i: usize) -> f64 {
        crate::fft::bin_to_freq(i, self.power.len(), self.fs)
    }

    /// Median bin power — a robust noise-floor estimate.
    pub fn median_power(&self) -> f32 {
        self.percentile(50)
    }

    /// The `pct`-th percentile of bin power (0..=100).
    pub fn percentile(&self, pct: usize) -> f32 {
        if self.power.is_empty() {
            return 0.0;
        }
        let mut sorted = self.power.clone();
        sorted.sort_by(f32::total_cmp);
        sorted[(sorted.len() - 1) * pct.min(100) / 100]
    }
}

/// Finds the frequency bands where `psd` exceeds an absolute power
/// threshold, merging bins closer than `merge_hz` and dropping slivers
/// narrower than `min_width_hz`. Bands are returned by descending
/// power *density* (power per Hz) — a narrowband interferer's hot bins
/// outrank a wideband signal's plateau even at lower total power.
pub fn find_bands_above(psd: &Psd, threshold: f32, merge_hz: f64, min_width_hz: f64) -> Vec<Band> {
    if psd.is_empty() {
        return Vec::new();
    }
    let n = psd.len();
    let bin_hz = psd.fs / n as f64;
    let mut hot: Vec<(f64, f32)> = (0..n)
        .filter(|&i| psd.power[i] > threshold)
        .map(|i| (psd.freq(i), psd.power[i]))
        .collect();
    hot.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut bands: Vec<(Band, f32)> = Vec::new();
    for (f, p) in hot {
        match bands.last_mut() {
            Some((b, bp)) if f - b.hi <= merge_hz => {
                b.hi = f;
                *bp += p;
            }
            _ => bands.push((Band::new(f - bin_hz / 2.0, f + bin_hz / 2.0), p)),
        }
    }
    let mut bands: Vec<(Band, f32)> = bands
        .into_iter()
        .filter(|(b, _)| b.width() >= min_width_hz)
        .collect();
    bands.sort_by(|a, b| (b.1 as f64 / b.0.width()).total_cmp(&(a.1 as f64 / a.0.width())));
    bands.into_iter().map(|(b, _)| b).collect()
}

/// Welch PSD: Hann-windowed segments of `nfft` samples at 50% overlap,
/// periodograms averaged. Returns an all-zero estimate for input
/// shorter than one segment.
///
/// # Panics
/// Panics unless `nfft` is a power of two.
pub fn welch_psd(signal: &[Cf32], fs: f64, nfft: usize) -> Psd {
    assert!(nfft.is_power_of_two(), "nfft must be a power of two");
    let mut power = vec![0.0f32; nfft];
    if signal.len() < nfft {
        return Psd { power, fs };
    }
    let plan = engine::plan(nfft);
    let win: Vec<f32> = (0..nfft)
        .map(|i| 0.5 - 0.5 * (2.0 * std::f32::consts::PI * i as f32 / nfft as f32).cos())
        .collect();
    let win_energy: f32 = win.iter().map(|w| w * w).sum();
    let hop = nfft / 2;
    let mut segments = 0usize;
    let mut buf = vec![Cf32::ZERO; nfft];
    let mut start = 0usize;
    while start + nfft <= signal.len() {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = signal[start + i] * win[i];
        }
        plan.forward(&mut buf);
        for (p, z) in power.iter_mut().zip(&buf) {
            *p += z.norm_sqr();
        }
        segments += 1;
        start += hop;
    }
    if segments > 0 {
        // Normalize so a unit-power white signal averages ~1 per bin.
        let k = 1.0 / (segments as f32 * win_energy);
        for p in &mut power {
            *p *= k;
        }
    }
    Psd { power, fs }
}

/// [`find_bands_above`] with the threshold expressed as
/// `threshold_factor` times the PSD's median power.
pub fn find_peak_bands(
    psd: &Psd,
    threshold_factor: f32,
    merge_hz: f64,
    min_width_hz: f64,
) -> Vec<Band> {
    find_bands_above(
        psd,
        psd.median_power() * threshold_factor,
        merge_hz,
        min_width_hz,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::mix;

    fn tone(freq: f64, fs: f64, n: usize, amp: f32) -> Vec<Cf32> {
        mix(&vec![Cf32::from_re(amp); n], freq, fs)
    }

    #[test]
    fn white_noise_psd_is_flat() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let sig: Vec<Cf32> = (0..65_536)
            .map(|_| Cf32::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let psd = welch_psd(&sig, 1e6, 1024);
        let med = psd.median_power();
        let max = psd.power.iter().copied().fold(0.0f32, f32::max);
        assert!(max / med < 4.0, "flatness {max}/{med}");
    }

    #[test]
    fn tone_shows_as_narrow_peak() {
        let fs = 1e6;
        let sig = tone(125_000.0, fs, 32_768, 1.0);
        let psd = welch_psd(&sig, fs, 1024);
        let peak = (0..psd.len())
            .max_by(|&a, &b| psd.power[a].total_cmp(&psd.power[b]))
            .unwrap();
        assert!((psd.freq(peak) - 125_000.0).abs() < 2_000.0);
    }

    #[test]
    fn find_peak_bands_locates_fsk_tones() {
        let fs = 1e6;
        let n = 65_536;
        let mut sig = tone(25_000.0, fs, n, 1.0);
        let other = tone(-25_000.0, fs, n, 1.0);
        for (a, b) in sig.iter_mut().zip(&other) {
            *a += *b;
        }
        // Weak wideband floor.
        for (i, z) in sig.iter_mut().enumerate() {
            *z += Cf32::new(((i * 37) % 97) as f32 / 970.0 - 0.05, 0.0);
        }
        let psd = welch_psd(&sig, fs, 1024);
        let bands = find_peak_bands(&psd, 10.0, 3_000.0, 500.0);
        assert!(bands.len() >= 2, "{bands:?}");
        let hits = |f: f64| bands.iter().any(|b| b.contains(f));
        assert!(hits(25_000.0), "{bands:?}");
        assert!(hits(-25_000.0), "{bands:?}");
    }

    #[test]
    fn short_input_gives_empty_estimate() {
        let psd = welch_psd(&[Cf32::ONE; 10], 1e6, 1024);
        assert!(psd.power.iter().all(|&p| p == 0.0));
        assert!(find_peak_bands(&psd, 5.0, 1e3, 1e2).is_empty());
    }

    #[test]
    fn psd_freq_mapping() {
        let psd = Psd {
            power: vec![0.0; 8],
            fs: 8_000.0,
        };
        assert_eq!(psd.freq(0), 0.0);
        assert_eq!(psd.freq(1), 1_000.0);
        assert_eq!(psd.freq(7), -1_000.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_nfft() {
        let _ = welch_psd(&[Cf32::ONE; 100], 1e6, 100);
    }
}
