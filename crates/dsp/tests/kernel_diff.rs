//! Differential verification of the SIMD kernel backends against the
//! scalar reference.
//!
//! Every kernel in `galiot_dsp::kernels` is exercised on every
//! CPU-supported backend across degenerate and unaligned lengths —
//! empty, single-sample, one under/over each vector width (SSE holds 2
//! complex lanes, AVX 4; the real kernels 4 and 8), non-powers of two,
//! and 4096+ blocks — with two contracts:
//!
//! * **Bit-exact** (`to_bits` equality) for the element-wise kernels
//!   and the FIR: these sit on the waveform-synthesis path, where the
//!   golden fingerprints require byte-identical output from every
//!   backend.
//! * **ULP-bounded** for the reductions (`dot_conj`, `energy_f32`,
//!   `energy_f64`): both the scalar reference and the vector paths are
//!   compared against an f64 ground truth with an error budget of
//!   `n * eps_f32` relative to the sum of absolute terms — the bound a
//!   sequential f32 accumulation itself carries, with margin.
//!
//! Backend values are passed explicitly (`Backend::dot_conj(...)`), so
//! the suite never mutates the process-wide dispatcher and is safe
//! under the parallel test runner.

use galiot_dsp::kernels::Backend;
use galiot_dsp::Cf32;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The length schedule: degenerate, lane-1 / lane / lane+1 for every
/// vector width in play (2, 4, 8), non-powers of two, and 4096+.
const LENGTHS: [usize; 24] = [
    0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 1000, 2048, 4095, 4096,
    5000,
];

/// Tap counts for the FIR kernels: single-tap, even (delay rounds
/// down), typical odd designs, and longer-than-most-inputs.
const TAP_COUNTS: [usize; 7] = [1, 2, 3, 5, 9, 33, 129];

fn backends() -> Vec<Backend> {
    // Unsupported backends clamp to Scalar inside the dispatcher —
    // comparing them is vacuous but harmless, so keep the full list
    // and let each host verify what it can actually run.
    Backend::ALL
        .iter()
        .copied()
        .filter(|b| b.is_supported())
        .collect()
}

/// Deterministic complex test vector with a wide dynamic range
/// (magnitudes spanning ~2^-12..2^12) and mixed signs.
fn cvec(rng: &mut StdRng, n: usize) -> Vec<Cf32> {
    (0..n)
        .map(|_| {
            let e = rng.gen_range(-12i32..=12);
            let k = 2.0f32.powi(e);
            Cf32::new(
                (rng.gen::<f32>() * 2.0 - 1.0) * k,
                (rng.gen::<f32>() * 2.0 - 1.0) * k,
            )
        })
        .collect()
}

fn rvec(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n)
        .map(|_| {
            let e = rng.gen_range(-12i32..=12);
            (rng.gen::<f32>() * 2.0 - 1.0) * 2.0f32.powi(e)
        })
        .collect()
}

fn bits(z: Cf32) -> (u32, u32) {
    (z.re.to_bits(), z.im.to_bits())
}

// ---------------------------------------------------------------------------
// Bit-exact kernels
// ---------------------------------------------------------------------------

#[test]
fn mul_in_place_bit_exact_across_backends() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0001);
    for &n in &LENGTHS {
        let a = cvec(&mut rng, n);
        let b = cvec(&mut rng, n);
        let mut reference = a.clone();
        Backend::Scalar.mul_in_place(&mut reference, &b);
        for backend in backends() {
            let mut got = a.clone();
            backend.mul_in_place(&mut got, &b);
            for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
                assert_eq!(bits(*g), bits(*r), "{backend:?} n={n} sample {i}");
            }
        }
    }
}

#[test]
fn mul_in_place_truncates_to_common_prefix() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0002);
    let a = cvec(&mut rng, 37);
    let b = cvec(&mut rng, 19);
    for backend in backends() {
        let mut got = a.clone();
        backend.mul_in_place(&mut got, &b);
        // Beyond the prefix the buffer is untouched.
        for i in b.len()..a.len() {
            assert_eq!(bits(got[i]), bits(a[i]), "{backend:?} tail {i}");
        }
    }
}

#[test]
fn sub_scaled_bit_exact_across_backends() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0003);
    for &n in &LENGTHS {
        let x = cvec(&mut rng, n);
        let y = cvec(&mut rng, n);
        let g = Cf32::new(rng.gen::<f32>() * 2.0 - 1.0, rng.gen::<f32>() * 2.0 - 1.0);
        let mut reference = x.clone();
        Backend::Scalar.sub_scaled(&mut reference, &y, g);
        for backend in backends() {
            let mut got = x.clone();
            backend.sub_scaled(&mut got, &y, g);
            for (i, (a, r)) in got.iter().zip(&reference).enumerate() {
                assert_eq!(bits(*a), bits(*r), "{backend:?} n={n} sample {i}");
            }
        }
    }
}

#[test]
fn norm_sqr_into_bit_exact_across_backends() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0004);
    for &n in &LENGTHS {
        let x = cvec(&mut rng, n);
        let mut reference = vec![0.0f32; n];
        Backend::Scalar.norm_sqr_into(&x, &mut reference);
        for backend in backends() {
            let mut got = vec![0.0f32; n];
            backend.norm_sqr_into(&x, &mut got);
            for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
                assert_eq!(g.to_bits(), r.to_bits(), "{backend:?} n={n} sample {i}");
            }
        }
    }
}

#[test]
fn max_norm_sqr_bit_exact_across_backends() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0005);
    for &n in &LENGTHS {
        let x = cvec(&mut rng, n);
        let reference = Backend::Scalar.max_norm_sqr(&x);
        for backend in backends() {
            let got = backend.max_norm_sqr(&x);
            assert_eq!(got.to_bits(), reference.to_bits(), "{backend:?} n={n}");
        }
    }
}

#[test]
fn fir_same_bit_exact_across_backends() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0006);
    for &n in &LENGTHS {
        let x = cvec(&mut rng, n);
        for &nt in &TAP_COUNTS {
            let taps = rvec(&mut rng, nt);
            let mut reference = vec![Cf32::ZERO; n];
            Backend::Scalar.fir_same(&taps, &x, &mut reference);
            for backend in backends() {
                let mut got = vec![Cf32::ZERO; n];
                backend.fir_same(&taps, &x, &mut got);
                for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
                    assert_eq!(bits(*g), bits(*r), "{backend:?} n={n} taps={nt} out {i}");
                }
            }
        }
    }
}

#[test]
fn fir_same_real_bit_exact_across_backends() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0007);
    for &n in &LENGTHS {
        let x = rvec(&mut rng, n);
        for &nt in &TAP_COUNTS {
            let taps = rvec(&mut rng, nt);
            let mut reference = vec![0.0f32; n];
            Backend::Scalar.fir_same_real(&taps, &x, &mut reference);
            for backend in backends() {
                let mut got = vec![0.0f32; n];
                backend.fir_same_real(&taps, &x, &mut got);
                for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        r.to_bits(),
                        "{backend:?} n={n} taps={nt} out {i}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ULP-bounded reductions, checked against an f64 ground truth
// ---------------------------------------------------------------------------

/// Error budget for an n-term f32 reduction whose true value is
/// computed in f64: `margin * n * eps_f32 * scale + tiny`, where
/// `scale` is the sum of absolute terms. A sequential sum, a lane-split
/// sum and an FMA-contracted sum all satisfy this comfortably.
fn reduction_tol(n: usize, scale: f64) -> f64 {
    8.0 * (n.max(1) as f64) * f32::EPSILON as f64 * scale + 1e-20
}

#[test]
fn dot_conj_within_ulp_bound_of_f64_reference() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0008);
    for &n in &LENGTHS {
        let x = cvec(&mut rng, n);
        let h = cvec(&mut rng, n);
        let (mut re, mut im, mut scale_re, mut scale_im) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (a, b) in x.iter().zip(&h) {
            let (ar, ai) = (a.re as f64, a.im as f64);
            let (br, bi) = (b.re as f64, b.im as f64);
            re += ar * br + ai * bi;
            im += ai * br - ar * bi;
            scale_re += (ar * br).abs() + (ai * bi).abs();
            scale_im += (ai * br).abs() + (ar * bi).abs();
        }
        for backend in backends() {
            let got = backend.dot_conj(&x, &h);
            let tol_re = reduction_tol(n, scale_re);
            let tol_im = reduction_tol(n, scale_im);
            assert!(
                ((got.re as f64) - re).abs() <= tol_re,
                "{backend:?} n={n} re {} vs {re} (tol {tol_re})",
                got.re
            );
            assert!(
                ((got.im as f64) - im).abs() <= tol_im,
                "{backend:?} n={n} im {} vs {im} (tol {tol_im})",
                got.im
            );
        }
    }
}

#[test]
fn energy_within_ulp_bound_of_f64_reference() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0009);
    for &n in &LENGTHS {
        let x = cvec(&mut rng, n);
        let truth: f64 = x
            .iter()
            .map(|z| {
                let (r, i) = (z.re as f64, z.im as f64);
                r * r + i * i
            })
            .sum();
        let tol = reduction_tol(2 * n, truth);
        for backend in backends() {
            let got32 = backend.energy_f32(&x) as f64;
            assert!(
                (got32 - truth).abs() <= tol,
                "{backend:?} energy_f32 n={n}: {got32} vs {truth} (tol {tol})"
            );
            let got64 = backend.energy_f64(&x);
            assert!(
                (got64 - truth).abs() <= tol,
                "{backend:?} energy_f64 n={n}: {got64} vs {truth} (tol {tol})"
            );
        }
    }
}

#[test]
fn dot_conj_mismatched_lengths_use_common_prefix() {
    let mut rng = StdRng::seed_from_u64(0x5eed_000a);
    let x = cvec(&mut rng, 41);
    let h = cvec(&mut rng, 23);
    for backend in backends() {
        let a = backend.dot_conj(&x, &h);
        let b = backend.dot_conj(&x[..h.len()], &h);
        assert_eq!(bits(a), bits(b), "{backend:?}");
    }
}

// ---------------------------------------------------------------------------
// Randomized property sweep (random lengths AND random content)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_mul_in_place_matches_scalar(
        raw in collection::vec(any::<f32>(), 0..160),
        other in collection::vec(any::<f32>(), 0..160),
    ) {
        let a: Vec<Cf32> = raw.chunks(2).filter(|c| c.len() == 2)
            .map(|c| Cf32::new(c[0], c[1])).collect();
        let b: Vec<Cf32> = other.chunks(2).filter(|c| c.len() == 2)
            .map(|c| Cf32::new(c[0], c[1])).collect();
        let n = a.len().min(b.len());
        let mut reference = a.clone();
        Backend::Scalar.mul_in_place(&mut reference, &b);
        for backend in backends() {
            let mut got = a.clone();
            backend.mul_in_place(&mut got, &b);
            for i in 0..n {
                prop_assert_eq!(bits(got[i]), bits(reference[i]), "{:?} sample {}", backend, i);
            }
        }
    }

    #[test]
    fn prop_fir_same_real_matches_scalar(
        input in collection::vec(any::<f32>(), 0..96),
        taps in collection::vec(any::<f32>(), 1..24),
    ) {
        let mut reference = vec![0.0f32; input.len()];
        Backend::Scalar.fir_same_real(&taps, &input, &mut reference);
        for backend in backends() {
            let mut got = vec![0.0f32; input.len()];
            backend.fir_same_real(&taps, &input, &mut got);
            for (g, r) in got.iter().zip(&reference) {
                prop_assert_eq!(g.to_bits(), r.to_bits(), "{:?}", backend);
            }
        }
    }

    #[test]
    fn prop_dot_conj_close_to_scalar(
        raw in collection::vec(any::<f32>(), 0..160),
    ) {
        let x: Vec<Cf32> = raw.chunks(2).filter(|c| c.len() == 2)
            .map(|c| Cf32::new(c[0], c[1])).collect();
        // Correlate against a shifted copy of itself: worst-case
        // partially-coherent sums.
        let h: Vec<Cf32> = x.iter().rev().copied().collect();
        let mut scale = 0.0f64;
        for (a, b) in x.iter().zip(&h) {
            scale += (a.re as f64 * b.re as f64).abs()
                + (a.im as f64 * b.im as f64).abs()
                + (a.im as f64 * b.re as f64).abs()
                + (a.re as f64 * b.im as f64).abs();
        }
        let reference = Backend::Scalar.dot_conj(&x, &h);
        let tol = reduction_tol(x.len(), scale) as f32;
        for backend in backends() {
            let got = backend.dot_conj(&x, &h);
            prop_assert!(
                (got.re - reference.re).abs() <= tol && (got.im - reference.im).abs() <= tol,
                "{:?}: {:?} vs {:?} (tol {})", backend, got, reference, tol
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Degenerate-length contract of the public scalar surfaces
// ---------------------------------------------------------------------------

/// The pre-SIMD scalar surfaces (audited for this suite) keep their
/// documented degenerate behavior after the kernel rewiring: no
/// panics, no NaN, defined shapes.
#[test]
fn public_surfaces_degenerate_lengths() {
    use galiot_dsp::window::Window;

    // fir: taps longer than the input stay bounds-checked and finite.
    let fir = galiot_dsp::fir::Fir::lowpass(100e3, 1e6, 65, Window::Hamming);
    let short = vec![Cf32::ONE; 3];
    let out = fir.filter(&short);
    assert_eq!(out.len(), 3);
    assert!(out.iter().all(|z| !z.is_degenerate()));
    assert!(fir.filter(&[]).is_empty());
    assert!(fir.filter_real(&[]).is_empty());
    let out1 = fir.filter(&[Cf32::ONE]);
    assert_eq!(out1.len(), 1);
    assert!(!out1[0].is_degenerate());

    // corr: zero-length template and template-longer-than-signal.
    assert!(galiot_dsp::corr::xcorr_direct(&short, &[]).is_empty());
    assert!(galiot_dsp::corr::xcorr_direct(&[], &short).is_empty());
    assert!(galiot_dsp::corr::xcorr_normalized(&short, &[]).is_empty());
    let one = galiot_dsp::corr::xcorr_direct(&short[..1], &short[..1]);
    assert_eq!(one.len(), 1);

    // power: empty and single-sample.
    assert_eq!(galiot_dsp::power::mean_power(&[]), 0.0);
    assert_eq!(galiot_dsp::power::energy(&[]), 0.0);
    assert_eq!(galiot_dsp::power::peak_power(&[]), 0.0);
    assert!((galiot_dsp::power::mean_power(&[Cf32::ONE]) - 1.0).abs() < 1e-6);

    // chirp: dechirp truncates to the shorter operand.
    let d = galiot_dsp::chirp::dechirp(&short, &short[..2]);
    assert_eq!(d.len(), 2);
    assert!(galiot_dsp::chirp::dechirp(&[], &short).is_empty());

    // mix: empty signals are a no-op.
    let mut empty: Vec<Cf32> = Vec::new();
    galiot_dsp::mix::mix_in_place(&mut empty, 1e3, 1e6, 0.0);
    galiot_dsp::mix::rotate(&mut empty, 0.5);
    assert!(galiot_dsp::mix::mix(&[], 1e3, 1e6).is_empty());
}
