//! The trace as a test oracle: structural invariants every healthy
//! pipeline run must satisfy.
//!
//! Observability that nothing checks is write-only telemetry. These
//! functions turn a drained [`Trace`] into standing correctness
//! assertions, used by `tests/trace_conformance.rs`:
//!
//! 1. **Terminal accounting** ([`check_ship_terminals`]): every
//!    shipped segment's journey must end — a `ship` event with no
//!    `decode`/`shed`/`lost`/`quarantined` for the same seq means the
//!    pipeline silently swallowed a segment. `retried` marks are
//!    counted but deliberately non-terminal: a retried segment still
//!    owes the trace a real ending.
//! 2. **Well-formed nesting** ([`check_nesting`]): within one thread,
//!    spans must be properly nested (a SIC round entirely inside its
//!    worker-decode span, never straddling it) — partial overlap
//!    means a guard leaked across stage boundaries.
//! 3. **No drops** ([`check_no_drops`]): full rings count drops
//!    rather than wrapping; a conformance run must size its rings so
//!    the count stays zero, otherwise the other two checks are
//!    vacuous.

use crate::{split_epoch_seq, split_seq, EventKind, SpanRec, Trace, NO_SEQ};
use std::collections::BTreeMap;

/// Totals from [`check_ship_terminals`], for reconciliation against
/// `Metrics` counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShipAccounting {
    /// Distinct segment seqs with a `ship` event.
    pub shipped: u64,
    /// Total `decode` events.
    pub decoded: u64,
    /// Total `shed` events.
    pub shed: u64,
    /// Total `lost` events.
    pub lost: u64,
    /// Total `retried` events (non-terminal re-dispatch marks).
    pub retried: u64,
    /// Total `quarantined` events.
    pub quarantined: u64,
}

/// Check that every `ship` event's seq reaches at least one terminal
/// event (`decode`, `shed`, `lost`, or `quarantined`), and that no
/// terminal event refers to a seq that was never shipped. Returns
/// per-kind totals.
pub fn check_ship_terminals(trace: &Trace) -> Result<ShipAccounting, String> {
    let mut acc = ShipAccounting::default();
    // seq -> (shipped?, terminal count)
    let mut by_seq: BTreeMap<u64, (bool, u64)> = BTreeMap::new();
    for e in &trace.events {
        if e.seq == NO_SEQ {
            return Err(format!("{} event without a seq tag", e.kind.name()));
        }
        let entry = by_seq.entry(e.seq).or_insert((false, 0));
        match e.kind {
            EventKind::Ship => {
                entry.0 = true;
            }
            EventKind::Decode => {
                entry.1 += 1;
                acc.decoded += 1;
            }
            EventKind::Shed => {
                entry.1 += 1;
                acc.shed += 1;
            }
            EventKind::Lost => {
                entry.1 += 1;
                acc.lost += 1;
            }
            EventKind::Retried => {
                acc.retried += 1;
            }
            EventKind::Quarantined => {
                entry.1 += 1;
                acc.quarantined += 1;
            }
        }
    }
    for (seq, (shipped, terminals)) in &by_seq {
        if *shipped {
            acc.shipped += 1;
            if *terminals == 0 {
                return Err(format!(
                    "segment seq {seq} was shipped but has no terminal \
                     decode/shed/lost/quarantined event"
                ));
            }
        } else {
            return Err(format!(
                "segment seq {seq} has a terminal event but was never shipped"
            ));
        }
    }
    Ok(acc)
}

/// Per-gateway terminal accounting for fleet traces: groups every
/// lifecycle event by the gateway id folded into its seq word (see
/// [`crate::tag_seq`]) and runs the [`check_ship_terminals`] invariant
/// independently per session. A single-gateway trace comes back as one
/// entry under gateway 0.
///
/// This is the cross-gateway oracle: it catches a mux or shard that
/// conflates two sessions' sequence spaces (a terminal event would
/// land under the wrong gateway and leave the right one unterminated).
pub fn check_gateway_terminals(trace: &Trace) -> Result<BTreeMap<u16, ShipAccounting>, String> {
    let mut out = BTreeMap::new();
    // gateway -> seq -> (shipped?, terminal count)
    let mut by_gw: BTreeMap<u16, BTreeMap<u64, (bool, u64)>> = BTreeMap::new();
    for e in &trace.events {
        if e.seq == NO_SEQ {
            return Err(format!("{} event without a seq tag", e.kind.name()));
        }
        let (gw, seq) = split_seq(e.seq);
        let acc: &mut ShipAccounting = out.entry(gw).or_default();
        let entry = by_gw
            .entry(gw)
            .or_default()
            .entry(seq)
            .or_insert((false, 0));
        match e.kind {
            EventKind::Ship => entry.0 = true,
            EventKind::Decode => {
                entry.1 += 1;
                acc.decoded += 1;
            }
            EventKind::Shed => {
                entry.1 += 1;
                acc.shed += 1;
            }
            EventKind::Lost => {
                entry.1 += 1;
                acc.lost += 1;
            }
            EventKind::Retried => {
                acc.retried += 1;
            }
            EventKind::Quarantined => {
                entry.1 += 1;
                acc.quarantined += 1;
            }
        }
    }
    for (gw, by_seq) in &by_gw {
        let acc = out.get_mut(gw).expect("accounting entry exists");
        for (seq, (shipped, terminals)) in by_seq {
            if *shipped {
                acc.shipped += 1;
                if *terminals == 0 {
                    return Err(format!(
                        "gateway {gw}: segment seq {seq} was shipped but has no \
                         terminal decode/shed/lost/quarantined event"
                    ));
                }
            } else {
                return Err(format!(
                    "gateway {gw}: segment seq {seq} has a terminal event but was \
                     never shipped"
                ));
            }
        }
    }
    Ok(out)
}

/// Per-(gateway, epoch) terminal accounting for failover traces:
/// like [`check_gateway_terminals`], but further splits each
/// gateway's sequence space by the restart epoch folded into its
/// high sequence bits (see [`crate::split_epoch_seq`]). Every life of
/// a restarted gateway must independently satisfy the ship→terminal
/// invariant — a restarted instance colliding with its past self
/// (reusing a pre-crash seq) would terminate under the old epoch and
/// leave its own entry unterminated, which this check rejects.
pub fn check_epoch_terminals(
    trace: &Trace,
) -> Result<BTreeMap<(u16, u64), ShipAccounting>, String> {
    let mut out = BTreeMap::new();
    // (gateway, epoch) -> seq -> (shipped?, terminal count)
    let mut by_life: BTreeMap<(u16, u64), BTreeMap<u64, (bool, u64)>> = BTreeMap::new();
    for e in &trace.events {
        if e.seq == NO_SEQ {
            return Err(format!("{} event without a seq tag", e.kind.name()));
        }
        let (gw, tagged) = split_seq(e.seq);
        let (epoch, seq) = split_epoch_seq(tagged);
        let key = (gw, epoch);
        let acc: &mut ShipAccounting = out.entry(key).or_default();
        let entry = by_life
            .entry(key)
            .or_default()
            .entry(seq)
            .or_insert((false, 0));
        match e.kind {
            EventKind::Ship => entry.0 = true,
            EventKind::Decode => {
                entry.1 += 1;
                acc.decoded += 1;
            }
            EventKind::Shed => {
                entry.1 += 1;
                acc.shed += 1;
            }
            EventKind::Lost => {
                entry.1 += 1;
                acc.lost += 1;
            }
            EventKind::Retried => {
                acc.retried += 1;
            }
            EventKind::Quarantined => {
                entry.1 += 1;
                acc.quarantined += 1;
            }
        }
    }
    for ((gw, epoch), by_seq) in &by_life {
        let acc = out
            .get_mut(&(*gw, *epoch))
            .expect("accounting entry exists");
        for (seq, (shipped, terminals)) in by_seq {
            if *shipped {
                acc.shipped += 1;
                if *terminals == 0 {
                    return Err(format!(
                        "gateway {gw} epoch {epoch}: segment seq {seq} was shipped \
                         but has no terminal decode/shed/lost/quarantined event"
                    ));
                }
            } else {
                return Err(format!(
                    "gateway {gw} epoch {epoch}: segment seq {seq} has a terminal \
                     event but was never shipped"
                ));
            }
        }
    }
    Ok(out)
}

/// Check that, within every thread, spans are properly nested under
/// the half-open interval `[start, start + dur)`: any two spans are
/// either disjoint or one contains the other.
pub fn check_nesting(trace: &Trace) -> Result<(), String> {
    let mut by_tid: BTreeMap<usize, Vec<&SpanRec>> = BTreeMap::new();
    for s in &trace.spans {
        by_tid.entry(s.tid).or_default().push(s);
    }
    for (tid, mut spans) in by_tid {
        // Equal starts: the longer span is the enclosing one.
        spans.sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.dur_ns)));
        let mut stack: Vec<u64> = Vec::new();
        for s in spans {
            let end = s.start_ns + s.dur_ns;
            while stack.last().is_some_and(|&top| top <= s.start_ns) {
                stack.pop();
            }
            if let Some(&top) = stack.last() {
                if end > top {
                    return Err(format!(
                        "thread {tid}: {} span [{}..{}) partially overlaps an \
                         enclosing span ending at {top}",
                        s.stage.name(),
                        s.start_ns,
                        end
                    ));
                }
            }
            stack.push(end);
        }
    }
    Ok(())
}

/// Check that no ring overflowed during the session.
pub fn check_no_drops(trace: &Trace) -> Result<(), String> {
    if trace.dropped > 0 {
        Err(format!(
            "{} records dropped: rings too small for this run",
            trace.dropped
        ))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventRec, Stage};

    fn span(tid: usize, stage: Stage, start: u64, dur: u64) -> SpanRec {
        SpanRec {
            tid,
            stage,
            seq: NO_SEQ,
            start_ns: start,
            dur_ns: dur,
        }
    }

    fn event(kind: EventKind, seq: u64, t: u64) -> EventRec {
        EventRec {
            tid: 0,
            kind,
            seq,
            t_ns: t,
        }
    }

    #[test]
    fn terminal_accounting_accepts_complete_chains() {
        let trace = Trace {
            events: vec![
                event(EventKind::Ship, 0, 10),
                event(EventKind::Ship, 1, 11),
                event(EventKind::Ship, 2, 12),
                event(EventKind::Decode, 0, 20),
                event(EventKind::Shed, 1, 21),
                event(EventKind::Lost, 2, 22),
            ],
            ..Default::default()
        };
        let acc = check_ship_terminals(&trace).unwrap();
        assert_eq!(
            acc,
            ShipAccounting {
                shipped: 3,
                decoded: 1,
                shed: 1,
                lost: 1,
                ..Default::default()
            }
        );
    }

    #[test]
    fn retried_is_counted_but_not_terminal() {
        // A retried segment that eventually decodes is complete…
        let trace = Trace {
            events: vec![
                event(EventKind::Ship, 0, 10),
                event(EventKind::Retried, 0, 15),
                event(EventKind::Decode, 0, 20),
            ],
            ..Default::default()
        };
        let acc = check_ship_terminals(&trace).unwrap();
        assert_eq!(acc.retried, 1);
        assert_eq!(acc.decoded, 1);

        // …but a retry mark alone leaves the journey unfinished.
        let trace = Trace {
            events: vec![
                event(EventKind::Ship, 0, 10),
                event(EventKind::Retried, 0, 15),
            ],
            ..Default::default()
        };
        let err = check_ship_terminals(&trace).unwrap_err();
        assert!(err.contains("no terminal"), "{err}");
    }

    #[test]
    fn quarantined_terminates_a_shipped_segment() {
        let trace = Trace {
            events: vec![
                event(EventKind::Ship, 0, 10),
                event(EventKind::Retried, 0, 15),
                event(EventKind::Retried, 0, 18),
                event(EventKind::Quarantined, 0, 20),
            ],
            ..Default::default()
        };
        let acc = check_ship_terminals(&trace).unwrap();
        assert_eq!(
            acc,
            ShipAccounting {
                shipped: 1,
                retried: 2,
                quarantined: 1,
                ..Default::default()
            }
        );
        // Quarantine without a ship is still rejected.
        let trace = Trace {
            events: vec![event(EventKind::Quarantined, 9, 20)],
            ..Default::default()
        };
        assert!(check_ship_terminals(&trace).is_err());
    }

    #[test]
    fn terminal_accounting_rejects_swallowed_segments() {
        let trace = Trace {
            events: vec![
                event(EventKind::Ship, 0, 10),
                event(EventKind::Ship, 1, 11),
                event(EventKind::Decode, 0, 20),
            ],
            ..Default::default()
        };
        let err = check_ship_terminals(&trace).unwrap_err();
        assert!(err.contains("seq 1"), "{err}");
    }

    #[test]
    fn terminal_accounting_rejects_unshipped_terminals() {
        let trace = Trace {
            events: vec![event(EventKind::Decode, 5, 20)],
            ..Default::default()
        };
        let err = check_ship_terminals(&trace).unwrap_err();
        assert!(err.contains("never shipped"), "{err}");
    }

    #[test]
    fn gateway_accounting_splits_sessions_and_survives_overlapping_seqs() {
        use crate::tag_seq;
        // Gateways 1 and 2 both emit seqs {0, 1}; gateway 0 emits seq 0.
        let trace = Trace {
            events: vec![
                event(EventKind::Ship, tag_seq(1, 0), 1),
                event(EventKind::Ship, tag_seq(1, 1), 2),
                event(EventKind::Ship, tag_seq(2, 0), 3),
                event(EventKind::Ship, tag_seq(2, 1), 4),
                event(EventKind::Ship, tag_seq(0, 0), 5),
                event(EventKind::Decode, tag_seq(1, 0), 10),
                event(EventKind::Decode, tag_seq(1, 1), 11),
                event(EventKind::Lost, tag_seq(2, 0), 12),
                event(EventKind::Shed, tag_seq(2, 1), 13),
                event(EventKind::Decode, tag_seq(0, 0), 14),
            ],
            ..Default::default()
        };
        let by_gw = check_gateway_terminals(&trace).unwrap();
        assert_eq!(by_gw.len(), 3);
        assert_eq!(by_gw[&1].shipped, 2);
        assert_eq!(by_gw[&1].decoded, 2);
        assert_eq!(
            by_gw[&2],
            ShipAccounting {
                shipped: 2,
                decoded: 0,
                shed: 1,
                lost: 1,
                ..Default::default()
            }
        );
        assert_eq!(by_gw[&0].decoded, 1);
    }

    #[test]
    fn gateway_accounting_rejects_cross_session_conflation() {
        use crate::tag_seq;
        // Gateway 2's seq 0 terminates under gateway 1: both sessions
        // are now broken and the check must say so.
        let trace = Trace {
            events: vec![
                event(EventKind::Ship, tag_seq(1, 0), 1),
                event(EventKind::Ship, tag_seq(2, 0), 2),
                event(EventKind::Decode, tag_seq(1, 0), 10),
                event(EventKind::Decode, tag_seq(1, 1), 11),
            ],
            ..Default::default()
        };
        let err = check_gateway_terminals(&trace).unwrap_err();
        assert!(err.contains("never shipped"), "{err}");
    }

    #[test]
    fn epoch_accounting_splits_lives_of_a_restarted_gateway() {
        use crate::{tag_seq, EPOCH_SHIFT};
        let e1 = 1u64 << EPOCH_SHIFT;
        // Gateway 3 lives twice: epoch 0 seqs {0,1}, epoch 1 seqs {0}.
        // Both lives reuse per-epoch seq 0 without colliding.
        let trace = Trace {
            events: vec![
                event(EventKind::Ship, tag_seq(3, 0), 1),
                event(EventKind::Ship, tag_seq(3, 1), 2),
                event(EventKind::Ship, tag_seq(3, e1), 3),
                event(EventKind::Decode, tag_seq(3, 0), 10),
                event(EventKind::Lost, tag_seq(3, 1), 11),
                event(EventKind::Decode, tag_seq(3, e1), 12),
            ],
            ..Default::default()
        };
        let by_life = check_epoch_terminals(&trace).unwrap();
        assert_eq!(by_life.len(), 2);
        assert_eq!(
            by_life[&(3, 0)],
            ShipAccounting {
                shipped: 2,
                decoded: 1,
                shed: 0,
                lost: 1,
                ..Default::default()
            }
        );
        assert_eq!(
            by_life[&(3, 1)],
            ShipAccounting {
                shipped: 1,
                decoded: 1,
                shed: 0,
                lost: 0,
                ..Default::default()
            }
        );
    }

    #[test]
    fn epoch_accounting_rejects_a_restart_colliding_with_its_past() {
        use crate::{tag_seq, EPOCH_SHIFT};
        // Epoch 1 shipped a segment but its terminal landed under the
        // pre-crash epoch 0 seq space: the restart collided with its
        // past self.
        let trace = Trace {
            events: vec![
                event(EventKind::Ship, tag_seq(4, 1u64 << EPOCH_SHIFT), 1),
                event(EventKind::Decode, tag_seq(4, 0), 2),
            ],
            ..Default::default()
        };
        let err = check_epoch_terminals(&trace).unwrap_err();
        assert!(err.contains("epoch"), "{err}");
    }

    #[test]
    fn nesting_accepts_containment_and_adjacency() {
        let trace = Trace {
            spans: vec![
                span(0, Stage::WorkerDecode, 100, 100),
                span(0, Stage::SicRound, 110, 30),
                span(0, Stage::KillFilter, 115, 10),
                span(0, Stage::SicRound, 140, 60), // inner end == outer end
                span(0, Stage::WorkerDecode, 200, 50), // starts exactly at prior end
                // Other thread overlapping thread 0 freely: fine.
                span(1, Stage::Compress, 120, 500),
            ],
            ..Default::default()
        };
        check_nesting(&trace).unwrap();
    }

    #[test]
    fn nesting_rejects_partial_overlap() {
        let trace = Trace {
            spans: vec![
                span(0, Stage::WorkerDecode, 100, 50),
                span(0, Stage::SicRound, 140, 30), // straddles the end at 150
            ],
            ..Default::default()
        };
        let err = check_nesting(&trace).unwrap_err();
        assert!(err.contains("partially overlaps"), "{err}");
    }

    #[test]
    fn drop_check() {
        let mut trace = Trace::default();
        check_no_drops(&trace).unwrap();
        trace.dropped = 3;
        assert!(check_no_drops(&trace).is_err());
    }
}
