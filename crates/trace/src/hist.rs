//! Log-bucketed latency histogram with exact mergeability.
//!
//! Buckets are powers of two in nanoseconds: bucket 0 holds values
//! `{0, 1}`, bucket `i` (for `i >= 1`) holds `[2^i, 2^(i+1))`. The 64
//! buckets cover the entire `u64` range, so [`Histogram::record`]
//! never saturates or clips. Merging is element-wise integer
//! addition, which makes it exactly associative and commutative — the
//! property the conformance oracle relies on when per-thread and
//! per-run recordings are folded into one report (and which the
//! property tests in `tests/hist_props.rs` pin down).
//!
//! Quantiles are reported as the upper bound of the first bucket
//! whose cumulative count reaches the target rank, clamped to the
//! exact maximum ever recorded. Both pieces are monotone, so
//! `p50 <= p95 <= p99 <= max` holds for arbitrary inputs.

/// Number of log2 buckets; covers all of `u64`.
pub const N_BUCKETS: usize = 64;

/// A mergeable log2-bucketed histogram of `u64` samples (nanoseconds
/// by convention throughout this crate, but the math is
/// unit-agnostic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    pub(crate) buckets: [u64; N_BUCKETS],
    pub(crate) count: u64,
    pub(crate) sum: u128,
    pub(crate) max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; N_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Index of the bucket that holds `v`: `floor(log2(max(v, 1)))`.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        (63 - (v | 1).leading_zeros()) as usize
    }

    /// Inclusive `(lo, hi)` value bounds of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < N_BUCKETS, "bucket index out of range");
        match i {
            0 => (0, 1),
            63 => (1 << 63, u64::MAX),
            _ => (1u64 << i, (1u64 << (i + 1)) - 1),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Fold `other` into `self` (element-wise; exact, order-independent).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; N_BUCKETS] {
        &self.buckets
    }

    /// Upper-bound quantile estimate: the upper bound of the first
    /// bucket whose cumulative count reaches rank `ceil(q * count)`,
    /// clamped to the exact recorded maximum. Monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                let (_, hi) = Self::bucket_bounds(i);
                return hi.min(self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Point summary for reports.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            p50_ns: self.p50(),
            p95_ns: self.p95(),
            p99_ns: self.p99(),
            max_ns: self.max,
            mean_ns: self.mean(),
        }
    }
}

/// Point summary of a [`Histogram`]: what the JSON reports carry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of recorded samples.
    pub count: u64,
    /// Median estimate, nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile estimate, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile estimate, nanoseconds.
    pub p99_ns: u64,
    /// Exact maximum, nanoseconds.
    pub max_ns: u64,
    /// Exact mean, nanoseconds.
    pub mean_ns: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let i = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} bucket={i} bounds=({lo},{hi})");
        }
    }

    #[test]
    fn quantiles_are_ordered_and_clamped() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 3, 100, 5000, 5001] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 5001);
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
        assert!(h.p99() <= h.max());
        // All samples in the top bucket => every quantile clamps to max.
        let mut one = Histogram::new();
        one.record(7777);
        assert_eq!(one.p50(), 7777);
        assert_eq!(one.p99(), 7777);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_equals_recording_concatenation() {
        let xs = [1u64, 9, 40, 40, 1000];
        let ys = [0u64, 2, 65535, 12];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for &v in &xs {
            a.record(v);
            both.record(v);
        }
        for &v in &ys {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }
}
