//! # galiot-trace — structured observability for the GalioT pipeline
//!
//! The paper's pitch — a cheap front-end plus a cloud tier beating
//! commodity gateways — only holds if we can account for where every
//! microsecond goes between capture and decode. This crate is that
//! accounting: **spans** (timed stage executions), **events**
//! (instantaneous lifecycle marks: ship / decode / shed / lost), and
//! per-stage **latency histograms**, recorded into per-thread
//! lock-free ring buffers with near-zero cost when tracing is off.
//!
//! ## Design constraints
//!
//! - **Near-zero disabled cost.** [`span`] and [`event`] check one
//!   relaxed atomic and return without reading the clock when tracing
//!   is off. The hot path never allocates: a record is four `u64`
//!   stores into a pre-sized ring.
//! - **Lock-free recording, no `unsafe`.** Each thread owns one
//!   [`Arc`]'d ring of atomic slot quads; it is the only writer.
//!   Slots are claimed with a relaxed `fetch_add` and published with a
//!   release store of the tag word. A full ring *counts drops* instead
//!   of wrapping, so the conformance oracle can demand `dropped == 0`
//!   rather than silently losing the records it is about to assert on.
//! - **Sessions are serialized.** One global recorder means two
//!   concurrent traced runs would interleave; [`TraceSession`] holds a
//!   process-wide lock for its lifetime, so parallel `cargo test`
//!   threads queue instead of corrupting each other's traces.
//! - **Drain after quiescence.** [`TraceSession::finish`] must be
//!   called after the traced pipeline's threads have been joined
//!   (`StreamingGaliot::run` returns post-join, so the natural call
//!   order is correct). Records written by still-running threads may
//!   be missed or half-visible.
//!
//! Threads discover the current session through a generation counter:
//! each session bump invalidates every thread's cached ring handle, so
//! reused test threads and freshly spawned pipeline threads alike
//! register a new ring on their first record.
//!
//! Exporters live in [`export`] (chrome://tracing JSON + stats
//! report); the structural test oracle lives in [`verify`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod hist;
pub mod verify;

pub use hist::{Histogram, Summary, N_BUCKETS};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Number of traced pipeline stages.
pub const N_STAGES: usize = 12;

/// Sentinel "no segment sequence number" value for spans and events
/// that are not tied to one shipped segment.
pub const NO_SEQ: u64 = u64::MAX;

/// Default per-thread ring capacity (records).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Bit position of the gateway id inside a gateway-tagged seq word.
const GATEWAY_SHIFT: u32 = 48;
/// Mask of the per-gateway sequence-number bits of a tagged seq word.
const SEQ_MASK: u64 = (1u64 << GATEWAY_SHIFT) - 1;

/// Folds a gateway id into a span/event seq word so fleet traces can
/// be disaggregated per session: gateway in the top 16 bits, the
/// per-gateway sequence number in the low 48.
///
/// Gateway 0 (the single-gateway deployment) maps to the raw seq, so
/// every pre-fleet trace consumer sees unchanged numbers. [`NO_SEQ`]
/// is preserved for any gateway — an untagged record stays untagged.
pub fn tag_seq(gateway: u16, seq: u64) -> u64 {
    if gateway == 0 || seq == NO_SEQ {
        seq
    } else {
        ((gateway as u64) << GATEWAY_SHIFT) | (seq & SEQ_MASK)
    }
}

/// Splits a tagged seq word back into `(gateway, seq)`. The inverse
/// of [`tag_seq`] for every seq below 2^48 (gateway emission counters
/// are dense from 0, so real traffic never gets close).
pub fn split_seq(tagged: u64) -> (u16, u64) {
    if tagged == NO_SEQ {
        (0, NO_SEQ)
    } else {
        ((tagged >> GATEWAY_SHIFT) as u16, tagged & SEQ_MASK)
    }
}

/// Bit position of the session-restart epoch inside a gateway's
/// 48-bit local sequence word. A restarted gateway instance numbers
/// its segments from `instance << EPOCH_SHIFT`, fencing its sequence
/// space off from every earlier life of the same gateway: 8 epoch
/// bits (256 restarts) over 2^40 segments per life, both far beyond
/// any real session.
pub const EPOCH_SHIFT: u32 = 40;

/// Splits a gateway-local sequence word (the `seq` half of
/// [`split_seq`]) into `(epoch, per-epoch seq)` so trace accounting
/// can prove a restarted session's pre- and post-crash traffic never
/// mix.
pub fn split_epoch_seq(seq: u64) -> (u64, u64) {
    (seq >> EPOCH_SHIFT, seq & ((1u64 << EPOCH_SHIFT) - 1))
}

/// A traced pipeline stage. The discriminant indexes the global
/// per-stage histogram table and [`Stage::ALL`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// SDR front-end digitization (gain, IQ imbalance, DC, quantize).
    FrontendCapture = 0,
    /// Universal summed-preamble detection pass over a capture.
    UniversalDetect = 1,
    /// Matched-filter-bank detection pass over a capture.
    MatchedDetect = 2,
    /// Segment extraction around scored detections.
    Extract = 3,
    /// Edge (gateway-local) decode attempt on one segment.
    EdgeDecode = 4,
    /// Block-floating-point compression of one shipped segment.
    Compress = 5,
    /// ARQ sender: encode + serialize + push one data datagram.
    ArqSend = 6,
    /// ARQ receiver: decode + ack + forward one datagram.
    ArqRecv = 7,
    /// Cloud worker: unpack + full SIC decode of one segment.
    WorkerDecode = 8,
    /// One successful SIC round (classify → demodulate → cancel).
    SicRound = 9,
    /// One kill-filter application to a residual.
    KillFilter = 10,
    /// Reassembly: in-order release of one segment's frames.
    Reassembly = 11,
}

impl Stage {
    /// All stages, in discriminant order.
    pub const ALL: [Stage; N_STAGES] = [
        Stage::FrontendCapture,
        Stage::UniversalDetect,
        Stage::MatchedDetect,
        Stage::Extract,
        Stage::EdgeDecode,
        Stage::Compress,
        Stage::ArqSend,
        Stage::ArqRecv,
        Stage::WorkerDecode,
        Stage::SicRound,
        Stage::KillFilter,
        Stage::Reassembly,
    ];

    /// Stable snake_case name used in every exporter and report.
    pub const fn name(self) -> &'static str {
        match self {
            Stage::FrontendCapture => "frontend_capture",
            Stage::UniversalDetect => "universal_detect",
            Stage::MatchedDetect => "matched_detect",
            Stage::Extract => "extract",
            Stage::EdgeDecode => "edge_decode",
            Stage::Compress => "compress",
            Stage::ArqSend => "arq_send",
            Stage::ArqRecv => "arq_recv",
            Stage::WorkerDecode => "worker_decode",
            Stage::SicRound => "sic_round",
            Stage::KillFilter => "kill_filter",
            Stage::Reassembly => "reassembly",
        }
    }

    /// Inverse of the discriminant, for decoding ring slots.
    pub fn from_index(i: usize) -> Option<Stage> {
        Stage::ALL.get(i).copied()
    }
}

/// An instantaneous segment-lifecycle mark. `Ship` must eventually be
/// matched by a terminal `Decode`, `Shed`, `Lost`, or `Quarantined`
/// for the same sequence number — the core conformance invariant.
/// `Retried` is the one non-terminal fate mark: it records a decode
/// attempt the pool supervisor gave up on and re-dispatched, so a
/// retried segment still needs a terminal event later.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// Segment left the gateway toward the cloud tier.
    Ship = 0,
    /// Segment was decoded by a cloud worker (terminal).
    Decode = 1,
    /// Segment was shed under backpressure (terminal).
    Shed = 2,
    /// Segment was declared lost by the ARQ sender (terminal).
    Lost = 3,
    /// A decode attempt failed (panic or lease expiry) and the pool
    /// supervisor re-dispatched the segment (non-terminal).
    Retried = 4,
    /// Segment exhausted its decode retries and was quarantined to the
    /// dead-letter record (terminal).
    Quarantined = 5,
}

impl EventKind {
    /// All event kinds, in discriminant order.
    pub const ALL: [EventKind; 6] = [
        EventKind::Ship,
        EventKind::Decode,
        EventKind::Shed,
        EventKind::Lost,
        EventKind::Retried,
        EventKind::Quarantined,
    ];

    /// Stable name used in exporters and reports.
    pub const fn name(self) -> &'static str {
        match self {
            EventKind::Ship => "ship",
            EventKind::Decode => "decode",
            EventKind::Shed => "shed",
            EventKind::Lost => "lost",
            EventKind::Retried => "retried",
            EventKind::Quarantined => "quarantined",
        }
    }

    fn from_code(c: u8) -> Option<EventKind> {
        EventKind::ALL.get(c as usize).copied()
    }
}

// ---------------------------------------------------------------------------
// Global recorder state
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static GENERATION: AtomicU64 = AtomicU64::new(0);
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static NEXT_TID: AtomicUsize = AtomicUsize::new(0);
static SESSION_LOCK: Mutex<()> = Mutex::new(());
static REGISTRY: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();
static STAGE_HISTS: [AtomicHist; N_STAGES] = [const { AtomicHist::new() }; N_STAGES];

/// Tag-word bit distinguishing event slots from span slots.
const TAG_EVENT_BIT: u64 = 1 << 8;
/// Tag value of a slot that was claimed but never published.
const SLOT_EMPTY: u64 = u64::MAX;

#[inline]
fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Tracing must stay usable across panic-injection tests; a poisoned
    // lock carries no broken invariant here (the state is reset at
    // every session start).
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Slot {
    tag: AtomicU64,
    seq: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            tag: AtomicU64::new(SLOT_EMPTY),
            seq: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

struct ThreadRing {
    tid: usize,
    name: String,
    slots: Box<[Slot]>,
    len: AtomicUsize,
    dropped: AtomicU64,
}

impl ThreadRing {
    fn push(&self, tag: u64, seq: u64, a: u64, b: u64) {
        let i = self.len.fetch_add(1, Ordering::Relaxed);
        if i >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let s = &self.slots[i];
        s.seq.store(seq, Ordering::Relaxed);
        s.a.store(a, Ordering::Relaxed);
        s.b.store(b, Ordering::Relaxed);
        // Publish last: a drain that races a straggler sees either the
        // whole record or an empty slot, never a torn one.
        s.tag.store(tag, Ordering::Release);
    }
}

thread_local! {
    static LOCAL: RefCell<Option<(u64, Arc<ThreadRing>)>> = const { RefCell::new(None) };
}

fn with_ring(f: impl FnOnce(&ThreadRing)) {
    LOCAL.with(|cell| {
        let mut local = cell.borrow_mut();
        let generation = GENERATION.load(Ordering::Acquire);
        let stale = match &*local {
            Some((g, _)) => *g != generation,
            None => true,
        };
        if stale {
            *local = Some((generation, register_ring()));
        }
        if let Some((_, ring)) = &*local {
            f(ring);
        }
    });
}

fn register_ring() -> Arc<ThreadRing> {
    let capacity = RING_CAPACITY.load(Ordering::Relaxed);
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let name = std::thread::current()
        .name()
        .map(str::to_owned)
        .unwrap_or_else(|| format!("thread-{tid}"));
    let slots: Box<[Slot]> = (0..capacity).map(|_| Slot::empty()).collect();
    let ring = Arc::new(ThreadRing {
        tid,
        name,
        slots,
        len: AtomicUsize::new(0),
        dropped: AtomicU64::new(0),
    });
    lock(&REGISTRY).push(Arc::clone(&ring));
    ring
}

struct AtomicHist {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl AtomicHist {
    const fn new() -> AtomicHist {
        AtomicHist {
            buckets: [const { AtomicU64::new(0) }; N_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[Histogram::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Histogram {
        let mut buckets = [0u64; N_BUCKETS];
        for (b, a) in buckets.iter_mut().zip(self.buckets.iter()) {
            *b = a.load(Ordering::Relaxed);
        }
        Histogram {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed) as u128,
            max: self.max.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------------

/// Is a trace session currently recording?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Open a timed span for `stage`, tagged with a segment sequence
/// number (or [`NO_SEQ`]). The span is recorded when the returned
/// guard drops. When tracing is disabled this is one relaxed atomic
/// load — the clock is never read and nothing is recorded.
#[inline]
pub fn span(stage: Stage, seq: u64) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard {
            stage,
            seq,
            start_ns: 0,
            armed: false,
        };
    }
    SpanGuard {
        stage,
        seq,
        start_ns: now_ns(),
        armed: true,
    }
}

/// Record an instantaneous lifecycle event for segment `seq`.
#[inline]
pub fn event(kind: EventKind, seq: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let t = now_ns();
    with_ring(|r| r.push(kind as u64 | TAG_EVENT_BIT, seq, t, 0));
}

/// RAII guard returned by [`span`]; records the span on drop.
#[must_use = "a span measures the scope of its guard; binding to _ drops it immediately"]
pub struct SpanGuard {
    stage: Stage,
    seq: u64,
    start_ns: u64,
    armed: bool,
}

impl SpanGuard {
    /// Re-tag the span with a sequence number learned mid-stage
    /// (e.g. the ARQ receiver knows the seq only after decoding).
    #[inline]
    pub fn set_seq(&mut self, seq: u64) {
        self.seq = seq;
    }

    /// Drop the span without recording it (e.g. the failed final SIC
    /// round that merely discovers there is nothing left to decode).
    #[inline]
    pub fn discard(mut self) {
        self.armed = false;
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let dur = now_ns().saturating_sub(self.start_ns);
        STAGE_HISTS[self.stage as usize].record(dur);
        with_ring(|r| r.push(self.stage as u64, self.seq, self.start_ns, dur));
    }
}

// ---------------------------------------------------------------------------
// Sessions and drained traces
// ---------------------------------------------------------------------------

/// An exclusive recording session. Created by [`TraceSession::start`],
/// consumed by [`TraceSession::finish`]. Holds a process-wide lock so
/// concurrent sessions serialize; dropping without `finish` disables
/// tracing and discards the recording.
pub struct TraceSession {
    guard: Option<MutexGuard<'static, ()>>,
}

impl TraceSession {
    /// Start recording with the default per-thread ring capacity.
    pub fn start() -> TraceSession {
        TraceSession::start_with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// Start recording with an explicit per-thread ring capacity
    /// (records per thread; floored at 16).
    pub fn start_with_capacity(capacity: usize) -> TraceSession {
        let guard = SESSION_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        lock(&REGISTRY).clear();
        NEXT_TID.store(0, Ordering::Relaxed);
        RING_CAPACITY.store(capacity.max(16), Ordering::Relaxed);
        for h in &STAGE_HISTS {
            h.reset();
        }
        let _ = EPOCH.get_or_init(Instant::now);
        // Publish the new generation before enabling so every thread's
        // first record registers a fresh ring.
        GENERATION.fetch_add(1, Ordering::Release);
        ENABLED.store(true, Ordering::SeqCst);
        TraceSession { guard: Some(guard) }
    }

    /// Stop recording and drain every thread's ring into a [`Trace`].
    ///
    /// Call only after the traced pipeline's threads have been joined
    /// (see the crate docs); records from still-running threads may be
    /// missed.
    pub fn finish(mut self) -> Trace {
        ENABLED.store(false, Ordering::SeqCst);
        let rings: Vec<Arc<ThreadRing>> = lock(&REGISTRY).drain(..).collect();
        let mut trace = Trace {
            spans: Vec::new(),
            events: Vec::new(),
            threads: Vec::new(),
            dropped: 0,
            hists: STAGE_HISTS.iter().map(AtomicHist::snapshot).collect(),
        };
        for ring in &rings {
            trace.threads.push(ThreadInfo {
                tid: ring.tid,
                name: ring.name.clone(),
            });
            trace.dropped += ring.dropped.load(Ordering::Relaxed);
            let n = ring.len.load(Ordering::Relaxed).min(ring.slots.len());
            for s in &ring.slots[..n] {
                let tag = s.tag.load(Ordering::Acquire);
                if tag == SLOT_EMPTY {
                    continue;
                }
                let seq = s.seq.load(Ordering::Relaxed);
                let a = s.a.load(Ordering::Relaxed);
                let b = s.b.load(Ordering::Relaxed);
                if tag & TAG_EVENT_BIT != 0 {
                    if let Some(kind) = EventKind::from_code((tag & 0xff) as u8) {
                        trace.events.push(EventRec {
                            tid: ring.tid,
                            kind,
                            seq,
                            t_ns: a,
                        });
                    }
                } else if let Some(stage) = Stage::from_index(tag as usize) {
                    trace.spans.push(SpanRec {
                        tid: ring.tid,
                        stage,
                        seq,
                        start_ns: a,
                        dur_ns: b,
                    });
                }
            }
        }
        trace.threads.sort_by_key(|t| t.tid);
        trace.spans.sort_by_key(|s| (s.start_ns, s.tid));
        trace.events.sort_by_key(|e| (e.t_ns, e.tid));
        self.guard.take();
        trace
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
    }
}

/// One completed span, drained from a thread ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRec {
    /// Session-local thread id (dense, assigned at first record).
    pub tid: usize,
    /// The stage this span timed.
    pub stage: Stage,
    /// Segment sequence number, or [`NO_SEQ`].
    pub seq: u64,
    /// Start time, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// One instantaneous event, drained from a thread ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventRec {
    /// Session-local thread id.
    pub tid: usize,
    /// What happened.
    pub kind: EventKind,
    /// Segment sequence number, or [`NO_SEQ`].
    pub seq: u64,
    /// Timestamp, nanoseconds since the process trace epoch.
    pub t_ns: u64,
}

/// A thread that recorded at least once during the session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadInfo {
    /// Session-local thread id.
    pub tid: usize,
    /// OS thread name at registration (pipeline threads are named,
    /// e.g. `galiot-uplink`).
    pub name: String,
}

/// Everything one [`TraceSession`] recorded: raw spans and events
/// (sorted by time), per-thread identities, the drop count, and the
/// per-stage latency histograms.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// All completed spans, sorted by start time.
    pub spans: Vec<SpanRec>,
    /// All events, sorted by timestamp.
    pub events: Vec<EventRec>,
    /// Threads that recorded during the session.
    pub threads: Vec<ThreadInfo>,
    /// Records lost to full rings (conformance demands 0).
    pub dropped: u64,
    hists: Vec<Histogram>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace {
            spans: Vec::new(),
            events: Vec::new(),
            threads: Vec::new(),
            dropped: 0,
            hists: vec![Histogram::new(); N_STAGES],
        }
    }
}

impl Trace {
    /// The latency histogram for `stage`.
    pub fn histogram(&self, stage: Stage) -> &Histogram {
        &self.hists[stage as usize]
    }

    /// Iterate `(stage, histogram)` pairs in stage order.
    pub fn stage_histograms(&self) -> impl Iterator<Item = (Stage, &Histogram)> {
        Stage::ALL.iter().copied().zip(self.hists.iter())
    }

    /// Number of recorded spans for `stage`.
    pub fn span_count(&self, stage: Stage) -> u64 {
        self.spans.iter().filter(|s| s.stage == stage).count() as u64
    }

    /// Number of recorded events of `kind`.
    pub fn event_count(&self, kind: EventKind) -> u64 {
        self.events.iter().filter(|e| e.kind == kind).count() as u64
    }

    /// All spans tagged with segment `seq`, in time order.
    pub fn spans_for_seq(&self, seq: u64) -> Vec<&SpanRec> {
        self.spans.iter().filter(|s| s.seq == seq).collect()
    }

    /// All events tagged with segment `seq`, in time order.
    pub fn events_for_seq(&self, seq: u64) -> Vec<&EventRec> {
        self.events.iter().filter(|e| e.seq == seq).collect()
    }

    /// Serialize to `chrome://tracing` JSON (see [`export`]).
    pub fn chrome_trace_json(&self) -> String {
        export::chrome_trace_json(self)
    }

    /// Write the chrome trace to `path`.
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        export::write_chrome_trace(self, path)
    }

    /// Per-stage/per-event stats report as JSON (see [`export`]).
    pub fn stats_json(&self) -> String {
        export::stats_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_invisible() {
        assert!(!enabled());
        // No session: spans and events must record nothing, and a
        // subsequent empty session must not see them.
        event(EventKind::Ship, 1);
        {
            let _s = span(Stage::Compress, 1);
        }
        let session = TraceSession::start();
        let trace = session.finish();
        assert!(trace.spans.is_empty());
        assert!(trace.events.is_empty());
        assert_eq!(trace.dropped, 0);
        assert_eq!(trace.histogram(Stage::Compress).count(), 0);
    }

    #[test]
    fn tagged_seqs_roundtrip_and_gateway_zero_is_transparent() {
        assert_eq!(tag_seq(0, 17), 17);
        assert_eq!(tag_seq(0, NO_SEQ), NO_SEQ);
        assert_eq!(tag_seq(9, NO_SEQ), NO_SEQ);
        assert_eq!(split_seq(NO_SEQ), (0, NO_SEQ));
        for (gw, seq) in [
            (1u16, 0u64),
            (1, 17),
            (2, 17),
            (513, 1 << 40),
            (u16::MAX - 1, 3),
        ] {
            let tagged = tag_seq(gw, seq);
            assert_eq!(split_seq(tagged), (gw, seq), "gw {gw} seq {seq}");
        }
        // Distinct sessions with identical seqs never collide.
        assert_ne!(tag_seq(1, 5), tag_seq(2, 5));
    }

    #[test]
    fn span_event_roundtrip_with_seq() {
        let session = TraceSession::start();
        {
            let mut s = span(Stage::WorkerDecode, NO_SEQ);
            s.set_seq(42);
            event(EventKind::Ship, 42);
            event(EventKind::Decode, 42);
        }
        {
            span(Stage::SicRound, NO_SEQ).discard();
        }
        let trace = session.finish();
        assert_eq!(trace.span_count(Stage::WorkerDecode), 1);
        assert_eq!(trace.span_count(Stage::SicRound), 0);
        assert_eq!(trace.histogram(Stage::SicRound).count(), 0);
        assert_eq!(trace.spans[0].seq, 42);
        assert_eq!(trace.event_count(EventKind::Ship), 1);
        assert_eq!(trace.event_count(EventKind::Decode), 1);
        assert_eq!(trace.histogram(Stage::WorkerDecode).count(), 1);
        // Events were recorded inside the span's lifetime.
        let s = trace.spans[0];
        for e in &trace.events {
            assert!(e.t_ns >= s.start_ns && e.t_ns <= s.start_ns + s.dur_ns);
        }
    }

    #[test]
    fn full_ring_counts_drops_instead_of_wrapping() {
        let session = TraceSession::start_with_capacity(16);
        for i in 0..40u64 {
            event(EventKind::Ship, i);
        }
        let trace = session.finish();
        assert_eq!(trace.events.len(), 16);
        assert_eq!(trace.dropped, 24);
        // The *first* records survive (no wraparound corruption).
        assert_eq!(trace.events[0].seq, 0);
        assert_eq!(trace.events[15].seq, 15);
    }

    #[test]
    fn threads_register_fresh_rings_per_session() {
        let session = TraceSession::start();
        event(EventKind::Ship, 7);
        let handle = std::thread::Builder::new()
            .name("ring-test".into())
            .spawn(|| {
                let _s = span(Stage::Extract, NO_SEQ);
            })
            .unwrap();
        handle.join().unwrap();
        let trace = session.finish();
        assert_eq!(trace.threads.len(), 2);
        assert!(trace.threads.iter().any(|t| t.name == "ring-test"));

        // Same (reused) main thread, next session: counters reset.
        let session = TraceSession::start();
        event(EventKind::Ship, 8);
        let trace = session.finish();
        assert_eq!(trace.threads.len(), 1);
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].seq, 8);
    }

    #[test]
    fn histograms_match_span_records() {
        let session = TraceSession::start();
        for _ in 0..10 {
            let _s = span(Stage::Compress, NO_SEQ);
        }
        let trace = session.finish();
        assert_eq!(trace.histogram(Stage::Compress).count(), 10);
        assert_eq!(trace.span_count(Stage::Compress), 10);
        let h = trace.histogram(Stage::Compress);
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99() && h.p99() <= h.max());
    }
}
