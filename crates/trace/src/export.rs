//! Trace exporters: `chrome://tracing` JSON and a per-stage stats
//! report.
//!
//! The chrome format is the "JSON array format" understood by
//! `chrome://tracing`, Perfetto, and Speedscope: one `X` (complete)
//! event per span with microsecond `ts`/`dur`, one `i` (instant)
//! event per lifecycle mark, plus `M` metadata records naming each
//! thread. Segment sequence numbers ride in `args.seq`, so following
//! one packet across threads is a search for its seq.
//!
//! The stats report is the same per-stage summary [`crate::Trace`]
//! feeds into `Metrics`: count / p50 / p95 / p99 / max / mean per
//! stage, totals per event kind, and the ring drop count.

use crate::{EventKind, Trace, NO_SEQ};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

fn seq_args(seq: u64) -> String {
    if seq == NO_SEQ {
        String::new()
    } else {
        format!(",\"args\":{{\"seq\":{seq}}}")
    }
}

/// Serialize a [`Trace`] to `chrome://tracing` JSON.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(128 * (trace.spans.len() + trace.events.len()) + 256);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for t in &trace.threads {
        push_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            t.tid,
            escape(&t.name)
        );
    }
    for s in &trace.spans {
        push_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"galiot\",\"ph\":\"X\",\
             \"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}{}}}",
            s.stage.name(),
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3,
            s.tid,
            seq_args(s.seq)
        );
    }
    for e in &trace.events {
        push_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"galiot\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{:.3},\"pid\":1,\"tid\":{}{}}}",
            e.kind.name(),
            e.t_ns as f64 / 1e3,
            e.tid,
            seq_args(e.seq)
        );
    }
    out.push_str("]}");
    out
}

/// Write the chrome trace for `trace` to `path`.
pub fn write_chrome_trace(trace: &Trace, path: &Path) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json(trace))
}

/// Per-stage/per-event stats report as a JSON object.
pub fn stats_json(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("{\"stages\":{");
    let mut first = true;
    for (stage, h) in trace.stage_histograms() {
        if h.count() == 0 {
            continue;
        }
        push_sep(&mut out, &mut first);
        let s = h.summary();
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"p50_ns\":{},\"p95_ns\":{},\
             \"p99_ns\":{},\"max_ns\":{},\"mean_ns\":{:.1}}}",
            stage.name(),
            s.count,
            s.p50_ns,
            s.p95_ns,
            s.p99_ns,
            s.max_ns,
            s.mean_ns
        );
    }
    out.push_str("},\"events\":{");
    let mut first = true;
    for kind in EventKind::ALL {
        push_sep(&mut out, &mut first);
        let _ = write!(out, "\"{}\":{}", kind.name(), trace.event_count(kind));
    }
    let _ = write!(out, "}},\"dropped\":{}}}", trace.dropped);
    out
}

/// Render one stage's summary as a JSON object fragment (shared by
/// the bench bin and `Metrics`' own report).
pub fn summary_json(stage_name: &str, h: &crate::Histogram) -> String {
    let s = h.summary();
    format!(
        "\"{}\":{{\"count\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\
         \"max_ns\":{},\"mean_ns\":{:.1}}}",
        escape(stage_name),
        s.count,
        s.p50_ns,
        s.p95_ns,
        s.p99_ns,
        s.max_ns,
        s.mean_ns
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{event, span, Stage, TraceSession};

    #[test]
    fn chrome_export_contains_spans_events_and_thread_names() {
        let session = TraceSession::start();
        {
            let _s = span(Stage::Compress, 3);
            event(EventKind::Ship, 3);
        }
        let trace = session.finish();
        let json = chrome_trace_json(&trace);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"compress\""));
        assert!(json.contains("\"name\":\"ship\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"seq\":3"));
    }

    #[test]
    fn stats_report_includes_counts_and_drops() {
        let session = TraceSession::start();
        {
            let _s = span(Stage::Extract, NO_SEQ);
        }
        event(EventKind::Shed, 9);
        let trace = session.finish();
        let json = stats_json(&trace);
        assert!(json.contains("\"extract\":{\"count\":1"));
        assert!(json.contains("\"shed\":1"));
        assert!(json.contains("\"dropped\":0"));
        // Untouched stages are omitted from the report.
        assert!(!json.contains("kill_filter"));
    }
}
