//! Property tests for the log-bucketed histogram: the algebraic laws
//! the conformance oracle and the `Metrics` fold rely on.
//!
//! - merge is associative and commutative (exact, element-wise);
//! - every recorded value falls inside its reported bucket's bounds;
//! - quantiles are ordered: p50 <= p95 <= p99 <= max, and max is the
//!   exact maximum of the inputs.

use galiot_trace::{Histogram, N_BUCKETS};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative(
        xs in proptest::collection::vec(any::<u64>(), 0..64),
        ys in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let (a, b) = (hist_of(&xs), hist_of(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        xs in proptest::collection::vec(any::<u64>(), 0..48),
        ys in proptest::collection::vec(any::<u64>(), 0..48),
        zs in proptest::collection::vec(any::<u64>(), 0..48),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_with_empty_is_identity(
        xs in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let a = hist_of(&xs);
        let mut merged = Histogram::new();
        merged.merge(&a);
        prop_assert_eq!(&merged, &a);
        let mut merged = a.clone();
        merged.merge(&Histogram::new());
        prop_assert_eq!(&merged, &a);
    }

    #[test]
    fn merge_equals_concatenated_recording(
        xs in proptest::collection::vec(any::<u64>(), 0..64),
        ys in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let mut merged = hist_of(&xs);
        merged.merge(&hist_of(&ys));
        let mut concat = xs.clone();
        concat.extend_from_slice(&ys);
        prop_assert_eq!(merged, hist_of(&concat));
    }

    #[test]
    fn recorded_values_fall_in_their_bucket_bounds(v in any::<u64>()) {
        let i = Histogram::bucket_index(v);
        prop_assert!(i < N_BUCKETS);
        let (lo, hi) = Histogram::bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "v={} bucket={} bounds=({},{})", v, i, lo, hi);
        // And the histogram actually lands it there.
        let h = hist_of(&[v]);
        prop_assert_eq!(h.buckets()[i], 1);
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), 1);
    }

    #[test]
    fn quantiles_are_ordered_full_range(
        xs in proptest::collection::vec(any::<u64>(), 1..128),
    ) {
        let h = hist_of(&xs);
        prop_assert!(h.p50() <= h.p95());
        prop_assert!(h.p95() <= h.p99());
        prop_assert!(h.p99() <= h.max());
        prop_assert_eq!(h.max(), xs.iter().copied().max().unwrap());
        prop_assert_eq!(h.count(), xs.len() as u64);
        prop_assert_eq!(h.sum(), xs.iter().map(|&v| v as u128).sum::<u128>());
    }

    #[test]
    fn quantiles_are_ordered_latency_like(
        xs in proptest::collection::vec(50u64..5_000_000, 1..128),
    ) {
        // Realistic nanosecond latencies cluster in few buckets —
        // the regime the per-stage reports actually see.
        let h = hist_of(&xs);
        prop_assert!(h.p50() <= h.p95());
        prop_assert!(h.p95() <= h.p99());
        prop_assert!(h.p99() <= h.max());
        // A quantile never exceeds max and never reports below the
        // lower bound of the smallest occupied bucket.
        let min = xs.iter().copied().min().unwrap();
        let (lo, _) = Histogram::bucket_bounds(Histogram::bucket_index(min));
        prop_assert!(h.p50() >= lo);
    }

    #[test]
    fn quantile_is_monotone_in_q(
        xs in proptest::collection::vec(any::<u64>(), 1..64),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let h = hist_of(&xs);
        let (lo_q, hi_q) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(h.quantile(lo_q) <= h.quantile(hi_q));
    }
}
