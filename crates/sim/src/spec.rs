//! Campaign tuning: the bounds the scenario generator samples within.
//!
//! A [`CampaignSpec`] is the knob surface of a campaign — how many
//! transmissions, which SNR regime, how large a fleet, how faulty the
//! links. Specs parse from the `sim_campaign --spec` flag as
//! `key=value` pairs separated by `,` so CI jobs can pin a cheap smoke
//! spec while the nightly sweep runs a wide one.

/// Bounds for the scenario generator. All ranges are inclusive.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Maximum transmissions per capture (min is 1).
    pub max_txs: usize,
    /// SNR regime, dB. The default floor (15 dB) stays inside the
    /// regime where the conformance invariants are unconditional —
    /// every clean packet decodes, so the batch reference is exact.
    pub min_snr_db: f32,
    /// Upper SNR bound, dB.
    pub max_snr_db: f32,
    /// Maximum gateway sessions (1 disables fleet scenarios).
    pub max_gateways: usize,
    /// Maximum cloud decode workers.
    pub max_workers: usize,
    /// Probability a scenario runs over a faulty gateway→cloud link.
    pub fault_prob: f64,
    /// Maximum datagram loss rate on a faulty link.
    pub max_loss: f64,
    /// Probability a fleet scenario (gateways >= 2) injects a crash.
    pub crash_prob: f64,
    /// Probability a scenario injects decode-pool faults
    /// (panic/hang/slow workers under the supervised pool).
    pub decode_fault_prob: f64,
    /// Probability a scenario allows collisions between transmissions.
    pub collision_prob: f64,
    /// Maximum capture length in samples (caps per-scenario cost).
    pub max_capture: usize,
    /// Maximum payload length in bytes (min is 2).
    pub max_payload: usize,
    /// Watchdog deadline for any single oracle check, seconds.
    pub deadline_s: f64,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            max_txs: 4,
            min_snr_db: 15.0,
            max_snr_db: 30.0,
            max_gateways: 3,
            max_workers: 4,
            fault_prob: 0.3,
            max_loss: 0.05,
            crash_prob: 0.25,
            decode_fault_prob: 0.25,
            collision_prob: 0.4,
            max_capture: 900_000,
            max_payload: 8,
            deadline_s: 120.0,
        }
    }
}

impl CampaignSpec {
    /// A deliberately tiny spec for PR-gating smoke campaigns: short
    /// captures, small fleets, cheap everywhere.
    pub fn smoke() -> Self {
        CampaignSpec {
            max_txs: 2,
            max_gateways: 2,
            max_workers: 2,
            fault_prob: 0.25,
            max_loss: 0.02,
            crash_prob: 0.2,
            decode_fault_prob: 0.2,
            max_capture: 500_000,
            deadline_s: 120.0,
            ..Default::default()
        }
    }

    /// Parses `key=value` pairs separated by commas, starting from the
    /// defaults — `"max_txs=2,fault_prob=0"` overrides two knobs.
    /// Unknown keys and malformed values are hard errors: a typo in a
    /// CI spec must fail the job, not silently run the default sweep.
    pub fn parse(s: &str) -> Result<CampaignSpec, String> {
        let mut spec = CampaignSpec::default();
        for pair in s.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("spec entry `{pair}` is not key=value"))?;
            let key = key.trim();
            let value = value.trim();
            fn num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
                value
                    .parse()
                    .map_err(|_| format!("spec key `{key}`: bad value `{value}`"))
            }
            match key {
                "max_txs" => spec.max_txs = num(key, value)?,
                "min_snr_db" => spec.min_snr_db = num(key, value)?,
                "max_snr_db" => spec.max_snr_db = num(key, value)?,
                "max_gateways" => spec.max_gateways = num(key, value)?,
                "max_workers" => spec.max_workers = num(key, value)?,
                "fault_prob" => spec.fault_prob = num(key, value)?,
                "max_loss" => spec.max_loss = num(key, value)?,
                "crash_prob" => spec.crash_prob = num(key, value)?,
                "decode_fault_prob" => spec.decode_fault_prob = num(key, value)?,
                "collision_prob" => spec.collision_prob = num(key, value)?,
                "max_capture" => spec.max_capture = num(key, value)?,
                "max_payload" => spec.max_payload = num(key, value)?,
                "deadline_s" => spec.deadline_s = num(key, value)?,
                _ => return Err(format!("unknown spec key `{key}`")),
            }
        }
        spec.check()?;
        Ok(spec)
    }

    /// Rejects specs the generator cannot sample from.
    pub fn check(&self) -> Result<(), String> {
        if self.max_txs == 0 {
            return Err("max_txs must be >= 1".into());
        }
        if self.max_gateways == 0 || self.max_workers == 0 {
            return Err("max_gateways and max_workers must be >= 1".into());
        }
        if self.min_snr_db.is_nan() || self.max_snr_db.is_nan() || self.min_snr_db > self.max_snr_db
        {
            return Err(format!(
                "SNR range is empty: {}..{}",
                self.min_snr_db, self.max_snr_db
            ));
        }
        if self.max_payload < 2 {
            return Err("max_payload must be >= 2".into());
        }
        // The longest prototype frame (8-byte LoRa) plus scheduling
        // margin must fit, or the generator cannot place even one tx.
        if self.max_capture < 300_000 {
            return Err("max_capture must be >= 300000 samples".into());
        }
        if !(self.deadline_s.is_finite() && self.deadline_s > 0.0) {
            return Err("deadline_s must be > 0".into());
        }
        for (name, p) in [
            ("fault_prob", self.fault_prob),
            ("crash_prob", self.crash_prob),
            ("decode_fault_prob", self.decode_fault_prob),
            ("collision_prob", self.collision_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1] (got {p})"));
            }
        }
        if !(0.0..=0.2).contains(&self.max_loss) {
            return Err(format!(
                "max_loss must be in [0, 0.2] (got {}) — beyond that the \
                 repairable-transport guarantee is not conformance-backed",
                self.max_loss
            ));
        }
        Ok(())
    }

    /// The spec as `key=value` pairs (re-parsable by [`Self::parse`]),
    /// echoed into reports and repro bundles.
    pub fn render(&self) -> String {
        format!(
            "max_txs={},min_snr_db={},max_snr_db={},max_gateways={},max_workers={},\
             fault_prob={},max_loss={},crash_prob={},decode_fault_prob={},\
             collision_prob={},max_capture={},max_payload={},deadline_s={}",
            self.max_txs,
            self.min_snr_db,
            self.max_snr_db,
            self.max_gateways,
            self.max_workers,
            self.fault_prob,
            self.max_loss,
            self.crash_prob,
            self.decode_fault_prob,
            self.collision_prob,
            self.max_capture,
            self.max_payload,
            self.deadline_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips_through_render_and_parse() {
        let spec = CampaignSpec::default();
        let parsed = CampaignSpec::parse(&spec.render()).expect("parse own render");
        assert_eq!(spec, parsed);
    }

    #[test]
    fn overrides_apply_on_top_of_defaults() {
        let spec = CampaignSpec::parse("max_txs=2, fault_prob=0").expect("parse");
        assert_eq!(spec.max_txs, 2);
        assert_eq!(spec.fault_prob, 0.0);
        assert_eq!(spec.max_gateways, CampaignSpec::default().max_gateways);
    }

    #[test]
    fn typos_and_degenerate_specs_are_hard_errors() {
        assert!(CampaignSpec::parse("max_tsx=2").is_err());
        assert!(CampaignSpec::parse("max_txs").is_err());
        assert!(CampaignSpec::parse("max_txs=zero").is_err());
        assert!(CampaignSpec::parse("max_txs=0").is_err());
        assert!(CampaignSpec::parse("min_snr_db=20,max_snr_db=10").is_err());
        assert!(CampaignSpec::parse("max_loss=0.9").is_err());
        assert!(CampaignSpec::parse("crash_prob=1.5").is_err());
        assert!(CampaignSpec::parse("decode_fault_prob=-0.1").is_err());
        assert!(CampaignSpec::parse("max_capture=1000").is_err());
    }

    #[test]
    fn smoke_spec_is_valid() {
        CampaignSpec::smoke().check().expect("smoke spec");
    }
}
