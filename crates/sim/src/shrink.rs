//! Greedy scenario minimization.
//!
//! When an oracle fails, the raw scenario is rarely the story — the
//! story is the smallest scenario that still fails. The shrinker walks
//! a fixed candidate ladder (cheapest structural deletions first:
//! drop the crash, drop the decode faults, clean the link, collapse
//! the fleet, then
//! delta-debug the transmissions, then zero the analog knobs), accepts
//! any candidate on which the *same oracle* still fails — re-checked
//! through the full panic/deadline fence — and restarts the ladder
//! from the smaller scenario until a whole pass yields nothing or the
//! check budget runs out. Every candidate is [`Scenario::validate`]d
//! first, so shrinking can never wander outside the generator's value
//! space.

use std::sync::Arc;

use galiot_phy::registry::Registry;

use crate::oracle::{build, guarded_check, Oracle};
use crate::scenario::Scenario;

/// The result of a shrink run.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The smallest failing scenario found.
    pub scenario: Scenario,
    /// Oracle checks spent (each one builds and runs pipelines).
    pub attempts: usize,
    /// Whether any candidate improved on the original.
    pub improved: bool,
}

/// Minimizes `scenario` against `oracle` within `budget` fenced oracle
/// checks. The input must already fail the oracle; the output is
/// guaranteed to fail it too (it is only ever replaced by a failing
/// candidate).
pub fn shrink(scenario: &Scenario, oracle: &Oracle, budget: usize) -> ShrinkOutcome {
    let mut current = scenario.clone();
    let mut attempts = 0;
    let mut improved = false;

    'outer: loop {
        for candidate in candidates(&current) {
            if attempts >= budget {
                break 'outer;
            }
            if candidate == current || candidate.validate().is_err() {
                continue;
            }
            attempts += 1;
            let built = Arc::new(build(&candidate));
            if guarded_check(oracle, &candidate, &built).is_err() {
                current = candidate;
                improved = true;
                continue 'outer; // restart the ladder from the smaller scenario
            }
        }
        break;
    }

    ShrinkOutcome {
        scenario: current,
        attempts,
        improved,
    }
}

/// The candidate ladder for one scenario, cheapest deletion first.
fn candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut Scenario)| {
        let mut c = s.clone();
        f(&mut c);
        out.push(c);
    };

    // Structural deletions.
    if s.crash.is_some() {
        push(&|c| c.crash = None);
    }
    if s.decode_faults.is_some() {
        push(&|c| c.decode_faults = None);
    }
    if s.loss > 0.0 {
        push(&|c| c.loss = 0.0);
    }
    if s.gateways > 1 {
        // Collapsing the fleet invalidates any crash session index.
        push(&|c| {
            c.gateways = 1;
            c.crash = None;
        });
    }
    if s.shards != 0 {
        push(&|c| c.shards = 0);
    }
    if s.workers > 1 {
        push(&|c| c.workers = 1);
    }
    if s.chunk != 65_536 {
        push(&|c| c.chunk = 65_536);
    }

    // Delta-debug the transmissions: halves, then singles (from the
    // back, so earlier indices stay stable while later ones vanish).
    if s.txs.len() > 1 {
        let mid = s.txs.len() / 2;
        push(&|c| c.txs.truncate(mid));
        push(&|c| {
            c.txs.drain(..mid);
        });
        for i in (0..s.txs.len()).rev() {
            push(&move |c: &mut Scenario| {
                c.txs.remove(i);
            });
        }
    }

    // Analog simplifications.
    if s.txs.iter().any(|t| t.is_impaired()) {
        push(&|c| {
            for t in &mut c.txs {
                t.cfo_ppm = 0.0;
                t.phase = 0.0;
            }
        });
        for i in 0..s.txs.len() {
            if s.txs[i].is_impaired() {
                push(&move |c: &mut Scenario| {
                    c.txs[i].cfo_ppm = 0.0;
                    c.txs[i].phase = 0.0;
                });
            }
        }
    }
    for i in 0..s.txs.len() {
        if s.txs[i].payload.len() > 2 {
            push(&move |c: &mut Scenario| c.txs[i].payload.truncate(2));
        }
    }
    if s.snr_db < 30.0 {
        push(&|c| c.snr_db = 30.0);
    }

    // Trim the dead tail off the capture.
    let floor = min_capture(s);
    if s.capture_len > floor {
        push(&move |c: &mut Scenario| c.capture_len = floor);
    }

    out
}

/// The smallest capture that still fits every transmission plus the
/// scheduling margin the generator leaves.
fn min_capture(s: &Scenario) -> usize {
    let registry = Registry::prototype();
    s.txs
        .iter()
        .filter_map(|t| {
            registry
                .get(t.tech)
                .map(|h| t.start + h.modulate(&t.payload, Scenario::FS).len())
        })
        .max()
        .unwrap_or(0)
        + 30_000
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::oracle::broken_dev;
    use crate::spec::CampaignSpec;

    /// Find a generated scenario the broken dev oracle rejects, shrink
    /// it, and confirm the minimum: exactly two transmissions, single
    /// gateway, clean link, minimal payloads — and still failing.
    #[test]
    fn shrinks_a_broken_dev_failure_to_two_clean_txs() {
        let spec = CampaignSpec {
            max_capture: 600_000,
            deadline_s: 120.0,
            ..CampaignSpec::default()
        };
        let oracle = broken_dev();
        let seed = (0..200u64)
            .find(|&s| generate(&spec, s).txs.len() >= 3)
            .expect("some seed yields >= 3 txs");
        let scenario = generate(&spec, seed);
        let built = Arc::new(build(&scenario));
        assert!(guarded_check(&oracle, &scenario, &built).is_err());

        let outcome = shrink(&scenario, &oracle, 100);
        let min = &outcome.scenario;
        assert!(outcome.improved);
        assert_eq!(min.txs.len(), 2, "minimal failing tx count: {min:?}");
        assert_eq!(min.gateways, 1, "fleet not collapsed: {min:?}");
        assert_eq!(min.loss, 0.0, "link not cleaned: {min:?}");
        assert!(min.crash.is_none(), "crash not dropped: {min:?}");
        assert!(
            min.txs.iter().all(|t| !t.is_impaired()),
            "impairments not zeroed: {min:?}"
        );
        min.validate().expect("minimized scenario stays valid");
        // The minimum still fails — the shrinker's core guarantee.
        let built = Arc::new(build(min));
        assert!(guarded_check(&oracle, min, &built).is_err());
    }
}
